"""Tests for OpenMetrics rendering, parsing, and the metrics HTTP server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.obs import (
    BurnRateRule,
    MetricsHttpServer,
    MetricsRegistry,
    Slo,
    SloEngine,
    WindowedCollector,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.exposition import metric_name, snapshot_from_payload
from repro.obs.timeseries import WindowRecord


def _registry():
    registry = MetricsRegistry()
    registry.inc("cache.hits", 42)
    registry.inc("cache.table_hits", 7, table="0")
    registry.inc("cache.table_hits", 3, table="1")
    registry.set_gauge("cache.fill", 0.75)
    registry.declare_buckets("serving.latency", (1e-3, 1e-2))
    registry.observe("serving.latency", 5e-4)
    registry.observe("serving.latency", 5e-3)
    registry.observe("serving.latency", 5e-2)
    return registry


class TestRendering:
    def test_name_sanitisation(self):
        assert metric_name("cache.hits") == "cache_hits"
        assert metric_name("0weird") == "_0weird"
        assert metric_name("a-b c") == "a_b_c"

    def test_families_and_suffixes(self):
        text = render_openmetrics(_registry().snapshot())
        assert "# TYPE cache_hits counter\n" in text
        assert "cache_hits_total 42\n" in text
        assert 'cache_table_hits_total{table="0"} 7\n' in text
        assert "# TYPE cache_fill gauge\n" in text
        assert "cache_fill 0.75\n" in text
        assert text.endswith("# EOF\n")

    def test_histogram_rendering(self):
        text = render_openmetrics(_registry().snapshot())
        assert 'serving_latency_bucket{le="0.001"} 1\n' in text
        assert 'serving_latency_bucket{le="0.01"} 2\n' in text
        assert 'serving_latency_bucket{le="+Inf"} 3\n' in text
        assert "serving_latency_count 3\n" in text

    def test_engine_and_collector_extras(self):
        engine = SloEngine(
            [Slo("latency", objective=0.99)],
            [BurnRateRule("fast", "latency")],
        )
        engine.evaluate([WindowRecord(
            0, 0.0, 1e-3, values={"sla_bad": 50.0, "requests": 100.0},
        )])
        collector = WindowedCollector().bind(MetricsRegistry())
        collector.observe_batch(1.5e-3)
        collector.flush(2e-3)
        text = render_openmetrics(
            _registry().snapshot(), engine=engine, collector=collector,
        )
        assert 'slo_alert_firing{rule="fast",slo="latency"} 1\n' in text
        assert "obs_windows_closed 2\n" in text
        parse_openmetrics(text)  # extras stay grammar-valid

    def test_render_parse_round_trip(self):
        registry = _registry()
        text = render_openmetrics(registry.snapshot())
        families = parse_openmetrics(text)
        assert families["cache_hits"]["type"] == "counter"
        assert families["cache_hits"]["samples"] == [
            ("cache_hits_total", {}, 42.0)
        ]
        table_samples = families["cache_table_hits"]["samples"]
        assert ("cache_table_hits_total", {"table": "0"}, 7.0) in table_samples
        buckets = [
            s for s in families["serving_latency"]["samples"]
            if s[0] == "serving_latency_bucket"
        ]
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 3.0


class TestParserStrictness:
    def test_rejects_missing_terminator(self):
        with pytest.raises(ConfigError):
            parse_openmetrics("# TYPE a counter\na_total 1\n")
        with pytest.raises(ConfigError):
            parse_openmetrics("# TYPE a counter\na_total 1\n# EOF")

    def test_rejects_blank_lines_and_bad_comments(self):
        with pytest.raises(ConfigError):
            parse_openmetrics("# TYPE a counter\n\na_total 1\n# EOF\n")
        with pytest.raises(ConfigError):
            parse_openmetrics("# FROB a counter\na_total 1\n# EOF\n")

    def test_rejects_sample_before_type(self):
        with pytest.raises(ConfigError):
            parse_openmetrics("a_total 1\n# EOF\n")

    def test_rejects_foreign_sample_name(self):
        with pytest.raises(ConfigError):
            parse_openmetrics("# TYPE a counter\nb_total 1\n# EOF\n")
        # A counter sample must carry the _total suffix.
        with pytest.raises(ConfigError):
            parse_openmetrics("# TYPE a counter\na 1\n# EOF\n")

    def test_rejects_duplicate_family(self):
        with pytest.raises(ConfigError):
            parse_openmetrics(
                "# TYPE a counter\n# TYPE a counter\n# EOF\n"
            )

    def test_rejects_bad_value(self):
        with pytest.raises(ConfigError):
            parse_openmetrics("# TYPE a counter\na_total pizza\n# EOF\n")


class TestPayloadRoundTrip:
    def test_snapshot_from_payload_rerenders_identically(self):
        registry = _registry()
        snapshot = registry.snapshot()
        payload = json.loads(snapshot.to_json())
        rebuilt = snapshot_from_payload(payload)
        assert render_openmetrics(rebuilt) == render_openmetrics(snapshot)

    def test_handles_bucketless_histograms(self):
        registry = MetricsRegistry()
        registry.observe("plain.hist", 2.0)
        payload = json.loads(registry.snapshot().to_json())
        rebuilt = snapshot_from_payload(payload)
        text = render_openmetrics(rebuilt)
        assert 'plain_hist_bucket{le="+Inf"} 1\n' in text


class TestHttpServer:
    @pytest.fixture()
    def served(self):
        registry = _registry()
        collector = WindowedCollector(sla_budget=2e-3).bind(registry)
        collector.observe_batch(0.5e-3, [1e-3])
        collector.flush(1e-3)
        engine = SloEngine([Slo("latency", objective=0.99)], [])
        with MetricsHttpServer(
            registry, collector=collector, engine=engine,
        ) as server:
            yield server

    @staticmethod
    def _get(server, path):
        with urllib.request.urlopen(server.url(path), timeout=5) as response:
            return response.status, response.read().decode("utf-8")

    def test_metrics_endpoint_is_valid_openmetrics(self, served):
        status, body = self._get(served, "/metrics")
        assert status == 200
        families = parse_openmetrics(body)
        assert "cache_hits" in families
        assert "obs_windows_closed" in families

    def test_healthz(self, served):
        status, body = self._get(served, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["windows"] == served.collector.closed_windows

    def test_series(self, served):
        status, body = self._get(served, "/series")
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "series"
        assert payload["windows"]
        assert payload["alerts"]["kind"] == "alerts"

    def test_unknown_path_is_404(self, served):
        try:
            self._get(served, "/nope")
        except urllib.error.HTTPError as err:
            assert err.code == 404
        else:  # pragma: no cover
            pytest.fail("expected a 404")

    def test_double_start_rejected(self, served):
        with pytest.raises(ConfigError):
            served.start()

    def test_series_without_collector_is_404(self):
        with MetricsHttpServer(_registry()) as server:
            try:
                self._get(server, "/series")
            except urllib.error.HTTPError as err:
                assert err.code == 404
            else:  # pragma: no cover
                pytest.fail("expected a 404")
