"""Tests for dataset specs, synthetic generation, replicas, preprocessing."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.datasets import (
    DATASET_REPLICAS,
    PAPER_CACHE_RATIOS,
    avazu_replica,
    criteo_kaggle_replica,
    criteo_tb_replica,
)
from repro.workloads.preprocess import filter_low_frequency, frequency_tables
from repro.workloads.spec import DatasetSpec, FieldSpec
from repro.workloads.synthetic import synthetic_dataset, uniform_tables_spec
from repro.workloads.trace import Trace, TraceBatch


class TestFieldSpec:
    def test_valid(self):
        FieldSpec(corpus_size=100, alpha=-1.2, drift=0.1)

    def test_rejects_bad_values(self):
        with pytest.raises(WorkloadError):
            FieldSpec(corpus_size=0)
        with pytest.raises(WorkloadError):
            FieldSpec(corpus_size=10, alpha=0.1)
        with pytest.raises(WorkloadError):
            FieldSpec(corpus_size=10, drift=1.5)


class TestDatasetSpec:
    def test_derived_quantities(self):
        spec = DatasetSpec(
            name="x",
            fields=(FieldSpec(100), FieldSpec(200)),
            num_samples=1000,
            dim=8,
        )
        assert spec.num_tables == 2
        assert spec.total_sparse_ids == 300
        assert spec.param_bytes == 300 * 32

    def test_cache_slots_for_ratio(self):
        spec = DatasetSpec(
            name="x", fields=(FieldSpec(1000),), num_samples=10, dim=8
        )
        assert spec.cache_slots_for_ratio(0.05) == 50

    def test_cache_ratio_bounds(self):
        spec = DatasetSpec(
            name="x", fields=(FieldSpec(1000),), num_samples=10, dim=8
        )
        with pytest.raises(WorkloadError):
            spec.cache_slots_for_ratio(0.0)

    def test_table_specs(self):
        spec = uniform_tables_spec(num_tables=3, corpus_size=10, dim=4)
        specs = spec.table_specs()
        assert [s.table_id for s in specs] == [0, 1, 2]
        assert all(s.dim == 4 for s in specs)


class TestSyntheticDataset:
    def test_shape(self):
        spec = uniform_tables_spec(num_tables=4, corpus_size=100)
        trace = synthetic_dataset(spec, num_batches=5, batch_size=16)
        assert len(trace) == 5
        assert trace.num_tables == 4
        assert all(len(b.ids_per_table[0]) == 16 for b in trace)

    def test_ids_within_corpus(self):
        spec = uniform_tables_spec(num_tables=2, corpus_size=50)
        trace = synthetic_dataset(spec, num_batches=3, batch_size=64)
        for b in trace:
            for ids in b.ids_per_table:
                assert (ids < 50).all()

    def test_deterministic_for_seed(self):
        spec = uniform_tables_spec(num_tables=2, corpus_size=100, seed=5)
        a = synthetic_dataset(spec, 3, 8)
        b = synthetic_dataset(spec, 3, 8)
        for ba, bb in zip(a, b):
            np.testing.assert_array_equal(ba.ids_per_table[0], bb.ids_per_table[0])

    def test_multi_hot(self):
        spec = uniform_tables_spec(num_tables=2, corpus_size=100)
        spec = DatasetSpec(
            name="mh", fields=spec.fields, num_samples=100, dim=8,
            ids_per_field=3,
        )
        trace = synthetic_dataset(spec, 2, 10)
        assert len(trace[0].ids_per_table[0]) == 30

    def test_rejects_bad_counts(self):
        spec = uniform_tables_spec()
        with pytest.raises(WorkloadError):
            synthetic_dataset(spec, 0, 4)

    def test_drift_changes_hot_set(self):
        fields = (FieldSpec(corpus_size=1000, alpha=-2.0, drift=0.5),)
        spec = DatasetSpec(name="d", fields=fields, num_samples=10, dim=4, seed=3)
        trace = synthetic_dataset(spec, num_batches=64, batch_size=256,
                                  drift_every=8)
        early = set(np.unique(trace[0].ids_per_table[0]).tolist())
        late = set(np.unique(trace[63].ids_per_table[0]).tolist())
        assert early != late


class TestReplicas:
    def test_table_counts_match_table2(self):
        assert avazu_replica(scale=0.01).num_tables == 22
        assert criteo_kaggle_replica(scale=0.01).num_tables == 26
        assert criteo_tb_replica(scale=0.01).num_tables == 26

    def test_dims_match_paper(self):
        assert avazu_replica(scale=0.01).dim == 32
        assert criteo_kaggle_replica(scale=0.01).dim == 32
        assert criteo_tb_replica(scale=0.01).dim == 128

    def test_heterogeneous_corpora(self):
        ds = criteo_kaggle_replica(scale=0.1)
        sizes = [f.corpus_size for f in ds.fields]
        assert max(sizes) / max(min(sizes), 1) > 100

    def test_registry_and_ratios(self):
        assert set(DATASET_REPLICAS) == set(PAPER_CACHE_RATIOS)
        assert PAPER_CACHE_RATIOS["criteo-tb"] == (0.02, 0.01, 0.005)

    def test_scale_shrinks_corpora(self):
        big = avazu_replica(scale=1.0).total_sparse_ids
        small = avazu_replica(scale=0.1).total_sparse_ids
        assert small < big


class TestPreprocess:
    def _trace(self):
        ids0 = np.array([1, 1, 1, 2, 3, 3], np.uint64)
        ids1 = np.array([9, 9, 9, 9, 8, 7], np.uint64)
        return Trace([
            TraceBatch([ids0[:3], ids1[:3]], batch_size=3),
            TraceBatch([ids0[3:], ids1[3:]], batch_size=3),
        ])

    def test_frequency_tables(self):
        counts = frequency_tables(self._trace())
        assert counts[0][1] == 3
        assert counts[1][9] == 4

    def test_filter_removes_rare_ids(self):
        filtered, remaps = filter_low_frequency(self._trace(), min_count=2)
        # id 2 of table 0 occurred once -> mapped to the OOV bucket 0.
        all_ids0 = np.concatenate([b.ids_per_table[0] for b in filtered])
        assert 0 in all_ids0.tolist()
        assert 2 not in remaps[0]
        assert 1 in remaps[0] and 3 in remaps[0]

    def test_surviving_ids_densified(self):
        _, remaps = filter_low_frequency(self._trace(), min_count=2)
        assert sorted(remaps[0].values()) == [1, 2]

    def test_min_count_one_keeps_everything(self):
        filtered, remaps = filter_low_frequency(self._trace(), min_count=1)
        assert len(remaps[0]) == 3

    def test_bad_min_count(self):
        with pytest.raises(WorkloadError):
            filter_low_frequency(self._trace(), min_count=0)
