"""Tests for deduplicating & restoring (paper §4)."""

import numpy as np
import pytest

from repro.core.dedup import (
    deduplicate,
    dedup_kernel_spec,
    restore,
    restore_kernel_spec,
)


class TestDeduplicate:
    def test_collapses_duplicates(self):
        keys = np.array([5, 3, 5, 5, 7, 3], np.uint64)
        result = deduplicate(keys)
        assert sorted(result.unique_keys.tolist()) == [3, 5, 7]

    def test_inverse_restores_original(self):
        keys = np.array([5, 3, 5, 5, 7, 3], np.uint64)
        result = deduplicate(keys)
        np.testing.assert_array_equal(
            result.unique_keys[result.inverse], keys
        )

    def test_duplication_factor(self):
        keys = np.array([1, 1, 1, 2], np.uint64)
        assert deduplicate(keys).duplication_factor == pytest.approx(2.0)

    def test_empty(self):
        result = deduplicate(np.zeros(0, np.uint64))
        assert len(result.unique_keys) == 0
        assert result.duplication_factor == 1.0


class TestRestore:
    def test_expands_rows(self):
        unique_rows = np.array([[1.0, 1.0], [2.0, 2.0]], np.float32)
        inverse = np.array([1, 0, 1, 1])
        out = restore(unique_rows, inverse)
        np.testing.assert_array_equal(out[:, 0], [2.0, 1.0, 2.0, 2.0])

    def test_roundtrip_with_dedup(self, rng):
        keys = rng.integers(0, 50, size=200).astype(np.uint64)
        result = deduplicate(keys)
        rows = rng.standard_normal((len(result.unique_keys), 4)).astype(np.float32)
        full = restore(rows, result.inverse)
        # Every position got the row of its key.
        for i, k in enumerate(keys):
            j = np.searchsorted(result.unique_keys, k)
            np.testing.assert_array_equal(full[i], rows[j])


class TestKernelSpecs:
    def test_dedup_kernel_scales_with_keys(self):
        small = dedup_kernel_spec(1000)
        large = dedup_kernel_spec(10_000)
        assert large.stream_bytes == 10 * small.stream_bytes

    def test_restore_kernel_counts_coalesced_rows(self):
        spec16 = restore_kernel_spec(100, dim=16)
        spec32 = restore_kernel_spec(100, dim=32)
        # Coalescing: 16- and 32-dim rows cost the same transactions.
        assert spec16.stream_bytes == spec32.stream_bytes

    def test_zero_rows_safe(self):
        assert dedup_kernel_spec(0).threads >= 1
        assert restore_kernel_spec(0, 32).threads >= 1
