"""Tests for the admission filter and unified-index machinery."""

import numpy as np
import pytest

from repro.core.admission import AdmissionFilter
from repro.core.unified_index import (
    UnifiedIndexTuner,
    is_dram_pointer,
    split_pointers,
    tag_cache_location,
    tag_dram_pointer,
    untag,
)
from repro.errors import ConfigError


class TestAdmissionFilter:
    def test_probability_one_admits_all(self):
        f = AdmissionFilter(1.0)
        keys = np.arange(100, dtype=np.uint64)
        assert f.admit(keys).all()

    def test_probability_controls_rate(self):
        f = AdmissionFilter(0.25, seed=1)
        keys = np.arange(40_000, dtype=np.uint64)
        rate = f.admit(keys).mean()
        assert rate == pytest.approx(0.25, abs=0.02)

    def test_bypass_threshold(self):
        assert AdmissionFilter(0.1).bypass_threshold == pytest.approx(10.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            AdmissionFilter(0.0)
        with pytest.raises(ConfigError):
            AdmissionFilter(1.5)


class TestPointerTagging:
    def test_cache_locations_untagged(self):
        locs = np.array([0, 5, 123456], np.uint64)
        tagged = tag_cache_location(locs)
        assert not is_dram_pointer(tagged).any()
        np.testing.assert_array_equal(untag(tagged), locs)

    def test_dram_pointers_tagged(self):
        rows = np.array([7, 99], np.uint64)
        tagged = tag_dram_pointer(rows)
        assert is_dram_pointer(tagged).all()
        np.testing.assert_array_equal(untag(tagged), rows)

    def test_lsb_is_the_tag(self):
        # Paper §3.3: "set the least significant bit of pointers".
        assert int(tag_dram_pointer(np.array([0], np.uint64))[0]) & 1 == 1
        assert int(tag_cache_location(np.array([0], np.uint64))[0]) & 1 == 0

    def test_split_pointers(self):
        mixed = np.concatenate([
            tag_cache_location(np.array([1], np.uint64)),
            tag_dram_pointer(np.array([2], np.uint64)),
        ])
        cache_mask, raw = split_pointers(mixed)
        assert cache_mask.tolist() == [True, False]
        assert raw.tolist() == [1, 2]


class TestUnifiedIndexTuner:
    def _feed_window(self, tuner, latency):
        decision = None
        for _ in range(tuner.window):
            decision = tuner.observe(latency)
        return decision

    def test_holds_within_a_window(self):
        t = UnifiedIndexTuner(max_capacity=800, step=100, window=4)
        for _ in range(3):
            assert t.observe(10.0).action == "hold"
        assert t.capacity == 0

    def test_grows_while_windows_improve(self):
        t = UnifiedIndexTuner(max_capacity=800, step=100, window=2)
        decision = self._feed_window(t, 10.0)
        assert decision.action == "grow"
        self._feed_window(t, 9.0)
        self._feed_window(t, 8.0)
        assert t.capacity == 300

    def test_backs_off_when_a_step_hurts(self):
        t = UnifiedIndexTuner(max_capacity=800, step=100, window=2)
        self._feed_window(t, 10.0)  # -> 100
        self._feed_window(t, 9.0)   # -> 200
        decision = self._feed_window(t, 9.5)  # worse: reverse
        assert decision.action == "backoff"
        assert t.capacity == 100

    def test_oscillates_around_optimum_not_past_it(self):
        """If more capacity always hurts, the tuner hugs zero."""
        t = UnifiedIndexTuner(max_capacity=800, step=100, window=1)
        latency_of = lambda cap: 1.0 + cap / 100.0
        for _ in range(20):
            t.observe(latency_of(t.capacity))
        assert t.capacity <= 200

    def test_resets_on_significant_decline(self):
        t = UnifiedIndexTuner(max_capacity=800, step=100, window=2,
                              regression_tolerance=0.2)
        self._feed_window(t, 10.0)
        self._feed_window(t, 9.0)
        decision = self._feed_window(t, 20.0)  # workload change
        assert decision.action == "reset"
        assert t.capacity == 0

    def test_capacity_bounded(self):
        t = UnifiedIndexTuner(max_capacity=150, step=100, window=1)
        for _ in range(10):
            t.observe(1.0)
        assert 0 <= t.capacity <= 150

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            UnifiedIndexTuner(max_capacity=-1)
        with pytest.raises(ConfigError):
            UnifiedIndexTuner(max_capacity=10, regression_tolerance=0.0)
        with pytest.raises(ConfigError):
            UnifiedIndexTuner(max_capacity=10, window=0)

    def test_regrows_after_reset(self):
        t = UnifiedIndexTuner(max_capacity=400, step=100, window=1)
        t.observe(10.0)
        t.observe(50.0)  # reset
        decision = t.observe(10.0)
        assert t.capacity > 0
        assert decision.action == "grow"
