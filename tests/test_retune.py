"""Tests for the online retune surface (pool + cache knobs).

The adaptive controller's levers: retiring/growing slab capacity,
moving byte share between precision tiers, and the runtime setters on
``FlatCache`` — all with live entries untouched and validation intact.
"""

import copy

import pytest

from repro import FlecheConfig, default_platform
from repro.core.precision import PrecisionConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError, SimulationError
from repro.mempool.slab_pool import SlabMemoryPool
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


@pytest.fixture()
def pool():
    return SlabMemoryPool({(16, "fp32"): 64, (16, "int8"): 256})


def _layer(quantizing=True, ratio=0.05):
    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=3, corpus_size=2_000, alpha=-1.2, dim=16,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    precision = PrecisionConfig(enabled=True) if quantizing \
        else PrecisionConfig()
    return FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=ratio, precision=precision), hw,
    )


class TestPoolRetire:
    def test_retire_free_shrinks_capacity(self, pool):
        before_bytes = pool.total_bytes
        assert pool.retire_free(16, "int8", 100) == 100
        assert pool.capacity_of(16, "int8") == 156
        assert pool.free_of(16, "int8") == 156
        assert pool.total_bytes < before_bytes

    def test_retire_bounded_by_free_list(self, pool):
        taken = pool.allocate(16, 200, tier="int8")
        assert pool.retire_free(16, "int8", 500) == 56
        assert pool.capacity_of(16, "int8") == 200
        pool.release(taken)
        assert pool.free_of(16, "int8") == 200

    def test_retire_zero_or_negative_is_noop(self, pool):
        assert pool.retire_free(16, "int8", 0) == 0
        assert pool.retire_free(16, "int8", -3) == 0
        assert pool.capacity_of(16, "int8") == 256

    def test_retire_unknown_class_raises(self, pool):
        with pytest.raises(SimulationError):
            pool.retire_free(16, "fp16", 1)

    def test_live_slots_survive_retire(self, pool):
        locs = pool.allocate(16, 10, tier="int8")
        rows = pool.read(locs)
        pool.retire_free(16, "int8", 200)
        assert (pool.read(locs) == rows).all()


class TestPoolGrow:
    def test_grow_appends_fresh_slots(self, pool):
        before = pool.capacity_of(16, "fp32")
        assert pool.grow_class(16, "fp32", 32) == 32
        assert pool.capacity_of(16, "fp32") == before + 32
        assert pool.free_of(16, "fp32") == before + 32

    def test_grow_zero_is_noop(self, pool):
        assert pool.grow_class(16, "fp32", 0) == 0

    def test_grown_slots_usable(self, pool):
        pool.allocate(16, 64, tier="fp32")
        assert pool.free_of(16, "fp32") == 0
        pool.grow_class(16, "fp32", 8)
        locs = pool.allocate(16, 8, tier="fp32")
        assert len(locs) == 8

    def test_grow_int8_extends_scales(self, pool):
        pool.grow_class(16, "int8", 16)
        locs = pool.allocate(16, 272, tier="int8")
        assert len(locs) == 272

    def test_deepcopy_after_retune(self, pool):
        pool.retire_free(16, "int8", 100)
        pool.grow_class(16, "fp32", 8)
        clone = copy.deepcopy(pool)
        assert clone.capacity_of(16, "int8") == 156
        assert clone.capacity_of(16, "fp32") == 72
        assert clone.total_bytes == pool.total_bytes


class TestCacheKnobs:
    def test_set_admission_probability(self):
        cache = _layer().cache
        cache.set_admission_probability(0.4)
        assert cache.admission.probability == 0.4
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigError):
                cache.set_admission_probability(bad)

    def test_set_tier_thresholds(self):
        cache = _layer().cache
        cache.set_tier_thresholds(4, 2)
        assert cache.admission.hot_min_count == 4
        assert cache.admission.warm_min_count == 2
        with pytest.raises(ConfigError):
            cache.set_tier_thresholds(1, 2)   # warm > hot
        with pytest.raises(ConfigError):
            cache.set_tier_thresholds(2, 0)

    def test_thresholds_need_quantizing_cache(self):
        cache = _layer(quantizing=False).cache
        with pytest.raises(ConfigError):
            cache.set_tier_thresholds(2, 1)

    def test_set_evict_low_watermark(self):
        cache = _layer().cache
        cache.set_evict_low_watermark(0.5)
        assert cache.evict_low_watermark == 0.5
        with pytest.raises(ConfigError):
            cache.set_evict_low_watermark(0.0)
        with pytest.raises(ConfigError):
            cache.set_evict_low_watermark(
                cache.config.evict_high_watermark
            )

    def test_transfer_tier_capacity_moves_bytes(self):
        cache = _layer().cache
        pool = cache.pool
        dim = pool.dims()[0]
        before_bytes = pool.total_bytes
        before_fp32 = pool.capacity_of(dim, "fp32")
        before_int8 = pool.capacity_of(dim, "int8")
        retired, grown = cache.transfer_tier_capacity(
            dim, "int8", "fp32", 0.10,
        )
        assert retired > 0 and grown > 0
        assert pool.capacity_of(dim, "int8") == before_int8 - retired
        assert pool.capacity_of(dim, "fp32") == before_fp32 + grown
        # Integer floor on the byte conversion: never grows the budget.
        assert pool.total_bytes <= before_bytes

    def test_transfer_validation(self):
        cache = _layer().cache
        dim = cache.pool.dims()[0]
        with pytest.raises(ConfigError):
            cache.transfer_tier_capacity(dim, "int8", "int8", 0.1)
        with pytest.raises(ConfigError):
            cache.transfer_tier_capacity(dim, "int8", "fp32", 0.0)
        with pytest.raises(ConfigError):
            cache.transfer_tier_capacity(dim, "int8", "fp32", 1.5)
        with pytest.raises(ConfigError):
            cache.transfer_tier_capacity(dim, "bad", "fp32", 0.1)

    def test_transfer_needs_quantizing_cache(self):
        cache = _layer(quantizing=False).cache
        dim = cache.pool.dims()[0]
        with pytest.raises(ConfigError):
            cache.transfer_tier_capacity(dim, "int8", "fp32", 0.1)
