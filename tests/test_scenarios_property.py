"""Property tests for the workload samplers and scenario generators.

Hypothesis sweeps the parameter space the unit tests only spot-check:

* ``ZipfSampler`` — popularity is non-increasing in rank and sums to 1;
  equal seeds give equal draws.
* ``_DriftingField`` — drift preserves the permutation (same id
  multiset), moves a bounded number of entries per epoch, and two
  identically seeded fields stay in lockstep across epochs — including
  across *separate runs*, which guards the permutation-cache detach.
* Scenario generators — every (scenario, seed, parameter) combination
  builds a load that passes ``validate_load``: phase boundaries are
  contiguous and no phase ever emits an out-of-corpus id.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import build_scenario, validate_load
from repro.workloads.spec import FieldSpec
from repro.workloads.synthetic import _DriftingField, uniform_tables_spec
from repro.workloads.zipf import ZipfSampler

RELAXED = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

corpora = st.integers(min_value=2, max_value=400)
alphas = st.floats(min_value=-2.5, max_value=-0.2)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestZipfSampler:
    @RELAXED
    @given(corpus=corpora, alpha=alphas)
    def test_popularity_non_increasing_and_normalised(self, corpus, alpha):
        sampler = ZipfSampler(corpus, alpha, seed=0)
        masses = [
            sampler.popularity_of_rank(r) for r in range(1, corpus + 1)
        ]
        for hot, cold in zip(masses, masses[1:]):
            assert hot >= cold - 1e-12
        assert abs(sum(masses) - 1.0) < 1e-9

    @RELAXED
    @given(corpus=corpora, alpha=alphas, seed=seeds)
    def test_equal_seeds_draw_equal_ids(self, corpus, alpha, seed):
        a = ZipfSampler(corpus, alpha, seed=seed).sample(64)
        b = ZipfSampler(corpus, alpha, seed=seed).sample(64)
        assert np.array_equal(a, b)
        assert int(a.max(initial=0)) < corpus


class TestDriftingField:
    @RELAXED
    @given(
        corpus=st.integers(min_value=10, max_value=400),
        drift=st.floats(min_value=0.001, max_value=1.0),
        seed=seeds,
    )
    def test_epoch_preserves_permutation_and_bounds_motion(
        self, corpus, drift, seed,
    ):
        field = _DriftingField(
            FieldSpec(corpus_size=corpus, alpha=-1.2, drift=drift),
            seed=seed,
        )
        before = field.sampler._rank_to_id.copy()
        field.advance_epoch()
        after = field.sampler._rank_to_id
        # A swap permutes, never invents or drops ids.
        assert np.array_equal(np.sort(after), np.sort(before))
        hot_pool = max(1, corpus // 10)
        move = min(max(1, int(corpus * drift)), hot_pool)
        changed = int(np.count_nonzero(after != before))
        assert changed <= 2 * move

    @RELAXED
    @given(
        corpus=st.integers(min_value=10, max_value=400),
        drift=st.floats(min_value=0.001, max_value=1.0),
        seed=seeds,
        epochs=st.integers(min_value=0, max_value=5),
    )
    def test_equal_seeds_stay_in_lockstep_across_epochs(
        self, corpus, drift, seed, epochs,
    ):
        spec = FieldSpec(corpus_size=corpus, alpha=-1.2, drift=drift)

        def run():
            field = _DriftingField(spec, seed=seed)
            for _ in range(epochs):
                field.advance_epoch()
            return field.sample(32)

        # Two *sequential* runs: the second must not observe the first
        # run's drift mutations through the shared permutation cache.
        assert np.array_equal(run(), run())


class TestScenarioGenerators:
    SCENARIO_STRATEGY = st.sampled_from(
        ["flash_crowd", "diurnal", "multi_tenant", "cold_start_flood"]
    )

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=SCENARIO_STRATEGY,
        seed=st.integers(min_value=0, max_value=10_000),
        corpus=st.integers(min_value=300, max_value=3_000),
        tables=st.integers(min_value=1, max_value=4),
    )
    def test_every_generated_load_is_in_spec(
        self, name, seed, corpus, tables,
    ):
        dataset = uniform_tables_spec(
            num_tables=tables, corpus_size=corpus, alpha=-1.2, dim=8,
        )
        overrides = {
            "flash_crowd": {"base_rate": 5_000.0},
            "diurnal": {"mean_rate": 5_000.0},
            "multi_tenant": {"duration": 5e-3},
            "cold_start_flood": {
                "base_rate": 5_000.0,
                "flood_size": min(64, corpus - 1),
            },
        }[name]
        scenario = build_scenario(name, dataset, seed=seed, **overrides)
        load = scenario.build()
        validate_load(load, dataset)
        phases = load.phases
        assert phases[0].start == 0.0
        for prev, cur in zip(phases, phases[1:]):
            assert cur.start == prev.end
        for request in load.requests:
            assert 0.0 <= request.arrival_time <= load.duration
