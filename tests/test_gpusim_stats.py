"""Tests for the time-accounting breakdown."""

import pytest

from repro.gpusim.stats import Category, TimeBreakdown


class TestTimeBreakdown:
    def test_add_accumulates_per_category(self):
        b = TimeBreakdown()
        b.add(Category.MAINTENANCE, 1.0)
        b.add(Category.MAINTENANCE, 2.0)
        assert b.maintenance_time == pytest.approx(3.0)

    def test_execution_time_sums_kernel_categories(self):
        b = TimeBreakdown()
        b.add(Category.CACHE_INDEX, 1.0)
        b.add(Category.CACHE_COPY, 2.0)
        b.add(Category.MLP, 4.0)
        b.add(Category.MAINTENANCE, 100.0)  # not execution
        assert b.execution_time == pytest.approx(7.0)

    def test_cache_query_time(self):
        b = TimeBreakdown()
        b.add(Category.CACHE_INDEX, 1.0)
        b.add(Category.CACHE_COPY, 0.5)
        b.add(Category.DRAM_INDEX, 9.0)
        assert b.cache_query_time == pytest.approx(1.5)

    def test_dram_query_time(self):
        b = TimeBreakdown()
        b.add(Category.DRAM_INDEX, 1.0)
        b.add(Category.DRAM_COPY, 2.0)
        assert b.dram_query_time == pytest.approx(3.0)

    def test_total_over_all_categories(self):
        b = TimeBreakdown()
        b.add(Category.OTHER, 1.0)
        b.add(Category.MLP, 1.0)
        assert b.total() == pytest.approx(2.0)

    def test_counters(self):
        b = TimeBreakdown()
        b.count("kernel_launches")
        b.count("kernel_launches", 3)
        assert b.counters["kernel_launches"] == 4

    def test_merged_with(self):
        a = TimeBreakdown()
        a.add(Category.MLP, 1.0)
        a.count("x")
        c = TimeBreakdown()
        c.add(Category.MLP, 2.0)
        c.count("x", 2)
        merged = a.merged_with(c)
        assert merged.seconds[Category.MLP] == pytest.approx(3.0)
        assert merged.counters["x"] == 3
        # Originals untouched.
        assert a.seconds[Category.MLP] == pytest.approx(1.0)

    def test_reset(self):
        b = TimeBreakdown()
        b.add(Category.OTHER, 5.0)
        b.count("e")
        b.reset()
        assert b.total() == 0.0
        assert not b.counters
