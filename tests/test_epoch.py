"""Tests for epoch-based space reclamation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mempool.epoch import EpochReclaimer


def locs(*values):
    return np.array(values, dtype=np.uint64)


class TestEpochReclaimer:
    def test_starts_at_epoch_zero(self):
        assert EpochReclaimer().epoch == 0

    def test_advance_increments(self):
        r = EpochReclaimer()
        assert r.advance() == 1
        assert r.advance() == 2

    def test_retire_without_readers_collects_after_advance(self):
        r = EpochReclaimer()
        r.retire(locs(1, 2, 3))
        assert len(r.collect()) == 0  # same epoch: not yet safe
        r.advance()
        np.testing.assert_array_equal(np.sort(r.collect()), locs(1, 2, 3))

    def test_pinned_reader_blocks_collection(self):
        r = EpochReclaimer()
        epoch = r.pin()
        r.retire(locs(7))
        r.advance()
        assert len(r.collect()) == 0  # reader still in the retire epoch
        r.unpin(epoch)
        assert r.collect().tolist() == [7]

    def test_reader_in_newer_epoch_does_not_block_older_garbage(self):
        r = EpochReclaimer()
        r.retire(locs(1))
        r.advance()
        later = r.pin()  # pins epoch 1, garbage is from epoch 0
        assert r.collect().tolist() == [1]
        r.unpin(later)

    def test_collect_is_idempotent(self):
        r = EpochReclaimer()
        r.retire(locs(5))
        r.advance()
        assert r.collect().tolist() == [5]
        assert len(r.collect()) == 0

    def test_multiple_epochs_drain_in_order(self):
        r = EpochReclaimer()
        r.retire(locs(1))
        r.advance()
        r.retire(locs(2))
        r.advance()
        got = sorted(r.collect().tolist())
        assert got == [1, 2]

    def test_pending_counts_uncollected(self):
        r = EpochReclaimer()
        r.retire(locs(1, 2))
        assert r.pending == 2
        r.advance()
        r.collect()
        assert r.pending == 0

    def test_unpin_without_pin_raises(self):
        with pytest.raises(SimulationError):
            EpochReclaimer().unpin(0)

    def test_multiple_readers_same_epoch(self):
        r = EpochReclaimer()
        e1, e2 = r.pin(), r.pin()
        r.retire(locs(9))
        r.advance()
        r.unpin(e1)
        assert len(r.collect()) == 0  # second reader still pinned
        r.unpin(e2)
        assert r.collect().tolist() == [9]

    def test_retire_empty_is_noop(self):
        r = EpochReclaimer()
        r.retire(np.zeros(0, np.uint64))
        r.advance()
        assert len(r.collect()) == 0

    def test_read_after_delete_safety_scenario(self):
        """The paper's §3.1 scenario: a reader holds embeddings an eviction
        pass deletes; the slots must not be reusable until the reader ends.
        """
        r = EpochReclaimer()
        reader_epoch = r.pin()       # copy kernel starts
        r.retire(locs(100, 101))     # eviction deletes logically
        r.advance()                  # next batch begins
        assert len(r.collect()) == 0  # copy kernel could still read
        r.unpin(reader_epoch)        # copy kernel finished
        assert sorted(r.collect().tolist()) == [100, 101]
