"""Tests for the flat cache data structure (paper §3.1)."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.errors import ConfigError
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs


def make_cache(ratio=0.2, dims=(16, 16), corpora=(500, 800), **overrides):
    specs = make_table_specs(list(corpora), list(dims))
    config = FlecheConfig(cache_ratio=ratio, **overrides)
    return FlatCache(specs, config), specs


class TestConstruction:
    def test_one_slab_class_per_dim(self):
        cache, _ = make_cache(dims=(16, 32), corpora=(100, 100))
        assert cache.pool.dims() == [16, 32]

    def test_needs_specs(self):
        with pytest.raises(ConfigError):
            FlatCache([], FlecheConfig())

    def test_capacity_respects_ratio(self):
        cache, specs = make_cache(ratio=0.1)
        total_ids = sum(s.corpus_size for s in specs)
        # Slightly under the raw ratio because index metadata is charged.
        assert cache.capacity_slots <= int(total_ids * 0.1)
        assert cache.capacity_slots >= int(total_ids * 0.1 * 0.55)

    def test_memory_usage_reports_pool_and_index(self):
        cache, _ = make_cache()
        usage = cache.memory_usage()
        assert usage["pool"] > 0
        assert usage["index"] > 0


class TestEncode:
    def test_tables_never_collide(self):
        cache, specs = make_cache()
        a = cache.encode(0, np.arange(100, dtype=np.uint64))
        b = cache.encode(1, np.arange(100, dtype=np.uint64))
        assert len(np.intersect1d(a, b)) == 0


class TestInsertLookupGather:
    def test_miss_then_hit(self):
        cache, specs = make_cache()
        cache.tick()
        keys = cache.encode(0, np.array([1, 2, 3], np.uint64))
        outcome = cache.index_lookup(keys)
        assert not outcome.cache_hit.any()

        vectors = reference_vectors(0, np.array([1, 2, 3], np.uint64), 16)
        inserted, _ = cache.admit_and_insert(keys, vectors, dim=16)
        assert inserted.all()

        outcome = cache.index_lookup(keys)
        assert outcome.cache_hit.all()
        got = cache.gather(outcome.locations)
        np.testing.assert_array_equal(got, vectors)

    def test_gather_returns_exact_vectors_after_churn(self, rng):
        cache, specs = make_cache(ratio=0.05, corpora=(2000, 2000))
        expected = {}
        for step in range(30):
            cache.tick()
            ids = rng.integers(0, 2000, size=64).astype(np.uint64)
            table = int(rng.integers(0, 2))
            keys = cache.encode(table, ids)
            outcome = cache.index_lookup(keys)
            if outcome.cache_hit.any():
                got = cache.gather(outcome.locations[outcome.cache_hit])
                expect = reference_vectors(
                    table, ids[outcome.cache_hit], 16
                )
                np.testing.assert_array_equal(got, expect)
            miss = outcome.miss
            vectors = reference_vectors(table, ids[miss], 16)
            cache.admit_and_insert(keys[miss], vectors, dim=16)

    def test_admission_zero_pointless_but_partial_works(self):
        cache, _ = make_cache(admission_probability=0.5, seed=42)
        cache.tick()
        keys = cache.encode(0, np.arange(400, dtype=np.uint64))
        vectors = np.zeros((400, 16), np.float32)
        inserted, _ = cache.admit_and_insert(keys, vectors, dim=16)
        assert 0 < inserted.sum() < 400


class TestEviction:
    def test_pool_never_overflows(self, rng):
        cache, _ = make_cache(ratio=0.02, corpora=(5000, 5000))
        for step in range(20):
            cache.tick()
            ids = rng.integers(0, 5000, size=256).astype(np.uint64)
            keys = cache.encode(0, ids)
            outcome = cache.index_lookup(keys)
            miss = outcome.miss
            unique_missing = np.unique(keys[miss])
            vectors = np.zeros((len(unique_missing), 16), np.float32)
            cache.admit_and_insert(unique_missing, vectors, dim=16)
            assert cache.pool.utilization <= 1.0

    def test_eviction_prefers_cold_keys(self):
        cache, _ = make_cache(ratio=0.02, corpora=(4000, 4000),
                              use_unified_index=False)
        dim_cap = cache.pool.capacity_of(16)
        cache.tick()
        hot = cache.encode(0, np.arange(10, dtype=np.uint64))
        cache.admit_and_insert(hot, np.ones((10, 16), np.float32), dim=16)
        # Keep hot keys warm while flooding the cache with cold keys.
        for step in range(10):
            cache.tick()
            cache.index_lookup(hot)
            cold_ids = np.arange(
                10 + step * dim_cap // 4, 10 + (step + 1) * dim_cap // 4,
                dtype=np.uint64,
            ) % 4000
            cold = cache.encode(0, cold_ids)
            cache.admit_and_insert(
                cold, np.zeros((len(cold), 16), np.float32), dim=16
            )
        outcome = cache.index_lookup(hot)
        assert outcome.cache_hit.mean() > 0.5


class TestUnifiedIndexIntegration:
    def test_publish_and_lookup_dram_pointer(self):
        cache, _ = make_cache(use_unified_index=True, unified_index_fraction=1.0)
        cache.set_unified_capacity(50)
        cache.tick()
        keys = cache.encode(0, np.array([9, 10], np.uint64))
        published = cache.publish_dram_pointers(keys, np.array([9, 10], np.uint64))
        assert published == 2
        outcome = cache.index_lookup(keys)
        assert outcome.dram_hit.all()
        assert not outcome.cache_hit.any()
        assert outcome.miss.all()  # still a data miss

    def test_budget_bounds_publication(self):
        cache, _ = make_cache(use_unified_index=True)
        cache.set_unified_capacity(3)
        cache.tick()
        keys = cache.encode(0, np.arange(10, dtype=np.uint64))
        assert cache.publish_dram_pointers(keys, np.arange(10, dtype=np.uint64)) == 3

    def test_clear_unified_index(self):
        cache, _ = make_cache(use_unified_index=True)
        cache.set_unified_capacity(10)
        cache.tick()
        keys = cache.encode(0, np.arange(5, dtype=np.uint64))
        cache.publish_dram_pointers(keys, np.arange(5, dtype=np.uint64))
        removed = cache.clear_unified_index()
        assert removed == 5
        assert cache.unified_entries == 0
        assert not cache.index_lookup(keys).dram_hit.any()

    def test_promotion_overwrites_pointer(self):
        cache, _ = make_cache(use_unified_index=True)
        cache.set_unified_capacity(10)
        cache.tick()
        keys = cache.encode(0, np.array([4], np.uint64))
        cache.publish_dram_pointers(keys, np.array([4], np.uint64))
        vectors = reference_vectors(0, np.array([4], np.uint64), 16)
        cache.admit_and_insert(
            keys, vectors, dim=16,
            dram_mask=np.array([True]),
        )
        outcome = cache.index_lookup(keys)
        assert outcome.cache_hit.all()
        assert cache.unified_entries == 0

    def test_grow_demotes_cold_entries(self):
        cache, _ = make_cache(use_unified_index=True, unified_index_fraction=1.0)
        cache.tick()
        keys = cache.encode(0, np.arange(20, dtype=np.uint64))
        cache.admit_and_insert(keys, np.zeros((20, 16), np.float32), dim=16)
        # Entries only become demotion candidates once they have gone cold
        # for a couple of batches.
        cache.tick()
        cache.tick()
        cache.set_unified_capacity(8)
        assert cache.unified_entries == 8
        outcome = cache.index_lookup(keys)
        assert int(outcome.dram_hit.sum()) == 8
        assert int(outcome.cache_hit.sum()) == 12


class TestClock:
    def test_tick_advances_and_collects(self):
        cache, _ = make_cache()
        e0 = cache.reclaimer.epoch
        cache.tick()
        assert cache.reclaimer.epoch > e0
