"""Tests for the host hash table and DRAM cost model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hashindex.host_hash import HostHashTable, host_query_cost


class TestHostHashTable:
    def test_roundtrip(self):
        table = HostHashTable(100)
        keys = np.array([5, 17, 99], dtype=np.uint64)
        rows = np.array([0, 1, 2], dtype=np.int64)
        table.insert_many(keys, rows)
        found, got = table.lookup_many(keys)
        assert found.all()
        np.testing.assert_array_equal(got, rows)

    def test_missing_not_found(self):
        table = HostHashTable(100)
        table.insert_many(np.array([1], np.uint64), np.array([0], np.int64))
        found, _ = table.lookup_many(np.array([2], np.uint64))
        assert not found[0]

    def test_collision_chains_resolve(self):
        # Force heavy probing with a small table.
        table = HostHashTable(64, load_factor=0.9)
        keys = np.arange(50, dtype=np.uint64)
        table.insert_many(keys, keys.astype(np.int64))
        found, rows = table.lookup_many(keys)
        assert found.all()
        np.testing.assert_array_equal(rows, keys.astype(np.int64))

    def test_update_existing_key(self):
        table = HostHashTable(100)
        table.insert_many(np.array([9], np.uint64), np.array([1], np.int64))
        table.insert_many(np.array([9], np.uint64), np.array([2], np.int64))
        assert len(table) == 1
        _, rows = table.lookup_many(np.array([9], np.uint64))
        assert rows[0] == 2

    def test_overflow_raises(self):
        table = HostHashTable(8, load_factor=0.5)
        too_many = np.arange(table.table_size + 1, dtype=np.uint64)
        with pytest.raises(SimulationError):
            table.insert_many(too_many, too_many.astype(np.int64))

    def test_empty_lookup(self):
        table = HostHashTable(10)
        found, rows = table.lookup_many(np.zeros(0, np.uint64))
        assert len(found) == 0

    def test_mismatched_shapes_rejected(self):
        table = HostHashTable(10)
        with pytest.raises(SimulationError):
            table.insert_many(np.zeros(2, np.uint64), np.zeros(1, np.int64))


class TestHostQueryCost:
    def test_index_time_scales_with_keys(self, hw):
        a = host_query_cost(hw, 100, 0)
        b = host_query_cost(hw, 1000, 0)
        assert b.index_time == pytest.approx(10 * a.index_time)

    def test_copy_time_scales_with_bytes(self, hw):
        a = host_query_cost(hw, 0, 1 << 20)
        b = host_query_cost(hw, 0, 1 << 22)
        assert b.copy_time == pytest.approx(4 * a.copy_time)

    def test_zero_work_costs_nothing(self, hw):
        cost = host_query_cost(hw, 0, 0)
        assert cost.total == 0.0

    def test_lookup_threads_divide_latency(self, hw):
        import dataclasses

        single = dataclasses.replace(hw, cpu=dataclasses.replace(hw.cpu, lookup_threads=1))
        multi = dataclasses.replace(hw, cpu=dataclasses.replace(hw.cpu, lookup_threads=4))
        assert host_query_cost(single, 1000, 0).index_time == pytest.approx(
            4 * host_query_cost(multi, 1000, 0).index_time
        )

    def test_custom_probes(self, hw):
        base = host_query_cost(hw, 100, 0)
        deep = host_query_cost(hw, 100, 0, probes_per_key=2 * hw.cpu.host_hash_probes)
        assert deep.index_time == pytest.approx(2 * base.index_time)
