"""Property-based tests for kernel fusion (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusion import (
    build_fusion_plan,
    identify_threads,
    warp_divergence_free,
)
from repro.gpusim.kernel import KernelSpec

thread_lists = st.lists(
    st.integers(min_value=0, max_value=4096), min_size=1, max_size=64
)


def _specs(threads):
    return [KernelSpec(f"k{i}", threads=t) for i, t in enumerate(threads)]


@settings(max_examples=80, deadline=None)
@given(threads=thread_lists)
def test_identification_is_a_partition(threads):
    """Every fused thread maps to exactly one original kernel, and each
    kernel receives exactly its (warp-rounded) thread count."""
    plan = build_fusion_plan(_specs(threads))
    if plan.total_threads == 0:
        return
    tids = np.arange(plan.total_threads)
    kernel_ids, locals_ = identify_threads(plan, tids)
    rounded = np.diff(plan.scan)
    counts = np.bincount(kernel_ids, minlength=len(threads))
    np.testing.assert_array_equal(counts, rounded)
    # Local ids within each kernel are 0..m-1 exactly.
    for k in range(len(threads)):
        mine = np.sort(locals_[kernel_ids == k])
        np.testing.assert_array_equal(mine, np.arange(rounded[k]))


@settings(max_examples=80, deadline=None)
@given(threads=thread_lists)
def test_fusion_is_always_divergence_free(threads):
    plan = build_fusion_plan(_specs(threads))
    assert warp_divergence_free(plan)


@settings(max_examples=50, deadline=None)
@given(threads=thread_lists)
def test_fused_work_conserved(threads):
    """Fusing must neither lose nor duplicate device work."""
    specs = [
        KernelSpec(f"k{i}", threads=t, stream_bytes=t * 8, random_transactions=t)
        for i, t in enumerate(threads)
    ]
    plan = build_fusion_plan(specs)
    assert plan.fused_spec.stream_bytes == sum(t * 8 for t in threads)
    assert plan.fused_spec.random_transactions == sum(threads)
