"""Tests for the HugeCTR-style per-table baseline."""

import numpy as np
import pytest

from repro.baselines.per_table_cache import (
    PerTableCacheLayer,
    PerTableConfig,
    _TableCache,
)
from repro.gpusim.executor import Executor
from repro.tables.embedding_table import reference_vectors
from repro.workloads.trace import TraceBatch


class TestTableCache:
    def test_miss_then_hit(self, rng):
        cache = _TableCache(capacity=100, dim=8, load_factor=1.0)
        ids = np.array([1, 2, 3], np.uint64)
        found, _, _ = cache.lookup(ids, stamp=1)
        assert not found.any()
        vectors = rng.standard_normal((3, 8)).astype(np.float32)
        cache.insert(ids, vectors, stamp=1)
        found, got, _ = cache.lookup(ids, stamp=2)
        assert found.all()
        np.testing.assert_array_equal(got, vectors)

    def test_capacity_is_bounded(self, rng):
        cache = _TableCache(capacity=32, dim=4, load_factor=1.0)
        ids = np.arange(1000, dtype=np.uint64)
        cache.insert(ids, np.zeros((1000, 4), np.float32), stamp=1)
        assert len(cache.index) <= cache.index.slots

    def test_lru_within_sets(self, rng):
        cache = _TableCache(capacity=16, dim=4, load_factor=1.0)
        hot = np.array([0], np.uint64)
        cache.insert(hot, np.ones((1, 4), np.float32), stamp=0)
        for step in range(1, 40):
            cache.lookup(hot, stamp=step)  # keep hot warm
            cold = np.array([step * 7 + 100], np.uint64)
            cache.insert(cold, np.zeros((1, 4), np.float32), stamp=step)
        found, _, _ = cache.lookup(hot, stamp=99)
        assert found[0]


class TestPerTableCacheLayer:
    def _batch(self, store, rng, n=32):
        ids = [
            rng.integers(0, spec.corpus_size, size=n).astype(np.uint64)
            for spec in store.specs
        ]
        return TraceBatch(ids_per_table=ids, batch_size=n)

    def test_outputs_match_ground_truth(self, small_store, hw, rng):
        layer = PerTableCacheLayer(small_store, PerTableConfig(0.1), hw)
        for _ in range(3):
            batch = self._batch(small_store, rng)
            result = layer.query(batch, Executor(hw))
            for t, ids in enumerate(batch.ids_per_table):
                expect = reference_vectors(t, ids, small_store.specs[t].dim)
                np.testing.assert_array_equal(result.outputs[t], expect)

    def test_hit_rate_rises_after_warmup(self, small_store, hw, rng):
        layer = PerTableCacheLayer(small_store, PerTableConfig(0.3), hw)
        first = layer.query(self._batch(small_store, rng), Executor(hw))
        for _ in range(8):
            last = layer.query(self._batch(small_store, rng), Executor(hw))
        assert last.hit_rate > first.hit_rate

    def test_one_query_kernel_per_table(self, small_store, hw, rng):
        layer = PerTableCacheLayer(small_store, PerTableConfig(0.1), hw)
        executor = Executor(hw)
        layer.query(self._batch(small_store, rng), executor)
        n = small_store.num_tables
        query_kernels = sum(
            count for name, count in executor.stats.counters.items()
            if name.startswith("kernel:ptc_query_")
        )
        assert query_kernels == n

    def test_maintenance_grows_with_table_count(self, hw, rng):
        """Issue 2 (Figure 4): maintenance ~ table count at fixed work."""
        from repro.tables.store import EmbeddingStore
        from repro.tables.table_spec import make_table_specs

        def run(num_tables, ids_total=2048):
            specs = make_table_specs([2000] * num_tables, [16] * num_tables)
            store = EmbeddingStore(specs, hw)
            layer = PerTableCacheLayer(store, PerTableConfig(0.2), hw)
            per_table = ids_total // num_tables
            batch = TraceBatch(
                [rng.integers(0, 2000, per_table).astype(np.uint64)
                 for _ in range(num_tables)],
                batch_size=per_table,
            )
            executor = Executor(hw)
            layer.query(batch, executor)
            return executor.stats.maintenance_time

        assert run(16) > 2 * run(2)

    def test_memory_usage_per_table(self, small_store, hw):
        layer = PerTableCacheLayer(small_store, PerTableConfig(0.1), hw)
        usage = layer.memory_usage()
        assert len(usage) == small_store.num_tables

    def test_wrong_table_count_rejected(self, small_store, hw):
        from repro.errors import ConfigError

        layer = PerTableCacheLayer(small_store, PerTableConfig(0.1), hw)
        bad = TraceBatch([np.zeros(1, np.uint64)], batch_size=1)
        with pytest.raises(ConfigError):
            layer.query(bad, Executor(hw))
