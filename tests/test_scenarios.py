"""Tests for the adversarial scenario catalogue.

Every scenario must emit a structurally valid :class:`ScenarioLoad`
(positional requests, nondecreasing arrivals, in-corpus ids, contiguous
phase boundaries), and each catalogue entry must actually produce the
stress it advertises: the flash crowd rotates the head at an elevated
rate, the cold-start flood keeps its tail ids provably unseen until the
``UpdateLog`` publish, the diurnal envelope oscillates around its mean,
and the multi-tenant mix attributes every request.
"""

import numpy as np
import pytest

from repro import default_platform
from repro.cluster.drill import run_scenario_drill
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import WorkloadError
from repro.scenarios import (
    SCENARIOS,
    ColdStartFloodScenario,
    DiurnalScenario,
    FlashCrowdScenario,
    MultiTenantScenario,
    Phase,
    ScenarioLoad,
    TenantSpec,
    build_scenario,
    validate_load,
)
from repro import FlecheConfig
from repro.serving.arrivals import Request
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec

#: Keep rates low enough that a full catalogue sweep stays cheap.
FAST_OVERRIDES = {
    "flash_crowd": {"base_rate": 20_000.0},
    "diurnal": {"mean_rate": 20_000.0},
    "multi_tenant": {
        "tenants": {
            "hot": TenantSpec(rate=12_000.0, alpha=-1.4, slo=2e-3),
            "flat": TenantSpec(rate=8_000.0, alpha=-0.8, slo=4e-3),
        },
    },
    "cold_start_flood": {"base_rate": 20_000.0, "flood_size": 128},
}


def _dataset(corpus=2_000, tables=3, dim=8):
    return uniform_tables_spec(
        num_tables=tables, corpus_size=corpus, alpha=-1.2, dim=dim,
    )


def _ids_of(request):
    return np.concatenate([np.asarray(c).ravel() for c in request.feature_ids])


class TestCatalogue:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builds_valid_load(self, name):
        dataset = _dataset()
        scenario = build_scenario(
            name, dataset, seed=5, **FAST_OVERRIDES[name],
        )
        load = scenario.build()
        validate_load(load, dataset)
        assert load.requests, "scenario produced no traffic"
        assert load.description

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_phases_are_contiguous(self, name):
        scenario = build_scenario(
            name, _dataset(), seed=5, **FAST_OVERRIDES[name],
        )
        phases = scenario.phases()
        assert phases[0].start == 0.0
        for prev, cur in zip(phases, phases[1:]):
            assert cur.start == prev.end
        load = scenario.build()
        assert all(
            0.0 <= r.arrival_time <= load.duration for r in load.requests
        )

    def test_build_scenario_rejects_unknown_name(self):
        with pytest.raises(WorkloadError):
            build_scenario("meteor_strike", _dataset())

    def test_build_scenario_forwards_overrides(self):
        scenario = build_scenario(
            "flash_crowd", _dataset(), seed=1, intensity=2.5,
        )
        assert scenario.intensity == 2.5


class TestFlashCrowd:
    def _scenario(self, **overrides):
        params = dict(
            base_rate=30_000.0, storm_start=4e-3, storm_duration=4e-3,
            cooldown=2e-3, storm_share=1.0,
        )
        params.update(overrides)
        return FlashCrowdScenario(_dataset(), seed=2, **params)

    def test_storm_rate_is_base_times_intensity(self):
        scenario = self._scenario(intensity=3.0)
        calm, storm, cooldown = scenario.phases()
        assert storm.rate == calm.rate * 3.0
        assert cooldown.rate == calm.rate
        assert "rotated" in storm.note

    def test_head_rotation_is_visible_in_storm_traffic(self):
        scenario = self._scenario()
        base_head = int(scenario.field_samplers()[0].hottest_ids(1)[0])
        rotated_head = int(
            scenario.field_samplers(
                seed_offset=scenario.rotation_offset
            )[0].hottest_ids(1)[0]
        )
        assert base_head != rotated_head
        load = scenario.build()
        in_storm = [
            r for r in load.requests
            if scenario.storm_start
            <= r.arrival_time
            < scenario.storm_start + scenario.storm_duration
        ]
        calm = [
            r for r in load.requests
            if r.arrival_time < scenario.storm_start
        ]
        storm_hits = sum(
            int(np.count_nonzero(_ids_of(r) == rotated_head))
            for r in in_storm
        )
        calm_hits = sum(
            int(np.count_nonzero(_ids_of(r) == rotated_head))
            for r in calm
        )
        assert storm_hits > calm_hits

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            self._scenario(intensity=0.5)
        with pytest.raises(WorkloadError):
            self._scenario(storm_share=0.0)
        with pytest.raises(WorkloadError):
            self._scenario(storm_share=1.5)


class TestDiurnal:
    def test_envelope_oscillates_around_mean(self):
        scenario = DiurnalScenario(
            _dataset(), seed=3, mean_rate=40_000.0, amplitude=0.8,
            period=8e-3, duration=16e-3,
        )
        phases = scenario.phases()
        assert len(phases) == 2 * scenario.segments_per_period
        rates = [p.rate for p in phases]
        assert max(rates) > 40_000.0 > min(rates)
        assert max(rates) <= 40_000.0 * 1.8 + 1e-6
        assert min(rates) >= 40_000.0 * 0.2 - 1e-6

    def test_parameter_validation(self):
        dataset = _dataset()
        with pytest.raises(WorkloadError):
            DiurnalScenario(dataset, amplitude=1.0)
        with pytest.raises(WorkloadError):
            DiurnalScenario(dataset, period=0.0)
        with pytest.raises(WorkloadError):
            DiurnalScenario(dataset, segments_per_period=2)


class TestMultiTenant:
    def test_tenant_spec_validation(self):
        with pytest.raises(WorkloadError):
            TenantSpec(rate=0.0, alpha=-1.2, slo=1e-3)
        with pytest.raises(WorkloadError):
            TenantSpec(rate=1.0, alpha=0.5, slo=1e-3)
        with pytest.raises(WorkloadError):
            TenantSpec(rate=1.0, alpha=-1.2, slo=0.0)

    def test_empty_tenants_fall_back_to_defaults(self):
        scenario = MultiTenantScenario(_dataset(), tenants={})
        assert set(scenario.tenants) == {"hot", "flat", "bursty"}

    def test_duration_must_be_positive(self):
        with pytest.raises(WorkloadError):
            MultiTenantScenario(_dataset(), duration=0.0)

    def test_attribution_covers_every_request(self):
        load = MultiTenantScenario(
            _dataset(), seed=4, duration=6e-3,
            tenants=FAST_OVERRIDES["multi_tenant"]["tenants"],
        ).build()
        assert len(load.tenant_of) == len(load.requests)
        assert set(load.tenant_of) == {"hot", "flat"}
        assert set(load.tenant_slos) == {"hot", "flat"}
        arrivals = [r.arrival_time for r in load.requests]
        assert arrivals == sorted(arrivals)


class TestColdStartFlood:
    def _scenario(self, **overrides):
        params = dict(
            base_rate=30_000.0, flood_start=4e-3, flood_duration=4e-3,
            cooldown=2e-3, flood_size=128, flood_share=1.0,
        )
        params.update(overrides)
        return ColdStartFloodScenario(_dataset(), seed=6, **params)

    def test_tail_ids_unseen_before_flood(self):
        scenario = self._scenario()
        load = scenario.build()
        lo = 2_000 - scenario.flood_size
        for request in load.requests:
            if request.arrival_time < scenario.flood_start:
                assert int(_ids_of(request).max()) < lo

    def test_flood_traffic_lands_on_tail_ids(self):
        scenario = self._scenario()
        load = scenario.build()
        lo = 2_000 - scenario.flood_size
        flood = [
            r for r in load.requests
            if scenario.flood_start
            <= r.arrival_time
            < scenario.flood_start + scenario.flood_duration
        ]
        assert flood
        for request in flood:
            assert int(_ids_of(request).min()) >= lo

    def test_update_log_publishes_tail_before_flood(self):
        scenario = self._scenario()
        load = scenario.build()
        log = load.update_log
        assert log is not None and len(log) == 1
        batch = log.read(0)
        assert batch.published_at < scenario.flood_start
        lo = 2_000 - scenario.flood_size
        assert len(batch.deltas) == 3
        for delta in batch.deltas:
            ids = np.asarray(delta.feature_ids, dtype=np.int64)
            assert ids.min() == lo and ids.max() == 2_000 - 1
            assert delta.vectors.shape == (scenario.flood_size, 8)

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            self._scenario(flood_size=0)
        with pytest.raises(WorkloadError):
            self._scenario(flood_size=2_000)
        with pytest.raises(WorkloadError):
            self._scenario(flood_share=0.0)


class TestValidateLoad:
    def _load(self, n=4, mutate=None):
        cube = np.zeros((n, 3, 1), dtype=np.uint64)
        requests = [
            Request(
                request_id=i, arrival_time=i * 1e-4,
                feature_ids=tuple(cube[i]), source=(cube, i),
            )
            for i in range(n)
        ]
        load = ScenarioLoad(
            requests=requests,
            phases=[Phase("p", 0.0, 1e-3, 1_000.0)],
        )
        if mutate:
            mutate(load, cube)
        return load

    def test_accepts_well_formed_load(self):
        validate_load(self._load(), _dataset())

    def test_rejects_non_positional_ids(self):
        def swap(load, cube):
            load.requests[1] = Request(
                request_id=7, arrival_time=1e-4,
                feature_ids=load.requests[1].feature_ids,
                source=(cube, 1),
            )
        with pytest.raises(WorkloadError, match="positional"):
            validate_load(self._load(mutate=swap), _dataset())

    def test_rejects_backwards_arrivals(self):
        def rewind(load, cube):
            load.requests[2] = Request(
                request_id=2, arrival_time=0.0,
                feature_ids=load.requests[2].feature_ids,
                source=(cube, 2),
            )
        with pytest.raises(WorkloadError, match="backwards"):
            validate_load(self._load(mutate=rewind), _dataset())

    def test_rejects_out_of_corpus_ids(self):
        def poison(load, cube):
            cube[0, 1, 0] = 1_000_000
        with pytest.raises(WorkloadError, match="outside corpus"):
            validate_load(self._load(mutate=poison), _dataset())

    def test_rejects_short_tenant_attribution(self):
        load = self._load()
        load.tenant_of = ["a"]
        with pytest.raises(WorkloadError, match="cover"):
            validate_load(load, _dataset())

    def test_rejects_nonpositive_tenant_slo(self):
        load = self._load()
        load.tenant_of = ["a"] * len(load.requests)
        load.tenant_slos = {"a": 0.0}
        with pytest.raises(WorkloadError, match="positive"):
            validate_load(load, _dataset())


class TestServing:
    def test_scenario_load_serves_end_to_end(self):
        hw = default_platform()
        dataset = _dataset(corpus=1_000, tables=2)
        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.05), hw,
        )
        load = FlashCrowdScenario(
            dataset, seed=2, base_rate=25_000.0,
            storm_start=3e-3, storm_duration=3e-3, cooldown=2e-3,
        ).build()
        validate_load(load, dataset)
        server = PipelinedInferenceServer(
            dataset, layer, hw, depth=2,
            policy=BatchingPolicy(max_batch_size=128, max_delay=2e-4),
        )
        report = server.serve(load.requests)
        assert report.served == len(load.requests)
        assert report.hits + report.misses > 0


class TestScenarioDrill:
    def _run(self, crash):
        return run_scenario_drill(
            _dataset(corpus=1_000, tables=2),
            default_platform(),
            scenario="flash_crowd",
            seed=1,
            crash=crash,
            sla_budget=2e-3,
            base_rate=15_000.0,
            storm_start=3e-3,
            storm_duration=3e-3,
            cooldown=2e-3,
        )

    def test_no_crash_baseline(self):
        result = self._run(crash=False)
        assert result.victim is None
        assert result.report.served > 0
        assert 0.0 <= result.sla_attainment <= 1.0

    def test_crash_targets_hot_head_owner(self):
        result = self._run(crash=True)
        assert result.victim is not None
        assert 0 <= result.victim < 3
        assert 0.0 <= result.stress_sla_attainment <= 1.0
        assert result.report.served > 0
