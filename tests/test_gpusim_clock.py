"""Tests for the simulator timelines."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.clock import Timeline


class TestTimeline:
    def test_starts_at_zero(self):
        assert Timeline("t").now == 0.0

    def test_custom_start(self):
        assert Timeline("t", start=2.5).now == 2.5

    def test_advance_accumulates(self):
        t = Timeline("t")
        t.advance(1.0)
        t.advance(0.5)
        assert t.now == pytest.approx(1.5)

    def test_advance_returns_new_time(self):
        t = Timeline("t")
        assert t.advance(3.0) == pytest.approx(3.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            Timeline("t").advance(-1.0)

    def test_advance_zero_is_noop(self):
        t = Timeline("t")
        t.advance(0.0)
        assert t.now == 0.0

    def test_advance_to_future(self):
        t = Timeline("t")
        t.advance_to(4.0)
        assert t.now == 4.0

    def test_advance_to_past_is_noop(self):
        t = Timeline("t", start=5.0)
        t.advance_to(1.0)
        assert t.now == 5.0

    def test_reset(self):
        t = Timeline("t")
        t.advance(9.0)
        t.reset()
        assert t.now == 0.0
