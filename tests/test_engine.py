"""Tests for the end-to-end inference engine."""

import numpy as np
import pytest

from repro.baselines.no_cache import NoCacheLayer
from repro.core.config import FlecheConfig
from repro.core.engine import InferenceEngine
from repro.core.workflow import FlecheEmbeddingLayer
from repro.gpusim.executor import Executor
from repro.model.dcn import DeepCrossNetwork


@pytest.fixture()
def engine(small_store, small_dataset, hw):
    layer = FlecheEmbeddingLayer(small_store, FlecheConfig(cache_ratio=0.1), hw)
    model = DeepCrossNetwork(
        num_tables=small_dataset.num_tables,
        embedding_dim=small_dataset.dim,
        num_cross_layers=2,
        hidden_units=[32],
    )
    return InferenceEngine(layer, hw, model=model)


class TestRun:
    def test_produces_probabilities(self, engine, small_trace, hw):
        result = engine.run(list(small_trace)[:4], Executor(hw), warmup=1)
        assert result.last_probabilities is not None
        assert ((result.last_probabilities >= 0)
                & (result.last_probabilities <= 1)).all()

    def test_counts_samples(self, engine, small_trace, hw):
        batches = list(small_trace)[:5]
        result = engine.run(batches, Executor(hw), warmup=2)
        assert result.samples == sum(b.batch_size for b in batches[2:])

    def test_throughput_positive(self, engine, small_trace, hw):
        result = engine.run(list(small_trace)[:4], Executor(hw), warmup=1)
        assert result.throughput > 0

    def test_latency_percentiles_ordered(self, engine, small_trace, hw):
        result = engine.run(list(small_trace), Executor(hw), warmup=2)
        assert result.median_latency <= result.p99_latency
        assert result.latency_percentile(0) <= result.median_latency

    def test_embedding_latency_below_total(self, engine, small_trace, hw):
        result = engine.run(list(small_trace)[:4], Executor(hw), warmup=1)
        for embed, total in zip(result.embedding_latencies, result.latencies):
            assert embed <= total

    def test_warmup_excluded_from_timing(self, engine, small_trace, hw):
        batches = list(small_trace)[:6]
        result = engine.run(batches, Executor(hw), warmup=3)
        assert len(result.latencies) == 3

    def test_breakdown_attached(self, engine, small_trace, hw):
        result = engine.run(list(small_trace)[:3], Executor(hw), warmup=1)
        assert result.breakdown is not None
        assert result.breakdown.total() > 0

    def test_embedding_only_mode(self, small_store, hw, small_trace):
        layer = FlecheEmbeddingLayer(small_store, FlecheConfig(cache_ratio=0.1), hw)
        engine = InferenceEngine(layer, hw, model=None, include_dense=False)
        result = engine.run(list(small_trace)[:3], Executor(hw), warmup=1)
        assert result.last_probabilities is None
        assert result.breakdown.seconds.get(
            __import__("repro").Category.MLP, 0.0
        ) == 0.0

    def test_mlp_time_independent_of_cache_scheme(
        self, small_store, small_dataset, hw, small_trace
    ):
        """Exp #12's premise: Fleche only changes the embedding part."""
        from repro.gpusim.stats import Category

        model = DeepCrossNetwork(
            num_tables=small_dataset.num_tables,
            embedding_dim=small_dataset.dim,
            num_cross_layers=2,
            hidden_units=[32],
        )
        batches = list(small_trace)[:4]

        def mlp_time(layer):
            engine = InferenceEngine(layer, hw, model=model)
            result = engine.run(batches, Executor(hw), warmup=1)
            return result.breakdown.seconds[Category.MLP]

        fleche = FlecheEmbeddingLayer(small_store, FlecheConfig(cache_ratio=0.1), hw)
        nocache = NoCacheLayer(small_store, hw)
        assert mlp_time(fleche) == pytest.approx(mlp_time(nocache), rel=1e-9)

    def test_hit_rate_aggregated(self, engine, small_trace, hw):
        result = engine.run(list(small_trace), Executor(hw), warmup=2)
        assert 0.0 <= result.hit_rate <= 1.0
