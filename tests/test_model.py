"""Tests for the dense model parts: pooling, MLP, cross layers, DCN."""

import numpy as np
import pytest

from repro.errors import ConfigError, WorkloadError
from repro.model.cross import CrossNetwork
from repro.model.dcn import DeepCrossNetwork
from repro.model.mlp import MLP
from repro.model.pooling import max_pool, mean_pool, sum_pool


class TestPooling:
    def test_sum_pool_identity_for_one_hot(self, rng):
        x = rng.standard_normal((6, 4)).astype(np.float32)
        np.testing.assert_array_equal(sum_pool(x, 1), x)

    def test_sum_pool_groups(self):
        x = np.array([[1.0], [2.0], [3.0], [4.0]], np.float32)
        np.testing.assert_array_equal(sum_pool(x, 2), [[3.0], [7.0]])

    def test_mean_pool(self):
        x = np.array([[2.0], [4.0]], np.float32)
        np.testing.assert_array_equal(mean_pool(x, 2), [[3.0]])

    def test_max_pool(self):
        x = np.array([[2.0], [4.0]], np.float32)
        np.testing.assert_array_equal(max_pool(x, 2), [[4.0]])

    def test_bad_segmentation(self):
        x = np.zeros((5, 2), np.float32)
        with pytest.raises(WorkloadError):
            sum_pool(x, 2)

    def test_bad_rank(self):
        with pytest.raises(WorkloadError):
            sum_pool(np.zeros(3, np.float32), 1)


class TestMlp:
    def test_output_shape_and_range(self, rng):
        mlp = MLP(input_dim=8, hidden_units=[16, 16])
        x = rng.standard_normal((5, 8)).astype(np.float32)
        p = mlp.forward(x)
        assert p.shape == (5,)
        assert ((p >= 0) & (p <= 1)).all()

    def test_layer_count(self):
        assert MLP(8, [16, 16]).num_layers == 3  # 2 hidden + output

    def test_flops_scale_with_batch(self):
        mlp = MLP(8, [16])
        assert mlp.flops(10) == pytest.approx(10 * mlp.flops(1))

    def test_kernels_one_per_layer(self):
        mlp = MLP(8, [16, 16])
        assert len(mlp.kernels(4)) == 3

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigError):
            MLP(0, [8])
        with pytest.raises(ConfigError):
            MLP(8, [0])

    def test_deterministic_for_seed(self, rng):
        x = rng.standard_normal((3, 8)).astype(np.float32)
        a = MLP(8, [4], seed=3).forward(x)
        b = MLP(8, [4], seed=3).forward(x)
        np.testing.assert_array_equal(a, b)


class TestCrossNetwork:
    def test_zero_layers_is_identity(self, rng):
        net = CrossNetwork(8, 0)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        np.testing.assert_array_equal(net.forward(x), x)

    def test_cross_formula_one_layer(self, rng):
        net = CrossNetwork(4, 1, seed=7)
        x0 = rng.standard_normal((3, 4)).astype(np.float32)
        expected = x0 * (x0 @ net.weights[0])[:, None] + net.biases[0] + x0
        np.testing.assert_allclose(net.forward(x0), expected, rtol=1e-5)

    def test_kernels_one_per_layer(self):
        assert len(CrossNetwork(8, 6).kernels(4)) == 6

    def test_flops_linear_in_layers(self):
        assert CrossNetwork(8, 4).flops(10) == pytest.approx(
            2 * CrossNetwork(8, 2).flops(10)
        )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            CrossNetwork(0, 2)
        with pytest.raises(ConfigError):
            CrossNetwork(8, -1)


class TestDeepCrossNetwork:
    def test_paper_configuration(self):
        # §6.1: 6 multi-cross layers, (1024, 1024) MLP.
        dcn = DeepCrossNetwork(num_tables=26, embedding_dim=32)
        assert dcn.cross.num_layers == 6
        assert dcn.mlp.hidden_units == [1024, 1024]

    def test_concat_shape(self, rng):
        dcn = DeepCrossNetwork(num_tables=3, embedding_dim=4, dense_dim=2)
        pooled = [rng.standard_normal((5, 4)).astype(np.float32) for _ in range(3)]
        x = dcn.concat_inputs(pooled)
        assert x.shape == (5, 14)

    def test_forward_produces_probabilities(self, rng):
        dcn = DeepCrossNetwork(num_tables=2, embedding_dim=4, dense_dim=0,
                               num_cross_layers=2, hidden_units=[8])
        pooled = [rng.standard_normal((4, 4)).astype(np.float32) for _ in range(2)]
        out = dcn.forward(dcn.concat_inputs(pooled))
        assert out.probabilities.shape == (4,)
        assert out.flops > 0

    def test_wrong_table_count_rejected(self, rng):
        dcn = DeepCrossNetwork(num_tables=3, embedding_dim=4)
        with pytest.raises(ConfigError):
            dcn.concat_inputs([np.zeros((2, 4), np.float32)])

    def test_wrong_input_dim_rejected(self):
        dcn = DeepCrossNetwork(num_tables=2, embedding_dim=4, dense_dim=0)
        with pytest.raises(ConfigError):
            dcn.forward(np.zeros((2, 5), np.float32))

    def test_kernels_cover_cross_and_mlp(self):
        dcn = DeepCrossNetwork(num_tables=2, embedding_dim=4,
                               num_cross_layers=3, hidden_units=[8, 8])
        assert len(dcn.kernels(16)) == 3 + 3  # 3 cross + 2 hidden + output

    def test_deeper_mlp_more_flops(self):
        shallow = DeepCrossNetwork(2, 4, hidden_units=[64] * 2)
        deep = DeepCrossNetwork(2, 4, hidden_units=[64] * 5)
        assert deep.flops(32) > shallow.flops(32)
