"""Tests for the no-cache reference layer."""

import numpy as np
import pytest

from repro.baselines.no_cache import NoCacheLayer
from repro.gpusim.executor import Executor
from repro.tables.embedding_table import reference_vectors
from repro.workloads.trace import TraceBatch


class TestNoCacheLayer:
    def _batch(self, store, rng, n=16):
        return TraceBatch(
            [rng.integers(0, s.corpus_size, n).astype(np.uint64)
             for s in store.specs],
            batch_size=n,
        )

    def test_outputs_correct(self, small_store, hw, rng):
        layer = NoCacheLayer(small_store, hw)
        batch = self._batch(small_store, rng)
        result = layer.query(batch, Executor(hw))
        for t, ids in enumerate(batch.ids_per_table):
            expect = reference_vectors(t, ids, small_store.specs[t].dim)
            np.testing.assert_array_equal(result.outputs[t], expect)

    def test_never_hits(self, small_store, hw, rng):
        layer = NoCacheLayer(small_store, hw)
        batch = self._batch(small_store, rng)
        layer.query(batch, Executor(hw))
        result = layer.query(batch, Executor(hw))
        assert result.hits == 0

    def test_all_time_in_dram(self, small_store, hw, rng):
        from repro.gpusim.stats import Category

        layer = NoCacheLayer(small_store, hw)
        executor = Executor(hw)
        layer.query(self._batch(small_store, rng), executor)
        assert executor.stats.dram_query_time > 0
        assert executor.stats.cache_query_time == 0

    def test_memory_usage_empty(self, small_store, hw):
        assert NoCacheLayer(small_store, hw).memory_usage() == {}

    def test_caching_is_clearly_faster(self, hw):
        """§2.1: GPU caching beats no caching by a wide margin once warm.

        The paper reports >5x on its testbed; our simulated DRAM layer is
        comparatively fast (multi-threaded host lookups), so the margin
        here is smaller but must remain decisively above 1.5x.
        """
        from repro.core.config import FlecheConfig
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.tables.store import EmbeddingStore
        from repro.workloads.synthetic import synthetic_dataset, uniform_tables_spec

        spec = uniform_tables_spec(
            num_tables=6, corpus_size=20_000, alpha=-1.4, dim=16,
            num_samples=50_000,
        )
        store = EmbeddingStore(spec.table_specs(), hw)
        batches = list(synthetic_dataset(spec, num_batches=20, batch_size=2048))
        nc = NoCacheLayer(store, hw)
        fl = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw)
        ex_nc, ex_fl = Executor(hw), Executor(hw)
        for b in batches[:14]:
            nc.query(b, ex_nc)
            fl.query(b, ex_fl)
        ex_nc.reset(); ex_fl.reset()
        for b in batches[14:]:
            nc.query(b, ex_nc)
            fl.query(b, ex_fl)
        assert ex_nc.drain() > 1.5 * ex_fl.drain()
