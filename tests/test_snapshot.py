"""Tests for cache snapshots and warm restarts."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.core.snapshot import CacheSnapshot, restore, snapshot
from repro.errors import WorkloadError
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs


def build_cache(ratio=0.5, dims=(16, 16), corpora=(400, 400), **overrides):
    specs = make_table_specs(list(corpora), list(dims))
    return FlatCache(specs, FlecheConfig(cache_ratio=ratio, **overrides))


def fill(cache, table, ids, dim=16):
    features = np.asarray(ids, dtype=np.uint64)
    keys = cache.encode(table, features)
    vectors = reference_vectors(table, features, dim)
    cache.admit_and_insert(keys, vectors, dim)
    return keys, vectors


class TestSnapshot:
    def test_captures_all_cached_entries(self):
        cache = build_cache()
        cache.tick()
        fill(cache, 0, range(20))
        fill(cache, 1, range(10))
        snap = snapshot(cache)
        assert snap.num_entries == 30

    def test_excludes_dram_pointers(self):
        cache = build_cache(use_unified_index=True, unified_index_fraction=1.0)
        cache.set_unified_capacity(10)
        cache.tick()
        fill(cache, 0, range(5))
        keys = cache.encode(1, np.arange(5, dtype=np.uint64))
        cache.publish_dram_pointers(keys, np.arange(5, dtype=np.uint64))
        snap = snapshot(cache)
        assert snap.num_entries == 5  # pointers not persisted

    def test_serialisation_roundtrip(self):
        cache = build_cache()
        cache.tick()
        fill(cache, 0, range(8))
        snap = snapshot(cache)
        loaded = CacheSnapshot.from_bytes(snap.to_bytes())
        assert loaded.num_entries == snap.num_entries
        assert loaded.key_bits == snap.key_bits

    def test_stream_position_defaults(self):
        cache = build_cache()
        cache.tick()
        fill(cache, 0, [1])
        snap = snapshot(cache)
        assert snap.model_version == 0
        assert snap.log_offset == -1

    def test_stream_position_roundtrip(self):
        from repro.core.snapshot import SNAPSHOT_VERSION

        assert SNAPSHOT_VERSION == 2
        cache = build_cache()
        cache.tick()
        fill(cache, 0, [1])
        snap = snapshot(cache, model_version=7, log_offset=42)
        loaded = CacheSnapshot.from_bytes(snap.to_bytes())
        assert loaded.model_version == 7
        assert loaded.log_offset == 42

    def test_version_checked(self):
        cache = build_cache()
        cache.tick()
        fill(cache, 0, [1])
        payload = snapshot(cache).to_bytes()
        import pickle

        data = pickle.loads(payload)
        data["version"] = 999
        with pytest.raises(WorkloadError):
            CacheSnapshot.from_bytes(pickle.dumps(data))


class TestRestore:
    def test_warm_restart_preserves_hits(self):
        cache = build_cache()
        cache.tick()
        keys, vectors = fill(cache, 0, range(30))
        snap = snapshot(cache)

        fresh = build_cache()
        restored = restore(fresh, snap)
        assert restored == 30
        outcome = fresh.index_lookup(keys)
        assert outcome.cache_hit.all()
        got = fresh.gather(outcome.locations)
        np.testing.assert_array_equal(got, vectors)

    def test_smaller_cache_keeps_hottest(self):
        cache = build_cache()
        cache.tick()
        fill(cache, 0, range(40))
        # Touch a subset so it is hotter than the rest.
        cache.tick()
        hot_ids = np.arange(5, dtype=np.uint64)
        cache.index_lookup(cache.encode(0, hot_ids))
        snap = snapshot(cache)

        tiny = build_cache(ratio=0.05)  # far fewer slots than 40
        restore(tiny, snap)
        outcome = tiny.index_lookup(tiny.encode(0, hot_ids))
        assert outcome.cache_hit.all()

    def test_key_width_mismatch_rejected(self):
        cache = build_cache()
        cache.tick()
        fill(cache, 0, [1])
        snap = snapshot(cache)
        other = build_cache(key_bits=32)
        with pytest.raises(WorkloadError):
            restore(other, snap)

    def test_missing_dimension_rejected(self):
        cache = build_cache(dims=(16, 16))
        cache.tick()
        fill(cache, 0, [1])
        snap = snapshot(cache)
        other = build_cache(dims=(32, 32))
        with pytest.raises(WorkloadError):
            restore(other, snap)

    def test_restore_into_nonempty_cache_merges(self):
        a = build_cache()
        a.tick()
        keys_a, _ = fill(a, 0, range(10))
        snap = snapshot(a)

        b = build_cache()
        b.tick()
        keys_b, _ = fill(b, 1, range(10))
        restore(b, snap)
        assert b.index_lookup(keys_a).cache_hit.all()
        assert b.index_lookup(keys_b).cache_hit.all()

    def test_end_to_end_layer_restart(self, hw, rng):
        """A restarted embedding layer starts warm from a snapshot."""
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.gpusim.executor import Executor
        from repro.tables.store import EmbeddingStore
        from repro.workloads.trace import TraceBatch

        specs = make_table_specs([2000, 2000], [16, 16])
        store = EmbeddingStore(specs, hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw)
        batch = TraceBatch(
            [rng.integers(0, 2000, 128).astype(np.uint64) for _ in range(2)],
            batch_size=128,
        )
        layer.query(batch, Executor(hw))
        snap = snapshot(layer.cache)

        restarted = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.3), hw
        )
        restore(restarted.cache, snap)
        result = restarted.query(batch, Executor(hw))
        assert result.hit_rate > 0.95
