"""Tests for GNN feature workloads and the NLP counter-example (§5)."""

import numpy as np
import pytest

from repro import (
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
)
from repro.errors import WorkloadError
from repro.workloads.gnn import (
    gnn_feature_dataset,
    gnn_neighbourhood_trace,
    nlp_word_table_fits_hbm,
)


class TestGnnDataset:
    def test_structure(self):
        spec = gnn_feature_dataset(num_nodes=10_000)
        assert spec.fields[0].corpus_size == 10_000
        assert spec.num_tables == 1 + 6 + 4

    def test_attribute_tables_shrink(self):
        spec = gnn_feature_dataset(num_nodes=100_000)
        sizes = [f.corpus_size for f in spec.fields]
        assert sizes[1] < sizes[0]
        assert sizes[-1] < sizes[1]

    def test_rejects_empty_graph(self):
        with pytest.raises(WorkloadError):
            gnn_feature_dataset(num_nodes=0)


class TestNeighbourhoodTrace:
    def test_batch_shape(self):
        spec = gnn_feature_dataset(num_nodes=5_000)
        trace = gnn_neighbourhood_trace(spec, num_batches=4,
                                        seeds_per_batch=32, fanout=4)
        assert len(trace) == 4
        batch = trace[0]
        assert len(batch.ids_per_table[0]) == 32 * 5  # seeds + neighbours
        assert batch.num_tables == spec.num_tables

    def test_hub_nodes_recur_across_batches(self):
        spec = gnn_feature_dataset(num_nodes=50_000, degree_alpha=-1.8)
        trace = gnn_neighbourhood_trace(spec, num_batches=8,
                                        seeds_per_batch=128, fanout=8)
        first = set(np.unique(trace[0].ids_per_table[0]).tolist())
        later = set(np.unique(trace[7].ids_per_table[0]).tolist())
        overlap = len(first & later) / len(first)
        assert overlap > 0.3  # hubs keep coming back

    def test_parameter_validation(self):
        spec = gnn_feature_dataset(num_nodes=100)
        with pytest.raises(WorkloadError):
            gnn_neighbourhood_trace(spec, 0, 8)

    def test_fleche_benefits_gnn_workload(self, hw):
        """The §5 claim: GNN feature lookups cache well under Fleche."""
        spec = gnn_feature_dataset(num_nodes=50_000, degree_alpha=-1.6)
        trace = gnn_neighbourhood_trace(spec, num_batches=12,
                                        seeds_per_batch=128, fanout=8)
        store = EmbeddingStore(spec.table_specs(), hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
        executor = Executor(hw)
        for batch in list(trace)[:6]:
            layer.query(batch, executor)
        hits = misses = 0
        for batch in list(trace)[6:]:
            result = layer.query(batch, executor)
            hits += result.hits
            misses += result.misses
        assert hits / (hits + misses) > 0.6


class TestNlpCounterExample:
    def test_bert_vocab_fits_hbm(self, hw):
        # ~94 MB of word embeddings: no cache hierarchy needed (§5).
        assert nlp_word_table_fits_hbm(hw)

    def test_recommendation_scale_does_not_fit(self, hw):
        assert not nlp_word_table_fits_hbm(
            hw, vocabulary=1_000_000_000, dim=64
        )
