"""Tests for the workload-analysis package (MRC, hotspots)."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.analysis.hotspot import global_vs_static_split, hotspot_profile
from repro.analysis.reuse import miss_ratio_curve, reuse_distances
from repro.errors import WorkloadError
from repro.workloads.trace import Trace, TraceBatch


def trace_of(*per_table_streams):
    """Single-batch trace from explicit per-table ID lists."""
    return Trace([
        TraceBatch(
            [np.array(ids, np.uint64) for ids in per_table_streams],
            batch_size=max(len(per_table_streams[0]), 1),
        )
    ])


class TestReuseDistances:
    def test_first_touches_are_minus_one(self):
        d = reuse_distances(trace_of([1, 2, 3]))
        assert d.tolist() == [-1, -1, -1]

    def test_immediate_reuse_distance_zero(self):
        d = reuse_distances(trace_of([7, 7]))
        assert d.tolist() == [-1, 0]

    def test_classic_sequence(self):
        # a b c a: reuse of a skipped {b, c} -> distance 2.
        d = reuse_distances(trace_of([1, 2, 3, 1]))
        assert d[3] == 2

    def test_repeated_interleavings(self):
        # a b a b: each reuse skips exactly one distinct key.
        d = reuse_distances(trace_of([1, 2, 1, 2]))
        assert d.tolist() == [-1, -1, 1, 1]

    def test_duplicates_between_reuses_count_once(self):
        # a b b b a: distinct keys between the two a's = {b} -> 1.
        d = reuse_distances(trace_of([1, 2, 2, 2, 1]))
        assert d[4] == 1

    def test_tables_are_separate_keyspaces(self):
        d = reuse_distances(trace_of([1, 1], [1, 1]))
        # Stream interleaves tables: t0:[1,1], t1:[1,1] flattened per batch.
        assert (d >= -1).all()
        assert (d == 0).sum() == 2  # one immediate reuse per table

    def test_matches_lru_simulation(self, rng):
        """Mattson ground truth: distance < C iff LRU(C) hits."""
        ids = rng.integers(0, 30, size=400).tolist()
        t = trace_of(ids)
        distances = reuse_distances(t)
        for capacity in (1, 4, 16):
            lru = OrderedDict()
            hits = 0
            for k in ids:
                if k in lru:
                    hits += 1
                    lru.move_to_end(k)
                else:
                    lru[k] = None
                    if len(lru) > capacity:
                        lru.popitem(last=False)
            predicted = int(((distances >= 0) & (distances < capacity)).sum())
            assert predicted == hits


class TestMissRatioCurve:
    def test_monotone_nondecreasing(self, rng):
        ids = rng.integers(0, 50, size=500).tolist()
        mrc = miss_ratio_curve(trace_of(ids))
        assert (np.diff(mrc.hit_rates) >= -1e-12).all()

    def test_full_capacity_hits_everything_but_first_touches(self, rng):
        ids = rng.integers(0, 20, size=200).tolist()
        mrc = miss_ratio_curve(trace_of(ids))
        expected = (200 - mrc.distinct_keys) / 200
        assert mrc.hit_rates[-1] == pytest.approx(expected)

    def test_hit_rate_at_interpolates(self, rng):
        ids = rng.integers(0, 50, size=500).tolist()
        mrc = miss_ratio_curve(trace_of(ids))
        assert mrc.hit_rate_at(0) == 0.0
        assert mrc.hit_rate_at(10**9) == pytest.approx(float(mrc.hit_rates[-1]))

    def test_capacity_for_target(self, rng):
        ids = (list(range(10)) * 30)
        mrc = miss_ratio_curve(trace_of(ids))
        cap = mrc.capacity_for(0.9)
        assert cap is not None and cap <= 10
        assert mrc.capacity_for(1.0) is None  # first touches never hit

    def test_capacity_for_validation(self, rng):
        mrc = miss_ratio_curve(trace_of([1, 1]))
        with pytest.raises(WorkloadError):
            mrc.capacity_for(1.5)

    def test_predicts_flat_cache_hit_rate(self, hw, rng):
        """The MRC predicts the measured flat-cache hit rate well."""
        from repro.core.config import FlecheConfig
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.gpusim.executor import Executor
        from repro.tables.store import EmbeddingStore
        from repro.workloads.synthetic import (
            synthetic_dataset,
            uniform_tables_spec,
        )

        spec = uniform_tables_spec(num_tables=4, corpus_size=3_000,
                                   alpha=-1.4, dim=16)
        trace = synthetic_dataset(spec, num_batches=30, batch_size=256)
        store = EmbeddingStore(spec.table_specs(), hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.1, use_unified_index=False), hw
        )
        executor = Executor(hw)
        hits = misses = 0
        for i, batch in enumerate(trace):
            result = layer.query(batch, executor)
            if i >= 15:
                hits += result.hits
                misses += result.misses
        measured = hits / (hits + misses)
        predicted = miss_ratio_curve(trace).hit_rate_at(
            layer.cache.capacity_slots
        )
        assert measured == pytest.approx(predicted, abs=0.08)


class TestHotspots:
    def test_uniform_table_needs_most_keys(self):
        skewed = [1] * 80 + [2] * 10 + [3] * 10
        uniform = list(range(10)) * 10
        profile = hotspot_profile(trace_of(skewed, uniform), share=0.8)
        assert profile.hotspot_sizes[0] < profile.hotspot_sizes[1]
        assert profile.imbalance > 1.0

    def test_shares_sum_to_one(self, rng):
        t = trace_of(rng.integers(0, 50, 100).tolist(),
                     rng.integers(0, 5, 100).tolist())
        profile = hotspot_profile(t)
        assert sum(profile.traffic_shares.values()) == pytest.approx(1.0)

    def test_share_validation(self):
        with pytest.raises(WorkloadError):
            hotspot_profile(trace_of([1]), share=0.0)

    def test_global_beats_static_on_heterogeneous_tables(self, rng):
        """Issue 1 in miniature: heterogeneous hotspots make the static
        proportional split strictly worse than a global hot set."""
        hot_small = ([1] * 200 + [2] * 100).copy()
        cold_big = rng.integers(0, 500, size=300).tolist()
        result = global_vs_static_split(trace_of(hot_small, cold_big),
                                        total_budget=20)
        assert result["global"] > result["static"]
        assert result["gap"] > 0.0

    def test_homogeneous_tables_show_little_gap(self, rng):
        a = rng.integers(0, 100, 300).tolist()
        b = rng.integers(0, 100, 300).tolist()
        result = global_vs_static_split(trace_of(a, b), total_budget=40)
        assert result["gap"] < 0.10

    def test_budget_validation(self):
        with pytest.raises(WorkloadError):
            global_vs_static_split(trace_of([1]), total_budget=0)
