"""Golden byte-identity fixtures guarding the hot-path vectorization.

The PR-7 rewrite (vectorized miss table, grouped workflow phases,
vectorized router planning/merge, batched latency bookkeeping) must
change *nothing but speed*: metrics JSON, latency arrays, probabilities,
Chrome traces, and cluster dispositions are required to stay byte-for-
byte identical to the pre-rewrite implementation.  These tests pin
sha256 digests of those artifacts, captured from the pre-rewrite code,
over four deterministic scenarios:

- ``serving_pipelined``: a traced, collected depth-2 pipelined run
  (exercises the miss table, scheduler, workflow phases, registry).
- ``serving_sequential``: the same workload through the sequential loop.
- ``cluster_fault_free``: a 3-replica hash-routed run with no faults
  (the router's vectorized fast path).
- ``cluster_faulty``: the same cluster under a crash + a slowdown with
  hedging enabled (the router's general fallback path).

Regenerate (only when an *intentional* behavior change lands)::

    PYTHONPATH=src python tests/test_golden_hotpath.py --write
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro import (
    DeepCrossNetwork, FlecheConfig, PrecisionConfig, SpanTracer,
    default_platform,
)
from repro.bench.harness import canonical_json
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.workflow import FlecheEmbeddingLayer
from repro.faults.schedule import (
    FaultSchedule, ReplicaCrash, ReplicaSlowdown,
)
from repro.model.trainer import EmbeddingDeltaTrainer
from repro.obs import WindowedCollector, default_serving_slos
from repro.refresh import UpdateLog, UpdatePublisher
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.serving.server import InferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden",
    "hotpath_golden.json",
)

SLA_BUDGET = 2e-3


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _array_digest(arr) -> str:
    return _sha(np.ascontiguousarray(arr).tobytes())


def _json_digest(payload) -> str:
    return _sha(canonical_json(payload).encode())


def _serving_fixture(hw, cls, precision=None, **kwargs):
    """One deterministic serving run; shared by both serving scenarios."""
    dataset = uniform_tables_spec(
        num_tables=6, corpus_size=12_000, alpha=-1.2, dim=16,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    config = (
        FlecheConfig(cache_ratio=0.05)
        if precision is None
        else FlecheConfig(cache_ratio=0.05, precision=precision)
    )
    layer = FlecheEmbeddingLayer(store, config, hw)
    model = DeepCrossNetwork(
        num_tables=dataset.num_tables, embedding_dim=dataset.dim,
    )
    tracer = SpanTracer()
    collector = WindowedCollector(
        window=1e-3, sla_budget=SLA_BUDGET,
        engine=default_serving_slos(SLA_BUDGET),
    )
    server = cls(
        dataset, layer, hw,
        policy=BatchingPolicy(max_batch_size=128, max_delay=5e-4),
        model=model, include_dense=True, tracer=tracer,
        collector=collector, **kwargs,
    )
    warm = PoissonArrivals(dataset, 200_000.0, seed=1).generate(200)
    server.serve(warm)
    tracer.clear()
    reqs = PoissonArrivals(dataset, 1_500_000.0, seed=2).generate(600)
    report = server.serve(reqs)
    return {
        "metrics": _json_digest(report.metrics.to_dict()),
        "latencies": _array_digest(report.latencies),
        "probabilities": _array_digest(report.probabilities),
        "trace": _json_digest(tracer.to_chrome_trace()),
        "series": _json_digest(collector.to_payload()),
        "hits": int(report.hits),
        "misses": int(report.misses),
        "unified_hits": int(report.unified_hits),
        "coalesced_keys": int(report.coalesced_keys),
        "p99_s": float(report.p99_latency),
    }


def scenario_serving_pipelined(hw):
    return _serving_fixture(hw, PipelinedInferenceServer, depth=2)


def scenario_serving_sequential(hw):
    return _serving_fixture(hw, InferenceServer)


def _cluster_fixture(hw, schedule=None, hedge_delay=None):
    """One deterministic 3-replica cluster run."""
    dataset = uniform_tables_spec(
        num_tables=4, corpus_size=20_000, alpha=-1.2, dim=16,
    )
    horizon = 0.02
    log = UpdateLog(retention=1_000_000)
    publisher = UpdatePublisher(log, max_batch_keys=512)
    trainer = EmbeddingDeltaTrainer(
        [spec.corpus_size for spec in dataset.table_specs()],
        [spec.dim for spec in dataset.table_specs()],
        keys_per_round=96, seed=11,
    )
    for i in range(2):
        publisher.drain(trainer, now=horizon * (i + 1) / 3)
    requests = PoissonArrivals(dataset, 60_000.0, seed=7).generate_until(
        horizon
    )
    router = ClusterRouter(
        dataset, hw,
        ClusterConfig(
            num_replicas=3, policy="hash", hot_keys=64,
            hedge_delay=hedge_delay,
        ),
        schedule=schedule, update_log=log, warm_seed=7,
    )
    report = router.serve(requests)
    return {
        "metrics": _json_digest(report.metrics.to_dict()),
        "latencies": _array_digest(report.latencies),
        "dispositions": _sha("|".join(report.dispositions).encode()),
        "disposition_counts": {
            k: int(v) for k, v in sorted(
                report.disposition_counts().items()
            )
        },
        "served": int(report.served),
        "shed": int(report.shed),
        "p99_s": float(report.percentile(99)),
    }


def scenario_cluster_fault_free(hw):
    return _cluster_fixture(hw)


def scenario_cluster_faulty(hw):
    schedule = FaultSchedule([
        ReplicaCrash(replica=0, start=0.006, duration=0.008),
        ReplicaSlowdown(
            replica=1, start=0.004, duration=0.010, factor=6.0,
        ),
    ])
    return _cluster_fixture(hw, schedule=schedule, hedge_delay=5e-4)


SCENARIOS = {
    "serving_pipelined": scenario_serving_pipelined,
    "serving_sequential": scenario_serving_sequential,
    "cluster_fault_free": scenario_cluster_fault_free,
    "cluster_faulty": scenario_cluster_faulty,
}


def _load_golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):  # pragma: no cover
        pytest.skip("golden fixture missing; run --write to generate")
    return _load_golden()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_hotpath_golden(name, golden):
    hw = default_platform()
    actual = SCENARIOS[name](hw)
    expected = golden[name]
    mismatched = {
        key: (expected[key], actual[key])
        for key in expected
        if actual.get(key) != expected[key]
    }
    assert not mismatched, (name, mismatched)


def test_pinned_fp32_matches_prepr_golden(golden):
    """The golden no-op guarantee of the mixed-precision tentpole.

    A precision config with every tier pinned to fp32 (and pure-LRU
    eviction) must take exactly the pre-tiering code path: the depth-2
    pipelined serving run is required to be byte-identical — metrics
    JSON, latency arrays, probabilities, traces — to the pre-PR
    ``serving_pipelined`` golden entry, and no ``precision.*`` metric
    may appear anywhere.
    """
    hw = default_platform()
    pinned = PrecisionConfig(
        enabled=True, fp32_share=1.0, fp16_share=0.0, int8_share=0.0,
        eviction_policy="lru",
    )
    assert not pinned.quantizing
    actual = _serving_fixture(
        hw, PipelinedInferenceServer, depth=2, precision=pinned,
    )
    expected = golden["serving_pipelined"]
    mismatched = {
        key: (expected[key], actual[key])
        for key in expected
        if actual.get(key) != expected[key]
    }
    assert not mismatched, mismatched


def test_pinned_fp32_emits_no_precision_metrics():
    hw = default_platform()
    pinned = PrecisionConfig(
        enabled=True, fp32_share=1.0, fp16_share=0.0, int8_share=0.0,
    )
    report_payload = _serving_fixture(
        hw, InferenceServer, precision=pinned,
    )
    del report_payload  # digests checked by the golden test above
    # Direct registry check on a fresh layer-level run.
    dataset = uniform_tables_spec(
        num_tables=3, corpus_size=4_000, alpha=-1.2, dim=16,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, precision=pinned), hw,
    )
    snap = layer.cache.obs.snapshot()
    names = [n for (n, _) in snap.counters] + [n for (n, _) in snap.gauges]
    assert not any(n.startswith("precision.") for n in names)


def main(argv=None):  # pragma: no cover - regeneration entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", action="store_true",
        help="regenerate the golden fixture from the current code",
    )
    args = parser.parse_args(argv)
    hw = default_platform()
    payload = {name: fn(hw) for name, fn in sorted(SCENARIOS.items())}
    if args.write:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(payload))
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(canonical_json(payload), end="")


if __name__ == "__main__":  # pragma: no cover
    main()
