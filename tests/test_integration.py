"""Cross-module integration tests: the whole system end to end."""

import numpy as np
import pytest

from repro import (
    Category,
    DeepCrossNetwork,
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    InferenceEngine,
    PerTableCacheLayer,
    PerTableConfig,
    synthetic_dataset,
    uniform_tables_spec,
)
from repro.core.cache_base import HitRateAccumulator
from repro.tables.embedding_table import reference_vectors


@pytest.fixture(scope="module")
def setup(hw):
    spec = uniform_tables_spec(
        num_tables=5, corpus_size=3_000, alpha=-1.4, dim=32,
    )
    trace = synthetic_dataset(spec, num_batches=16, batch_size=128)
    store = EmbeddingStore(spec.table_specs(), hw)
    return spec, trace, store


class TestFullPipeline:
    def test_both_schemes_bitwise_agree_with_store(self, setup, hw):
        spec, trace, store = setup
        fleche = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        hugectr = PerTableCacheLayer(store, PerTableConfig(0.1), hw)
        for batch in list(trace)[:6]:
            rf = fleche.query(batch, Executor(hw))
            rh = hugectr.query(batch, Executor(hw))
            for t, ids in enumerate(batch.ids_per_table):
                expect = reference_vectors(t, ids, spec.dim)
                np.testing.assert_array_equal(rf.outputs[t], expect)
                np.testing.assert_array_equal(rh.outputs[t], expect)

    def test_schemes_produce_identical_model_outputs(self, setup, hw):
        """Caching is transparent: final probabilities must not depend on
        which cache scheme served the embeddings."""
        spec, trace, store = setup
        model = DeepCrossNetwork(spec.num_tables, spec.dim,
                                 num_cross_layers=2, hidden_units=[64])
        batches = list(trace)[:4]

        def probabilities(layer):
            engine = InferenceEngine(layer, hw, model=model)
            result = engine.run(batches, Executor(hw), warmup=0)
            return result.last_probabilities

        p_fleche = probabilities(
            FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        )
        p_hugectr = probabilities(
            PerTableCacheLayer(store, PerTableConfig(0.1), hw)
        )
        np.testing.assert_allclose(p_fleche, p_hugectr, rtol=1e-5)

    def test_fleche_faster_than_baseline_when_warm(self, setup, hw):
        spec, trace, store = setup
        batches = list(trace)

        def elapsed(layer):
            executor = Executor(hw)
            for b in batches[:8]:
                layer.query(b, executor)
            executor.reset()
            for b in batches[8:]:
                layer.query(b, executor)
            return executor.drain()

        t_fleche = elapsed(
            FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        )
        t_hugectr = elapsed(PerTableCacheLayer(store, PerTableConfig(0.1), hw))
        assert t_fleche < t_hugectr

    def test_accumulated_hit_rates_sane(self, setup, hw):
        spec, trace, store = setup
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        acc = HitRateAccumulator()
        executor = Executor(hw)
        for batch in trace:
            acc.record(layer.query(batch, executor))
        assert 0.0 < acc.hit_rate < 1.0
        assert len(acc.per_batch) == len(trace)

    def test_breakdown_covers_all_phases(self, setup, hw):
        spec, trace, store = setup
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        executor = Executor(hw)
        for batch in list(trace)[:4]:
            layer.query(batch, executor)
        seconds = executor.stats.seconds
        assert seconds.get(Category.MAINTENANCE, 0) > 0
        assert seconds.get(Category.CACHE_INDEX, 0) > 0
        assert seconds.get(Category.DRAM_INDEX, 0) > 0
        assert seconds.get(Category.OTHER, 0) > 0

    def test_long_run_stability(self, setup, hw):
        """Many batches with churn: no crashes, pool bounded, correct data."""
        spec, _, store = setup
        trace = synthetic_dataset(spec, num_batches=40, batch_size=64)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.02, admission_probability=0.7), hw
        )
        executor = Executor(hw)
        for i, batch in enumerate(trace):
            result = layer.query(batch, executor)
            if i % 10 == 0:
                for t, ids in enumerate(batch.ids_per_table):
                    expect = reference_vectors(t, ids, spec.dim)
                    np.testing.assert_array_equal(result.outputs[t], expect)
        assert layer.cache.pool.utilization <= 1.0
