"""Tests for the host/device copy cost model."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.transfer import CopyEngine, CopyMethod


class TestMethodResolution:
    def test_small_copy_uses_gdrcopy(self, hw):
        engine = CopyEngine(hw)
        assert engine.resolve_method(64, CopyMethod.AUTO) is CopyMethod.GDRCOPY

    def test_large_copy_uses_cudamemcpy(self, hw):
        engine = CopyEngine(hw)
        big = hw.interconnect.gdrcopy_crossover_bytes + 1
        assert engine.resolve_method(big, CopyMethod.AUTO) is CopyMethod.CUDAMEMCPY

    def test_explicit_method_wins(self, hw):
        engine = CopyEngine(hw)
        assert engine.resolve_method(64, CopyMethod.CUDAMEMCPY) is CopyMethod.CUDAMEMCPY
        assert engine.resolve_method(1 << 30, CopyMethod.GDRCOPY) is CopyMethod.GDRCOPY


class TestCost:
    def test_small_copy_latency_is_gdr_overhead(self, hw):
        # Paper §4: GDRCopy brings small copies to ~0.1 us.
        cost = CopyEngine(hw).cost(16)
        assert cost.overhead == pytest.approx(hw.interconnect.gdrcopy_overhead)
        assert cost.total < 1e-6

    def test_cudamemcpy_overhead_matches_paper(self, hw):
        # Paper §4: vanilla cudaMemcpy costs 6-7 us per call.
        cost = CopyEngine(hw).cost(16, CopyMethod.CUDAMEMCPY)
        assert 6e-6 <= cost.overhead <= 7e-6

    def test_wire_time_scales_with_bytes(self, hw):
        engine = CopyEngine(hw)
        a = engine.cost(1 << 20, CopyMethod.CUDAMEMCPY)
        b = engine.cost(1 << 22, CopyMethod.CUDAMEMCPY)
        assert b.wire_time == pytest.approx(4 * a.wire_time)

    def test_zero_bytes_costs_only_overhead(self, hw):
        cost = CopyEngine(hw).cost(0)
        assert cost.wire_time == 0.0
        assert cost.overhead > 0.0

    def test_negative_bytes_rejected(self, hw):
        with pytest.raises(SimulationError):
            CopyEngine(hw).cost(-1)

    def test_total_is_sum(self, hw):
        cost = CopyEngine(hw).cost(1 << 16, CopyMethod.CUDAMEMCPY)
        assert cost.total == pytest.approx(cost.overhead + cost.wire_time)
