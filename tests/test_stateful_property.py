"""Stateful property-based tests (hypothesis rule-based state machines).

Two long-running invariant suites:

* :class:`FlatCacheMachine` — drives a FlatCache through random encode /
  lookup / insert / demote / invalidate sequences against a Python-dict
  model; any hit must return the exact ground-truth vector, and pool
  accounting must never leak or overflow.
* :class:`PoolMachine` — random allocate / release / write / read on the
  slab pool; live-slot accounting and data integrity must always hold.
* :class:`MissTableMachine` — publish / match / retire on the pipelined
  loop's :class:`~repro.serving.pipeline.InFlightMissTable` against a
  dict model: keys publish exactly once while in flight, matches return
  the published vectors with degraded flags propagated, and no entry
  survives past the completion frontier of its owning batch.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.mempool.slab_pool import SlabMemoryPool
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs

DIM = 8
CORPUS = 64


class FlatCacheMachine(RuleBasedStateMachine):
    """FlatCache vs an oracle: hits are always bit-exact ground truth."""

    def __init__(self):
        super().__init__()
        specs = make_table_specs([CORPUS, CORPUS], [DIM, DIM])
        self.cache = FlatCache(
            specs,
            FlecheConfig(
                cache_ratio=0.5,
                use_unified_index=True,
                unified_index_fraction=1.0,
            ),
        )
        self.cache.set_unified_capacity(16)
        self.cache.tick()
        #: flat key -> (table, feature) the oracle knows was inserted.
        self.oracle = {}

    ids = st.lists(
        st.integers(min_value=0, max_value=CORPUS - 1), min_size=1, max_size=8
    )
    table = st.integers(min_value=0, max_value=1)

    @rule()
    def tick(self):
        self.cache.tick()

    @rule(table=table, ids=ids)
    def insert(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        vectors = reference_vectors(table, features, DIM)
        inserted, _ = self.cache.admit_and_insert(keys, vectors, DIM)
        for key, feature, ok in zip(keys, features, inserted):
            if ok:
                self.oracle[int(key)] = (table, int(feature))

    @rule(table=table, ids=ids)
    def lookup(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        outcome = self.cache.index_lookup(keys)
        if outcome.cache_hit.any():
            got = self.cache.gather(outcome.locations[outcome.cache_hit])
            expect = reference_vectors(
                table, features[outcome.cache_hit], DIM
            )
            np.testing.assert_array_equal(got, expect)

    @rule(table=table, ids=ids)
    def publish_pointers(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        self.cache.publish_dram_pointers(keys, features)

    @rule(table=table, ids=ids)
    def invalidate(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        self.cache.invalidate_dram_pointers(keys)
        outcome = self.cache.index_lookup(keys)
        assert not outcome.dram_hit.any()

    @precondition(lambda self: self.oracle)
    @rule()
    def clear_pointers(self):
        self.cache.clear_unified_index()
        assert self.cache.unified_entries == 0

    @invariant()
    def pool_never_overflows(self):
        assert 0.0 <= self.cache.pool.utilization <= 1.0

    @invariant()
    def unified_entries_bounded(self):
        assert 0 <= self.cache.unified_entries
        # Scan-derived truth matches the counter.
        _, values, _ = self.cache.index.scan()
        from repro.core.unified_index import is_dram_pointer

        assert int(is_dram_pointer(values).sum()) == self.cache.unified_entries

    @invariant()
    def live_entries_match_pool(self):
        live = self.cache.live_entries()
        pool_live = sum(
            self.cache.pool.capacity_of(d) - self.cache.pool.free_of(d)
            for d in self.cache.pool.dims()
        )
        # Pool may hold retired-but-not-yet-collected slots.
        assert live <= pool_live


FlatCacheMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestFlatCacheStateMachine = FlatCacheMachine.TestCase


class PoolMachine(RuleBasedStateMachine):
    """Slab pool: accounting and data integrity under random traffic."""

    def __init__(self):
        super().__init__()
        self.pool = SlabMemoryPool({4: 32, 8: 16})
        #: location -> stored row (float32 tuple)
        self.model = {}

    dims = st.sampled_from([4, 8])
    counts = st.integers(min_value=0, max_value=8)

    @rule(dim=dims, count=counts)
    def allocate_and_write(self, dim, count):
        count = min(count, self.pool.free_of(dim))
        if count == 0:
            return
        locations = self.pool.allocate(dim, count)
        rows = np.arange(count * dim, dtype=np.float32).reshape(count, dim)
        rows += len(self.model)  # make content unique-ish
        self.pool.write(locations, rows)
        for loc, row in zip(locations, rows):
            self.model[int(loc)] = row.copy()

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def read_back(self, data):
        keys = data.draw(
            st.lists(
                st.sampled_from(sorted(self.model)), min_size=1, max_size=5,
                unique=True,
            )
        )
        dims = self.pool.dim_of_locations(np.array(keys, np.uint64))
        for dim in np.unique(dims):
            subset = [k for k, d in zip(keys, dims) if d == dim]
            got = self.pool.read(np.array(subset, np.uint64))
            for k, row in zip(subset, got):
                np.testing.assert_array_equal(row, self.model[k])

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def release_some(self, data):
        keys = data.draw(
            st.lists(
                st.sampled_from(sorted(self.model)), min_size=1, max_size=5,
                unique=True,
            )
        )
        self.pool.release(np.array(keys, np.uint64))
        for key in keys:
            del self.model[key]

    @invariant()
    def accounting_consistent(self):
        live = sum(
            self.pool.capacity_of(d) - self.pool.free_of(d)
            for d in self.pool.dims()
        )
        assert live == len(self.model)

    @invariant()
    def utilization_in_range(self):
        assert 0.0 <= self.pool.utilization <= 1.0


PoolMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPoolStateMachine = PoolMachine.TestCase


class MissTableMachine(RuleBasedStateMachine):
    """In-flight miss table vs a dict model.

    Batches begin in increasing owner order and retire in that same
    (FIFO) order — exactly the pipelined loop's completion frontier.
    The product contract under test: a leader publishes only keys not
    already in flight (exactly-once insertion), matches return the
    leader's vectors with degraded flags intact, and retiring an owner
    drops its entries and nothing else.
    """

    DIM = 4

    def __init__(self):
        super().__init__()
        from repro.serving.pipeline import InFlightMissTable

        self.table = InFlightMissTable()
        #: flat key -> (owner, row, degraded) the model knows is in flight.
        self.model = {}
        self.next_owner = 0
        #: Owners begun but not yet retired, oldest first.
        self.live_owners = []

    keys = st.lists(
        st.integers(min_value=0, max_value=40), min_size=1, max_size=6,
        unique=True,
    )

    @staticmethod
    def _row(key, serial):
        return np.full(
            MissTableMachine.DIM, float(key) + serial / 1024.0, np.float32
        )

    @rule()
    def begin_batch(self):
        owner = self.next_owner
        self.next_owner += 1
        self.table.set_owner(owner)
        self.live_owners.append(owner)

    @precondition(lambda self: self.live_owners)
    @rule(keys=keys, degraded=st.booleans())
    def publish(self, keys, degraded):
        # Leaders only publish keys that missed AND were not already in
        # flight (in-flight keys coalesce instead of re-fetching) — so a
        # key is published at most once per residency.
        owner = self.live_owners[-1]
        self.table.set_owner(owner)
        fresh = np.array(
            [k for k in keys if k not in self.model], np.uint64
        )
        if len(fresh) == 0:
            return
        rows = np.stack([self._row(int(k), owner) for k in fresh])
        self.table.publish(fresh, rows, degraded=degraded)
        for k, row in zip(fresh, rows):
            self.model[int(k)] = (owner, row, degraded)

    @rule(keys=keys)
    def match(self, keys):
        probe = np.array(keys, np.uint64)
        mask, rows, degraded = self.table.match(probe, dim=self.DIM)
        expect_mask = np.array([k in self.model for k in keys])
        np.testing.assert_array_equal(mask, expect_mask)
        assert degraded == sum(
            self.model[k][2] for k in keys if k in self.model
        )
        got = iter(rows)
        for k in keys:
            if k in self.model:
                np.testing.assert_array_equal(next(got), self.model[k][1])

    @precondition(lambda self: self.live_owners)
    @rule()
    def retire_oldest(self):
        owner = self.live_owners.pop(0)
        dead = [k for k, e in self.model.items() if e[0] == owner]
        assert self.table.retire(owner) == len(dead)
        for k in dead:
            del self.model[k]
        # No entry survives past the completion frontier: everything
        # left belongs to a still-live (younger) owner.
        live = set(self.live_owners)
        assert all(e[0] in live for e in self.model.values())

    @invariant()
    def table_matches_model(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def stats_conserve(self):
        stats = self.table.stats
        assert stats.published_keys - stats.retired_keys == len(self.table)
        assert stats.published_keys >= 0
        # The registry mirrors the component-internal stats exactly.
        obs = self.table.obs
        assert obs.total("coalescer.published") == stats.published_keys
        assert obs.total("coalescer.retired") == stats.retired_keys
        assert obs.total("coalescer.coalesced") == stats.coalesced_keys


MissTableMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestMissTableStateMachine = MissTableMachine.TestCase
