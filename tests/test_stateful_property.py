"""Stateful property-based tests (hypothesis rule-based state machines).

Two long-running invariant suites:

* :class:`FlatCacheMachine` — drives a FlatCache through random encode /
  lookup / insert / demote / invalidate sequences against a Python-dict
  model; any hit must return the exact ground-truth vector, and pool
  accounting must never leak or overflow.
* :class:`PoolMachine` — random allocate / release / write / read on the
  slab pool; live-slot accounting and data integrity must always hold.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.mempool.slab_pool import SlabMemoryPool
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs

DIM = 8
CORPUS = 64


class FlatCacheMachine(RuleBasedStateMachine):
    """FlatCache vs an oracle: hits are always bit-exact ground truth."""

    def __init__(self):
        super().__init__()
        specs = make_table_specs([CORPUS, CORPUS], [DIM, DIM])
        self.cache = FlatCache(
            specs,
            FlecheConfig(
                cache_ratio=0.5,
                use_unified_index=True,
                unified_index_fraction=1.0,
            ),
        )
        self.cache.set_unified_capacity(16)
        self.cache.tick()
        #: flat key -> (table, feature) the oracle knows was inserted.
        self.oracle = {}

    ids = st.lists(
        st.integers(min_value=0, max_value=CORPUS - 1), min_size=1, max_size=8
    )
    table = st.integers(min_value=0, max_value=1)

    @rule()
    def tick(self):
        self.cache.tick()

    @rule(table=table, ids=ids)
    def insert(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        vectors = reference_vectors(table, features, DIM)
        inserted, _ = self.cache.admit_and_insert(keys, vectors, DIM)
        for key, feature, ok in zip(keys, features, inserted):
            if ok:
                self.oracle[int(key)] = (table, int(feature))

    @rule(table=table, ids=ids)
    def lookup(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        outcome = self.cache.index_lookup(keys)
        if outcome.cache_hit.any():
            got = self.cache.gather(outcome.locations[outcome.cache_hit])
            expect = reference_vectors(
                table, features[outcome.cache_hit], DIM
            )
            np.testing.assert_array_equal(got, expect)

    @rule(table=table, ids=ids)
    def publish_pointers(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        self.cache.publish_dram_pointers(keys, features)

    @rule(table=table, ids=ids)
    def invalidate(self, table, ids):
        features = np.array(sorted(set(ids)), dtype=np.uint64)
        keys = self.cache.encode(table, features)
        self.cache.invalidate_dram_pointers(keys)
        outcome = self.cache.index_lookup(keys)
        assert not outcome.dram_hit.any()

    @precondition(lambda self: self.oracle)
    @rule()
    def clear_pointers(self):
        self.cache.clear_unified_index()
        assert self.cache.unified_entries == 0

    @invariant()
    def pool_never_overflows(self):
        assert 0.0 <= self.cache.pool.utilization <= 1.0

    @invariant()
    def unified_entries_bounded(self):
        assert 0 <= self.cache.unified_entries
        # Scan-derived truth matches the counter.
        _, values, _ = self.cache.index.scan()
        from repro.core.unified_index import is_dram_pointer

        assert int(is_dram_pointer(values).sum()) == self.cache.unified_entries

    @invariant()
    def live_entries_match_pool(self):
        live = self.cache.live_entries()
        pool_live = sum(
            self.cache.pool.capacity_of(d) - self.cache.pool.free_of(d)
            for d in self.cache.pool.dims()
        )
        # Pool may hold retired-but-not-yet-collected slots.
        assert live <= pool_live


FlatCacheMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestFlatCacheStateMachine = FlatCacheMachine.TestCase


class PoolMachine(RuleBasedStateMachine):
    """Slab pool: accounting and data integrity under random traffic."""

    def __init__(self):
        super().__init__()
        self.pool = SlabMemoryPool({4: 32, 8: 16})
        #: location -> stored row (float32 tuple)
        self.model = {}

    dims = st.sampled_from([4, 8])
    counts = st.integers(min_value=0, max_value=8)

    @rule(dim=dims, count=counts)
    def allocate_and_write(self, dim, count):
        count = min(count, self.pool.free_of(dim))
        if count == 0:
            return
        locations = self.pool.allocate(dim, count)
        rows = np.arange(count * dim, dtype=np.float32).reshape(count, dim)
        rows += len(self.model)  # make content unique-ish
        self.pool.write(locations, rows)
        for loc, row in zip(locations, rows):
            self.model[int(loc)] = row.copy()

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def read_back(self, data):
        keys = data.draw(
            st.lists(
                st.sampled_from(sorted(self.model)), min_size=1, max_size=5,
                unique=True,
            )
        )
        dims = self.pool.dim_of_locations(np.array(keys, np.uint64))
        for dim in np.unique(dims):
            subset = [k for k, d in zip(keys, dims) if d == dim]
            got = self.pool.read(np.array(subset, np.uint64))
            for k, row in zip(subset, got):
                np.testing.assert_array_equal(row, self.model[k])

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def release_some(self, data):
        keys = data.draw(
            st.lists(
                st.sampled_from(sorted(self.model)), min_size=1, max_size=5,
                unique=True,
            )
        )
        self.pool.release(np.array(keys, np.uint64))
        for key in keys:
            del self.model[key]

    @invariant()
    def accounting_consistent(self):
        live = sum(
            self.pool.capacity_of(d) - self.pool.free_of(d)
            for d in self.pool.dims()
        )
        assert live == len(self.model)

    @invariant()
    def utilization_in_range(self):
        assert 0.0 <= self.pool.utilization <= 1.0


PoolMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPoolStateMachine = PoolMachine.TestCase
