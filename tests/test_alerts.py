"""Tests for the declarative SLO / burn-rate alerting engine."""

import pytest

from repro import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError
from repro.faults import (
    DegradeConfig,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    ShardOutage,
)
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import RemoteParameterServer
from repro.obs import BurnRateRule, Slo, SloEngine, WindowedCollector, default_serving_slos
from repro.obs.alerts import FIRING, RESOLVED
from repro.obs.timeseries import WindowRecord
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.workloads.synthetic import uniform_tables_spec


def _window(index, bad, total, width=1e-3):
    return WindowRecord(
        index=index, start=index * width, end=(index + 1) * width,
        values={"sla_bad": float(bad), "requests": float(total)},
    )


def _engine(lookback=1, threshold=10.0, resolve_after=2):
    return SloEngine(
        [Slo("latency", objective=0.99)],
        [BurnRateRule("fast", "latency", lookback=lookback,
                      threshold=threshold, resolve_after=resolve_after)],
    )


class TestDeclarations:
    def test_slo_objective_bounds(self):
        with pytest.raises(ConfigError):
            Slo("bad", objective=0.0)
        with pytest.raises(ConfigError):
            Slo("bad", objective=1.0)
        assert Slo("ok", objective=0.99).error_budget == pytest.approx(0.01)

    def test_rule_validation(self):
        with pytest.raises(ConfigError):
            BurnRateRule("r", "latency", lookback=0)
        with pytest.raises(ConfigError):
            BurnRateRule("r", "latency", threshold=0.0)
        with pytest.raises(ConfigError):
            BurnRateRule("r", "latency", resolve_after=0)

    def test_engine_rejects_duplicates_and_unknown_slos(self):
        slo = Slo("latency", objective=0.99)
        with pytest.raises(ConfigError):
            SloEngine([slo, slo], [])
        with pytest.raises(ConfigError):
            SloEngine([slo], [BurnRateRule("r", "nope")])
        rule = BurnRateRule("r", "latency")
        with pytest.raises(ConfigError):
            SloEngine([slo], [rule, rule])

    def test_default_catalogue(self):
        engine = default_serving_slos(2e-3)
        assert set(engine.slos) == {"latency", "degraded"}
        assert {r.name for r in engine.rules} == {
            "latency-fast", "latency-slow", "degraded-fast"
        }
        with pytest.raises(ConfigError):
            default_serving_slos(0.0)


class TestBurnRate:
    def test_burn_rate_math(self):
        engine = _engine(lookback=2)
        windows = [_window(0, 1, 100), _window(1, 3, 100)]
        # (4 bad / 200 total) / 0.01 budget = 2x burn.
        burn = engine.burn_rate(engine.rules[0], windows)
        assert burn == pytest.approx(2.0)

    def test_no_traffic_is_zero_burn(self):
        engine = _engine()
        assert engine.burn_rate(engine.rules[0], [_window(0, 0, 0)]) == 0.0

    def test_lookback_limits_history(self):
        engine = _engine(lookback=1)
        windows = [_window(0, 100, 100), _window(1, 0, 100)]
        assert engine.burn_rate(engine.rules[0], windows) == 0.0


class TestAlertLifecycle:
    def test_fire_peak_and_resolve(self):
        engine = _engine(threshold=10.0, resolve_after=2)
        # Window 0: burn 20x -> fires at the window end.
        changed = engine.evaluate([_window(0, 20, 100)])
        assert [a.state for a in changed] == [FIRING]
        alert = changed[0]
        assert alert.fired_at == pytest.approx(1e-3)
        assert alert.fired_window == 0
        assert engine.firing == [alert]
        # Window 1: burn climbs to 50x -> same alert, peak updates.
        engine.evaluate([_window(0, 20, 100), _window(1, 50, 100)])
        assert engine.firing == [alert]
        assert alert.peak_burn_rate == pytest.approx(50.0)
        # One calm window is not enough to resolve.
        engine.evaluate([_window(1, 50, 100), _window(2, 0, 100)])
        assert alert.firing
        # Second consecutive calm window resolves at its end.
        changed = engine.evaluate([_window(2, 0, 100), _window(3, 0, 100)])
        assert [a.state for a in changed] == [RESOLVED]
        assert alert.resolved_window == 3
        assert alert.duration() == pytest.approx(3e-3)
        assert not engine.firing
        assert engine.history("fast") == [alert]

    def test_calm_streak_resets_on_reburn(self):
        engine = _engine(threshold=10.0, resolve_after=2)
        engine.evaluate([_window(0, 20, 100)])
        engine.evaluate([_window(1, 0, 100)])     # calm 1
        engine.evaluate([_window(2, 20, 100)])    # burns again
        engine.evaluate([_window(3, 0, 100)])     # calm 1 (again)
        assert engine.firing
        engine.evaluate([_window(4, 0, 100)])     # calm 2 -> resolves
        assert not engine.firing
        assert len(engine.alerts) == 1            # one incident, not two

    def test_empty_window_history_is_noop(self):
        engine = _engine()
        assert engine.evaluate([]) == []

    def test_detect_and_recover_clocks(self):
        engine = _engine(threshold=10.0, resolve_after=1)
        assert engine.time_to_detect(0.0) is None
        engine.evaluate([_window(3, 50, 100)])
        assert engine.time_to_detect(2e-3) == pytest.approx(2e-3)
        # Open alert -> recovery unknown.
        assert engine.time_to_recover(4e-3) is None
        engine.evaluate([_window(3, 50, 100), _window(4, 0, 100)])
        assert engine.time_to_recover(4e-3) == pytest.approx(1e-3)

    def test_payload_shape(self):
        engine = _engine()
        engine.evaluate([_window(0, 50, 100)])
        payload = engine.to_payload()
        assert payload["kind"] == "alerts"
        assert payload["firing"] == ["fast"]
        assert payload["alerts"][0]["state"] == FIRING
        assert payload["slos"][0]["objective"] == pytest.approx(0.99)


class TestOutageDetection:
    """End to end: an injected shard outage must trip a burn-rate alert
    within the outage and resolve after recovery (paper-style TTD/TTR)."""

    HORIZON = 0.06
    SLA = 2.5e-3

    def _outage_run(self, hw):
        dataset = uniform_tables_spec(
            num_tables=4, corpus_size=4_000, alpha=-1.2, dim=16,
        )
        outage_start = 0.4 * self.HORIZON
        duration = 0.2 * self.HORIZON
        remote = RemoteParameterServer(
            dataset.table_specs(),
            injector=FaultInjector(FaultSchedule([
                ShardOutage(shard=s, start=outage_start, duration=duration)
                for s in range(4)
            ]), seed=17),
            retry_policy=RetryPolicy.naive(timeout=1e-3),
        )
        store = TieredParameterStore(
            dataset.table_specs(), hw, dram_capacity=800, remote=remote,
            degrade=DegradeConfig(policy="stale"),
        )
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
        engine = default_serving_slos(self.SLA)
        collector = WindowedCollector(
            window=1e-3, sla_budget=self.SLA, engine=engine,
        )
        server = PipelinedInferenceServer(
            dataset, layer, hw, depth=2,
            policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
            collector=collector,
        )
        requests = PoissonArrivals(
            dataset, 40_000.0, seed=5
        ).generate_until(self.HORIZON)
        server.serve(requests)
        return engine, outage_start, duration

    def test_outage_fires_and_resolves(self, hw):
        engine, outage_start, duration = self._outage_run(hw)
        assert engine.alerts, "outage produced no alerts"
        ttd = engine.time_to_detect(outage_start)
        assert ttd is not None and ttd < duration
        assert not engine.firing, "alerts still open after recovery"
        ttr = engine.time_to_recover(outage_start + duration)
        assert ttr is not None and ttr > 0
