"""Tests for the device memory allocator model."""

import pytest

from repro.errors import CapacityError, SimulationError
from repro.gpusim.memory import DeviceAllocator


class TestDeviceAllocator:
    def test_malloc_tracks_usage(self, hw):
        alloc = DeviceAllocator(hw)
        a = alloc.malloc(1 << 20, "pool")
        assert alloc.used_bytes == 1 << 20
        alloc.free(a)
        assert alloc.used_bytes == 0

    def test_malloc_charges_cudamalloc_latency(self, hw):
        alloc = DeviceAllocator(hw)
        alloc.malloc(1024)
        alloc.malloc(1024)
        assert alloc.driver_time == pytest.approx(
            2 * hw.kernel.cudamalloc_overhead
        )
        assert alloc.alloc_calls == 2

    def test_oom_raises(self, hw):
        alloc = DeviceAllocator(hw)
        with pytest.raises(CapacityError):
            alloc.malloc(hw.gpu.hbm_capacity + 1)

    def test_free_bytes(self, hw):
        alloc = DeviceAllocator(hw)
        alloc.malloc(1 << 30)
        assert alloc.free_bytes == hw.gpu.hbm_capacity - (1 << 30)

    def test_double_free_raises(self, hw):
        alloc = DeviceAllocator(hw)
        a = alloc.malloc(64)
        alloc.free(a)
        with pytest.raises(SimulationError):
            alloc.free(a)

    def test_zero_size_malloc_rejected(self, hw):
        with pytest.raises(SimulationError):
            DeviceAllocator(hw).malloc(0)

    def test_capacity_reusable_after_free(self, hw):
        alloc = DeviceAllocator(hw)
        half = hw.gpu.hbm_capacity // 2 + 1
        a = alloc.malloc(half)
        alloc.free(a)
        alloc.malloc(half)  # would OOM if the free did not reclaim
