"""Tests for multi-GPU flat caching (paper §5 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlecheConfig
from repro.errors import ConfigError
from repro.multigpu.cluster import InterconnectCost, MultiGpuFlatCache
from repro.multigpu.partition import HashPartitioner, TablePartitioner
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs


@pytest.fixture()
def specs():
    return make_table_specs([2000, 3000], [16, 16])


class TestHashPartitioner:
    def test_deterministic(self):
        p = HashPartitioner(4)
        keys = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(p.owner_of(keys), p.owner_of(keys))

    def test_owners_in_range(self):
        p = HashPartitioner(3)
        owners = p.owner_of(np.arange(1000, dtype=np.uint64))
        assert owners.min() >= 0 and owners.max() < 3

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        owners = p.owner_of(np.arange(40_000, dtype=np.uint64))
        counts = np.bincount(owners, minlength=4)
        assert counts.max() / counts.min() < 1.1

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigError):
            HashPartitioner(0)


class TestHashPartitionerProperties:
    """Hypothesis property coverage for the ownership hash."""

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=1, max_size=64,
        ),
        num_gpus=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_owner_deterministic_across_dtypes(self, keys, num_gpus):
        """The owner of a key is a property of its value, not the dtype
        the caller happened to hand in (values < 2**31 fit all three)."""
        p = HashPartitioner(num_gpus)
        reference = p.owner_of(np.asarray(keys, dtype=np.uint64))
        for dtype in (np.int64, np.uint32, np.int32):
            np.testing.assert_array_equal(
                p.owner_of(np.asarray(keys, dtype=dtype)), reference
            )

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=2**63 - 1),
            min_size=1, max_size=64,
        ),
        num_gpus=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_owner_stable_and_in_range(self, keys, num_gpus):
        p = HashPartitioner(num_gpus)
        arr = np.asarray(keys, dtype=np.uint64)
        owners = p.owner_of(arr)
        np.testing.assert_array_equal(owners, p.owner_of(arr))
        assert owners.min() >= 0 and owners.max() < num_gpus

    @given(num_gpus=st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_covers_every_gpu_at_scale(self, num_gpus):
        """With enough keys every GPU owns something — no dead shards."""
        p = HashPartitioner(num_gpus)
        owners = p.owner_of(np.arange(2048 * num_gpus, dtype=np.uint64))
        assert set(np.unique(owners)) == set(range(num_gpus))


class TestTablePartitionerProperties:
    """Hypothesis property coverage for explicit table assignments."""

    @given(
        num_gpus=st.integers(min_value=1, max_value=8),
        num_tables=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_rejects_wrong_length_assignment(
        self, num_gpus, num_tables, data
    ):
        wrong_length = data.draw(
            st.integers(min_value=0, max_value=num_tables * 2).filter(
                lambda n: n != num_tables
            )
        )
        assignment = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num_gpus - 1),
                min_size=wrong_length, max_size=wrong_length,
            )
        )
        with pytest.raises(ConfigError):
            TablePartitioner(num_gpus, num_tables, assignment=assignment)

    @given(
        num_gpus=st.integers(min_value=1, max_value=8),
        num_tables=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_rejects_out_of_range_owner(self, num_gpus, num_tables, data):
        assignment = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num_gpus - 1),
                min_size=num_tables, max_size=num_tables,
            )
        )
        bad_index = data.draw(
            st.integers(min_value=0, max_value=num_tables - 1)
        )
        bad_owner = data.draw(
            st.sampled_from([-1, num_gpus, num_gpus + 3])
        )
        assignment[bad_index] = bad_owner
        with pytest.raises(ConfigError):
            TablePartitioner(num_gpus, num_tables, assignment=assignment)

    @given(
        num_gpus=st.integers(min_value=1, max_value=8),
        num_tables=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_valid_assignment_round_trips(self, num_gpus, num_tables, data):
        assignment = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num_gpus - 1),
                min_size=num_tables, max_size=num_tables,
            )
        )
        p = TablePartitioner(num_gpus, num_tables, assignment=assignment)
        np.testing.assert_array_equal(
            p.owner_of_tables(np.arange(num_tables)), assignment
        )


class TestTablePartitioner:
    def test_round_robin_default(self):
        p = TablePartitioner(num_gpus=2, num_tables=5)
        np.testing.assert_array_equal(
            p.owner_of_tables(np.arange(5)), [0, 1, 0, 1, 0]
        )

    def test_custom_assignment(self):
        p = TablePartitioner(2, 3, assignment=[1, 1, 0])
        assert p.owner_of_tables(np.array([0]))[0] == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            TablePartitioner(2, 3, assignment=[0, 1])
        with pytest.raises(ConfigError):
            TablePartitioner(2, 3, assignment=[0, 1, 5])


class TestInterconnectCost:
    def test_latency_floor(self):
        ic = InterconnectCost()
        assert ic.transfer_time(1) >= ic.latency

    def test_zero_bytes_free(self):
        assert InterconnectCost().transfer_time(0) == 0.0

    def test_bandwidth_scaling(self):
        ic = InterconnectCost()
        assert ic.transfer_time(1 << 24) > ic.transfer_time(1 << 20)


class TestMultiGpuFlatCache:
    def _cluster(self, specs, num_gpus, ratio=0.1):
        return MultiGpuFlatCache(
            specs,
            FlecheConfig(cache_ratio=ratio, use_unified_index=False),
            hw=__import__("repro").default_platform(),
            num_gpus=num_gpus,
        )

    def test_capacity_scales_with_gpus(self, specs):
        one = self._cluster(specs, 1)
        four = self._cluster(specs, 4)
        assert four.total_capacity_slots == pytest.approx(
            4 * one.total_capacity_slots, rel=0.01
        )

    def test_no_duplication_across_shards(self, specs):
        cluster = self._cluster(specs, 3)
        cluster.tick()
        keys = cluster.codec.encode(0, np.arange(60, dtype=np.uint64))
        rows = reference_vectors(0, np.arange(60, dtype=np.uint64), 16)
        cluster.insert_unique(keys, rows, dim=16)
        resident = sum(len(shard.index) for shard in cluster.shards)
        assert resident == 60  # each key lives on exactly one GPU

    def test_query_returns_correct_vectors(self, specs):
        cluster = self._cluster(specs, 2)
        cluster.tick()
        ids = np.arange(40, dtype=np.uint64)
        keys = cluster.codec.encode(1, ids)
        rows = reference_vectors(1, ids, 16)
        cluster.insert_unique(keys, rows, dim=16)
        outcome = cluster.query_unique(
            np.full(40, 1), keys, dim=16
        )
        assert outcome.hit_mask.all()
        for pos, row in outcome.vectors.items():
            np.testing.assert_array_equal(row, rows[pos])

    def test_remote_hits_pay_interconnect(self, specs):
        cluster = self._cluster(specs, 4)
        cluster.tick()
        ids = np.arange(200, dtype=np.uint64)
        keys = cluster.codec.encode(0, ids)
        rows = reference_vectors(0, ids, 16)
        cluster.insert_unique(keys, rows, dim=16)
        outcome = cluster.query_unique(np.zeros(200), keys, dim=16)
        assert outcome.gather_time > 0

    def test_single_gpu_pays_no_gather(self, specs):
        cluster = self._cluster(specs, 1)
        cluster.tick()
        ids = np.arange(50, dtype=np.uint64)
        keys = cluster.codec.encode(0, ids)
        cluster.insert_unique(keys, reference_vectors(0, ids, 16), dim=16)
        outcome = cluster.query_unique(np.zeros(50), keys, dim=16)
        assert outcome.gather_time == 0.0

    def test_shard_step_bounded_by_slowest(self, specs):
        cluster = self._cluster(specs, 2)
        cluster.tick()
        keys = cluster.codec.encode(0, np.arange(100, dtype=np.uint64))
        outcome = cluster.query_unique(np.zeros(100), keys, dim=16)
        assert outcome.shard_time >= 0
        assert sum(outcome.per_gpu_keys) == 100

    def test_load_imbalance_near_one_for_hash(self, specs):
        cluster = self._cluster(specs, 4)
        keys = cluster.codec.encode(0, np.arange(2000, dtype=np.uint64) % 2000)
        assert cluster.load_imbalance(keys) < 1.3

    def test_bigger_cluster_holds_bigger_hot_set(self, specs):
        """The §5 motivation: N GPUs cache ~N x the embeddings."""
        small = self._cluster(specs, 1, ratio=0.02)
        large = self._cluster(specs, 4, ratio=0.02)
        small.tick(); large.tick()
        ids = np.arange(400, dtype=np.uint64)
        keys = small.codec.encode(1, ids)
        rows = reference_vectors(1, ids, 16)
        inserted_small = small.insert_unique(keys, rows, dim=16)
        inserted_large = large.insert_unique(keys, rows, dim=16)
        assert inserted_large > inserted_small

    def test_validation(self, specs):
        with pytest.raises(ConfigError):
            self._cluster(specs, 0)
