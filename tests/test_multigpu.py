"""Tests for multi-GPU flat caching (paper §5 future work)."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.errors import ConfigError
from repro.multigpu.cluster import InterconnectCost, MultiGpuFlatCache
from repro.multigpu.partition import HashPartitioner, TablePartitioner
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs


@pytest.fixture()
def specs():
    return make_table_specs([2000, 3000], [16, 16])


class TestHashPartitioner:
    def test_deterministic(self):
        p = HashPartitioner(4)
        keys = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(p.owner_of(keys), p.owner_of(keys))

    def test_owners_in_range(self):
        p = HashPartitioner(3)
        owners = p.owner_of(np.arange(1000, dtype=np.uint64))
        assert owners.min() >= 0 and owners.max() < 3

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        owners = p.owner_of(np.arange(40_000, dtype=np.uint64))
        counts = np.bincount(owners, minlength=4)
        assert counts.max() / counts.min() < 1.1

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigError):
            HashPartitioner(0)


class TestTablePartitioner:
    def test_round_robin_default(self):
        p = TablePartitioner(num_gpus=2, num_tables=5)
        np.testing.assert_array_equal(
            p.owner_of_tables(np.arange(5)), [0, 1, 0, 1, 0]
        )

    def test_custom_assignment(self):
        p = TablePartitioner(2, 3, assignment=[1, 1, 0])
        assert p.owner_of_tables(np.array([0]))[0] == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            TablePartitioner(2, 3, assignment=[0, 1])
        with pytest.raises(ConfigError):
            TablePartitioner(2, 3, assignment=[0, 1, 5])


class TestInterconnectCost:
    def test_latency_floor(self):
        ic = InterconnectCost()
        assert ic.transfer_time(1) >= ic.latency

    def test_zero_bytes_free(self):
        assert InterconnectCost().transfer_time(0) == 0.0

    def test_bandwidth_scaling(self):
        ic = InterconnectCost()
        assert ic.transfer_time(1 << 24) > ic.transfer_time(1 << 20)


class TestMultiGpuFlatCache:
    def _cluster(self, specs, num_gpus, ratio=0.1):
        return MultiGpuFlatCache(
            specs,
            FlecheConfig(cache_ratio=ratio, use_unified_index=False),
            hw=__import__("repro").default_platform(),
            num_gpus=num_gpus,
        )

    def test_capacity_scales_with_gpus(self, specs):
        one = self._cluster(specs, 1)
        four = self._cluster(specs, 4)
        assert four.total_capacity_slots == pytest.approx(
            4 * one.total_capacity_slots, rel=0.01
        )

    def test_no_duplication_across_shards(self, specs):
        cluster = self._cluster(specs, 3)
        cluster.tick()
        keys = cluster.codec.encode(0, np.arange(60, dtype=np.uint64))
        rows = reference_vectors(0, np.arange(60, dtype=np.uint64), 16)
        cluster.insert_unique(keys, rows, dim=16)
        resident = sum(len(shard.index) for shard in cluster.shards)
        assert resident == 60  # each key lives on exactly one GPU

    def test_query_returns_correct_vectors(self, specs):
        cluster = self._cluster(specs, 2)
        cluster.tick()
        ids = np.arange(40, dtype=np.uint64)
        keys = cluster.codec.encode(1, ids)
        rows = reference_vectors(1, ids, 16)
        cluster.insert_unique(keys, rows, dim=16)
        outcome = cluster.query_unique(
            np.full(40, 1), keys, dim=16
        )
        assert outcome.hit_mask.all()
        for pos, row in outcome.vectors.items():
            np.testing.assert_array_equal(row, rows[pos])

    def test_remote_hits_pay_interconnect(self, specs):
        cluster = self._cluster(specs, 4)
        cluster.tick()
        ids = np.arange(200, dtype=np.uint64)
        keys = cluster.codec.encode(0, ids)
        rows = reference_vectors(0, ids, 16)
        cluster.insert_unique(keys, rows, dim=16)
        outcome = cluster.query_unique(np.zeros(200), keys, dim=16)
        assert outcome.gather_time > 0

    def test_single_gpu_pays_no_gather(self, specs):
        cluster = self._cluster(specs, 1)
        cluster.tick()
        ids = np.arange(50, dtype=np.uint64)
        keys = cluster.codec.encode(0, ids)
        cluster.insert_unique(keys, reference_vectors(0, ids, 16), dim=16)
        outcome = cluster.query_unique(np.zeros(50), keys, dim=16)
        assert outcome.gather_time == 0.0

    def test_shard_step_bounded_by_slowest(self, specs):
        cluster = self._cluster(specs, 2)
        cluster.tick()
        keys = cluster.codec.encode(0, np.arange(100, dtype=np.uint64))
        outcome = cluster.query_unique(np.zeros(100), keys, dim=16)
        assert outcome.shard_time >= 0
        assert sum(outcome.per_gpu_keys) == 100

    def test_load_imbalance_near_one_for_hash(self, specs):
        cluster = self._cluster(specs, 4)
        keys = cluster.codec.encode(0, np.arange(2000, dtype=np.uint64) % 2000)
        assert cluster.load_imbalance(keys) < 1.3

    def test_bigger_cluster_holds_bigger_hot_set(self, specs):
        """The §5 motivation: N GPUs cache ~N x the embeddings."""
        small = self._cluster(specs, 1, ratio=0.02)
        large = self._cluster(specs, 4, ratio=0.02)
        small.tick(); large.tick()
        ids = np.arange(400, dtype=np.uint64)
        keys = small.codec.encode(1, ids)
        rows = reference_vectors(1, ids, 16)
        inserted_small = small.insert_unique(keys, rows, dim=16)
        inserted_large = large.insert_unique(keys, rows, dim=16)
        assert inserted_large > inserted_small

    def test_validation(self, specs):
        with pytest.raises(ConfigError):
            self._cluster(specs, 0)
