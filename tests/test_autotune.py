"""Tests for the closed-loop adaptive controller.

Covers the action pipeline (propose -> cooldown -> clamp -> hysteresis
-> execute -> exactly one outcome), the drift-boost enter/revert cycle,
the hit-collapse detector, the conservation law, trace spans, and the
disabled-controller byte-identity contract.
"""

from types import SimpleNamespace

import pytest

from repro import FlecheConfig, default_platform
from repro.autotune import (
    APPLIED,
    CLAMPED,
    SET_ADMISSION,
    SUPPRESSED,
    AdaptiveController,
    ControllerConfig,
)
from repro.core.precision import PrecisionConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError
from repro.obs import MetricsRegistry, WindowedCollector
from repro.obs.registry import install_conservation_laws
from repro.obs.spans import SpanTracer
from repro.obs.timeseries import WindowRecord
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


def _stack(quantizing=True, admission=1.0):
    """A fake server exposing exactly what ``attach`` needs."""
    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=3, corpus_size=2_000, alpha=-1.2, dim=16,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    precision = PrecisionConfig(enabled=True) if quantizing \
        else PrecisionConfig()
    layer = FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, precision=precision), hw,
    )
    if admission < 1.0:
        layer.cache.set_admission_probability(admission)
    registry = install_conservation_laws(MetricsRegistry())
    collector = WindowedCollector(window=1e-3, sla_budget=1e-3)
    collector.bind(registry)
    return SimpleNamespace(
        collector=collector,
        scheme=SimpleNamespace(cache=layer.cache),
        obs=registry,
        tracer=None,
    )


def _window(index, **values):
    return WindowRecord(
        index=index, start=index * 1e-3, end=(index + 1) * 1e-3,
        values=values,
    )


def _feed(controller, windows):
    for win in windows:
        controller._on_window(win)


def _healthy(index, hit_rate=0.9):
    return _window(
        index, hit_rate=hit_rate, sla_attainment=1.0,
        inserts=100.0, evictions=10.0, drift_flag=0.0,
    )


def _warmup(controller, count=4):
    _feed(controller, [_healthy(i) for i in range(count)])


def _prime(controller, ema=0.9, windows=5):
    """Skip past warmup without feeding windows (which would trigger the
    recover guard whenever admission starts below 1.0)."""
    controller._hit_ema = ema
    controller._windows_into_run = windows


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ControllerConfig(cooldown_windows=-1)
        with pytest.raises(ConfigError):
            ControllerConfig(hysteresis=1.0)
        with pytest.raises(ConfigError):
            ControllerConfig(boost_thresholds=(1, 2))
        with pytest.raises(ConfigError):
            ControllerConfig(admission_step=1.0)
        with pytest.raises(ConfigError):
            ControllerConfig(hit_collapse_delta=0.0)

    def test_attach_requires_collector(self):
        server = _stack()
        server.collector = None
        with pytest.raises(ConfigError):
            AdaptiveController().attach(server)

    def test_attach_requires_flat_cache(self):
        server = _stack()
        server.scheme = SimpleNamespace(cache=None)
        with pytest.raises(ConfigError):
            AdaptiveController().attach(server)


class TestDisabled:
    def test_disabled_controller_is_inert(self):
        server = _stack()
        controller = AdaptiveController(ControllerConfig(enabled=False))
        controller.attach(server)
        assert not controller.attached
        controller.on_batch_complete(1.0)
        assert not server.obs.has_prefix("autotune.")
        assert controller.history == []

    def test_enabled_controller_latches_gauge_on_attach(self):
        server = _stack()
        AdaptiveController().attach(server)
        assert server.obs.has_prefix("autotune.")
        assert server.obs.gauge("autotune.admission_probability") == 1.0


class TestBoostCycle:
    def test_drift_flag_enters_boost_and_expiry_reverts(self):
        server = _stack(admission=0.5)
        controller = AdaptiveController()
        controller.attach(server)
        cache = server.scheme.cache
        _prime(controller)
        drift = _healthy(4)
        drift.values["drift_flag"] = 1.0
        controller._on_window(drift)
        assert controller._boost_remaining == controller.config.boost_windows
        assert cache.admission.probability == 1.0
        assert cache.admission.hot_min_count == \
            controller.config.boost_thresholds[0]
        reasons = {r.action.reason for r in controller.history}
        assert "drift-boost" in reasons
        # Boost counts down on clean windows, then reverts to cruise.
        _feed(controller, [
            _healthy(5 + i)
            for i in range(controller.config.boost_windows)
        ])
        assert controller._boost_remaining == 0
        assert cache.admission.probability == 0.5
        assert any(
            r.action.reason == "boost-expired" for r in controller.history
        )

    def test_re_flagged_drift_re_arms_boost(self):
        server = _stack(admission=0.5)
        controller = AdaptiveController()
        controller.attach(server)
        _prime(controller)
        drift = _healthy(4)
        drift.values["drift_flag"] = 1.0
        controller._on_window(drift)
        controller._on_window(_healthy(5))
        assert controller._boost_remaining == \
            controller.config.boost_windows - 1
        again = _healthy(6)
        again.values["drift_flag"] = 1.0
        controller._on_window(again)
        assert controller._boost_remaining == controller.config.boost_windows

    def test_hit_collapse_triggers_boost(self):
        server = _stack(admission=0.5)
        controller = AdaptiveController()
        controller.attach(server)
        _warmup(controller, count=5)   # EMA settles near 0.9
        assert controller._boost_remaining == 0
        controller._on_window(_healthy(5, hit_rate=0.4))
        assert controller._boost_remaining > 0

    def test_warmup_windows_excluded_from_ema(self):
        server = _stack()
        controller = AdaptiveController()
        controller.attach(server)
        # Cold-start windows with terrible hit rates must not poison the
        # baseline: after warmup the EMA reflects only healthy windows.
        _feed(controller, [_healthy(i, hit_rate=0.0) for i in range(3)])
        assert controller._hit_ema is None
        _feed(controller, [_healthy(3 + i) for i in range(2)])
        assert controller._hit_ema == pytest.approx(0.9)


class TestActionPipeline:
    def test_cooldown_suppresses_repeat_kind(self):
        server = _stack()
        controller = AdaptiveController()
        controller.attach(server)
        _warmup(controller)
        bad = _healthy(4)
        bad.values["sla_attainment"] = 0.5
        controller._on_window(bad)
        assert server.scheme.cache.admission.probability == \
            pytest.approx(0.75)
        bad2 = _healthy(5)
        bad2.values["sla_attainment"] = 0.5
        controller._on_window(bad2)
        last = controller.history[-1]
        assert last.outcome == SUPPRESSED
        assert last.detail == "cooldown"
        assert server.scheme.cache.admission.probability == \
            pytest.approx(0.75)

    def test_hysteresis_suppresses_small_delta(self):
        server = _stack()
        controller = AdaptiveController(
            ControllerConfig(admission_step=0.02, hysteresis=0.05)
        )
        controller.attach(server)
        _warmup(controller)
        bad = _healthy(4)
        bad.values["sla_attainment"] = 0.5
        controller._on_window(bad)
        last = controller.history[-1]
        assert last.outcome == SUPPRESSED
        assert last.detail == "hysteresis"
        assert server.scheme.cache.admission.probability == 1.0

    def test_clamp_resolves_as_clamped(self):
        server = _stack(admission=0.12)
        controller = AdaptiveController(
            ControllerConfig(hysteresis=0.01, min_admission=0.1)
        )
        controller.attach(server)
        _prime(controller)
        bad = _healthy(4)
        bad.values["sla_attainment"] = 0.5
        controller._on_window(bad)
        last = controller.history[-1]
        assert last.action.kind == SET_ADMISSION
        assert last.outcome == CLAMPED
        assert last.executed == pytest.approx(0.1)
        assert server.scheme.cache.admission.probability == \
            pytest.approx(0.1)

    def test_recovery_steps_admission_back_up(self):
        server = _stack(admission=0.5)
        controller = AdaptiveController(ControllerConfig(cooldown_windows=0))
        controller.attach(server)
        _warmup(controller)
        _feed(controller, [_healthy(4 + i) for i in range(6)])
        assert server.scheme.cache.admission.probability == \
            pytest.approx(1.0)
        outcomes = {
            r.action.reason for r in controller.history
            if r.outcome in (APPLIED, CLAMPED)
        }
        assert "recover" in outcomes

    def test_churn_guard_fires_at_low_hit_rate(self):
        server = _stack()
        controller = AdaptiveController()
        controller.attach(server)
        _feed(controller, [_healthy(i, hit_rate=float("nan"))
                           for i in range(4)])
        churn = _window(
            4, hit_rate=0.05, sla_attainment=1.0,
            inserts=100.0, evictions=95.0, drift_flag=0.0,
        )
        controller._on_window(churn)
        last = controller.history[-1]
        assert last.action.reason == "churn-guard"
        assert last.outcome == APPLIED


class TestAccounting:
    def test_conservation_law_holds(self):
        server = _stack(admission=0.5)
        controller = AdaptiveController()
        controller.attach(server)
        _warmup(controller)
        for i in range(4, 16):
            win = _healthy(i)
            if i % 4 == 0:
                win.values["drift_flag"] = 1.0
            if i % 5 == 0:
                win.values["sla_attainment"] = 0.5
            controller._on_window(win)
        registry = server.obs
        proposed = registry.total("autotune.proposed")
        assert proposed > 0
        assert proposed == (
            registry.total("autotune.applied")
            + registry.total("autotune.suppressed")
            + registry.total("autotune.clamped")
        )
        registry.check()   # the declared autotune law must audit clean

    def test_every_history_record_has_one_outcome(self):
        server = _stack(admission=0.5)
        controller = AdaptiveController()
        controller.attach(server)
        _warmup(controller)
        drift = _healthy(4)
        drift.values["drift_flag"] = 1.0
        controller._on_window(drift)
        assert controller.history
        for record in controller.history:
            assert record.outcome in (APPLIED, SUPPRESSED, CLAMPED)

    def test_actions_land_as_trace_spans(self):
        server = _stack(admission=0.5)
        server.tracer = SpanTracer()
        controller = AdaptiveController()
        controller.attach(server)
        _warmup(controller)
        drift = _healthy(4)
        drift.values["drift_flag"] = 1.0
        controller._on_window(drift)
        spans = [
            s for s in server.tracer.span_list() if s[0] == "autotune"
        ]
        assert spans
        assert any(SET_ADMISSION in name for _, name, *_ in spans)


class TestServingIntegration:
    def _serve(self, controller):
        hw = default_platform()
        dataset = uniform_tables_spec(
            num_tables=2, corpus_size=1_000, alpha=-1.2, dim=8,
        )
        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.05), hw,
        )
        collector = WindowedCollector(window=1e-3, sla_budget=1e-3)
        server = PipelinedInferenceServer(
            dataset, layer, hw, depth=2,
            policy=BatchingPolicy(max_batch_size=128, max_delay=2e-4),
            collector=collector,
            autotuner=controller,
        )
        requests = PoissonArrivals(dataset, 50_000.0, seed=3).generate(400)
        report = server.serve(requests)
        return report, server

    def test_disabled_is_byte_identical_to_absent(self):
        base, base_server = self._serve(None)
        off, off_server = self._serve(
            AdaptiveController(ControllerConfig(enabled=False))
        )
        assert [float(x) for x in base.latencies] == \
            [float(x) for x in off.latencies]
        assert base.hits == off.hits and base.misses == off.misses
        for server in (base_server, off_server):
            assert not server.obs.has_prefix("autotune.")

    def test_enabled_run_consumes_windows_and_audits(self):
        controller = AdaptiveController()
        report, server = self._serve(controller)
        assert report.served == 400
        assert controller.attached
        # The trailing flush closes one final partial window after the
        # last batch; a post-run poll catches the controller up.
        controller.on_batch_complete(report.span)
        assert controller._seen_windows == \
            server.collector.closed_windows
        server.obs.check()

    def test_collector_reset_reanchors_consumption(self):
        controller = AdaptiveController()
        _, server = self._serve(controller)
        seen = controller._seen_windows
        assert seen > 0
        # A fresh run restarts the simulated clock: the collector
        # re-anchors and the controller must follow instead of going
        # dead (closed_windows < _seen_windows forever).
        server.collector.reset(0.0)
        assert server.collector.closed_windows == 0
        server.collector.observe_batch(5e-3, [1e-4])
        server.collector.flush(6e-3)
        controller.on_batch_complete(6e-3)
        assert controller._seen_windows == \
            server.collector.closed_windows

    def test_zero_autotune_metrics_when_off_mid_catalogue(self):
        # The registry law is declared unconditionally; with no
        # controller the law's terms must not exist even as zero keys.
        _, server = self._serve(None)
        names = {name for (name, _), _ in server.obs.counter_state().items()}
        assert not any(n.startswith("autotune.") for n in names)
