"""Tests for the executor: clock choreography and accounting."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.executor import Executor
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.stats import Category
from repro.gpusim.transfer import CopyMethod


def _kernel(threads=1024, nbytes=1 << 20):
    return KernelSpec("k", threads=threads, stream_bytes=nbytes)


class TestLaunch:
    def test_launch_charges_cpu_maintenance(self, executor, hw):
        executor.launch(_kernel())
        assert executor.cpu.now == pytest.approx(hw.kernel.launch_overhead)
        assert executor.stats.maintenance_time == pytest.approx(
            hw.kernel.launch_overhead
        )

    def test_launch_is_asynchronous(self, executor):
        done = executor.launch(_kernel())
        # CPU continues before the kernel completes.
        assert executor.cpu.now < done

    def test_kernels_on_one_stream_serialise(self, executor):
        s = executor.stream("s")
        end1 = executor.launch(_kernel(), stream=s)
        end2 = executor.launch(_kernel(), stream=s)
        assert end2 > end1

    def test_kernels_on_different_streams_overlap(self, executor, hw):
        a = executor.stream("a")
        b = executor.stream("b")
        end_a = executor.launch(_kernel(), stream=a)
        end_b = executor.launch(_kernel(), stream=b)
        # The second launch starts before the first completes.
        overlap = end_a - (end_b - (end_a - 0))  # sanity of construction
        assert end_b < 2 * end_a - hw.kernel.launch_overhead

    def test_launch_counts_kernels(self, executor):
        executor.launch(_kernel())
        executor.launch(_kernel())
        assert executor.stats.counters["kernel_launches"] == 2

    def test_launch_records_category(self, executor):
        executor.launch(_kernel(), category=Category.MLP)
        assert executor.stats.seconds[Category.MLP] > 0


class TestSynchronize:
    def test_sync_blocks_cpu_until_stream_drains(self, executor):
        end = executor.launch(_kernel())
        executor.synchronize(executor.default_stream)
        assert executor.cpu.now >= end

    def test_sync_all_waits_for_every_stream(self, executor):
        ends = [
            executor.launch(_kernel(), stream=executor.stream(f"s{i}"))
            for i in range(3)
        ]
        executor.synchronize(None)
        assert executor.cpu.now >= max(ends)

    def test_sync_charges_overhead(self, executor, hw):
        before = executor.stats.maintenance_time
        executor.synchronize(executor.default_stream)
        assert executor.stats.maintenance_time - before == pytest.approx(
            hw.kernel.sync_overhead
        )


class TestHostWork:
    def test_host_work_advances_cpu_only(self, executor):
        executor.host_work(1e-3, Category.DRAM_INDEX)
        assert executor.cpu.now == pytest.approx(1e-3)
        assert executor.default_stream.ready_time == 0.0

    def test_host_work_overlaps_device(self, executor):
        end = executor.launch(_kernel(nbytes=1 << 24))
        executor.host_work(1e-6, Category.DRAM_INDEX)
        # Host work finished long before the kernel.
        assert executor.cpu.now < end

    def test_negative_duration_rejected(self, executor):
        with pytest.raises(SimulationError):
            executor.host_work(-1.0, Category.OTHER)


class TestCopies:
    def test_sync_copy_blocks_cpu(self, executor, hw):
        executor.copy(1 << 20, Category.DRAM_COPY, method=CopyMethod.CUDAMEMCPY)
        expected = hw.interconnect.cudamemcpy_overhead + (1 << 20) / hw.interconnect.pcie_bandwidth
        assert executor.cpu.now == pytest.approx(expected)

    def test_async_copy_frees_cpu(self, executor, hw):
        s = executor.stream("copy")
        executor.copy(1 << 24, Category.DRAM_COPY, async_stream=s)
        assert executor.cpu.now < s.ready_time

    def test_copy_overhead_is_maintenance(self, executor):
        executor.copy(128, Category.DRAM_COPY)
        assert executor.stats.maintenance_time > 0


class TestElapsedAndReset:
    def test_elapsed_is_max_of_clocks(self, executor):
        end = executor.launch(_kernel(nbytes=1 << 24))
        assert executor.elapsed() == pytest.approx(end)

    def test_drain_syncs_everything(self, executor):
        executor.launch(_kernel(), stream=executor.stream("x"))
        total = executor.drain()
        assert executor.cpu.now == pytest.approx(total)

    def test_reset_clears_all_state(self, executor):
        executor.launch(_kernel())
        executor.reset()
        assert executor.elapsed() == 0.0
        assert executor.stats.total() == 0.0

    def test_stream_identity_is_stable(self, executor):
        assert executor.stream("a") is executor.stream("a")
