"""Tests for the GPU slab hash index."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hashindex.slab_hash import EMPTY_KEY, SLAB_SLOTS, SlabHashIndex


def keys_of(*values):
    return np.array(values, dtype=np.uint64)


class TestBasics:
    def test_empty_index(self):
        idx = SlabHashIndex(100)
        assert len(idx) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            SlabHashIndex(0)

    def test_rejects_bad_load_factor(self):
        with pytest.raises(SimulationError):
            SlabHashIndex(100, load_factor=0.0)

    def test_slots_cover_capacity(self):
        idx = SlabHashIndex(100, load_factor=0.5)
        assert idx.slots >= 200
        assert idx.slots % SLAB_SLOTS == 0

    def test_metadata_bytes_positive(self):
        assert SlabHashIndex(100).metadata_bytes > 0


class TestInsertLookup:
    def test_roundtrip(self):
        idx = SlabHashIndex(1000)
        keys = keys_of(1, 2, 3, 4)
        values = keys * np.uint64(10)
        idx.insert(keys, values, stamp=1)
        found, got, _ = idx.lookup(keys)
        assert found.all()
        np.testing.assert_array_equal(got, values)

    def test_missing_keys_not_found(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(1, 2), keys_of(10, 20), stamp=1)
        found, _, _ = idx.lookup(keys_of(3, 4))
        assert not found.any()

    def test_mixed_hits_and_misses(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(5), keys_of(50), stamp=1)
        found, values, _ = idx.lookup(keys_of(5, 6))
        assert found.tolist() == [True, False]
        assert values[0] == 50

    def test_overwrite_updates_value(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(7), keys_of(70), stamp=1)
        idx.insert(keys_of(7), keys_of(71), stamp=2)
        _, values, _ = idx.lookup(keys_of(7))
        assert values[0] == 71
        assert len(idx) == 1

    def test_no_overwrite_preserves_value(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(7), keys_of(70), stamp=1)
        idx.insert(keys_of(7), keys_of(71), stamp=2, overwrite=False)
        _, values, _ = idx.lookup(keys_of(7))
        assert values[0] == 70

    def test_duplicate_keys_in_batch_collapse(self):
        idx = SlabHashIndex(1000)
        result = idx.insert(keys_of(9, 9, 9), keys_of(1, 2, 3), stamp=1)
        assert len(result.keys) == 1
        assert len(idx) == 1
        _, values, _ = idx.lookup(keys_of(9))
        assert values[0] == 1  # first occurrence wins

    def test_insert_reports_landing_slots(self):
        idx = SlabHashIndex(1000)
        result = idx.insert(keys_of(1, 2, 3), keys_of(0, 0, 0), stamp=1)
        assert (result.slots >= 0).all()
        assert len(np.unique(result.slots)) == 3

    def test_shape_mismatch_rejected(self):
        idx = SlabHashIndex(100)
        with pytest.raises(SimulationError):
            idx.insert(keys_of(1, 2), keys_of(1), stamp=0)

    def test_empty_batch(self):
        idx = SlabHashIndex(100)
        found, values, stats = idx.lookup(np.zeros(0, np.uint64))
        assert len(found) == 0
        assert stats.lookups == 0
        result = idx.insert(np.zeros(0, np.uint64), np.zeros(0, np.uint64), 0)
        assert len(result.keys) == 0


class TestTimestampsAndLru:
    def test_lookup_refreshes_stamp(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(3), keys_of(30), stamp=1)
        idx.lookup(keys_of(3), stamp=5)
        assert idx.stamp_of(3) == 5

    def test_lookup_without_stamp_preserves(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(3), keys_of(30), stamp=1)
        idx.lookup(keys_of(3))
        assert idx.stamp_of(3) == 1

    def test_bucket_full_evicts_stalest(self):
        # One-bucket index: SLAB_SLOTS capacity, then LRU displacement.
        idx = SlabHashIndex(SLAB_SLOTS, load_factor=1.0)
        assert idx.num_buckets == 1
        keys = np.arange(SLAB_SLOTS, dtype=np.uint64)
        for i, k in enumerate(keys):
            idx.insert(keys_of(int(k)), keys_of(int(k) * 10), stamp=i)
        result = idx.insert(keys_of(999), keys_of(9990), stamp=100)
        # Key 0 (stamp 0) was the coldest.
        assert result.evicted_values.tolist() == [0]
        found, _, _ = idx.lookup(keys_of(0))
        assert not found[0]

    def test_touch_protects_from_eviction(self):
        idx = SlabHashIndex(SLAB_SLOTS, load_factor=1.0)
        keys = np.arange(SLAB_SLOTS, dtype=np.uint64)
        for i, k in enumerate(keys):
            idx.insert(keys_of(int(k)), keys_of(int(k)), stamp=i)
        idx.lookup(keys_of(0), stamp=50)  # refresh the oldest
        idx.insert(keys_of(777), keys_of(777), stamp=51)
        found, _, _ = idx.lookup(keys_of(0))
        assert found[0]  # key 1 was evicted instead


class TestErase:
    def test_erase_removes(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(1, 2), keys_of(10, 20), stamp=1)
        removed, _ = idx.erase(keys_of(1))
        assert removed[0]
        assert len(idx) == 1
        found, _, _ = idx.lookup(keys_of(1, 2))
        assert found.tolist() == [False, True]

    def test_erase_missing_is_noop(self):
        idx = SlabHashIndex(1000)
        removed, _ = idx.erase(keys_of(42))
        assert not removed[0]

    def test_slot_reusable_after_erase(self):
        idx = SlabHashIndex(SLAB_SLOTS, load_factor=1.0)
        keys = np.arange(SLAB_SLOTS, dtype=np.uint64)
        idx.insert(keys, keys, stamp=1)
        idx.erase(keys_of(3))
        result = idx.insert(keys_of(100), keys_of(100), stamp=2)
        assert len(result.evicted_values) == 0  # reused the vacancy


class TestScan:
    def test_scan_returns_occupied(self):
        idx = SlabHashIndex(1000)
        idx.insert(keys_of(1, 2, 3), keys_of(10, 20, 30), stamp=7)
        keys, values, stamps = idx.scan()
        assert sorted(keys.tolist()) == [1, 2, 3]
        assert (stamps == 7).all()

    def test_scan_empty(self):
        keys, values, stamps = SlabHashIndex(100).scan()
        assert len(keys) == 0


class TestProbeStats:
    def test_lookup_one_transaction_per_key(self):
        idx = SlabHashIndex(1000)
        _, _, stats = idx.lookup(np.arange(10, dtype=np.uint64))
        assert stats.lookups == 10
        assert stats.transactions == 10

    def test_insert_two_transactions_per_key(self):
        idx = SlabHashIndex(1000)
        result = idx.insert(
            np.arange(10, dtype=np.uint64), np.zeros(10, np.uint64), stamp=1
        )
        assert result.stats.transactions == 20

    def test_merged_with(self):
        from repro.hashindex.slab_hash import ProbeStats

        a = ProbeStats(10, 10, 1.0)
        b = ProbeStats(30, 60, 3.0)
        merged = a.merged_with(b)
        assert merged.lookups == 40
        assert merged.transactions == 70
        assert merged.dependent_hops == pytest.approx(2.5)

    def test_merged_with_empty(self):
        from repro.hashindex.slab_hash import ProbeStats

        assert ProbeStats(0, 0, 0.0).merged_with(ProbeStats(0, 0, 0.0)).lookups == 0
