"""Unit tests for mixed-precision, frequency-aware cache entries.

Covers the tentpole end to end: config validation, tiered capacity
arithmetic, quantize-on-insert / dequantize-on-gather through the flat
cache, spill-under-pressure, on-hit retiering with conservation-counter
accounting, the tier-preserving DRAM / embedding-table write-through
paths, and the AUC-proxy regression gate (int8 tail within epsilon).
"""

import numpy as np
import pytest

from repro.coding.size_aware import SizeAwareCodec
from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.core.precision import (
    PrecisionConfig,
    TIER_CODES,
    quantize_rows,
    dequantize_rows,
    slot_payload_bytes,
)
from repro.errors import ConfigError, SimulationError
from repro.hardware import default_platform
from repro.mempool.slab_pool import SlabMemoryPool
from repro.model.trainer import CollisionAucStudy, SyntheticCtrTask
from repro.multitier.dram_cache import DramCacheLayer
from repro.tables.embedding_table import (
    EmbeddingTable, reference_vectors,
)
from repro.tables.store import EmbeddingStore
from repro.tables.table_spec import TableSpec

MIXED = PrecisionConfig(
    enabled=True, fp32_share=0.4, fp16_share=0.3, int8_share=0.3,
    eviction_policy="lfu",
)


def _cache(precision, ratio=0.5, corpus=1000, dim=16):
    specs = [TableSpec(table_id=0, corpus_size=corpus, dim=dim)]
    return FlatCache(
        specs, FlecheConfig(cache_ratio=ratio, precision=precision)
    )


class TestPrecisionConfig:
    def test_default_is_disabled_and_not_quantizing(self):
        config = PrecisionConfig()
        assert not config.enabled
        assert not config.quantizing
        assert not config.needs_estimator

    def test_pinned_fp32_not_quantizing(self):
        pinned = PrecisionConfig(
            enabled=True, fp32_share=1.0, fp16_share=0.0, int8_share=0.0,
        )
        assert not pinned.quantizing
        assert not pinned.needs_estimator
        assert pinned.tiers_in_use() == ("fp32",)

    def test_lfu_without_quantizing_still_needs_estimator(self):
        config = PrecisionConfig(
            enabled=True, fp32_share=1.0, fp16_share=0.0, int8_share=0.0,
            eviction_policy="lfu",
        )
        assert not config.quantizing
        assert config.needs_estimator

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            PrecisionConfig(enabled=True, fp32_share=0.5, fp16_share=0.5,
                            int8_share=0.5)

    def test_fp32_share_required(self):
        with pytest.raises(ConfigError):
            PrecisionConfig(enabled=True, fp32_share=0.0, fp16_share=0.5,
                            int8_share=0.5)

    def test_policy_requires_enabled(self):
        with pytest.raises(ConfigError):
            PrecisionConfig(eviction_policy="lfu")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            PrecisionConfig(enabled=True, eviction_policy="mru")

    def test_threshold_ordering(self):
        with pytest.raises(ConfigError):
            PrecisionConfig(enabled=True, hot_min_count=2, warm_min_count=8)

    def test_payload_bytes(self):
        assert slot_payload_bytes(32, "fp32") == 128
        assert slot_payload_bytes(32, "fp16") == 64
        assert slot_payload_bytes(32, "int8") == 36


class TestTieredPool:
    def test_tiered_capacity_beats_fp32_at_matched_bytes(self):
        plain = _cache(PrecisionConfig())
        mixed = _cache(MIXED)
        assert mixed.pool.total_bytes <= plain.pool.total_bytes * 1.01
        assert (
            mixed.pool.capacity_of(16) > plain.pool.capacity_of(16) * 1.4
        )

    def test_untier_pool_rejects_born_metadata(self):
        pool = SlabMemoryPool({16: 32})
        locs = pool.allocate(16, 4)
        with pytest.raises(SimulationError):
            pool.set_born(locs, 0)

    def test_write_read_roundtrip_per_tier(self):
        pool = SlabMemoryPool(
            {(8, "fp32"): 16, (8, "fp16"): 16, (8, "int8"): 16}
        )
        rng = np.random.default_rng(1)
        rows = rng.normal(size=(6, 8)).astype(np.float32)
        for tier in ("fp32", "fp16", "int8"):
            locs = pool.allocate(8, 6, tier=tier)
            pool.write(locs, rows)
            back = pool.read(locs)
            payload, scales = quantize_rows(rows, tier)
            np.testing.assert_array_equal(
                back, dequantize_rows(payload, scales, tier)
            )
            assert (
                pool.tier_codes_of_locations(locs) == TIER_CODES[tier]
            ).all()

    def test_mixed_tier_gather_orders_rows(self):
        pool = SlabMemoryPool({(8, "fp32"): 16, (8, "fp16"): 16})
        rows = np.arange(16, dtype=np.float32).reshape(2, 8)
        a = pool.allocate(8, 1, tier="fp32")
        b = pool.allocate(8, 1, tier="fp16")
        pool.write(a, rows[:1])
        pool.write(b, rows[1:])
        both = np.concatenate([b, a])  # deliberately out of class order
        out = pool.read(both)
        np.testing.assert_array_equal(out[1], rows[0])
        np.testing.assert_allclose(out[0], rows[1], rtol=1e-3)


class TestTieredInsertAndGather:
    def test_hot_keys_land_fp32_tail_lands_cold(self):
        cache = _cache(MIXED)
        keys = np.arange(40, dtype=np.uint64)
        vecs = np.random.default_rng(0).normal(size=(40, 16)).astype(
            np.float32
        )
        for _ in range(10):
            cache.observe_keys(keys[:4])  # hot subset
        cache.observe_keys(keys)
        cache.admit_and_insert(keys, vecs, dim=16)
        outcome = cache.index_lookup(keys)
        assert outcome.cache_hit.all()
        codes = cache.pool.tier_codes_of_locations(outcome.locations)
        assert (codes[:4] == TIER_CODES["fp32"]).all()
        assert (codes[4:] > TIER_CODES["fp32"]).all()

    def test_gather_error_bounded_by_tier(self):
        cache = _cache(MIXED)
        keys = np.arange(30, dtype=np.uint64)
        vecs = np.random.default_rng(2).normal(size=(30, 16)).astype(
            np.float32
        )
        cache.observe_keys(keys)
        cache.admit_and_insert(keys, vecs, dim=16)
        outcome = cache.index_lookup(keys)
        got = cache.gather(outcome.locations[outcome.cache_hit])
        err = np.abs(got - vecs[outcome.cache_hit]).max(axis=1)
        # int8 per-row error <= max|row|/127 * 0.51
        bound = np.abs(vecs[outcome.cache_hit]).max(axis=1) / 127 * 0.51
        assert (err <= bound + 1e-6).all()

    def test_spill_keeps_overflow_cached_in_colder_tier(self):
        # Tiny cache: fp32 class can't hold every "hot" key; overflow
        # must still be cached (in a colder tier), not evicted.
        precision = PrecisionConfig(
            enabled=True, fp32_share=0.2, fp16_share=0.2, int8_share=0.6,
            hot_min_count=1, warm_min_count=1,
        )
        cache = _cache(precision, ratio=0.1)
        fp32_cap = cache.pool.capacity_of(16, "fp32")
        n = fp32_cap + 10
        keys = np.arange(n, dtype=np.uint64)
        vecs = np.zeros((n, 16), dtype=np.float32)
        for _ in range(3):
            cache.observe_keys(keys)  # everything "hot"
        inserted, _ = cache.admit_and_insert(keys, vecs, dim=16)
        assert inserted.all()
        outcome = cache.index_lookup(keys)
        assert outcome.cache_hit.all()
        codes = cache.pool.tier_codes_of_locations(outcome.locations)
        assert (codes == TIER_CODES["fp32"]).sum() == fp32_cap
        assert (codes != TIER_CODES["fp32"]).sum() == 10

    def test_zero_share_tier_clamps_hotter(self):
        precision = PrecisionConfig(
            enabled=True, fp32_share=0.5, fp16_share=0.0, int8_share=0.5,
        )
        cache = _cache(precision)
        # Desired codes include fp16 (1); the pool has no fp16 class.
        codes = cache._clamp_codes(
            16, np.array([0, 1, 2], dtype=np.int8)
        )
        np.testing.assert_array_equal(codes, [0, 0, 2])

    def test_retier_promotes_on_frequency_crossing(self):
        cache = _cache(MIXED)
        keys = np.arange(20, dtype=np.uint64)
        vecs = np.random.default_rng(3).normal(size=(20, 16)).astype(
            np.float32
        )
        cache.observe_keys(keys)
        cache.admit_and_insert(keys, vecs, dim=16)
        out = cache.index_lookup(keys)
        before = cache.pool.tier_codes_of_locations(out.locations)
        assert (before > TIER_CODES["fp32"]).all()
        for _ in range(10):
            cache.observe_keys(keys)  # cross the hot threshold
        out = cache.index_lookup(keys)
        rows = cache.gather(out.locations)
        promoted, demoted = cache.retier_hits(
            keys, out.locations, rows, 16
        )
        assert promoted > 0 and demoted == 0
        out2 = cache.index_lookup(keys)
        after = cache.pool.tier_codes_of_locations(out2.locations)
        assert (after < before).any()
        # Step-weighted counters balance against live drift.
        cache._audit_pool()
        snap = cache.obs.snapshot()
        assert snap.total("precision.promotions") == (
            snap.gauge("precision.drift_up_live")
            + snap.total("precision.drift_up_retired")
        )

    def test_entry_split_gauges_match(self):
        cache = _cache(MIXED)
        keys = np.arange(25, dtype=np.uint64)
        vecs = np.zeros((25, 16), dtype=np.float32)
        cache.observe_keys(keys)
        cache.admit_and_insert(keys, vecs, dim=16)
        cache._audit_pool()
        snap = cache.obs.snapshot()
        split = (
            snap.gauge("precision.entries_fp32")
            + snap.gauge("precision.entries_fp16")
            + snap.gauge("precision.entries_int8")
        )
        assert split == snap.gauge("precision.cached_entries") == 25
        byte_sum = (
            snap.gauge("precision.bytes_fp32")
            + snap.gauge("precision.bytes_fp16")
            + snap.gauge("precision.bytes_int8")
        )
        assert 0 < byte_sum <= snap.gauge("precision.byte_budget")

    def test_pinned_fp32_cache_identical_to_disabled(self):
        pinned = PrecisionConfig(
            enabled=True, fp32_share=1.0, fp16_share=0.0, int8_share=0.0,
        )
        a = _cache(PrecisionConfig())
        b = _cache(pinned)
        assert not b.quantizing
        assert b.pool.capacity_of(16) == a.pool.capacity_of(16)
        keys = np.arange(30, dtype=np.uint64)
        vecs = np.random.default_rng(5).normal(size=(30, 16)).astype(
            np.float32
        )
        for cache in (a, b):
            cache.observe_keys(keys)
            cache.admit_and_insert(keys, vecs, dim=16)
        out_a = a.index_lookup(keys)
        out_b = b.index_lookup(keys)
        np.testing.assert_array_equal(
            a.gather(out_a.locations), b.gather(out_b.locations)
        )
        snap = b.obs.snapshot()
        names = [n for (n, _) in snap.counters]
        assert not any(n.startswith("precision.") for n in names)


class TestDramTier:
    def _layer(self, tier):
        specs = [TableSpec(table_id=0, corpus_size=500, dim=8)]

        def fetch(table_id, ids):
            return reference_vectors(table_id, ids, 8), 1e-6

        return DramCacheLayer(specs, capacity=64, fetch=fetch,
                              storage_tier=tier), specs

    def test_fp32_layer_is_exact(self):
        layer, _ = self._layer("fp32")
        ids = np.arange(10, dtype=np.uint64)
        vectors, _ = layer.lookup(0, ids)
        np.testing.assert_array_equal(
            vectors, reference_vectors(0, ids, 8)
        )
        again, _ = layer.lookup(0, ids)
        np.testing.assert_array_equal(again, vectors)

    @pytest.mark.parametrize("tier", ["fp16", "int8"])
    def test_quantized_residency_roundtrips(self, tier):
        layer, _ = self._layer(tier)
        ids = np.arange(10, dtype=np.uint64)
        truth = reference_vectors(0, ids, 8)
        first, _ = layer.lookup(0, ids)  # fetch path: exact values served
        hit, cost = layer.lookup(0, ids)  # resident: dequantized
        assert cost == 0.0
        payload, scales = quantize_rows(truth, tier)
        np.testing.assert_array_equal(
            hit, dequantize_rows(payload, scales, tier)
        )

    def test_refresh_requantizes_at_layer_tier(self):
        layer, _ = self._layer("int8")
        ids = np.arange(5, dtype=np.uint64)
        layer.lookup(0, ids)
        new_rows = np.full((5, 8), 0.5, dtype=np.float32)
        updated = layer.refresh(0, ids, new_rows)
        assert updated == 5
        got, _ = layer.lookup(0, ids)
        payload, scales = quantize_rows(new_rows, "int8")
        np.testing.assert_array_equal(
            got, dequantize_rows(payload, scales, "int8")
        )

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError):
            self._layer("fp8")


class TestTableTier:
    def test_fp32_table_bit_exact(self):
        spec = TableSpec(table_id=0, corpus_size=100, dim=8)
        table = EmbeddingTable(spec)
        ids = np.arange(10, dtype=np.uint64)
        np.testing.assert_array_equal(
            table.lookup(ids), reference_vectors(0, ids, 8)
        )

    @pytest.mark.parametrize("tier", ["fp16", "int8"])
    def test_reduced_table_serves_tier_values(self, tier):
        spec = TableSpec(table_id=0, corpus_size=100, dim=8)
        table = EmbeddingTable(spec, storage_tier=tier)
        ids = np.arange(10, dtype=np.uint64)
        truth = reference_vectors(0, ids, 8)
        payload, scales = quantize_rows(truth, tier)
        np.testing.assert_array_equal(
            table.lookup(ids), dequantize_rows(payload, scales, tier)
        )

    def test_update_rows_requantizes(self):
        spec = TableSpec(table_id=0, corpus_size=100, dim=8)
        table = EmbeddingTable(spec, storage_tier="int8")
        ids = np.arange(4, dtype=np.uint64)
        rows = np.full((4, 8), 1.25, dtype=np.float32)
        assert table.update_rows(ids, rows) == 4
        payload, scales = quantize_rows(rows, "int8")
        np.testing.assert_array_equal(
            table.lookup(ids), dequantize_rows(payload, scales, "int8")
        )

    def test_store_value_tier_and_update(self):
        hw = default_platform()
        specs = [TableSpec(table_id=0, corpus_size=200, dim=8)]
        store = EmbeddingStore(specs, hw, value_tier="fp16")
        ids = np.arange(6, dtype=np.uint64)
        truth = reference_vectors(0, ids, 8)
        payload, scales = quantize_rows(truth, "fp16")
        np.testing.assert_array_equal(
            store.query(0, ids).vectors,
            dequantize_rows(payload, scales, "fp16"),
        )
        rows = np.full((6, 8), 0.25, dtype=np.float32)
        assert store.update_rows(0, ids, rows) == 6

    def test_store_has_no_apply_update(self):
        # Guard: the refresh subscriber duck-types ``apply_update`` on
        # host stores; EmbeddingStore growing that name would silently
        # change every cluster replica's write-through behavior.
        assert not hasattr(EmbeddingStore, "apply_update")


class TestAucProxyRegression:
    """Exp #5's collision/AUC machinery, reused as the quantization gate:
    int8-quantizing the *tail* tier's weights must not move held-out AUC
    by more than the pinned epsilon."""

    EPSILON = 0.01

    @pytest.fixture(scope="class")
    def task(self):
        return SyntheticCtrTask(
            corpus_sizes=[64, 256, 1024],
            num_train=12000, num_test=3000, alpha=-0.8, seed=3,
        )

    def test_int8_tail_within_epsilon(self, task):
        study = CollisionAucStudy(task, epochs=4)
        codec = SizeAwareCodec(list(task.corpus_sizes), key_bits=32)
        baseline = study.auc_with_codec(codec)

        # Frequency split over the training stream: top-decile keys are
        # "hot" (kept fp32), the rest are the int8 tail.
        keys = np.zeros(task.train_features.shape, dtype=np.uint64)
        for t in range(task.train_features.shape[1]):
            keys[:, t] = codec.encode(t, task.train_features[:, t])
        flat, counts = np.unique(keys, return_counts=True)
        hot_cut = np.quantile(counts, 0.9)
        hot = set(flat[counts >= hot_cut].tolist())

        def tail_int8(weight_keys, weights):
            mask = np.array(
                [int(k) not in hot for k in weight_keys], dtype=bool
            )
            out = weights.astype(np.float64).copy()
            tail = weights[mask].astype(np.float32)
            if len(tail):
                payload, scales = quantize_rows(tail[None, :], "int8")
                out[mask] = dequantize_rows(
                    payload, scales, "int8"
                )[0].astype(np.float64)
            return out

        quantized = study.auc_with_codec(codec, weight_transform=tail_int8)
        assert abs(baseline - quantized) <= self.EPSILON, (
            baseline, quantized
        )

    def test_identity_transform_is_noop(self, task):
        study = CollisionAucStudy(task, epochs=4)
        codec = SizeAwareCodec(list(task.corpus_sizes), key_bits=32)
        plain = study.auc_with_codec(codec)
        identity = study.auc_with_codec(
            codec, weight_transform=lambda keys, weights: weights
        )
        assert plain == pytest.approx(identity, abs=1e-12)
