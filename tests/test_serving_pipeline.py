"""Tests for pipelined serving: stages, overlap, and miss coalescing."""

import numpy as np
import pytest

from repro import DeepCrossNetwork
from repro.baselines.per_table_cache import PerTableCacheLayer, PerTableConfig
from repro.core.config import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError, SimulationError
from repro.faults import (
    DegradeConfig,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    ShardOutage,
)
from repro.gpusim.clock import Timeline
from repro.gpusim.executor import Event, Executor, SharedResource
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import RemoteParameterServer
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy, form_batches
from repro.serving.pipeline import InFlightMissTable, PipelinedInferenceServer
from repro.serving.server import InferenceServer, ServingReport
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


@pytest.fixture(scope="module")
def dataset():
    return uniform_tables_spec(
        num_tables=4, corpus_size=2_000, alpha=-1.2, dim=16,
    )


def make_servers(dataset, hw, cls, *, include_dense=True, warm=True,
                 cache_ratio=0.05, **kwargs):
    """One fresh server (fresh store + cache) per call, optionally warmed."""
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=cache_ratio), hw
    )
    model = DeepCrossNetwork(
        num_tables=dataset.num_tables, embedding_dim=dataset.dim
    )
    server = cls(
        dataset, layer, hw,
        policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
        model=model, include_dense=include_dense, **kwargs,
    )
    if warm:
        server.serve(PoissonArrivals(dataset, 50_000.0, seed=1).generate(300))
    return server


#: A load well past the sequential service capacity of the small dataset,
#: so consecutive batches genuinely overlap in the pipelined loop.
OVERLOAD = 2_000_000.0


@pytest.fixture(scope="module")
def requests(dataset):
    return PoissonArrivals(dataset, OVERLOAD, seed=2).generate(900)


# ---------------------------------------------------------------------------
# Simulation primitives
# ---------------------------------------------------------------------------


class TestSharedResource:
    def test_serialises_occupancies(self):
        res = SharedResource("host")
        assert res.next_start(0.0) == 0.0
        res.occupy(0.0, 2.0)
        assert res.free_at == 2.0
        assert res.next_start(1.0) == 2.0
        res.occupy(res.next_start(1.0), 5.0)
        assert res.free_at == 5.0
        assert res.busy_time == pytest.approx(5.0)
        assert res.grants == 2

    def test_rejects_time_travel(self):
        res = SharedResource("pcie")
        res.occupy(0.0, 1.0)
        with pytest.raises(SimulationError):
            res.occupy(0.5, 0.7)  # starts before free_at
        with pytest.raises(SimulationError):
            res.occupy(2.0, 1.0)  # ends before it starts


class TestEvent:
    def test_wait_event_orders_streams(self, hw):
        executor = Executor(hw)
        a = executor.stream("a")
        b = executor.stream("b")
        a.ready_time = 5.0
        event = executor.record_event(stream=a, name="after-a")
        assert event.timestamp == 5.0
        executor.wait_event(b, event)
        assert b.ready_time == 5.0
        # Waiting never moves a stream backwards.
        executor.wait_event(a, Event(timestamp=1.0))
        assert a.ready_time == 5.0


class TestTimelineActive:
    def test_active_excludes_waits(self):
        t = Timeline("cpu")
        t.advance(2.0)
        t.advance_to(10.0)
        t.advance(1.0)
        assert t.now == pytest.approx(11.0)
        assert t.active == pytest.approx(3.0)
        t.reset()
        assert t.active == 0.0


# ---------------------------------------------------------------------------
# The in-flight miss table
# ---------------------------------------------------------------------------


class TestInFlightMissTable:
    def test_publish_match_retire(self):
        table = InFlightMissTable()
        table.set_owner(0)
        keys = np.array([10, 20, 30], np.uint64)
        table.publish(keys, np.ones((3, 4), np.float32) * 7.0)
        assert len(table) == 3

        mask, rows, degraded = table.match(
            np.array([20, 40, 30], np.uint64), dim=4
        )
        assert mask.tolist() == [True, False, True]
        assert rows.shape == (2, 4)
        assert (rows == 7.0).all()
        assert degraded == 0

        assert table.retire(1) == 0  # wrong owner: nothing dropped
        assert table.retire(0) == 3
        assert len(table) == 0
        assert table.stats.published_keys == 3
        assert table.stats.coalesced_keys == 2
        assert table.stats.retired_keys == 3

    def test_degraded_entries_counted(self):
        table = InFlightMissTable()
        table.set_owner("b1")
        table.publish(
            np.array([5], np.uint64), np.zeros((1, 2), np.float32),
            degraded=True,
        )
        _, _, degraded = table.match(np.array([5], np.uint64), dim=2)
        assert degraded == 1


# ---------------------------------------------------------------------------
# Depth 1 == the sequential loop, exactly
# ---------------------------------------------------------------------------


class TestDepthOneEquivalence:
    def test_depth_validation(self, dataset, hw):
        with pytest.raises(ConfigError):
            make_servers(dataset, hw, PipelinedInferenceServer, warm=False,
                         depth=0)

    def test_bitwise_identical_to_sequential(self, dataset, hw, requests):
        seq = make_servers(dataset, hw, InferenceServer)
        pipe = make_servers(dataset, hw, PipelinedInferenceServer, depth=1)
        a = seq.serve(requests)
        b = pipe.serve(requests)
        assert np.array_equal(a.latencies, b.latencies)
        assert np.array_equal(a.probabilities, b.probabilities)
        assert (a.hits, a.misses, a.unified_hits) == (
            b.hits, b.misses, b.unified_hits
        )
        assert a.span == b.span
        assert b.coalesced_keys == 0
        # One batch in flight: the table never holds a matchable entry.
        assert pipe.last_run.coalescing.coalesced_keys == 0
        assert pipe.last_run.depth == 1

    def test_degraded_accounting_matches_sequential(self, dataset, hw):
        def build(cls, **kwargs):
            schedule = FaultSchedule([
                ShardOutage(shard=s, start=2e-3, duration=6e-3)
                for s in range(4)
            ])
            remote = RemoteParameterServer(
                dataset.table_specs(),
                injector=FaultInjector(schedule, seed=11),
                retry_policy=RetryPolicy.naive(timeout=1e-3),
            )
            store = TieredParameterStore(
                dataset.table_specs(), hw, dram_capacity=600, remote=remote,
                degrade=DegradeConfig(policy="stale"),
            )
            layer = FlecheEmbeddingLayer(
                store, FlecheConfig(cache_ratio=0.05), hw
            )
            return cls(
                dataset, layer, hw,
                policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
                **kwargs,
            )

        reqs = PoissonArrivals(dataset, 40_000.0, seed=5).generate(400)
        a = build(InferenceServer).serve(reqs)
        b = build(PipelinedInferenceServer, depth=1).serve(reqs)
        assert a.degraded_requests == b.degraded_requests > 0
        assert a.retries == b.retries
        assert np.array_equal(a.latencies, b.latencies)
        assert a.fault_windows == b.fault_windows


# ---------------------------------------------------------------------------
# Depth >= 2: overlap with dependencies respected
# ---------------------------------------------------------------------------


def batch_finishes(report, requests, policy):
    """Reconstruct per-batch finish instants from per-request latencies."""
    batches = form_batches(requests, policy)
    finishes = []
    offset = 0
    for formed in batches:
        n = len(formed.requests)
        fin = report.latencies[offset:offset + n] + report.arrival_times[
            offset:offset + n
        ]
        # Every request of a batch completes at the same instant.
        assert np.allclose(fin, fin[0], rtol=0, atol=1e-12)
        finishes.append((formed.formed_at, float(fin[0])))
        offset += n
    assert offset == len(report.latencies)
    return finishes


class TestPipelineOverlap:
    @pytest.mark.parametrize("depth", [2, 3])
    def test_dependencies_never_violated(self, dataset, hw, requests, depth):
        server = make_servers(
            dataset, hw, PipelinedInferenceServer, depth=depth
        )
        report = server.serve(requests)
        finishes = batch_finishes(report, requests, server.policy)
        for i, (formed_at, finish) in enumerate(finishes):
            # A batch cannot complete before it formed.
            assert finish > formed_at
            # The depth gate: batch i dispatches no earlier than the
            # completion of batch i - depth.
            if i >= depth:
                assert finish > finishes[i - depth][1]
        # Batches complete in order.
        ends = [f for _, f in finishes]
        assert ends == sorted(ends)

    def test_overlap_beats_sequential_under_load(self, dataset, hw, requests):
        seq = make_servers(dataset, hw, InferenceServer).serve(requests)
        pipe_server = make_servers(
            dataset, hw, PipelinedInferenceServer, depth=2
        )
        pipe = pipe_server.serve(requests)
        assert pipe.span < seq.span
        assert pipe.p99_latency < seq.p99_latency
        # A serial resource can never be busy longer than the makespan.
        for name, (busy, grants) in pipe_server.last_run.resource_busy.items():
            assert busy <= pipe.span + 1e-12, name
            assert grants > 0

    def test_default_stage_scheme_works_pipelined(self, dataset, hw, requests):
        """Schemes without a staged query run via the default single stage."""
        def build(cls, **kwargs):
            store = EmbeddingStore(dataset.table_specs(), hw)
            layer = PerTableCacheLayer(
                store, PerTableConfig(cache_ratio=0.05), hw
            )
            model = DeepCrossNetwork(
                num_tables=dataset.num_tables, embedding_dim=dataset.dim
            )
            return cls(
                dataset, layer, hw,
                policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
                model=model, include_dense=True, **kwargs,
            )

        a = build(InferenceServer).serve(requests)
        b = build(PipelinedInferenceServer, depth=2).serve(requests)
        # The whole query is one host stage, so cache state evolves in
        # batch order exactly as sequentially; only timing overlaps.
        assert (a.hits, a.misses) == (b.hits, b.misses)
        assert np.array_equal(a.probabilities, b.probabilities)


# ---------------------------------------------------------------------------
# Cross-batch miss coalescing
# ---------------------------------------------------------------------------


class TestCoalescing:
    def coalescing_run(self, dataset, hw, cls=PipelinedInferenceServer,
                       **kwargs):
        """Cold cache + overload: overlapping batches miss the same keys.

        The spy on ``admit_and_insert`` asserts the exactly-once contract
        at its sharpest: an insertion must never target a key that still
        holds a live cache location (that would strand the old pool slot).
        Re-insertions of keys the slab-hash index *displaced* earlier are
        legitimate — the sequential loop does those too.
        """
        server = make_servers(
            dataset, hw, cls, warm=False, cache_ratio=1.0, **kwargs,
        )
        inserted = []
        cache = server.engine.scheme.cache
        original = cache.admit_and_insert

        def spy(flat_keys, vectors, dim, dram_mask=None):
            assert not cache.contains_cached(flat_keys).any()
            inserted.extend(int(k) for k in flat_keys)
            return original(flat_keys, vectors, dim, dram_mask=dram_mask)

        cache.admit_and_insert = spy
        reqs = PoissonArrivals(dataset, OVERLOAD, seed=3).generate(900)
        report = server.serve(reqs)
        return server, report, inserted

    def test_coalesced_fetch_issued_and_inserted_once(self, dataset, hw):
        _, seq_report, seq_inserted = self.coalescing_run(
            dataset, hw, cls=InferenceServer
        )
        server, report, inserted = self.coalescing_run(dataset, hw, depth=3)
        stats = server.last_run.coalescing
        assert report.coalesced_keys > 0
        assert stats.coalesced_keys == report.coalesced_keys
        assert stats.published_keys > 0
        assert stats.retired_keys <= stats.published_keys
        # The pipelined run caches the same key population but performs
        # strictly fewer insertions: a coalesced miss takes the leader's
        # vectors instead of re-fetching and re-inserting.
        assert set(inserted) == set(seq_inserted)
        assert len(inserted) < len(seq_inserted)
        # Every miss was either fetched (and at most once inserted) or
        # coalesced; coalesced keys never reach the replacement path.
        assert report.misses >= len(inserted) + report.coalesced_keys

    def test_no_pool_slots_leak(self, dataset, hw):
        server, report, _ = self.coalescing_run(dataset, hw, depth=3)
        cache = server.engine.scheme.cache
        pool_live = sum(
            cache.pool.capacity_of(d) - cache.pool.free_of(d)
            for d in cache.pool.dims()
        )
        # Every allocated slot is either indexed or awaiting reclamation.
        assert pool_live == cache.live_entries() + cache.reclaimer.pending

    def test_coalesce_flag_off(self, dataset, hw):
        server, report, inserted = self.coalescing_run(
            dataset, hw, depth=3, coalesce=False
        )
        assert report.coalesced_keys == 0
        assert server.last_run.coalescing is None
        # Raced misses are re-fetched, but the replacement path still
        # skips keys a concurrent batch inserted first (spy asserts no
        # insertion ever overwrites a live cache entry).
        assert len(inserted) > 0


# ---------------------------------------------------------------------------
# Metamorphic depth differential: registry counters across depths
# ---------------------------------------------------------------------------


#: An offered load comfortably below the small dataset's sequential
#: service capacity: batches finish before the next one forms, so no two
#: batches are ever concurrently in flight and the pipeline depth is
#: metamorphically irrelevant — every registry counter must be identical
#: across depths.  (Empirically the capacity is ~300 K req/s; 40 K/s
#: leaves a wide margin.)
NON_SATURATING = 40_000.0

DEPTHS = (1, 2, 4)


def run_counters(server, requests):
    """Serve, audit, and return the run's registry counter delta."""
    report = server.serve(requests)
    assert server.obs.audit() == []
    return report, report.metrics.to_dict()["counters"]


class TestMetamorphicDepth:
    def test_depths_agree_on_every_counter_when_unsaturated(
        self, dataset, hw
    ):
        reqs = PoissonArrivals(
            dataset, NON_SATURATING, seed=7
        ).generate(500)
        reports = {}
        counters = {}
        for depth in DEPTHS:
            server = make_servers(
                dataset, hw, PipelinedInferenceServer, depth=depth
            )
            reports[depth], counters[depth] = run_counters(server, reqs)
        baseline = counters[DEPTHS[0]]
        assert baseline["cache.lookups"] > 0
        for depth in DEPTHS[1:]:
            assert counters[depth] == baseline, depth
            assert np.array_equal(
                reports[depth].latencies, reports[DEPTHS[0]].latencies
            )
            assert np.array_equal(
                reports[depth].probabilities, reports[DEPTHS[0]].probabilities
            )

    def test_depths_agree_under_shard_outage(self, dataset, hw):
        """The depth differential survives a faulty remote tier.

        At a non-saturating rate every depth dispatches each batch at the
        same simulated instant, so the fault injector sees identical
        (shard, time) fetch sequences and every fault-path counter —
        retries, degraded keys, breaker activity — must agree too.
        """
        def build(depth):
            schedule = FaultSchedule([
                ShardOutage(shard=s, start=5e-3, duration=1.5e-2)
                for s in range(4)
            ])
            remote = RemoteParameterServer(
                dataset.table_specs(),
                injector=FaultInjector(schedule, seed=11),
                # A short per-attempt timeout keeps the worst-case batch
                # service (2 attempts x 0.2 ms on top of the base cost)
                # below the 2 ms batch-formation cadence, so the outage
                # never pushes two batches into concurrent flight.
                retry_policy=RetryPolicy.naive(timeout=2e-4),
            )
            store = TieredParameterStore(
                dataset.table_specs(), hw, dram_capacity=600, remote=remote,
                degrade=DegradeConfig(policy="stale"),
            )
            layer = FlecheEmbeddingLayer(
                store, FlecheConfig(cache_ratio=0.05), hw
            )
            return PipelinedInferenceServer(
                dataset, layer, hw, depth=depth,
                policy=BatchingPolicy(max_batch_size=64, max_delay=2e-3),
            )

        reqs = PoissonArrivals(dataset, 20_000.0, seed=5).generate(300)
        counters = {}
        reports = {}
        for depth in DEPTHS:
            reports[depth], counters[depth] = run_counters(
                build(depth), reqs
            )
        baseline = counters[DEPTHS[0]]
        # The outage actually bit: degraded service and fault-path
        # activity are present, not vacuously zero.
        assert baseline["serving.degraded_requests"] > 0
        assert baseline["tier.degraded_keys"] > 0
        assert baseline["faults.retries"] > 0
        for depth in DEPTHS[1:]:
            assert counters[depth] == baseline, depth
            assert reports[depth].fault_windows == (
                reports[DEPTHS[0]].fault_windows
            )

    def test_saturated_depths_preserve_workload_counters(
        self, dataset, hw, requests
    ):
        """Under overload the hit/miss split legitimately shifts with
        depth (overlapping batches race the cache), but the counters the
        workload alone determines — requests, batches, total and unique
        key traffic — are depth-invariant, and the audit laws hold at
        every depth."""
        invariant_keys = (
            "serving.requests", "serving.batched_requests",
            "serving.batches", "cache.queries", "cache.lookups",
            "cache.unique_keys",
        )
        counters = {}
        for depth in DEPTHS:
            server = make_servers(
                dataset, hw, PipelinedInferenceServer, depth=depth
            )
            _, counters[depth] = run_counters(server, requests)
        baseline = counters[DEPTHS[0]]
        for depth in DEPTHS[1:]:
            for key in invariant_keys:
                assert counters[depth][key] == baseline[key], (depth, key)


# ---------------------------------------------------------------------------
# Report satellites: span definition and empty-window guards
# ---------------------------------------------------------------------------


class TestReportSatellites:
    def test_span_is_first_arrival_to_last_finish(self, dataset, hw, requests):
        for cls, kwargs in (
            (InferenceServer, {}),
            (PipelinedInferenceServer, {"depth": 2}),
        ):
            report = make_servers(dataset, hw, cls, **kwargs).serve(requests)
            finishes = report.arrival_times + report.latencies
            expected = finishes.max() - report.arrival_times.min()
            assert report.span == pytest.approx(expected, rel=0, abs=1e-15)
            assert report.throughput == pytest.approx(
                report.served / report.span
            )

    def test_empty_latencies_percentiles_are_nan(self):
        report = ServingReport(latencies=np.zeros(0))
        assert np.isnan(report.percentile(50.0))
        assert np.isnan(report.median_latency)
        assert np.isnan(report.p99_latency)
