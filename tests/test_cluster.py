"""Tests for the fault-tolerant multi-replica serving cluster."""

import dataclasses

import numpy as np
import pytest

from repro import (
    FlecheConfig,
    FlecheEmbeddingLayer,
    default_platform,
)
from repro.bench.harness import alert_timing, canonical_json
from repro.cluster import (
    DEAD,
    HEALTHY,
    RECOVERING,
    SUSPECT,
    ClusterConfig,
    ClusterReplica,
    ClusterRouter,
    HealthConfig,
    HealthMonitor,
    make_policy,
)
from repro.errors import ConfigError, WorkloadError
from repro.faults import (
    BreakerConfig,
    FaultSchedule,
    HeartbeatLoss,
    ReplicaCrash,
    ReplicaSlowdown,
)
from repro.model.trainer import EmbeddingDeltaTrainer
from repro.multigpu.partition import HashPartitioner
from repro.refresh import UpdateLog, UpdatePublisher, fingerprint
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec
from repro.workloads.zipf import ZipfSampler

HORIZON = 0.03
RATE = 60_000.0
SLA = 2e-3
ARRIVAL_SEED = 5


@pytest.fixture(scope="module")
def hw():
    return default_platform()


@pytest.fixture(scope="module")
def dataset():
    return uniform_tables_spec(
        num_tables=2, corpus_size=4_000, alpha=-1.2, dim=8
    )


@pytest.fixture(scope="module")
def requests(dataset):
    return PoissonArrivals(
        dataset, RATE, seed=ARRIVAL_SEED
    ).generate_until(HORIZON)


def make_log(dataset, horizon=HORIZON, rounds=6, keys_per_round=48):
    specs = dataset.table_specs()
    log = UpdateLog(retention=1_000_000)
    publisher = UpdatePublisher(log, max_batch_keys=128)
    trainer = EmbeddingDeltaTrainer(
        [s.corpus_size for s in specs],
        [s.dim for s in specs],
        keys_per_round=keys_per_round, seed=11,
    )
    for i in range(rounds):
        publisher.drain(trainer, now=horizon * (i + 1) / (rounds + 1))
    return log


def hot_owner(dataset, num_replicas, seed=ARRIVAL_SEED):
    """The replica that hash-routing assigns the Zipf hottest key."""
    field = dataset.fields[0]
    hottest = ZipfSampler(
        field.corpus_size, field.alpha, seed=seed * 31
    ).hottest_ids(1)
    return int(HashPartitioner(num_replicas).owner_of(hottest)[0])


def crash_schedule(replica, start=0.01, duration=0.01):
    return FaultSchedule(
        [ReplicaCrash(replica=replica, start=start, duration=duration)]
    )


def counter(report, name):
    return report.metrics.to_dict()["counters"].get(name, 0)


class TestHealthStateMachine:
    def test_crash_walks_full_cycle(self):
        schedule = crash_schedule(replica=0, start=0.005, duration=0.008)
        monitor = HealthMonitor(HealthConfig(), schedule, num_replicas=2)
        timelines = monitor.observe(0.04)
        states = [t.state for t in timelines[0].transitions]
        assert states == [HEALTHY, SUSPECT, DEAD, RECOVERING, HEALTHY]
        assert [t.state for t in timelines[1].transitions] == [HEALTHY]

    def test_transitions_are_time_ordered(self):
        schedule = crash_schedule(replica=0, start=0.005, duration=0.008)
        monitor = HealthMonitor(HealthConfig(), schedule, num_replicas=1)
        transitions = monitor.observe(0.04)[0].transitions
        instants = [t.at for t in transitions]
        assert instants == sorted(instants)

    def test_short_heartbeat_flap_never_goes_dead(self):
        schedule = FaultSchedule(
            [HeartbeatLoss(replica=0, start=0.005, duration=0.0025)]
        )
        monitor = HealthMonitor(HealthConfig(), schedule, num_replicas=1)
        states = [t.state for t in monitor.observe(0.02)[0].transitions]
        assert states == [HEALTHY, SUSPECT, HEALTHY]
        assert DEAD not in states and RECOVERING not in states

    def test_unroutable_window_covers_outage(self):
        schedule = crash_schedule(replica=0, start=0.005, duration=0.008)
        monitor = HealthMonitor(HealthConfig(), schedule, num_replicas=1)
        windows = monitor.observe(0.04)[0].unroutable_windows()
        assert len(windows) == 1
        start, end = windows[0]
        assert start >= 0.005
        assert end >= 0.013  # readmission can only follow the restart

    def test_replay_debt_delays_readmission(self):
        schedule = crash_schedule(replica=0, start=0.005, duration=0.008)
        fast = HealthMonitor(HealthConfig(), schedule, 1).observe(
            0.08, replay_seconds=lambda r, t: 0.0
        )
        slow = HealthMonitor(HealthConfig(), schedule, 1).observe(
            0.08, replay_seconds=lambda r, t: 0.02
        )
        fast_ok = fast[0].first(HEALTHY, after=0.013)
        slow_ok = slow[0].first(HEALTHY, after=0.013)
        assert slow_ok > fast_ok


class TestRoutingPolicies:
    @pytest.mark.parametrize(
        "name", ("hash", "table-shard", "least-outstanding")
    )
    def test_primary_deterministic_and_in_range(self, name, requests):
        policy = make_policy(name, 4)
        replay = make_policy(name, 4)
        healthy = list(range(4))
        for req in requests[:200]:
            owner = policy.primary(req, healthy)
            assert 0 <= owner < 4
            assert replay.primary(req, healthy) == owner
            policy.note_dispatch(owner, req.arrival_time)
            replay.note_dispatch(owner, req.arrival_time)

    def test_hash_matches_partitioner(self, requests):
        policy = make_policy("hash", 4)
        partitioner = HashPartitioner(4)
        req = requests[0]
        key = np.asarray([req.feature_ids[0][0]], dtype=np.uint64)
        assert policy.primary(req, [0, 1, 2, 3]) == int(
            partitioner.owner_of(key)[0]
        )

    def test_least_outstanding_balances_load(self, requests):
        policy = make_policy("least-outstanding", 4)
        counts = {r: 0 for r in range(4)}
        for req in requests:
            owner = policy.primary(req, list(range(4)))
            counts[owner] += 1
            policy.note_dispatch(owner, req.arrival_time)
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) < 2.0

    def test_least_outstanding_avoids_unhealthy(self, requests):
        policy = make_policy("least-outstanding", 4)
        for req in requests[:50]:
            assert policy.primary(req, [2, 3]) in (2, 3)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("round-robin", 4)


class TestSingleReplicaParity:
    def test_unclustered_server_is_bit_identical(self, hw, dataset,
                                                 requests):
        """A 1-replica cluster without warm-up serves the exact same
        latencies as a bare PipelinedInferenceServer, and the bare
        server's registry never grows cluster.* metrics."""
        config = ClusterConfig(num_replicas=1, hot_keys=0)
        report = ClusterRouter(dataset, hw, config=config).serve(requests)

        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=config.cache_ratio), hw
        )
        server = PipelinedInferenceServer(
            dataset, layer, hw,
            policy=BatchingPolicy(
                max_batch_size=config.max_batch_size,
                max_delay=config.max_delay,
            ),
            depth=config.depth,
        )
        baseline = server.serve(requests)
        np.testing.assert_array_equal(report.latencies, baseline.latencies)
        assert not server.obs.has_prefix("cluster.")


class TestFailover:
    @pytest.fixture(scope="class")
    def drill(self, hw, dataset, requests):
        victim = hot_owner(dataset, 4)
        schedule = crash_schedule(victim, start=0.01, duration=0.012)
        config = ClusterConfig(
            num_replicas=4,
            breaker=BreakerConfig(
                failure_threshold=0.5, window=8, min_samples=4,
                cooldown=5e-3,
            ),
        )
        router = ClusterRouter(
            dataset, hw, config=config, schedule=schedule,
            update_log=make_log(dataset),
        )
        return victim, router, router.serve(requests)

    def test_crash_is_absorbed_without_shedding(self, drill):
        _, _, report = drill
        assert report.shed == 0
        assert report.disposition_counts()["failover"] > 0
        assert report.sla_attainment(SLA) >= 0.90

    def test_request_conservation(self, drill, requests):
        _, _, report = drill
        counters = report.metrics.to_dict()["counters"]
        served = (
            counters.get("cluster.served_primary", 0)
            + counters.get("cluster.served_failover", 0)
            + counters.get("cluster.served_hedge", 0)
            + counters.get("cluster.shed", 0)
        )
        assert counters["cluster.requests"] == len(requests) == served

    def test_no_failover_to_the_crashed_replica(self, drill):
        victim, _, report = drill
        start = report.episodes[0].start
        end = report.episodes[0].end
        for i, kind in enumerate(report.dispositions):
            if kind == "failover":
                assert report.latencies[i] > 0

        # the victim's own health window matches the scheduled outage
        windows = report.health[victim].unroutable_windows()
        assert windows and windows[0][0] >= start
        assert windows[0][1] >= end

    def test_victim_restarts_with_new_incarnation(self, drill):
        victim, router, report = drill
        assert report.per_replica[victim]["incarnations"] == 2
        for r, summary in report.per_replica.items():
            if r != victim:
                assert summary["incarnations"] == 1

    def test_replicas_converge_to_frontier(self, drill):
        _, _, report = drill
        for summary in report.per_replica.values():
            assert summary["version_lag"] == 0

    def test_unrouted_baseline_sheds_and_underperforms(
        self, hw, dataset, requests, drill
    ):
        victim, _, routed = drill
        schedule = crash_schedule(victim, start=0.01, duration=0.012)
        config = ClusterConfig(num_replicas=4, failover=False)
        baseline = ClusterRouter(
            dataset, hw, config=config, schedule=schedule,
            update_log=make_log(dataset),
        ).serve(requests)
        assert baseline.shed > 0
        assert baseline.sla_attainment(SLA) < routed.sla_attainment(SLA)

    def test_health_alert_brackets_outage(self, drill):
        _, _, report = drill
        episode = report.episodes[0]
        timing = alert_timing(report.alerts, episode.start, episode.end)
        assert timing["early_alerts"] == 0
        assert timing["ttd_s"] is not None
        assert timing["ttr_s"] is not None
        assert not timing["unresolved"]

    def test_staleness_alert_fires_during_outage(self, drill):
        victim, _, report = drill
        stale = [
            a for a in report.alerts
            if a.rule == f"replica{victim}-staleness"
        ]
        assert stale
        episode = report.episodes[0]
        for alert in stale:
            assert alert.fired_at >= episode.start
            assert alert.resolved_at is not None


class TestHedging:
    def test_slowdown_fires_hedges(self, hw, dataset, requests):
        victim = hot_owner(dataset, 3)
        schedule = FaultSchedule([
            ReplicaSlowdown(
                replica=victim, factor=6.0, start=0.005, duration=0.02
            )
        ])
        config = ClusterConfig(num_replicas=3, hedge_delay=5e-4)
        report = ClusterRouter(
            dataset, hw, config=config, schedule=schedule
        ).serve(requests)
        fired = counter(report, "cluster.hedges_fired")
        wins = counter(report, "cluster.hedge_wins")
        assert fired > 0
        assert 0 < wins <= fired

    def test_no_hedges_without_delay_config(self, hw, dataset, requests):
        schedule = FaultSchedule([
            ReplicaSlowdown(replica=0, factor=6.0, start=0.005,
                            duration=0.02)
        ])
        report = ClusterRouter(
            dataset, hw, config=ClusterConfig(num_replicas=3),
            schedule=schedule,
        ).serve(requests)
        assert counter(report, "cluster.hedges_fired") == 0


class TestRecovery:
    def test_snapshot_replay_converges_with_uninterrupted_peer(
        self, hw, dataset
    ):
        log = make_log(dataset)
        steady = ClusterReplica(0, dataset, hw)
        steady.warm_hot_keys(0, 64)
        steady.attach_refresh(log, now=0.0)
        steady.subscriber.catch_up(HORIZON)

        victim = ClusterReplica(1, dataset, hw)
        victim.warm_hot_keys(0, 64)
        victim.attach_refresh(log, now=0.0)
        victim.take_snapshot()
        victim.subscriber.catch_up(HORIZON / 2)
        victim.crash()
        assert not victim.alive
        with pytest.raises(ConfigError):
            victim.serve([object()])

        replayed = victim.recover(HORIZON)
        assert replayed > 0
        assert victim.incarnation == 1
        assert fingerprint(victim.layer.cache) == fingerprint(
            steady.layer.cache
        )

    def test_recover_without_snapshot_rejected(self, hw, dataset):
        replica = ClusterReplica(0, dataset, hw)
        replica.crash()
        with pytest.raises(ConfigError):
            replica.recover(0.01)

    def test_cold_restart_loses_cache_state(self, hw, dataset):
        replica = ClusterReplica(0, dataset, hw)
        replica.warm_hot_keys(0, 64)
        before = fingerprint(replica.layer.cache)
        replica.crash()
        replica.cold_restart()
        assert replica.incarnation == 1
        assert fingerprint(replica.layer.cache) != before


class TestDeterminism:
    def test_drill_replay_is_byte_identical(self, hw, dataset, requests):
        victim = hot_owner(dataset, 3)

        def run():
            router = ClusterRouter(
                dataset, hw,
                config=ClusterConfig(
                    num_replicas=3,
                    breaker=BreakerConfig(
                        failure_threshold=0.5, window=8, min_samples=4,
                        cooldown=5e-3,
                    ),
                ),
                schedule=crash_schedule(victim, start=0.01,
                                        duration=0.012),
                update_log=make_log(dataset),
            )
            return canonical_json(router.serve(requests).to_payload(SLA))

        assert run() == run()


class TestValidation:
    def test_empty_serve_rejected(self, hw, dataset):
        router = ClusterRouter(
            dataset, hw, config=ClusterConfig(num_replicas=1)
        )
        with pytest.raises(WorkloadError):
            router.serve([])

    def test_fault_event_validation(self):
        with pytest.raises(ConfigError):
            ReplicaCrash(replica=-1, start=0.0, duration=1.0)
        with pytest.raises(ConfigError):
            ReplicaSlowdown(replica=0, factor=0.5, start=0.0, duration=1.0)
        with pytest.raises(ConfigError):
            HeartbeatLoss(replica=-2, start=0.0, duration=1.0)
        with pytest.raises(ConfigError):
            ReplicaCrash(replica=0, start=0.0, duration=0.0)

    def test_cluster_config_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_replicas=0)
        with pytest.raises(ConfigError):
            ClusterConfig(hot_keys=-1)
        with pytest.raises(ConfigError):
            ClusterConfig(hedge_delay=0.0)
        with pytest.raises(ConfigError):
            ClusterConfig(dispatch_timeout=0.0)

    def test_health_config_validation(self):
        with pytest.raises(ConfigError):
            HealthConfig(heartbeat_interval=0.0)
        with pytest.raises(ConfigError):
            HealthConfig(suspect_after=0)
        with pytest.raises(ConfigError):
            HealthConfig(suspect_after=4, dead_after=4)
        with pytest.raises(ConfigError):
            HealthConfig(replay_keys_per_s=0.0)

    def test_multiple_crash_windows_per_replica_rejected(
        self, hw, dataset, requests
    ):
        schedule = FaultSchedule([
            ReplicaCrash(replica=0, start=0.002, duration=0.002),
            ReplicaCrash(replica=0, start=0.01, duration=0.002),
        ])
        router = ClusterRouter(
            dataset, hw, config=ClusterConfig(num_replicas=2),
            schedule=schedule,
        )
        with pytest.raises(ConfigError):
            router.serve(requests)

    def test_unrouted_config_round_trips_through_replace(self):
        config = ClusterConfig(num_replicas=4)
        unrouted = dataclasses.replace(config, failover=False)
        assert unrouted.failover is False
        assert unrouted.num_replicas == config.num_replicas
