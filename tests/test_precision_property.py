"""Property-based tests for the mixed-precision tiering primitives.

Hypothesis pins three contracts:

- **Quantize round-trip**: for every tier, ``dequantize(quantize(x))``
  stays within the analytic per-element error bound
  (:func:`repro.core.precision.roundtrip_error_bound`) — including
  denormals, signed zeros, constant rows, and fp16-saturating values —
  and fp32/fp16 round trips are idempotent.
- **Eviction-score ordering**: every policy's ``victim_order`` agrees
  with a plain pure-python reference over (stamp, count) pairs — LRU is
  exactly ``argsort(stamps)``, LFU sorts by (count, stamp), and all
  policies degrade to LRU when no estimator counts are available.
- **Count-min never under-estimates**: a frequency estimate is an upper
  bound on the true occurrence count against a dict model, and ``age``
  halves estimates without breaking the bound on subsequent observes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import FrequencyEstimator, assign_tier_codes
from repro.core.precision import (
    TIERS,
    dequantize_rows,
    make_eviction_policy,
    quantize_rows,
    roundtrip_error_bound,
)

# Finite float32 values spanning normals, denormals, signed zeros, and
# magnitudes beyond the fp16 saturation point.
finite_f32 = st.one_of(
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False, width=32,
    ),
    st.floats(
        min_value=-9.999999350456404e-39, max_value=9.999999350456404e-39,
        allow_nan=False, allow_infinity=False, width=32,
    ),
    st.sampled_from([0.0, -0.0, 65504.0, -65504.0, 70000.0, -70000.0]),
)

row_matrices = st.integers(min_value=1, max_value=8).flatmap(
    lambda dim: st.lists(
        st.lists(finite_f32, min_size=dim, max_size=dim),
        min_size=1, max_size=6,
    )
)


# ------------------------------------------------------------- round trip


@settings(max_examples=80, deadline=None)
@given(rows=row_matrices, tier=st.sampled_from(TIERS))
def test_roundtrip_within_analytic_bound(rows, tier):
    rows = np.asarray(rows, dtype=np.float32)
    payload, scales = quantize_rows(rows, tier)
    back = dequantize_rows(payload, scales, tier)
    bound = roundtrip_error_bound(rows, tier)
    err = np.abs(rows.astype(np.float64) - back.astype(np.float64))
    assert (err <= bound).all(), (rows, back, err - bound)


@settings(max_examples=80, deadline=None)
@given(rows=row_matrices)
def test_fp32_roundtrip_is_exact(rows):
    rows = np.asarray(rows, dtype=np.float32)
    payload, scales = quantize_rows(rows, "fp32")
    assert scales is None
    back = dequantize_rows(payload, scales, "fp32")
    np.testing.assert_array_equal(back, rows)


@settings(max_examples=80, deadline=None)
@given(rows=row_matrices, tier=st.sampled_from(["fp32", "fp16"]))
def test_fp32_fp16_roundtrip_idempotent(rows, tier):
    """A second quantize of already-round-tripped rows changes nothing.

    (int8 is deliberately excluded: its per-row scale is recomputed from
    the reconstructed values, so exact idempotence is not part of its
    contract.)
    """
    rows = np.asarray(rows, dtype=np.float32)
    payload, scales = quantize_rows(rows, tier)
    once = dequantize_rows(payload, scales, tier)
    payload2, scales2 = quantize_rows(once, tier)
    twice = dequantize_rows(payload2, scales2, tier)
    np.testing.assert_array_equal(once, twice)


def test_constant_and_zero_rows():
    zero = np.zeros((3, 5), dtype=np.float32)
    for tier in TIERS:
        payload, scales = quantize_rows(zero, tier)
        np.testing.assert_array_equal(
            dequantize_rows(payload, scales, tier), zero
        )
    const = np.full((2, 4), 0.75, dtype=np.float32)
    payload, scales = quantize_rows(const, "int8")
    # max|row|/127 scale puts the constant exactly on the top step.
    np.testing.assert_allclose(
        dequantize_rows(payload, scales, "int8"), const, rtol=1e-4
    )


def test_signed_zero_and_denormals_roundtrip():
    rows = np.array(
        [[0.0, -0.0, 1e-40, -1e-40, 1e-45, -1e-45]], dtype=np.float32
    )
    for tier in TIERS:
        payload, scales = quantize_rows(rows, tier)
        back = dequantize_rows(payload, scales, tier)
        bound = roundtrip_error_bound(rows, tier)
        err = np.abs(rows.astype(np.float64) - back.astype(np.float64))
        assert (err <= bound).all(), (tier, err, bound)


def test_fp16_saturates_at_max_half():
    rows = np.array([[1e5, -1e5, 65504.0, -65504.0]], dtype=np.float32)
    payload, _ = quantize_rows(rows, "fp16")
    assert np.isfinite(payload.astype(np.float32)).all()
    np.testing.assert_array_equal(
        np.abs(payload.astype(np.float32)), np.full((1, 4), 65504.0)
    )


# --------------------------------------------------------------- eviction

stamp_count_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=0, max_size=50,
)


def _reference_order(pairs, policy, recency_weight=0.5):
    """Pure-python victim ordering over (stamp, count) pairs."""
    n = len(pairs)
    idx = list(range(n))
    stamps = [p[0] for p in pairs]
    counts = [p[1] for p in pairs]
    if policy == "lru":
        return sorted(idx, key=lambda i: (stamps[i], i))
    if policy == "lfu":
        return sorted(idx, key=lambda i: (counts[i], stamps[i], i))
    # hybrid: normalized stable ranks of each signal, stamp tie-break.
    if n <= 1:
        return idx
    span = float(n - 1)
    stamp_rank = [0.0] * n
    for rank, i in enumerate(sorted(idx, key=lambda i: (stamps[i], i))):
        stamp_rank[i] = rank / span
    count_rank = [0.0] * n
    for rank, i in enumerate(sorted(idx, key=lambda i: (counts[i], i))):
        count_rank[i] = rank / span
    w = recency_weight
    score = [w * stamp_rank[i] + (1.0 - w) * count_rank[i] for i in idx]
    return sorted(idx, key=lambda i: (score[i], stamps[i], i))


@settings(max_examples=80, deadline=None)
@given(
    pairs=stamp_count_lists,
    policy=st.sampled_from(["lru", "lfu", "hybrid"]),
)
def test_victim_order_matches_reference(pairs, policy):
    stamps = np.asarray([p[0] for p in pairs], dtype=np.int64)
    counts = np.asarray([p[1] for p in pairs], dtype=np.int64)
    order = make_eviction_policy(policy).victim_order(stamps, counts)
    expected = _reference_order(pairs, policy)
    # Orders must agree as *victim sequences*: ties on the full sort key
    # may permute, so compare the sort keys along both orders.
    if policy == "lru":
        key = lambda i: (int(stamps[i]),)
    elif policy == "lfu":
        key = lambda i: (int(counts[i]), int(stamps[i]))
    else:
        key = lambda i: None  # checked via reference keys below
    if policy in ("lru", "lfu"):
        assert [key(i) for i in order] == [key(i) for i in expected]
    else:
        ref_full = _reference_order(pairs, "hybrid")
        # hybrid breaks score ties on stamps; compare (score, stamp).
        n = len(pairs)
        if n > 1:
            span = float(n - 1)
            stamp_rank = np.empty(n)
            stamp_rank[np.argsort(stamps, kind="stable")] = (
                np.arange(n) / span
            )
            count_rank = np.empty(n)
            count_rank[np.argsort(counts, kind="stable")] = (
                np.arange(n) / span
            )
            score = 0.5 * stamp_rank + 0.5 * count_rank
            got = [(score[i], int(stamps[i])) for i in order]
            want = [(score[i], int(stamps[i])) for i in ref_full]
            assert got == want
        else:
            assert list(order) == ref_full


@settings(max_examples=80, deadline=None)
@given(pairs=stamp_count_lists, policy=st.sampled_from(["lfu", "hybrid"]))
def test_frequency_policies_degrade_to_lru_without_counts(pairs, policy):
    stamps = np.asarray([p[0] for p in pairs], dtype=np.int64)
    order = make_eviction_policy(policy).victim_order(stamps, None)
    np.testing.assert_array_equal(
        stamps[order], stamps[np.argsort(stamps)]
    )


# ------------------------------------------------------------ count-min

observed_batches = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=2**40), min_size=0, max_size=30
    ),
    min_size=0, max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(batches=observed_batches)
def test_sketch_never_underestimates(batches):
    est = FrequencyEstimator(width=64, depth=2, seed=3)
    truth = {}
    for batch in batches:
        keys = np.asarray(batch, dtype=np.uint64)
        est.observe(keys)
        for k in batch:
            truth[k] = truth.get(k, 0) + 1
    if truth:
        keys = np.asarray(sorted(truth), dtype=np.uint64)
        estimates = est.estimate(keys)
        true_counts = np.asarray([truth[int(k)] for k in keys])
        assert (estimates >= true_counts).all()


@settings(max_examples=60, deadline=None)
@given(batches=observed_batches)
def test_aging_halves_estimates(batches):
    est = FrequencyEstimator(width=64, depth=2, seed=3)
    for batch in batches:
        est.observe(np.asarray(batch, dtype=np.uint64))
    all_keys = sorted({k for batch in batches for k in batch})
    if not all_keys:
        return
    keys = np.asarray(all_keys, dtype=np.uint64)
    before = est.estimate(keys)
    est.age()
    after = est.estimate(keys)
    np.testing.assert_array_equal(after, before // 2)


def test_tier_codes_thresholds():
    counts = np.array([0, 1, 2, 7, 8, 100])
    codes = assign_tier_codes(counts, hot_min_count=8, warm_min_count=2)
    np.testing.assert_array_equal(codes, [2, 2, 1, 1, 0, 0])
