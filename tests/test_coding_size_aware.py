"""Tests for the size-aware (Fleche) codec."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.coding.size_aware import SizeAwareCodec
from repro.coding.fixed_length import FixedLengthCodec


class TestSizeAwareCodec:
    def test_single_table_gets_all_bits(self):
        codec = SizeAwareCodec([1000], key_bits=32)
        code = codec.layout.codes[0]
        assert code.prefix_bits == 0
        assert code.feature_bits == 32

    def test_smaller_tables_get_longer_prefixes(self):
        codec = SizeAwareCodec([10, 10_000, 10_000_000], key_bits=32)
        lengths = [c.prefix_bits for c in codec.layout.codes]
        assert lengths[0] >= lengths[1] >= lengths[2]

    def test_kraft_inequality_holds(self):
        codec = SizeAwareCodec([10, 100, 1000, 10_000] * 5, key_bits=24)
        total = sum(
            Fraction(1, 2 ** c.prefix_bits) for c in codec.layout.codes
        )
        assert total <= 1

    def test_prefix_free(self):
        # Layout construction validates the prefix-free property itself;
        # simply building a tricky codec exercises it.
        SizeAwareCodec([3, 7, 120, 4000, 4000, 90_000], key_bits=20)

    def test_no_collision_when_space_suffices(self):
        sizes = [100, 200, 50]
        codec = SizeAwareCodec(sizes, key_bits=32)
        seen = set()
        for t, size in enumerate(sizes):
            keys = codec.encode(t, np.arange(size, dtype=np.uint64))
            assert len(np.unique(keys)) == size
            assert not (seen & set(keys.tolist()))
            seen |= set(keys.tolist())

    def test_collisions_isolated_to_big_tables_under_pressure(self):
        # With a tight budget, the small table must stay exact while the
        # huge table absorbs the hashing.
        sizes = [16, 2**20]
        codec = SizeAwareCodec(sizes, key_bits=16)
        small = codec.layout.code_for(0)
        assert small.collision_free

    def test_beats_fixed_length_on_heterogeneous_sizes(self):
        """Size-aware coding yields fewer collisions than Kraken at equal
        key bits — the mechanism behind Figure 13."""
        sizes = [4, 16, 64, 256, 65_536, 262_144]
        key_bits = 20
        size_aware = SizeAwareCodec(sizes, key_bits=key_bits)
        fixed = FixedLengthCodec(sizes, key_bits=key_bits, table_bits=3)

        def total_collisions(codec):
            lost = 0
            for t, size in enumerate(sizes):
                keys = codec.encode(t, np.arange(size, dtype=np.uint64))
                lost += size - len(np.unique(keys))
            return lost

        assert total_collisions(size_aware) < total_collisions(fixed)

    def test_table_of_roundtrip(self):
        sizes = [10, 1000, 100_000]
        codec = SizeAwareCodec(sizes, key_bits=32)
        for t, size in enumerate(sizes):
            keys = codec.encode(t, np.arange(min(size, 200), dtype=np.uint64))
            assert (codec.table_of(keys) == t).all()

    def test_many_equal_tables(self):
        codec = SizeAwareCodec([1000] * 40, key_bits=32)
        lengths = {c.prefix_bits for c in codec.layout.codes}
        # Equal corpora should receive comparable prefix lengths.
        assert max(lengths) - min(lengths) <= 1

    def test_describe_mentions_every_table(self):
        codec = SizeAwareCodec([10, 20, 30], key_bits=32)
        lines = codec.describe()
        assert len(lines) == 3

    def test_feature_bits_accommodate_corpus_when_feasible(self):
        sizes = [100, 1000, 10_000]
        codec = SizeAwareCodec(sizes, key_bits=32)
        for c in codec.layout.codes:
            assert 2 ** c.feature_bits >= c.corpus_size
