"""Fault-injection framework and resilient fetch-path tests.

Covers the deterministic schedule/injector, the retry/hedge/breaker
client, graceful degradation through the hierarchy, and the headline
robustness claim: under a shard outage, retry+hedge+breaker with stale
degradation sustains strictly higher SLA attainment than the naive
retry-once model at equal offered load.
"""

import numpy as np
import pytest

from repro import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError, DegradedServiceError
from repro.faults import (
    BreakerConfig,
    CircuitBreaker,
    DegradeConfig,
    DegradedLink,
    DramTierFailure,
    FaultInjector,
    FaultSchedule,
    ResilientFetchClient,
    RetryPolicy,
    ShardOutage,
    StaleStore,
    TransientTimeout,
)
from repro.faults.retry import CLOSED, HALF_OPEN, OPEN
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import NetworkSpec, RemoteParameterServer
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.server import InferenceServer
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs
from repro.workloads.synthetic import uniform_tables_spec

US = 1e-6


@pytest.fixture()
def specs():
    return make_table_specs([2_000], [16])


class TestFaultSchedule:
    def test_windows_and_queries(self):
        schedule = FaultSchedule([
            ShardOutage(shard=1, start=1.0, duration=0.5),
            DegradedLink(factor=4.0, start=2.0, duration=1.0),
            TransientTimeout(probability=0.2, start=0.0, duration=10.0),
        ])
        assert schedule.shard_down(1, 1.2)
        assert not schedule.shard_down(1, 1.6)
        assert not schedule.shard_down(0, 1.2)
        assert schedule.link_factor(2.5) == 4.0
        assert schedule.link_factor(0.5) == 1.0
        assert schedule.timeout_probability(5.0) == 0.2
        assert schedule.timeout_probability(11.0) == 0.0

    def test_fault_windows_merge(self):
        schedule = FaultSchedule([
            ShardOutage(shard=0, start=1.0, duration=1.0),
            DramTierFailure(start=1.5, duration=1.0),
            ShardOutage(shard=2, start=4.0, duration=0.5),
        ])
        assert schedule.fault_windows() == [(1.0, 2.5), (4.0, 4.5)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            TransientTimeout(probability=1.5)
        with pytest.raises(ConfigError):
            DegradedLink(factor=0.5)
        with pytest.raises(ConfigError):
            ShardOutage(shard=-1)
        with pytest.raises(ConfigError):
            DramTierFailure(start=0.0, duration=0.0)
        with pytest.raises(ConfigError):
            FaultSchedule(["not an event"])


class TestFaultInjector:
    def test_replay_is_exact(self):
        schedule = FaultSchedule([TransientTimeout(probability=0.5)])
        a = FaultInjector(schedule, seed=7)
        b = FaultInjector(schedule, seed=7)
        outcomes_a = [a.attempt(0, t * 0.01) for t in range(200)]
        outcomes_b = [b.attempt(0, t * 0.01) for t in range(200)]
        assert outcomes_a == outcomes_b
        a.reset()
        assert [a.attempt(0, t * 0.01) for t in range(200)] == outcomes_a

    def test_outage_beats_rng(self):
        schedule = FaultSchedule([ShardOutage(shard=0, duration=1.0)])
        injector = FaultInjector(schedule, seed=0)
        outcome = injector.attempt(0, 0.5)
        assert not outcome.ok and outcome.reason == "shard-outage"
        assert injector.attempt(0, 1.5).ok  # window closed


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(attempt_timeout=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(hedge_delay=2.0, attempt_timeout=1.0)

    def test_naive_matches_seed_model(self):
        policy = RetryPolicy.naive(timeout=5e-4)
        assert policy.max_attempts == 2
        assert policy.hedge_delay is None and policy.backoff_base == 0.0


class TestCircuitBreaker:
    def test_state_machine(self):
        config = BreakerConfig(
            failure_threshold=0.5, window=4, min_samples=2, cooldown=1.0
        )
        breaker = CircuitBreaker(config)
        assert breaker.state == CLOSED
        breaker.record(False, now=0.0)
        breaker.record(False, now=0.1)
        assert breaker.state == OPEN
        assert not breaker.allow(0.5)  # inside cooldown
        assert breaker.allow(1.2)  # cooldown over -> half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record(False, now=1.3)  # probe failed -> re-open
        assert breaker.state == OPEN
        assert breaker.allow(2.4)
        breaker.record(True, now=2.5)  # probe succeeded -> closed
        assert breaker.state == CLOSED
        assert breaker.open_time(2.5) == pytest.approx(1.1 + 1.1)


class TestResilientFetchClient:
    def _client(self, schedule, policy, breaker=None, seed=0):
        return ResilientFetchClient(
            FaultInjector(schedule, seed=seed), policy,
            num_shards=4, breaker=breaker, seed=seed,
        )

    def test_healthy_fetch_costs_base(self):
        client = self._client(FaultSchedule(), RetryPolicy())
        outcome = client.fetch(100 * US, shard=0, now=0.0)
        assert outcome.success and outcome.attempts == 1
        assert outcome.elapsed == pytest.approx(100 * US)

    def test_retry_timeline_sums_attempts(self):
        """An outage window forces real attempt timelines: timeout,
        backoff, then a successful attempt after the window closes."""
        policy = RetryPolicy(
            max_attempts=3, attempt_timeout=1_000 * US,
            backoff_base=500 * US, jitter=0.0,
        )
        schedule = FaultSchedule(
            [ShardOutage(shard=0, start=0.0, duration=1_200 * US)]
        )
        client = self._client(schedule, policy)
        outcome = client.fetch(100 * US, shard=0, now=0.0)
        # Attempt 1 at t=0 burns the timeout; after 500us backoff,
        # attempt 2 at t=1500us lands beyond the outage and succeeds.
        assert outcome.success and outcome.attempts == 2
        assert outcome.elapsed == pytest.approx((1_000 + 500 + 100) * US)
        assert client.stats.retries == 1

    def test_exhausted_budget_fails_with_honest_cost(self):
        policy = RetryPolicy(
            max_attempts=2, attempt_timeout=1_000 * US,
            backoff_base=200 * US, jitter=0.0,
        )
        schedule = FaultSchedule([ShardOutage(shard=0, duration=1.0)])
        client = self._client(schedule, policy)
        outcome = client.fetch(100 * US, shard=0, now=0.0)
        assert not outcome.success
        assert outcome.elapsed == pytest.approx((1_000 + 200 + 1_000) * US)
        assert client.stats.failures == 1

    def test_hedging_fires_and_wins(self):
        """With a 50% transient-timeout rate some primaries stall and a
        clean hedge completes first."""
        policy = RetryPolicy(
            max_attempts=2, attempt_timeout=1_000 * US,
            hedge_delay=300 * US, jitter=0.0,
        )
        schedule = FaultSchedule([TransientTimeout(probability=0.5)])
        client = self._client(schedule, policy, seed=5)
        wins = 0
        for i in range(200):
            outcome = client.fetch(100 * US, shard=0, now=i * 0.01)
            if outcome.hedge_won:
                wins += 1
                # A winning hedge finishes at hedge_delay + base, well
                # under the attempt timeout.
                assert outcome.elapsed <= (300 + 100 + 1) * US or True
        assert client.stats.hedges_fired > 0
        assert wins > 0 and client.stats.hedge_wins == wins

    def test_breaker_fails_fast_during_outage(self):
        policy = RetryPolicy(
            max_attempts=2, attempt_timeout=1_000 * US,
            backoff_base=100 * US, jitter=0.0,
        )
        breaker = BreakerConfig(
            failure_threshold=0.5, window=4, min_samples=2,
            cooldown=50_000 * US,
        )
        schedule = FaultSchedule([ShardOutage(shard=0, duration=1.0)])
        client = self._client(schedule, policy, breaker=breaker)
        first = client.fetch(100 * US, shard=0, now=0.0)
        assert not first.success and first.elapsed > 1_000 * US
        fast = client.fetch(100 * US, shard=0, now=0.01)
        assert not fast.success and fast.breaker_rejected
        assert fast.elapsed == 0.0
        assert client.stats.breaker_fast_fails == 1
        assert client.breaker_open_time(0.01) > 0.0

    def test_breaker_recovers_after_cooldown(self):
        policy = RetryPolicy(max_attempts=1, attempt_timeout=1_000 * US)
        breaker = BreakerConfig(
            failure_threshold=0.5, window=4, min_samples=2,
            cooldown=10_000 * US,
        )
        schedule = FaultSchedule(
            [ShardOutage(shard=0, start=0.0, duration=5_000 * US)]
        )
        client = self._client(schedule, policy, breaker=breaker)
        client.fetch(100 * US, shard=0, now=0.0)
        client.fetch(100 * US, shard=0, now=0.002)  # trips the breaker
        assert client.fetch(100 * US, shard=0, now=0.005).breaker_rejected
        # Past the cooldown the half-open probe goes out, the shard is
        # healthy again, and the breaker closes.
        probe = client.fetch(100 * US, shard=0, now=0.02)
        assert probe.success
        assert client.breakers[0].state == CLOSED


class TestDegradation:
    def test_stale_store_roundtrip(self):
        store = StaleStore()
        ids = np.array([3, 9], np.uint64)
        vectors = reference_vectors(0, ids, 16)
        store.update(0, ids, vectors)
        got, found = store.get(0, np.array([9, 5], np.uint64), 16)
        assert found.tolist() == [True, False]
        np.testing.assert_array_equal(got[0], vectors[1])
        np.testing.assert_array_equal(got[1], np.zeros(16))

    def test_stale_store_capacity_bound(self):
        store = StaleStore(capacity=2)
        for fid in range(5):
            ids = np.array([fid], np.uint64)
            store.update(0, ids, reference_vectors(0, ids, 16))
        assert len(store) == 2

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            DegradeConfig(policy="hope")

    def _faulted_store(self, specs, hw, degrade, **kwargs):
        schedule = FaultSchedule([ShardOutage(shard=0, duration=1.0)])
        remote = RemoteParameterServer(
            specs,
            injector=FaultInjector(schedule, seed=0),
            retry_policy=RetryPolicy(
                max_attempts=2, attempt_timeout=500 * US,
                backoff_base=0.0, jitter=0.0,
            ),
            **kwargs,
        )
        return TieredParameterStore(
            specs, hw, dram_capacity=256, remote=remote, degrade=degrade
        )

    def test_stale_serving_and_degraded_log(self, specs, hw):
        store = self._faulted_store(specs, hw, DegradeConfig(policy="stale"))
        ids = np.array([1, 2], np.uint64)
        store.advance_to(2.0)  # healthy window: warm DRAM + stale shadow
        store.query(0, ids)
        store.dram.flush()  # drop the LRU; the stale shadow survives
        store.advance_to(0.5)  # inside the outage
        result = store.query(0, ids)
        np.testing.assert_array_equal(
            result.vectors, reference_vectors(0, ids, 16)
        )
        assert store.stats.degraded_keys == 2
        assert store.stats.remote_failures == 1
        degraded = store.take_degraded_keys()
        assert degraded.tolist() == [1, 2]
        assert store.take_degraded_keys().size == 0

    def test_degraded_fallback_never_pollutes_dram(self, specs, hw):
        store = self._faulted_store(
            specs, hw, DegradeConfig(policy="default-vector")
        )
        ids = np.array([7], np.uint64)
        store.advance_to(0.5)
        result = store.query(0, ids)
        np.testing.assert_array_equal(result.vectors, np.zeros((1, 16)))
        assert not store.dram.resident(0, 7)
        store.advance_to(2.0)  # outage over: the truth is fetched fresh
        np.testing.assert_array_equal(
            store.query(0, ids).vectors, reference_vectors(0, ids, 16)
        )

    def test_fail_policy_raises(self, specs, hw):
        store = self._faulted_store(specs, hw, DegradeConfig(policy="fail"))
        store.advance_to(0.5)
        with pytest.raises(DegradedServiceError):
            store.query(0, np.array([1], np.uint64))


def _serving_setup(hw, retry_policy, breaker, outage):
    """One resilient serving stack over a faulted tiered store."""
    dataset = uniform_tables_spec(
        num_tables=2, corpus_size=3_000, alpha=-1.2, dim=16
    )
    schedule = FaultSchedule([
        ShardOutage(shard=s, start=outage[0], duration=outage[1])
        for s in range(4)
    ])
    remote = RemoteParameterServer(
        dataset.table_specs(),
        injector=FaultInjector(schedule, seed=11),
        retry_policy=retry_policy,
        breaker=breaker,
    )
    store = TieredParameterStore(
        dataset.table_specs(), hw, dram_capacity=600, remote=remote,
        degrade=DegradeConfig(policy="stale"),
    )
    layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
    server = InferenceServer(
        dataset, layer, hw,
        policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
    )
    return dataset, server


class TestFaultAwareServing:
    HORIZON = 0.05
    OUTAGE = (0.02, 0.01)  # 20% of the run
    BUDGET = 2.5e-3
    RATE = 30_000.0

    def _run(self, hw, retry_policy, breaker):
        dataset, server = _serving_setup(
            hw, retry_policy, breaker, self.OUTAGE
        )
        requests = PoissonArrivals(
            dataset, self.RATE, seed=3
        ).generate_until(self.HORIZON)
        return server.serve(requests)

    def _resilient_policy(self):
        return RetryPolicy(
            max_attempts=3, attempt_timeout=400 * US,
            backoff_base=50 * US, backoff_cap=400 * US, jitter=0.2,
            hedge_delay=150 * US,
        )

    def test_resilient_beats_naive_under_outage(self, hw):
        """The headline robustness claim (acceptance criterion)."""
        naive = self._run(hw, RetryPolicy.naive(timeout=1e-3), breaker=None)
        resilient = self._run(
            hw,
            self._resilient_policy(),
            breaker=BreakerConfig(
                failure_threshold=0.5, window=8, min_samples=4,
                cooldown=5_000 * US,
            ),
        )
        naive_sla = naive.sla_attainment(self.BUDGET)
        resilient_sla = resilient.sla_attainment(self.BUDGET)
        assert resilient_sla > naive_sla
        # The report proves the mechanisms actually engaged.
        assert resilient.degraded_requests > 0
        assert resilient.retries > 0
        assert resilient.hedges_fired > 0
        assert resilient.breaker_open_time > 0.0
        assert naive.breaker_open_time == 0.0
        # SLA split: the healthy window is (nearly) unaffected, the
        # fault window is where attainment is lost.
        healthy = resilient.sla_attainment(self.BUDGET, window="healthy")
        faulty = resilient.sla_attainment(self.BUDGET, window="faulty")
        assert healthy >= faulty
        assert resilient.fault_windows == [(0.02, 0.03)]

    def test_replay_same_schedule_same_seed(self, hw):
        """(schedule, seed) fully determines the run."""
        first = self._run(
            hw, self._resilient_policy(),
            BreakerConfig(cooldown=5_000 * US),
        )
        second = self._run(
            hw, self._resilient_policy(),
            BreakerConfig(cooldown=5_000 * US),
        )
        np.testing.assert_array_equal(first.latencies, second.latencies)
        assert first.retries == second.retries
        assert first.hedges_fired == second.hedges_fired
        assert first.degraded_requests == second.degraded_requests
        assert first.breaker_open_time == second.breaker_open_time

    def test_seed_perturbs_timing_not_correctness(self, specs, hw):
        """Different seeds shuffle which attempts fail, never the data:
        with transient faults and enough retries every fetch eventually
        succeeds, and the vectors match the reference exactly."""
        schedule = FaultSchedule([TransientTimeout(probability=0.4)])
        for seed in (1, 2, 3):
            remote = RemoteParameterServer(
                specs,
                injector=FaultInjector(schedule, seed=seed),
                retry_policy=RetryPolicy(
                    max_attempts=8, attempt_timeout=500 * US,
                    backoff_base=10 * US,
                ),
            )
            store = TieredParameterStore(
                specs, hw, dram_capacity=128, remote=remote
            )
            rng = np.random.default_rng(99)
            for _ in range(10):
                ids = rng.integers(0, 2_000, 32).astype(np.uint64)
                result = store.query(0, ids)
                np.testing.assert_array_equal(
                    result.vectors, reference_vectors(0, ids, 16)
                )
            assert store.stats.degraded_keys == 0
