"""Per-request tracing: sampling contract, conservation law, root-cause.

Four contracts pin the tracer (``docs/observability.md``):

- **conservation** — a trace's exclusive segments telescope back to its
  end-to-end latency within float tolerance, for *any* stage/wait/scale
  /route configuration (property test) and for every trace the serving
  loops and the cluster router actually materialize (integration);
- **tail retention** — with tail capture on, 100% of SLA violators are
  sampled and root-caused, whatever the fault schedule does;
- **zero-cost off switch** — an untraced run emits no ``reqtrace.*``
  metrics and its latencies are byte-identical to a traced run's (the
  tracer only observes instants the loops already computed);
- **deterministic classification** — the dominant-segment root cause is
  a pure function of the decomposition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FlecheConfig, FlecheEmbeddingLayer, default_platform
from repro.cluster import ClusterConfig, ClusterRouter
from repro.errors import ConfigError
from repro.faults import (
    FaultSchedule,
    ReplicaCrash,
    ReplicaSlowdown,
)
from repro.obs import (
    CAUSE_PRIORITY,
    MetricsRegistry,
    RequestTracer,
    SEGMENTS,
    TraceConfig,
    TraceContext,
    classify,
    conserves,
    decompose,
    install_reqtrace_laws,
)
from repro.obs.reqtrace import RequestTrace, _finish_trace
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.serving.server import InferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


@pytest.fixture(scope="module")
def hw():
    return default_platform()


@pytest.fixture(scope="module")
def dataset():
    return uniform_tables_spec(
        num_tables=4, corpus_size=4_000, alpha=-1.2, dim=16
    )


def make_server(dataset, hw, pipelined=True, **kwargs):
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
    cls = PipelinedInferenceServer if pipelined else InferenceServer
    return cls(
        dataset, layer, hw,
        policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
        **kwargs,
    )


def reqtrace_counters(report):
    return {
        name: value
        for name, value in report.metrics.to_dict()["counters"].items()
        if name.startswith("reqtrace")
    }


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestTraceConfig:
    def test_defaults(self):
        cfg = TraceConfig()
        assert cfg.head_interval == 64
        assert cfg.sla_budget is None
        assert cfg.capture_tail

    def test_rejects_negative_interval(self):
        with pytest.raises(ConfigError):
            TraceConfig(head_interval=-1)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            TraceConfig(sla_budget=0.0)


# ---------------------------------------------------------------------------
# Conservation law + classifier: property tests over synthetic traces
# ---------------------------------------------------------------------------

_seconds = st.floats(
    min_value=0.0, max_value=1e-2, allow_nan=False, allow_infinity=False
)

_stages = st.lists(
    st.tuples(
        st.sampled_from(["index", "fetch", "copy", "dense", "custom"]),
        _seconds,  # inter-stage wait
        _seconds,  # exec
    ),
    min_size=0, max_size=6,
)

_route = st.one_of(
    st.none(),
    st.sampled_from(
        ["hedge_wait", "failover_redispatch", "breaker_fastfail"]
    ),
)


@st.composite
def synthetic_traces(draw):
    """A RequestTrace whose latency telescopes from its own terms —
    exactly the invariant the serving loops guarantee by construction."""
    queue = draw(_seconds)
    refresh = draw(_seconds)
    stages = draw(_stages)
    scale = draw(st.floats(min_value=1.0, max_value=8.0, allow_nan=False))
    route_wait = draw(_seconds)
    route_cause = draw(_route)
    coalesced = draw(st.integers(min_value=0, max_value=5))
    replica_side = queue + refresh + sum(w + e for _, w, e in stages)
    return RequestTrace(
        context=TraceContext(draw(st.integers(0, 2**31))),
        arrival=0.0,
        latency=route_wait + replica_side * scale,
        batch_index=0,
        queue=queue,
        refresh_wait=refresh,
        stages=tuple(stages),
        coalesced_keys=coalesced,
        scale=scale,
        route_wait=route_wait,
        route_cause=route_cause,
    )


class TestConservationProperty:
    @given(trace=synthetic_traces())
    @settings(max_examples=200, deadline=None)
    def test_segments_sum_to_latency(self, trace):
        segments = decompose(trace)
        assert conserves(segments, trace.latency)
        assert all(value >= 0.0 for value in segments.values())
        assert set(segments) <= set(SEGMENTS)

    @given(trace=synthetic_traces())
    @settings(max_examples=200, deadline=None)
    def test_classifier_picks_a_dominant_segment(self, trace):
        segments = decompose(trace)
        tag = classify(segments)
        positive = {k: v for k, v in segments.items() if v > 0.0}
        if not positive:
            assert tag == "unattributed"
        else:
            assert tag in positive
            assert positive[tag] == max(positive.values())
            # Deterministic: same decomposition, same tag.
            assert classify(dict(segments)) == tag

    def test_exact_tie_breaks_by_priority(self):
        tag = classify({"queue": 1e-3, "pcie_wait": 1e-3, "host": 1e-3})
        ranked = [
            CAUSE_PRIORITY.index(c) for c in ("queue", "pcie_wait", "host")
        ]
        assert tag == CAUSE_PRIORITY[min(ranked)]

    def test_shed_short_circuits(self):
        assert classify({"shed": 0.0, "queue": 5.0}) == "shed"

    def test_finish_trace_counts_conservation(self):
        registry = MetricsRegistry()
        trace = RequestTrace(
            context=TraceContext(7), arrival=0.0, latency=2e-3,
            batch_index=0, queue=1e-3,
            stages=(("fetch", 0.0, 1e-3),),
        )
        _finish_trace(trace, registry)
        counters = registry.snapshot().to_dict()["counters"]
        assert counters["reqtrace.conservation_checked"] == 1
        assert counters["reqtrace.conservation_ok"] == 1
        assert trace.conserved


# ---------------------------------------------------------------------------
# Sampling masks: head slice + 100% tail retention (property)
# ---------------------------------------------------------------------------


class TestSamplingProperty:
    @given(
        latencies=st.lists(
            st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False),
            min_size=1, max_size=200,
        ),
        interval=st.integers(min_value=0, max_value=16),
        budget=st.floats(min_value=1e-5, max_value=5e-3, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_violator_is_retained(self, latencies, interval, budget):
        lat = np.asarray(latencies)
        tracer = RequestTracer(TraceConfig(
            head_interval=interval, sla_budget=budget,
        ))
        tracer.begin_run(np.arange(len(lat)), np.zeros(len(lat)))
        head, tail, forced, violating = tracer.sample_masks(lat)
        sampled = head | tail | forced
        # Tail capture retains exactly the violating set.
        assert np.array_equal(tail, violating)
        assert np.all(sampled[violating])
        # Head sampling is the deterministic id slice.
        if interval:
            assert np.array_equal(
                head, np.arange(len(lat)) % interval == 0
            )
        else:
            assert not head.any()

    def test_capture_tail_off_drops_violators_to_head_only(self):
        lat = np.array([1.0, 1.0, 1.0, 1.0])
        tracer = RequestTracer(TraceConfig(
            head_interval=2, sla_budget=1e-3, capture_tail=False,
        ))
        tracer.begin_run(np.arange(4), np.zeros(4))
        head, tail, forced, violating = tracer.sample_masks(lat)
        assert violating.all() and not tail.any()
        assert np.array_equal(head | tail | forced, head)

    def test_force_retain_overrides_masks(self):
        tracer = RequestTracer(TraceConfig(head_interval=0))
        tracer.begin_run(np.array([3, 9]), np.zeros(2))
        tracer.force_retain([9])
        _, _, forced, _ = tracer.sample_masks(np.array([1e-4, 1e-4]))
        assert forced.tolist() == [False, True]


# ---------------------------------------------------------------------------
# Serving integration: both loops, conservation + zero-cost off switch
# ---------------------------------------------------------------------------


class TestServingIntegration:
    @pytest.mark.parametrize("pipelined", [True, False])
    def test_traced_run_conserves_and_counts(self, dataset, hw, pipelined):
        reqs = PoissonArrivals(dataset, 80_000.0, seed=3).generate(500)
        tracer = RequestTracer(TraceConfig(
            head_interval=16, sla_budget=2e-3,
        ))
        server = make_server(dataset, hw, pipelined, reqtracer=tracer)
        report = server.serve(reqs)
        assert report.traced_requests == len(reqs)
        assert report.sampled_traces == len(tracer.traces) > 0
        counters = reqtrace_counters(report)
        assert counters["reqtrace.requests"] == len(reqs)
        assert (
            counters["reqtrace.sampled"]
            + counters["reqtrace.dropped"] == len(reqs)
        )
        for trace in tracer.traces:
            assert trace.conserved, trace.to_dict()
            assert conserves(trace.segments, trace.latency)
        assert not server.obs.audit()

    @pytest.mark.parametrize("pipelined", [True, False])
    def test_untraced_run_is_byte_identical(self, dataset, hw, pipelined):
        reqs = PoissonArrivals(dataset, 80_000.0, seed=4).generate(400)
        plain = make_server(dataset, hw, pipelined).serve(reqs)
        traced = make_server(
            dataset, hw, pipelined,
            reqtracer=RequestTracer(TraceConfig(sla_budget=2e-3)),
        ).serve(reqs)
        assert np.array_equal(plain.latencies, traced.latencies)
        assert reqtrace_counters(plain) == {}
        assert plain.rootcause == {}
        assert plain.traced_requests == plain.sampled_traces == 0

    def test_violators_carry_rootcause(self, dataset, hw):
        reqs = PoissonArrivals(dataset, 80_000.0, seed=5).generate(400)
        tracer = RequestTracer(TraceConfig(
            head_interval=0, sla_budget=1e-6,  # everything violates
        ))
        report = make_server(dataset, hw, reqtracer=tracer).serve(reqs)
        assert report.sampled_traces == len(reqs)
        assert all(t.rootcause for t in tracer.traces)
        assert sum(report.rootcause.values()) == len(reqs)
        counters = reqtrace_counters(report)
        assert counters["reqtrace.tail_retained"] == len(reqs)
        assert counters["reqtrace.sla_violations"] == len(reqs)

    def test_spans_telescope_and_stamp_context(self, dataset, hw):
        reqs = PoissonArrivals(dataset, 80_000.0, seed=6).generate(300)
        tracer = RequestTracer(TraceConfig(head_interval=32))
        make_server(dataset, hw, reqtracer=tracer).serve(reqs)
        spans = tracer.chrome_spans()
        assert spans
        for span in spans:
            assert "request_id" in span.args
            assert "dispatch" in span.args
        for trace in tracer.traces:
            chain = trace.spans()
            root = chain[0]
            assert root[2] == "request"
            child_total = sum(entry[4] for entry in chain[1:])
            assert child_total == pytest.approx(root[4], abs=1e-9)

    def test_reqtrace_laws_flag_forged_counters(self):
        registry = MetricsRegistry()
        install_reqtrace_laws(registry)
        registry.inc("reqtrace.requests", 10)
        registry.inc("reqtrace.sampled", 4)
        registry.inc("reqtrace.dropped", 5)  # 4 + 5 != 10
        assert any(
            "reqtrace" in v for v in registry.audit()
        )


# ---------------------------------------------------------------------------
# Cluster integration: tail retention under random fault schedules
# ---------------------------------------------------------------------------


def random_fault_schedule(rng, horizon):
    """A random mix of crashes and slowdowns inside the run window.

    The router supports at most one crash window per replica, so crash
    victims are drawn without replacement; slowdowns are unrestricted.
    """
    events = []
    crashable = [0, 1, 2]
    for _ in range(rng.integers(1, 4)):
        start = float(rng.uniform(0.1, 0.6) * horizon)
        duration = float(rng.uniform(0.1, 0.4) * horizon)
        if crashable and rng.random() < 0.5:
            victim = crashable.pop(int(rng.integers(len(crashable))))
            events.append(ReplicaCrash(
                replica=victim, start=start, duration=duration,
            ))
        else:
            events.append(ReplicaSlowdown(
                replica=int(rng.integers(0, 3)), start=start,
                duration=duration, factor=float(rng.uniform(2.0, 6.0)),
            ))
    return FaultSchedule(events)


class TestClusterTailRetention:
    HORIZON = 0.03
    SLA = 2e-3

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_violators_rootcaused_under_random_faults(
        self, dataset, hw, seed
    ):
        rng = np.random.default_rng(seed)
        requests = PoissonArrivals(
            dataset, 50_000.0, seed=seed + 10
        ).generate_until(self.HORIZON)
        router = ClusterRouter(
            dataset, hw,
            config=ClusterConfig(num_replicas=3),
            schedule=random_fault_schedule(rng, self.HORIZON),
            trace=TraceConfig(sla_budget=self.SLA),
        )
        report = router.serve(requests)
        assert report.rootcause is not None
        # Every SLA violator was retained and carries a cause tag.
        assert report.rootcause["coverage"] == 1.0
        assert (
            report.rootcause["tagged"] == report.rootcause["violations"]
        )
        counters = report.metrics.to_dict()["counters"]
        assert (
            counters.get("reqtrace.tail_retained", 0)
            == counters.get("reqtrace.tail_eligible", 0)
        )
        # Every non-shed sampled trace conserves.
        conservation = report.rootcause["conservation"]
        assert conservation["ok"] == conservation["checked"]
        for trace in report.traces:
            if not trace.shed:
                assert trace.conserved, trace.to_dict()
        assert not router.obs.audit()

    def test_trace_payload_round_trips_through_analyzer(
        self, dataset, hw
    ):
        from repro.obs import analyze_payload

        requests = PoissonArrivals(
            dataset, 50_000.0, seed=21
        ).generate_until(self.HORIZON)
        router = ClusterRouter(
            dataset, hw,
            config=ClusterConfig(num_replicas=2),
            schedule=FaultSchedule([ReplicaCrash(
                replica=0, start=0.01, duration=0.012,
            )]),
            trace=TraceConfig(sla_budget=self.SLA),
        )
        report = router.serve(requests)
        payload = report.trace_payload(self.SLA)
        assert payload["kind"] == "reqtrace"
        assert payload["sampled"] == len(report.traces)
        analysis = analyze_payload(payload, top=5)
        assert len(analysis["top"]) <= 5
        latencies = [
            np.inf if row["latency_s"] is None else row["latency_s"]
            for row in analysis["top"]
        ]
        assert latencies == sorted(latencies, reverse=True)

    def test_untraced_router_is_byte_identical(self, dataset, hw):
        requests = PoissonArrivals(
            dataset, 50_000.0, seed=22
        ).generate_until(self.HORIZON)
        schedule = FaultSchedule([ReplicaCrash(
            replica=0, start=0.01, duration=0.012,
        )])

        def run(trace):
            return ClusterRouter(
                dataset, hw, config=ClusterConfig(num_replicas=2),
                schedule=schedule, trace=trace,
            ).serve(requests)

        plain = run(None)
        traced = run(TraceConfig(sla_budget=self.SLA))
        assert np.array_equal(plain.latencies, traced.latencies)
        assert plain.disposition_counts() == traced.disposition_counts()
        assert reqtrace_counters(plain) == {}
        assert plain.traces is None and plain.rootcause is None
