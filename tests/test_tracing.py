"""Tests for the executor timeline tracer."""

import json

import pytest

from repro.gpusim.executor import Executor
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.stats import Category
from repro.gpusim.tracing import Span, TraceRecorder
from repro.errors import SimulationError


def _kernel(name="k", threads=1024, nbytes=1 << 20):
    return KernelSpec(name, threads=threads, stream_bytes=nbytes)


@pytest.fixture()
def traced(hw):
    executor = Executor(hw)
    recorder = TraceRecorder.attach(executor)
    return executor, recorder


class TestSpanCapture:
    def test_launch_produces_cpu_and_stream_spans(self, traced):
        executor, recorder = traced
        executor.launch(_kernel("idx"))
        tracks = {s.track for s in recorder.spans}
        assert "cpu" in tracks
        assert any(t.startswith("stream:") for t in tracks)
        names = {s.name for s in recorder.spans}
        assert "launch:idx" in names and "idx" in names

    def test_kernel_span_duration_matches_model(self, traced, hw):
        from repro.gpusim.kernel import kernel_execution_time

        executor, recorder = traced
        spec = _kernel("big", nbytes=1 << 24)
        executor.launch(spec)
        span = next(s for s in recorder.spans if s.name == "big")
        assert span.duration == pytest.approx(
            kernel_execution_time(spec, hw)
        )

    def test_host_work_span(self, traced):
        executor, recorder = traced
        executor.host_work(1e-4, Category.DRAM_INDEX)
        span = recorder.spans[-1]
        assert span.track == "cpu"
        assert span.duration == pytest.approx(1e-4)
        assert span.category == "dram_index"

    def test_copy_and_sync_spans(self, traced):
        executor, recorder = traced
        executor.copy(4096, Category.DRAM_COPY)
        executor.synchronize(None)
        names = [s.name for s in recorder.spans]
        assert "copy:4096B" in names
        assert "sync:all" in names

    def test_timing_unchanged_by_tracing(self, hw):
        plain = Executor(hw)
        traced = Executor(hw)
        TraceRecorder.attach(traced)
        for executor in (plain, traced):
            executor.launch(_kernel())
            executor.host_work(5e-5, Category.OTHER)
            executor.copy(1 << 16, Category.DRAM_COPY)
            executor.synchronize(None)
        assert traced.elapsed() == pytest.approx(plain.elapsed())
        assert traced.stats.total() == pytest.approx(plain.stats.total())

    def test_overlap_visible_in_spans(self, traced):
        """Host work issued after an async launch overlaps the kernel."""
        executor, recorder = traced
        executor.launch(_kernel("long", nbytes=1 << 25))
        executor.host_work(1e-5, Category.DRAM_INDEX)
        kernel_span = next(s for s in recorder.spans if s.name == "long")
        host_span = next(s for s in recorder.spans if s.name.startswith("host:"))
        assert host_span.start < kernel_span.start + kernel_span.duration


class TestRecorderQueries:
    def test_tracks_cpu_first(self, traced):
        executor, recorder = traced
        executor.launch(_kernel(), stream=executor.stream("zeta"))
        assert recorder.tracks()[0] == "cpu"

    def test_busy_time(self, traced):
        executor, recorder = traced
        executor.host_work(2e-4, Category.OTHER)
        assert recorder.busy_time("cpu") >= 2e-4

    def test_clear(self, traced):
        executor, recorder = traced
        executor.host_work(1e-5, Category.OTHER)
        recorder.clear()
        assert not recorder.spans

    def test_negative_span_rejected(self):
        with pytest.raises(SimulationError):
            Span("cpu", "bad", 0.0, -1.0, "other")


class TestChromeExport:
    def test_events_well_formed(self, traced):
        executor, recorder = traced
        executor.launch(_kernel("idx"))
        executor.synchronize(None)
        trace = recorder.to_chrome_trace()
        assert "traceEvents" in trace
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float)

    def test_thread_names_emitted(self, traced):
        executor, recorder = traced
        executor.launch(_kernel())
        meta = [e for e in recorder.to_chrome_trace()["traceEvents"]
                if e["ph"] == "M"]
        assert any(e["args"]["name"] == "cpu" for e in meta)

    def test_export_json_roundtrip(self, traced, tmp_path):
        executor, recorder = traced
        executor.launch(_kernel())
        path = recorder.export_json(str(tmp_path / "t.json"))
        with open(path) as f:
            loaded = json.load(f)
        assert loaded["traceEvents"]

    def test_empty_span_list_exports_valid_trace(self, tmp_path):
        """No spans still yields a valid, loadable Chrome trace file."""
        from repro.gpusim.tracing import export_chrome_trace

        path = export_chrome_trace([], str(tmp_path / "empty.json"))
        with open(path) as f:
            loaded = json.load(f)
        assert loaded == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_zero_duration_span_exports(self, tmp_path):
        """Zero-duration spans (instant events) are valid and keep dur=0."""
        from repro.gpusim.tracing import Span, chrome_trace, export_chrome_trace

        spans = [Span("cpu", "tick", 0.0, 0.0, "other")]
        trace = chrome_trace(spans)
        event = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert event["dur"] == 0.0
        path = export_chrome_trace(spans, str(tmp_path / "zero.json"))
        with open(path) as f:
            assert json.load(f)["traceEvents"]

    def test_negative_zero_normalised(self):
        """-0.0 start/duration serialise as positive zero, not '-0.0'."""
        from repro.gpusim.tracing import Span, chrome_trace

        span = Span("cpu", "origin", -0.0, -0.0, "other")
        event = next(e for e in chrome_trace([span])["traceEvents"]
                     if e["ph"] == "X")
        assert json.dumps(event["ts"]) == "0.0"
        assert json.dumps(event["dur"]) == "0.0"

    def test_export_is_byte_deterministic(self, traced, tmp_path):
        """Exporting the same span list twice writes identical bytes."""
        executor, recorder = traced
        executor.launch(_kernel("k0"))
        executor.host_work(0.0, Category.OTHER)  # zero-duration span
        executor.synchronize(None)
        path_a = recorder.export_json(str(tmp_path / "a.json"))
        path_b = recorder.export_json(str(tmp_path / "b.json"))
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            bytes_a, bytes_b = fa.read(), fb.read()
        assert bytes_a == bytes_b
        assert bytes_a.endswith(b"\n")

    def test_full_query_produces_rich_trace(self, hw, small_store, rng):
        """A whole Fleche batch yields spans on several tracks."""
        from repro.core.config import FlecheConfig
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.workloads.trace import TraceBatch
        import numpy as np

        layer = FlecheEmbeddingLayer(small_store, FlecheConfig(cache_ratio=0.2), hw)
        executor = Executor(hw)
        recorder = TraceRecorder.attach(executor)
        ids = [rng.integers(0, s.corpus_size, 32).astype(np.uint64)
               for s in small_store.specs]
        layer.query(TraceBatch(ids_per_table=ids, batch_size=32), executor)
        assert len(recorder.tracks()) >= 3  # cpu + main + copy streams
        assert len(recorder.spans) > 10
