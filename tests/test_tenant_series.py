"""Tests for per-tenant SLA attribution in the windowed collector.

``set_tenancy`` maps request positions to tenants and gives each tenant
its own latency budget; the collector then emits labelled
``requests{tenant=...}`` / ``sla{tenant=...}`` series.  Without tenancy
no per-tenant series exist at all (byte-identity contract).
"""

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, WindowedCollector
from repro.scenarios import MultiTenantScenario, validate_load
from repro.workloads.synthetic import uniform_tables_spec


def _bound(**kwargs):
    collector = WindowedCollector(window=1e-3, **kwargs)
    return collector.bind(MetricsRegistry())


class TestTenancyConfig:
    def test_rejects_nonpositive_budget(self):
        collector = _bound()
        with pytest.raises(ConfigError):
            collector.set_tenancy(["a"], {"a": 0.0})

    def test_none_disables(self):
        collector = _bound(sla_budget=1e-3)
        collector.set_tenancy(["a", "b"], {"a": 1e-3})
        collector.set_tenancy(None)
        collector.observe_batch(0.5e-3, [1e-4, 2e-4], first_request=0)
        collector.flush(1e-3)
        assert not any("tenant=" in n for n in collector.names())


class TestAttribution:
    def test_latencies_split_by_position(self):
        collector = _bound(sla_budget=1e-3)
        collector.set_tenancy(
            ["a", "a", "b", "b"], {"a": 5e-4, "b": 2e-4},
        )
        # One batch covering requests 0..3; a's latencies within its
        # 0.5 ms budget, b's split around its 0.2 ms budget.
        collector.observe_batch(
            0.5e-3, [1e-4, 4e-4, 1e-4, 3e-4], first_request=0,
        )
        collector.flush(1e-3)
        win = collector.windows[0]
        assert win.value("requests{tenant=a}") == 2.0
        assert win.value("requests{tenant=b}") == 2.0
        assert win.value("sla{tenant=a}") == 1.0
        assert win.value("sla{tenant=b}") == 0.5

    def test_batches_partition_the_stream(self):
        collector = _bound(sla_budget=1e-3)
        collector.set_tenancy(["a", "b", "a", "b"], {})
        collector.observe_batch(0.2e-3, [1e-4, 1e-4], first_request=0)
        collector.observe_batch(0.4e-3, [1e-4, 1e-4], first_request=2)
        collector.flush(1e-3)
        win = collector.windows[0]
        assert win.value("requests{tenant=a}") == 2.0
        assert win.value("requests{tenant=b}") == 2.0

    def test_tenant_without_slo_falls_back_to_global(self):
        collector = _bound(sla_budget=2e-4)
        collector.set_tenancy(["c", "c"], {})
        collector.observe_batch(0.5e-3, [1e-4, 3e-4], first_request=0)
        collector.flush(1e-3)
        assert collector.windows[0].value("sla{tenant=c}") == 0.5

    def test_only_active_tenants_emit(self):
        collector = _bound(sla_budget=1e-3)
        collector.set_tenancy(["a", "a", "z"], {"z": 1e-4})
        collector.observe_batch(0.5e-3, [1e-4, 1e-4], first_request=0)
        collector.flush(1e-3)
        names = collector.names()
        assert "requests{tenant=a}" in names
        assert "requests{tenant=z}" not in names

    def test_buckets_clear_between_windows(self):
        collector = _bound(sla_budget=1e-3)
        collector.set_tenancy(["a"] * 8, {})
        collector.observe_batch(0.5e-3, [1e-4, 1e-4], first_request=0)
        collector.observe_batch(1.5e-3, [1e-4], first_request=2)
        collector.flush(2e-3)
        assert collector.windows[0].value("requests{tenant=a}") == 2.0
        assert collector.windows[1].value("requests{tenant=a}") == 1.0


class TestScenarioIntegration:
    def test_multi_tenant_load_declares_consistent_tenancy(self):
        dataset = uniform_tables_spec(
            num_tables=2, corpus_size=1_000, alpha=-1.2, dim=8,
        )
        load = MultiTenantScenario(
            dataset, seed=3, duration=4e-3,
        ).build()
        validate_load(load, dataset)
        assert load.tenant_of is not None
        assert len(load.tenant_of) == len(load.requests)
        assert set(load.tenant_slos) == set(load.tenant_of)
        collector = _bound(sla_budget=1e-3)
        collector.set_tenancy(load.tenant_of, load.tenant_slos)
        for i, request in enumerate(load.requests):
            collector.observe_batch(
                request.arrival_time + 1e-4, [1e-4], first_request=i,
            )
        collector.flush(load.duration + 1e-3)
        names = set()
        for win in collector.windows:
            names.update(win.values)
        for tenant in sorted(set(load.tenant_of)):
            assert f"requests{{tenant={tenant}}}" in names
