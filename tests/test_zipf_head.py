"""Unit tests for the shared Zipf-head helper (``workloads.zipf_head_ids``).

The helper is the single home of the ``seed * 31 + field_index`` serving
seeding convention previously duplicated between ``cli._cluster_victim``
and ``ClusterReplica.warm_hot_keys``; these tests pin bit-equality with
the direct sampler construction so neither call site drifted.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import FieldSpec, ZipfSampler, uniform_tables_spec, zipf_head_ids


def test_matches_direct_sampler_construction():
    fields = [FieldSpec(corpus_size=500), FieldSpec(corpus_size=900, alpha=-1.05)]
    heads = zipf_head_ids(fields, seed=7, count=32)
    assert len(heads) == len(fields)
    for i, f in enumerate(fields):
        expected = ZipfSampler(f.corpus_size, f.alpha, seed=7 * 31 + i).hottest_ids(32)
        assert heads[i].dtype == np.uint64
        np.testing.assert_array_equal(heads[i], expected)


def test_matches_arrival_stream_seeding():
    """The helper must warm exactly the head the arrival stream hammers."""
    from repro.serving.arrivals import _FeatureSource

    spec = uniform_tables_spec(num_tables=3, corpus_size=2_000, num_samples=100)
    source = _FeatureSource(spec, seed=11)
    heads = zipf_head_ids(spec.fields, seed=11, count=16)
    for sampler, head in zip(source._samplers, heads):
        np.testing.assert_array_equal(sampler.hottest_ids(16), head)


def test_count_clamped_to_smallest_corpus():
    fields = [FieldSpec(corpus_size=10), FieldSpec(corpus_size=10_000)]
    heads = zipf_head_ids(fields, seed=0, count=64)
    assert all(len(h) == 10 for h in heads)


def test_rejects_bad_inputs():
    with pytest.raises(WorkloadError):
        zipf_head_ids([], seed=0, count=4)
    with pytest.raises(WorkloadError):
        zipf_head_ids([FieldSpec(corpus_size=100)], seed=0, count=0)


def test_deterministic_across_calls():
    fields = [FieldSpec(corpus_size=300)]
    a = zipf_head_ids(fields, seed=3, count=8)
    b = zipf_head_ids(fields, seed=3, count=8)
    np.testing.assert_array_equal(a[0], b[0])
    c = zipf_head_ids(fields, seed=4, count=8)
    assert not np.array_equal(a[0], c[0])
