"""Property-based tests for the sorted-segment in-flight miss table.

The vectorized :class:`~repro.serving.pipeline.InFlightMissTable` stores
each publish call as a sorted key array plus sort-ordered vector rows.
These properties pin its contract against a plain dict model:

- **match is a dict lookup**: a key matches iff some live segment
  published it, and the returned row is that key's published vector (in
  probe order), however the probe is ordered or duplicated;
- **exactly-once publish**: the lifecycle counters conserve
  (published == retired once every owner is retired), and a retired
  owner's keys stop matching;
- **owner retirement is exact**: retiring one owner never disturbs other
  owners' entries.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.pipeline import InFlightMissTable

DIM = 4

key_arrays = st.lists(
    st.integers(min_value=0, max_value=2**48 - 1), min_size=0, max_size=40
)

#: Several publishes with disjoint key sets (the table's precondition:
#: misses are matched against the table before a leader fetches, so live
#: segments never share a key).
publish_batches = st.lists(key_arrays, min_size=0, max_size=5).map(
    lambda batches: _disjoint(batches)
)


def _disjoint(batches):
    seen = set()
    out = []
    for batch in batches:
        fresh = [k for k in dict.fromkeys(batch) if k not in seen]
        seen.update(fresh)
        out.append(fresh)
    return out


def _vectors_for(keys):
    """Deterministic per-key rows so matches are checkable per element."""
    arr = np.asarray(keys, dtype=np.uint64)
    cols = np.arange(DIM, dtype=np.float64)
    return ((arr[:, None] % 1021).astype(np.float64) + cols / 8.0).astype(
        np.float32
    )


def _publish_all(table, batches):
    reference = {}
    for owner, batch in enumerate(batches):
        keys = np.asarray(batch, dtype=np.uint64)
        vectors = _vectors_for(keys)
        table.set_owner(owner)
        table.publish(keys, vectors)
        for i, k in enumerate(batch):
            reference[k] = (owner, vectors[i])
    return reference


@settings(max_examples=80, deadline=None)
@given(batches=publish_batches, probes=key_arrays)
def test_match_is_a_dict_lookup(batches, probes):
    table = InFlightMissTable()
    reference = _publish_all(table, batches)
    probe = np.asarray(probes, dtype=np.uint64)
    mask, rows, degraded = table.match(probe, DIM)
    assert mask.shape == (len(probes),)
    assert degraded == 0
    expected_mask = np.array(
        [k in reference for k in probes], dtype=bool
    )
    np.testing.assert_array_equal(mask, expected_mask)
    assert rows.shape == (int(expected_mask.sum()), DIM)
    matched_keys = probe[mask]
    for row, k in zip(rows, matched_keys.tolist()):
        np.testing.assert_array_equal(row, reference[k][1])


@settings(max_examples=80, deadline=None)
@given(batches=publish_batches)
def test_exactly_once_publish_and_retire_conserve(batches):
    table = InFlightMissTable()
    _publish_all(table, batches)
    published = sum(len(batch) for batch in batches)
    assert table.stats.published_keys == published
    assert len(table) == published
    # Retire in an arbitrary-but-deterministic order; each owner retires
    # exactly its own keys, and retiring twice retires nothing.
    total_retired = 0
    for owner in reversed(range(len(batches))):
        dead = table.retire(owner)
        assert dead == len(batches[owner])
        assert table.retire(owner) == 0
        total_retired += dead
    assert total_retired == published
    assert table.stats.retired_keys == published
    assert len(table) == 0


@settings(max_examples=80, deadline=None)
@given(batches=publish_batches, victim=st.integers(0, 4))
def test_retire_leaves_other_owners_intact(batches, victim):
    table = InFlightMissTable()
    reference = _publish_all(table, batches)
    table.retire(victim)
    survivors = [
        k for k, (owner, _) in reference.items() if owner != victim
    ]
    gone = [k for k, (owner, _) in reference.items() if owner == victim]
    assert len(table) == len(survivors)
    if survivors:
        probe = np.asarray(survivors, dtype=np.uint64)
        mask, rows, _ = table.match(probe, DIM)
        assert mask.all()
        for row, k in zip(rows, survivors):
            np.testing.assert_array_equal(row, reference[k][1])
    if gone:
        probe = np.asarray(gone, dtype=np.uint64)
        mask, _, _ = table.match(probe, DIM)
        assert not mask.any()


@settings(max_examples=40, deadline=None)
@given(batches=publish_batches, probes=key_arrays)
def test_match_counts_coalesced_keys(batches, probes):
    """The stats counter advances by exactly the matched-key count."""
    table = InFlightMissTable()
    reference = _publish_all(table, batches)
    probe = np.asarray(probes, dtype=np.uint64)
    before = table.stats.coalesced_keys
    mask, _, _ = table.match(probe, DIM)
    matched = sum(1 for k in probes if k in reference)
    assert int(mask.sum()) == matched
    assert table.stats.coalesced_keys - before == matched
