"""Tests for the AUC metric."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.model.auc import auc_score


class TestAucScore:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 0.0

    def test_random_scores_near_half(self, rng):
        labels = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_midrank(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_known_value(self):
        labels = np.array([1, 0, 1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7, 0.6, 0.2])
        # Pairs: (0.9>0.8),(0.9>0.6),(0.7<0.8),(0.7>0.6),(0.2<0.8),(0.2<0.6)
        assert auc_score(labels, scores) == pytest.approx(3 / 6)

    def test_monotone_transform_invariance(self, rng):
        labels = rng.integers(0, 2, size=200)
        labels[:5] = 1
        labels[5:10] = 0
        scores = rng.random(200)
        a = auc_score(labels, scores)
        b = auc_score(labels, scores * 100 - 3)
        assert a == pytest.approx(b)

    def test_needs_both_classes(self):
        with pytest.raises(WorkloadError):
            auc_score(np.ones(5), np.ones(5))

    def test_needs_matching_shapes(self):
        with pytest.raises(WorkloadError):
            auc_score(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            auc_score(np.zeros(0), np.zeros(0))
