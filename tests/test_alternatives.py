"""Tests for the alternative designs the paper discusses (§5 / §2.2):
reduction cache, persistent kernels, and CUDA-graph HugeCTR."""

import numpy as np
import pytest

from repro.baselines.per_table_cache import PerTableCacheLayer, PerTableConfig
from repro.baselines.persistent_kernel import (
    PersistentKernelConfig,
    degraded_platform,
    query_service_time,
)
from repro.baselines.reduction_cache import ReductionCache, co_occurrence_workload
from repro.errors import ConfigError, WorkloadError
from repro.gpusim.executor import Executor
from repro.model.pooling import sum_pool
from repro.tables.store import EmbeddingStore
from repro.tables.table_spec import make_table_specs
from repro.workloads.trace import TraceBatch


@pytest.fixture()
def store(hw):
    return EmbeddingStore(make_table_specs([1000], [16]), hw)


class TestReductionCache:
    def test_pooled_matches_direct_computation(self, store):
        cache = ReductionCache(store, capacity=100)
        group = np.array([3, 7, 11], np.uint64)
        expect = sum_pool(store.table(0).lookup(group), 3)[0]
        np.testing.assert_array_equal(cache.pooled(0, group), expect)

    def test_memoization_hits_on_repeat(self, store):
        cache = ReductionCache(store, capacity=100)
        group = np.array([1, 2], np.uint64)
        cache.pooled(0, group)
        cache.pooled(0, group)
        assert cache.memo_hits == 1
        assert cache.lookups_saved == 2

    def test_group_order_irrelevant(self, store):
        cache = ReductionCache(store, capacity=100)
        cache.pooled(0, np.array([5, 9], np.uint64))
        cache.pooled(0, np.array([9, 5], np.uint64))
        assert cache.memo_hits == 1

    def test_lru_bounded(self, store):
        cache = ReductionCache(store, capacity=2)
        for i in range(5):
            cache.pooled(0, np.array([i, i + 1], np.uint64))
        assert len(cache) == 2

    def test_rejects_unsupported_pooling(self, store):
        """The §5 limitation: only decomposable pooling is memoizable."""
        with pytest.raises(WorkloadError):
            ReductionCache(store, capacity=10, pooling="attention")

    def test_mean_and_max_pooling_supported(self, store):
        for pooling in ("mean", "max"):
            ReductionCache(store, capacity=10, pooling=pooling).pooled(
                0, np.array([1, 2], np.uint64)
            )

    def test_effective_on_co_occurring_workload(self, store):
        groups = co_occurrence_workload(
            num_samples=500, group_pool_size=20, ids_per_group=4,
            corpus_size=1000, repeat_probability=0.9, seed=1,
        )
        cache = ReductionCache(store, capacity=64)
        cache.pooled_batch(0, groups)
        assert cache.hit_rate > 0.6  # MERCI's favourable regime

    def test_useless_without_co_occurrence(self, store):
        groups = co_occurrence_workload(
            num_samples=300, group_pool_size=20, ids_per_group=4,
            corpus_size=1000, repeat_probability=0.0, seed=1,
        )
        cache = ReductionCache(store, capacity=64)
        cache.pooled_batch(0, groups)
        assert cache.hit_rate < 0.05

    def test_capacity_validation(self, store):
        with pytest.raises(ConfigError):
            ReductionCache(store, capacity=0)


class TestPersistentKernel:
    def test_no_launch_overhead_in_service_time(self, hw):
        config = PersistentKernelConfig()
        t = query_service_time(hw, config, num_keys=100, dim=32)
        # Far below even two kernel launches.
        assert t < 2 * hw.kernel.launch_overhead + 1e-4

    def test_degraded_platform_slows_compute(self, hw):
        config = PersistentKernelConfig(sm_fraction=0.25)
        slow = degraded_platform(hw, config)
        assert slow.gpu.peak_flops == pytest.approx(0.75 * hw.gpu.peak_flops)
        assert slow.gpu.max_resident_threads < hw.gpu.max_resident_threads

    def test_mlp_is_slower_under_persistent_kernel(self, hw):
        """The §5 rejection: the resident kernel steals SMs from the MLP."""
        from repro.model.mlp import MLP

        config = PersistentKernelConfig(sm_fraction=0.3)
        slow_hw = degraded_platform(hw, config)
        mlp = MLP(512, [1024, 1024])

        def mlp_time(platform):
            executor = Executor(platform)
            for spec in mlp.kernels(batch_size=4096):
                executor.launch(spec)
            return executor.drain()

        assert mlp_time(slow_hw) > 1.2 * mlp_time(hw)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PersistentKernelConfig(sm_fraction=0.0)
        with pytest.raises(ConfigError):
            PersistentKernelConfig(sm_fraction=1.0)
        with pytest.raises(ConfigError):
            PersistentKernelConfig(poll_latency=-1.0)

    def test_service_time_scales_with_keys(self, hw):
        config = PersistentKernelConfig()
        small = query_service_time(hw, config, 100, 32)
        large = query_service_time(hw, config, 10_000, 32)
        assert large > small


class TestCudaGraphBaseline:
    def _run(self, hw, rng, use_graph, num_tables=24):
        specs = make_table_specs([2000] * num_tables, [16] * num_tables)
        store = EmbeddingStore(specs, hw)
        layer = PerTableCacheLayer(
            store,
            PerTableConfig(cache_ratio=0.2, use_cuda_graph=use_graph),
            hw,
        )
        batches = [
            TraceBatch(
                [rng.integers(0, 2000, 64).astype(np.uint64)
                 for _ in range(num_tables)],
                batch_size=64,
            )
            for _ in range(6)
        ]
        executor = Executor(hw)
        for b in batches[:3]:
            layer.query(b, executor)
        executor.reset()
        for b in batches[3:]:
            layer.query(b, executor)
        executor.drain()
        return executor.stats

    def test_graph_reduces_launch_cost(self, hw, rng):
        plain = self._run(hw, rng, use_graph=False)
        graphed = self._run(hw, rng, use_graph=True)
        assert graphed.maintenance_time < plain.maintenance_time

    def test_findings_are_similar(self, hw, rng):
        """§2.2: even with CUDA graphs, maintenance still grows with the
        table count — the per-node dispatch, metadata copies, and syncs
        remain proportional to n."""
        def maintenance(num_tables):
            return self._run(hw, rng, True, num_tables).maintenance_time

        assert maintenance(48) > 1.8 * maintenance(8)

    def test_graph_config_validation(self):
        with pytest.raises(ConfigError):
            PerTableConfig(graph_replay_overhead=-1.0)
