"""Tests for the kernel roofline cost model."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.kernel import KernelSpec, coalesced_bytes, kernel_execution_time


class TestCoalescedBytes:
    def test_rounds_up_to_transactions(self):
        assert coalesced_bytes(1, 128) == 128
        assert coalesced_bytes(128, 128) == 128
        assert coalesced_bytes(129, 128) == 256

    def test_zero_is_zero(self):
        assert coalesced_bytes(0, 128) == 0

    def test_dim16_and_dim32_cost_the_same(self):
        # The memory-coalescing effect the paper observes in Exp #10:
        # 16-dim (64 B) and 32-dim (128 B) embeddings both take one
        # 128 B transaction.
        assert coalesced_bytes(16 * 4, 128) == coalesced_bytes(32 * 4, 128)

    def test_dim64_costs_double(self):
        assert coalesced_bytes(64 * 4, 128) == 2 * coalesced_bytes(32 * 4, 128)


class TestKernelSpec:
    def test_warps_round_up(self):
        assert KernelSpec("k", threads=1).warps == 1
        assert KernelSpec("k", threads=32).warps == 1
        assert KernelSpec("k", threads=33).warps == 2

    def test_rejects_negative_threads(self):
        with pytest.raises(SimulationError):
            KernelSpec("k", threads=-1)

    def test_rejects_negative_work(self):
        with pytest.raises(SimulationError):
            KernelSpec("k", threads=1, stream_bytes=-5)

    def test_fused_with_sums_work(self):
        a = KernelSpec("a", threads=100, stream_bytes=10, random_transactions=5,
                       dependent_hops=1.0, flops=7)
        b = KernelSpec("b", threads=50, stream_bytes=20, random_transactions=3,
                       dependent_hops=2.0, flops=1)
        fused = a.fused_with(b)
        assert fused.threads == 150
        assert fused.stream_bytes == 30
        assert fused.random_transactions == 8
        assert fused.dependent_hops == 2.0  # max, not sum
        assert fused.flops == 8


class TestExecutionTime:
    def test_zero_threads_costs_nothing(self, hw):
        spec = KernelSpec("k", threads=0)
        assert kernel_execution_time(spec, hw) == 0.0

    def test_includes_fixed_cost(self, hw):
        spec = KernelSpec("k", threads=1)
        assert kernel_execution_time(spec, hw) >= hw.kernel.kernel_fixed_cost

    def test_memory_bound_scales_with_bytes(self, hw):
        small = KernelSpec("k", threads=1024, stream_bytes=1 << 20)
        large = KernelSpec("k", threads=1024, stream_bytes=1 << 24)
        t_small = kernel_execution_time(small, hw)
        t_large = kernel_execution_time(large, hw)
        assert t_large > t_small
        # Once fixed costs amortise, the ratio approaches the byte ratio.
        assert (t_large - hw.kernel.kernel_fixed_cost) == pytest.approx(
            16 * (t_small - hw.kernel.kernel_fixed_cost), rel=1e-6
        )

    def test_random_traffic_slower_than_streaming(self, hw):
        nbytes = 1 << 22
        stream = KernelSpec("s", threads=1024, stream_bytes=nbytes)
        random = KernelSpec(
            "r", threads=1024,
            random_transactions=nbytes // hw.gpu.transaction_bytes,
        )
        assert kernel_execution_time(random, hw) > kernel_execution_time(stream, hw)

    def test_compute_bound_uses_flops(self, hw):
        spec = KernelSpec("k", threads=1024, flops=1e9)
        expected_busy = 1e9 / (hw.gpu.peak_flops * hw.gpu.flops_efficiency)
        total = kernel_execution_time(spec, hw)
        assert total == pytest.approx(hw.kernel.kernel_fixed_cost + expected_busy)

    def test_roofline_takes_max_not_sum(self, hw):
        mem_only = KernelSpec("m", threads=64, stream_bytes=1 << 22)
        both = KernelSpec("b", threads=64, stream_bytes=1 << 22, flops=1.0)
        assert kernel_execution_time(both, hw) == pytest.approx(
            kernel_execution_time(mem_only, hw)
        )

    def test_dependent_hops_add_latency_for_big_launches(self, hw):
        # More threads than can be resident -> extra waves of latency.
        resident = hw.gpu.max_resident_threads
        one_wave = KernelSpec("k", threads=resident, dependent_hops=2.0)
        two_waves = KernelSpec("k", threads=resident + 1, dependent_hops=2.0)
        assert kernel_execution_time(two_waves, hw) >= kernel_execution_time(
            one_wave, hw
        )
