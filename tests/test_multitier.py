"""Tests for the giant-model three-tier hierarchy (paper §5)."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError, WorkloadError
from repro.gpusim.executor import Executor
from repro.multitier.dram_cache import DramCacheLayer, pack_global_key
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import NetworkSpec, RemoteParameterServer
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs
from repro.workloads.trace import TraceBatch


@pytest.fixture()
def specs():
    return make_table_specs([800, 1200], [16, 16])


class TestRemoteParameterServer:
    def test_fetch_returns_ground_truth(self, specs):
        ps = RemoteParameterServer(specs)
        ids = np.array([3, 7], np.uint64)
        result = ps.fetch(1, ids)
        np.testing.assert_array_equal(
            result.vectors, reference_vectors(1, ids, 16)
        )

    def test_network_cost_has_rtt_floor(self, specs):
        ps = RemoteParameterServer(specs)
        result = ps.fetch(0, np.array([1], np.uint64))
        assert result.network_time >= ps.network.round_trip

    def test_payload_scales_cost(self, specs):
        ps = RemoteParameterServer(specs)
        small = ps.fetch(0, np.arange(2, dtype=np.uint64)).network_time
        large = ps.fetch(0, np.arange(500, dtype=np.uint64)).network_time
        assert large > small

    def test_sharding_divides_streaming(self, specs):
        one = RemoteParameterServer(specs, NetworkSpec(num_shards=1))
        four = RemoteParameterServer(specs, NetworkSpec(num_shards=4))
        ids = np.arange(700, dtype=np.uint64)
        assert four.fetch(0, ids).network_time < one.fetch(0, ids).network_time

    def test_out_of_corpus_rejected(self, specs):
        ps = RemoteParameterServer(specs)
        with pytest.raises(WorkloadError):
            ps.fetch(0, np.array([800], np.uint64))

    def test_counters(self, specs):
        ps = RemoteParameterServer(specs)
        ps.fetch(0, np.arange(5, dtype=np.uint64))
        assert ps.fetches == 1 and ps.keys_served == 5


class TestDramCacheLayer:
    def _fetch(self, specs):
        def fetch(table_id, ids):
            return reference_vectors(table_id, ids, 16), 1e-5
        return fetch

    def test_miss_then_hit(self, specs):
        cache = DramCacheLayer(specs, capacity=100, fetch=self._fetch(specs))
        ids = np.array([1, 2], np.uint64)
        v1, cost1 = cache.lookup(0, ids)
        assert cost1 > 0
        v2, cost2 = cache.lookup(0, ids)
        assert cost2 == 0.0
        np.testing.assert_array_equal(v1, v2)
        assert cache.hits == 2 and cache.misses == 2

    def test_returns_ground_truth(self, specs):
        cache = DramCacheLayer(specs, capacity=100, fetch=self._fetch(specs))
        ids = np.array([5, 5, 9], np.uint64)
        vectors, _ = cache.lookup(1, ids)
        np.testing.assert_array_equal(vectors, reference_vectors(1, ids, 16))

    def test_lru_eviction_with_notification(self, specs):
        cache = DramCacheLayer(specs, capacity=3, fetch=self._fetch(specs))
        evicted = []
        cache.on_eviction(lambda keys: evicted.extend(keys.tolist()))
        cache.lookup(0, np.array([1, 2, 3], np.uint64))
        cache.lookup(0, np.array([4], np.uint64))  # evicts key 1
        assert evicted == [pack_global_key(0, 1)]
        assert not cache.resident(0, 1)
        assert cache.resident(0, 4)

    def test_touch_refreshes_lru(self, specs):
        cache = DramCacheLayer(specs, capacity=2, fetch=self._fetch(specs))
        cache.lookup(0, np.array([1], np.uint64))
        cache.lookup(0, np.array([2], np.uint64))
        cache.lookup(0, np.array([1], np.uint64))  # refresh 1
        cache.lookup(0, np.array([3], np.uint64))  # evicts 2
        assert cache.resident(0, 1)
        assert not cache.resident(0, 2)

    def test_capacity_validation(self, specs):
        with pytest.raises(ConfigError):
            DramCacheLayer(specs, capacity=0, fetch=self._fetch(specs))


class TestTieredParameterStore:
    def test_query_matches_ground_truth(self, specs, hw):
        store = TieredParameterStore(specs, hw, dram_capacity=500)
        ids = np.array([10, 20, 10], np.uint64)
        result = store.query(0, ids)
        np.testing.assert_array_equal(
            result.vectors, reference_vectors(0, ids, 16)
        )

    def test_remote_cost_appears_only_on_dram_miss(self, specs, hw):
        store = TieredParameterStore(specs, hw, dram_capacity=500)
        ids = np.array([1, 2, 3], np.uint64)
        cold = store.query(0, ids)
        warm = store.query(0, ids)
        assert cold.cost.copy_time > warm.cost.copy_time
        assert store.stats.dram_hit_rate > 0

    def test_query_many(self, specs, hw):
        store = TieredParameterStore(specs, hw, dram_capacity=500)
        tables = np.array([0, 1, 0])
        features = np.array([1, 2, 3], np.uint64)
        result = store.query_many(tables, features)
        assert result.vectors.shape == (3, 16)

    def test_eviction_invalidates_unified_pointers(self, specs, hw):
        """§5's corner case end to end: DRAM eviction erases the GPU-side
        pointer so it can never be trusted while dangling."""
        store = TieredParameterStore(specs, hw, dram_capacity=4)
        layer = FlecheEmbeddingLayer(
            store,
            FlecheConfig(cache_ratio=0.05, unified_index_fraction=1.0),
            hw,
        )
        layer.tuner = None
        layer.cache.set_unified_capacity(50)
        # Plant a unified pointer for (table 0, id 1).
        layer.cache.tick()
        flat = layer.cache.encode(0, np.array([1], np.uint64))
        layer.cache.publish_dram_pointers(flat, np.array([1], np.uint64))
        assert layer.cache.unified_entries == 1
        # Fill the DRAM tier with (table 0, id 1) then flood it out.
        store.query(0, np.array([1], np.uint64))
        store.query(0, np.array([2, 3, 4, 5, 6], np.uint64))
        assert not store.dram.resident(0, 1)
        # The dangling pointer is gone from the flat cache's index.
        outcome = layer.cache.index_lookup(flat)
        assert not outcome.dram_hit.any()
        assert layer.cache.unified_entries == 0
        assert store.stats.pointer_invalidations > 0

    def test_dram_fault_invalidates_pointers_exactly_once(self, specs, hw):
        """A DRAM-tier failure window drops every resident entry; the
        registered GPU unified-index invalidator fires exactly once per
        key, and caching resumes once the window closes."""
        from collections import Counter

        from repro.faults import DramTierFailure, FaultInjector, FaultSchedule

        schedule = FaultSchedule([DramTierFailure(start=1.0, duration=1.0)])
        remote = RemoteParameterServer(
            specs, injector=FaultInjector(schedule, seed=0)
        )
        store = TieredParameterStore(
            specs, hw, dram_capacity=64, remote=remote
        )
        fired = Counter()
        store.register_pointer_invalidator(
            lambda keys: fired.update(keys.tolist())
        )
        ids = np.array([1, 2, 3], np.uint64)
        store.query(0, ids)  # healthy: populates the DRAM tier
        assert store.dram.resident(0, 1)

        store.advance_to(1.2)  # inside the failure window
        result = store.query(0, ids)
        np.testing.assert_array_equal(
            result.vectors, reference_vectors(0, ids, 16)
        )
        expected = {pack_global_key(0, int(i)) for i in ids}
        assert set(fired) == expected
        assert all(count == 1 for count in fired.values())
        assert not store.dram.resident(0, 1)

        # Still down: queries bypass DRAM and fire nothing new.
        store.query(0, np.array([4], np.uint64))
        assert all(count == 1 for count in fired.values())
        assert store.stats.dram_bypass_queries == 2

        store.advance_to(2.5)  # window closed: caching resumes
        store.query(0, ids)
        assert store.dram.resident(0, 1)
        assert all(count == 1 for count in fired.values())

    def test_full_inference_through_tiers(self, specs, hw, rng):
        """Fleche runs unchanged on the tiered store (§5's claim)."""
        store = TieredParameterStore(specs, hw, dram_capacity=400)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        for _ in range(4):
            ids = [
                rng.integers(0, s.corpus_size, 32).astype(np.uint64)
                for s in specs
            ]
            batch = TraceBatch(ids_per_table=ids, batch_size=32)
            result = layer.query(batch, Executor(hw))
            for t, table_ids in enumerate(batch.ids_per_table):
                np.testing.assert_array_equal(
                    result.outputs[t],
                    reference_vectors(t, table_ids, 16),
                )
