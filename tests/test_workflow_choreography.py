"""Deep tests of the query workflow's timing choreography (§3.3).

These verify the *mechanisms* behind Figures 7, 8, and 15 — overlap,
kernel counts per variant, and where each technique's time goes — by
inspecting the executor's accounting rather than end results.
"""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer, coupled_query_kernel_spec
from repro.gpusim.executor import Executor
from repro.gpusim.kernel import kernel_execution_time
from repro.gpusim.stats import Category
from repro.tables.store import EmbeddingStore
from repro.tables.table_spec import make_table_specs
from repro.workloads.trace import TraceBatch


@pytest.fixture()
def store(hw):
    return EmbeddingStore(make_table_specs([5_000] * 6, [32] * 6), hw)


def batch_of(store, rng, n=512):
    return TraceBatch(
        [rng.integers(0, 5_000, n).astype(np.uint64) for _ in store.specs],
        batch_size=n,
    )


def run_warm(layer, batch, hw, warm_rounds=3):
    executor = Executor(hw)
    for _ in range(warm_rounds):
        layer.query(batch, executor)
    executor.reset()
    layer.query(batch, executor)
    executor.drain()
    return executor


class TestDecouplingMechanism:
    def test_decoupled_overlaps_dram_with_copy(self, store, hw, rng):
        """In the decoupled path, DRAM host work proceeds while the copy
        stream is busy: wall time < sum of parts."""
        layer = FlecheEmbeddingLayer(
            store,
            FlecheConfig(cache_ratio=0.02, decouple_copy=True,
                         use_unified_index=False),
            hw,
        )
        batch = batch_of(store, rng)
        executor = run_warm(layer, batch, hw)
        wall = executor.elapsed()
        serial_sum = executor.stats.total()
        assert wall < serial_sum  # overlap existed

    def test_coupled_kernel_carries_copy_costs(self, hw):
        """Figure 7a: the coupled spec embeds gather + lock-retry traffic."""
        plain = coupled_query_kernel_spec(
            "q", num_keys=1000, hit_rows=0, output_rows=1000, dim=32, hw=hw
        )
        with_hits = coupled_query_kernel_spec(
            "q", num_keys=1000, hit_rows=900, output_rows=1000, dim=32, hw=hw
        )
        assert (kernel_execution_time(with_hits, hw)
                > kernel_execution_time(plain, hw))

    def test_larger_dims_extend_lock_hold(self, hw):
        narrow = coupled_query_kernel_spec(
            "q", num_keys=100, hit_rows=90, output_rows=100, dim=32, hw=hw
        )
        wide = coupled_query_kernel_spec(
            "q", num_keys=100, hit_rows=90, output_rows=100, dim=128, hw=hw
        )
        assert wide.dependent_hops > narrow.dependent_hops

    def test_spin_window_shared_across_tables(self, hw):
        solo = coupled_query_kernel_spec(
            "q", num_keys=10_000, hit_rows=10_000, output_rows=10_000,
            dim=32, hw=hw, concurrent_tables=1,
        )
        crowded = coupled_query_kernel_spec(
            "q", num_keys=10_000, hit_rows=10_000, output_rows=10_000,
            dim=32, hw=hw, concurrent_tables=40,
        )
        assert crowded.random_transactions < solo.random_transactions


class TestKernelCountsPerVariant:
    def _kernel_count(self, executor, prefix):
        return sum(
            c for name, c in executor.stats.counters.items()
            if name.startswith(f"kernel:{prefix}")
        )

    def test_fused_decoupled_launches_minimum(self, store, hw, rng):
        layer = FlecheEmbeddingLayer(
            store,
            FlecheConfig(cache_ratio=0.3, use_unified_index=False),
            hw,
        )
        executor = run_warm(layer, batch_of(store, rng), hw)
        assert self._kernel_count(executor, "fc_index_fused") == 1
        # Fully warm: no replacement kernels needed.
        launches = executor.stats.counters["kernel_launches"]
        assert launches <= 6  # dedup, index, copy, restore (+ slack)

    def test_unfused_scales_launches_with_tables(self, hw, rng):
        def launches(num_tables):
            specs = make_table_specs([2_000] * num_tables, [16] * num_tables)
            store = EmbeddingStore(specs, hw)
            layer = FlecheEmbeddingLayer(
                store,
                FlecheConfig(cache_ratio=0.3, use_fusion=False,
                             use_unified_index=False),
                hw,
            )
            batch = TraceBatch(
                [rng.integers(0, 2_000, 64).astype(np.uint64)
                 for _ in range(num_tables)],
                batch_size=64,
            )
            executor = run_warm(layer, batch, hw)
            return executor.stats.counters["kernel_launches"]

        assert launches(12) - launches(3) >= 8

    def test_maintenance_share_shrinks_with_fusion(self, store, hw, rng):
        batch = batch_of(store, rng, n=64)

        def maintenance_share(fusion):
            layer = FlecheEmbeddingLayer(
                store,
                FlecheConfig(cache_ratio=0.3, use_fusion=fusion,
                             use_unified_index=False),
                hw,
            )
            executor = run_warm(layer, batch, hw)
            return executor.stats.maintenance_time / executor.elapsed()

        assert maintenance_share(True) < maintenance_share(False)


class TestUnifiedIndexMechanism:
    def test_pointer_hits_cut_dram_index_time(self, store, hw, rng):
        batch = batch_of(store, rng)

        def dram_index_time(enabled):
            config = FlecheConfig(
                cache_ratio=0.005,
                use_unified_index=enabled,
                unified_index_fraction=2.0,
            )
            layer = FlecheEmbeddingLayer(store, config, hw)
            if enabled:
                layer.tuner = None
                layer.cache.set_unified_capacity(
                    int(layer.cache.capacity_slots * 2.0)
                )
            executor = Executor(hw)
            for _ in range(12):  # deep churn so eviction/demotion happens
                layer.query(batch, executor)
            local_rng = np.random.default_rng(3)
            executor.reset()
            for _ in range(4):
                layer.query(batch_of(store, local_rng), executor)
            return executor.stats.seconds.get(Category.DRAM_INDEX, 0.0)

        assert dram_index_time(True) < dram_index_time(False)

    def test_unified_hits_counted(self, store, hw, rng):
        config = FlecheConfig(cache_ratio=0.005, unified_index_fraction=2.0)
        layer = FlecheEmbeddingLayer(store, config, hw)
        layer.tuner = None
        layer.cache.set_unified_capacity(
            int(layer.cache.capacity_slots * 2.0)
        )
        executor = Executor(hw)
        total_unified = 0
        for _ in range(16):
            result = layer.query(batch_of(store, rng), executor)
            total_unified += result.unified_hits
        assert total_unified > 0
