"""Stateful property test for the update log and subscriber.

A ``RuleBasedStateMachine`` drives a trainer/publisher pair against two
replicas of the same flat cache: a *steady* replica that applies every
batch as it lands, and a *lagging* replica that applies only when the
machine decides to.  Invariants checked continuously:

- log offsets are dense and monotonic; replay is deterministic;
- the stream-conservation audit (carried + applied + dropped == keys
  through the applied offset) holds on the steady replica's registry;
- at any point, snapshotting the lagging replica, restoring the
  snapshot into a cold cache, and replaying the tail converges to the
  exact fingerprint of the steady replica.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.model.trainer import delta_vectors
from repro.obs import MetricsRegistry, install_conservation_laws
from repro.refresh import (
    UpdateLog,
    UpdatePublisher,
    UpdateSubscriber,
    fingerprint,
)
from repro.tables.table_spec import make_table_specs

DIM = 8
CORPUS = 64


def _build_cache():
    specs = make_table_specs([CORPUS, CORPUS], [DIM, DIM])
    cache = FlatCache(
        specs, FlecheConfig(cache_ratio=0.5, unified_index_fraction=1.0)
    )
    cache.set_unified_capacity(40)
    cache.tick()
    return cache


class RefreshMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.log = UpdateLog()
        self.publisher = UpdatePublisher(self.log, max_batch_keys=16)
        self.registry = MetricsRegistry()
        install_conservation_laws(self.registry)
        self.steady = _build_cache()
        self.steady_sub = UpdateSubscriber(self.log, self.steady)
        self.steady_sub.bind_observability(self.registry)
        self.lagging = _build_cache()
        self.lagging_sub = UpdateSubscriber(self.log, self.lagging)
        self.version = 0
        self.now = 1.0
        self.offsets = []

    @rule(
        table=st.integers(0, 1),
        ids=st.lists(
            st.integers(0, CORPUS - 1), min_size=1, max_size=12, unique=True
        ),
    )
    def publish_round(self, table, ids):
        feature_ids = np.asarray(sorted(ids), dtype=np.uint64)
        self.version += 1
        self.publisher.stage(
            table,
            feature_ids,
            delta_vectors(table, feature_ids, DIM, self.version),
        )
        self.offsets.extend(self.publisher.publish(self.version, self.now))
        self.now += 1.0
        self.steady_sub.catch_up(self.now)

    @rule()
    def lagging_applies_one(self):
        self.lagging_sub.apply_next(self.now)

    @rule()
    def lagging_recovers_from_snapshot(self):
        snap = self.lagging_sub.snapshot()
        cold = _build_cache()
        self.lagging_sub = UpdateSubscriber.from_snapshot(
            snap, cold, self.log
        )
        self.lagging = cold

    @invariant()
    def offsets_are_dense(self):
        if hasattr(self, "offsets"):
            assert self.offsets == list(range(len(self.offsets)))

    @invariant()
    def replay_is_deterministic(self):
        if not getattr(self, "offsets", None):
            return
        once = [
            (b.offset, b.model_version, b.num_keys)
            for b in self.log.replay(0, now=self.now)
        ]
        again = [
            (b.offset, b.model_version, b.num_keys)
            for b in self.log.replay(0, now=self.now)
        ]
        assert once == again

    @invariant()
    def stream_conservation_holds(self):
        if hasattr(self, "registry"):
            assert self.registry.audit() == []

    @invariant()
    def recovery_converges_to_steady_replica(self):
        if not hasattr(self, "log"):
            return
        snap = self.lagging_sub.snapshot()
        cold = _build_cache()
        restored = UpdateSubscriber.from_snapshot(snap, cold, self.log)
        restored.catch_up(self.now)
        assert restored.applied_offset == self.steady_sub.applied_offset
        assert restored.applied_version == self.steady_sub.applied_version
        assert fingerprint(cold) == fingerprint(self.steady)


RefreshMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestRefreshMachine = RefreshMachine.TestCase
