"""Tests for the additional model families (DeepFM, self-attention)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model.attention import SelfAttentionInteraction
from repro.model.deepfm import DeepFM


@pytest.fixture()
def pooled(rng):
    return [rng.standard_normal((8, 16)).astype(np.float32) for _ in range(4)]


class TestDeepFM:
    def test_forward_shape_and_range(self, pooled):
        model = DeepFM(num_tables=4, embedding_dim=16, hidden_units=[32])
        out = model.forward(model.concat_inputs(pooled))
        assert out.probabilities.shape == (8,)
        assert ((out.probabilities > 0) & (out.probabilities < 1)).all()

    def test_fm_pairwise_identity(self, rng):
        """The O(T*D) FM computation equals the explicit pairwise sum."""
        model = DeepFM(num_tables=3, embedding_dim=4, hidden_units=[8])
        fields = rng.standard_normal((5, 3, 4)).astype(np.float32)
        x = np.concatenate([fields[:, t, :] for t in range(3)], axis=1)
        got = model._fm_terms(x)
        explicit = np.zeros(5)
        for i in range(3):
            explicit += fields[:, i, :].mean(axis=1) * model.first_order[i]
        pair = np.zeros(5)
        for i in range(3):
            for j in range(i + 1, 3):
                pair += (fields[:, i, :] * fields[:, j, :]).sum(axis=1)
        explicit += pair / 4
        np.testing.assert_allclose(got, explicit, rtol=1e-4, atol=1e-5)

    def test_needs_two_tables(self):
        with pytest.raises(ConfigError):
            DeepFM(num_tables=1, embedding_dim=8)

    def test_kernels_include_fm_and_mlp(self):
        model = DeepFM(num_tables=4, embedding_dim=16, hidden_units=[32, 32])
        kernels = model.kernels(batch_size=8)
        assert kernels[0].name == "fm_interaction"
        assert len(kernels) == 1 + 3

    def test_flops_scale_with_batch(self):
        model = DeepFM(num_tables=4, embedding_dim=16)
        assert model.flops(20) == pytest.approx(20 * model.flops(1), rel=1e-6)

    def test_wrong_input_dim_rejected(self, pooled):
        model = DeepFM(num_tables=4, embedding_dim=16)
        with pytest.raises(ConfigError):
            model.forward(np.zeros((2, 7), np.float32))


class TestSelfAttention:
    def test_forward_shape_and_range(self, pooled):
        model = SelfAttentionInteraction(num_tables=4, embedding_dim=16)
        out = model.forward(model.concat_inputs(pooled))
        assert out.probabilities.shape == (8,)
        assert ((out.probabilities >= 0) & (out.probabilities <= 1)).all()

    def test_attention_mixes_tokens(self, rng):
        """Perturbing one table's embedding changes other tokens' outputs —
        the non-decomposability that rules out reduction caching (§5)."""
        model = SelfAttentionInteraction(
            num_tables=3, embedding_dim=8, num_layers=1, seed=3
        )
        base = [rng.standard_normal((1, 8)).astype(np.float32)
                for _ in range(3)]
        x = model.concat_inputs(base)
        tokens = x.reshape(1, 3, 8)
        out_before = model._attend(tokens, 0)
        perturbed = [row.copy() for row in base]
        perturbed[0] = perturbed[0] + 1.0
        tokens2 = model.concat_inputs(perturbed).reshape(1, 3, 8)
        out_after = model._attend(tokens2, 0)
        # Token 2's output changed even though only table 0's input moved.
        assert not np.allclose(out_before[0, 2], out_after[0, 2])

    def test_heads_must_divide_dim(self):
        with pytest.raises(ConfigError):
            SelfAttentionInteraction(num_tables=4, embedding_dim=10,
                                     num_heads=3)

    def test_kernels_one_attention_per_layer(self):
        model = SelfAttentionInteraction(
            num_tables=4, embedding_dim=16, num_layers=3, hidden_units=[8]
        )
        names = [k.name for k in model.kernels(4)]
        assert sum(n.startswith("attention_") for n in names) == 3

    def test_deterministic(self, pooled):
        a = SelfAttentionInteraction(4, 16, seed=7)
        b = SelfAttentionInteraction(4, 16, seed=7)
        x = a.concat_inputs(pooled)
        np.testing.assert_array_equal(
            a.forward(x).probabilities, b.forward(x).probabilities
        )


class TestEngineCompatibility:
    @pytest.mark.parametrize("factory", [
        lambda n, d: DeepFM(num_tables=n, embedding_dim=d, hidden_units=[32]),
        lambda n, d: SelfAttentionInteraction(
            num_tables=n, embedding_dim=d, hidden_units=[32]),
    ])
    def test_engine_runs_each_family(self, factory, small_store,
                                     small_dataset, small_trace, hw):
        from repro.core.config import FlecheConfig
        from repro.core.engine import InferenceEngine
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.gpusim.executor import Executor

        model = factory(small_dataset.num_tables, small_dataset.dim)
        layer = FlecheEmbeddingLayer(
            small_store, FlecheConfig(cache_ratio=0.2), hw
        )
        engine = InferenceEngine(layer, hw, model=model)
        result = engine.run(list(small_trace)[:4], Executor(hw), warmup=1)
        assert result.last_probabilities is not None
        assert result.throughput > 0

    def test_model_families_cost_differently(self, hw):
        """The Exp #12 discussion: dense-part families differ in cost."""
        from repro.model.dcn import DeepCrossNetwork

        n, d, batch = 26, 32, 1024
        dcn = DeepCrossNetwork(n, d)
        fm = DeepFM(n, d, hidden_units=[1024, 1024])
        attn = SelfAttentionInteraction(n, d, hidden_units=[1024, 1024])
        flops = {m.__class__.__name__: m.flops(batch) for m in (dcn, fm, attn)}
        assert len(set(flops.values())) == 3
