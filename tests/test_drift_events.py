"""Tests for ``WindowedCollector.drift_events`` under hard phase changes.

The Jensen-Shannon drift detector compares consecutive windows'
per-table hit distributions; a hard working-set shift must flag exactly
once per change (the transition window), then resolve — and the strict
``>`` threshold comparison means a divergence exactly *at* the
threshold never flags.
"""

from repro.obs import MetricsRegistry, WindowedCollector, jensen_shannon

#: Two phase distributions with a large divergence between them.
PHASE_A = {0: 80, 1: 15, 2: 5}
PHASE_B = {3: 70, 4: 20, 5: 10}


def _bound(**kwargs):
    collector = WindowedCollector(window=1e-3, **kwargs)
    return collector.bind(MetricsRegistry())


def _feed_window(collector, index, dist):
    """One window of per-table hits following ``dist``."""
    registry = collector.registry
    for table, count in dist.items():
        registry.inc("cache.table_hits", count, table=table)
        registry.inc("cache.table_lookups", count, table=table)
    collector.observe_batch((index + 0.5) * 1e-3)


def _run_phases(collector, phases):
    """``phases`` is a list of (distribution, window count)."""
    index = 0
    for dist, windows in phases:
        for _ in range(windows):
            _feed_window(collector, index, dist)
            index += 1
    collector.flush(index * 1e-3)
    return collector


class TestHardPhaseChange:
    def test_fires_exactly_once_per_change(self):
        collector = _run_phases(_bound(), [(PHASE_A, 5), (PHASE_B, 5)])
        assert len(collector.drift_events) == 1
        window_index, score = collector.drift_events[0]
        assert window_index == 5           # the transition window
        assert score > collector.drift_threshold

    def test_resolves_after_transition(self):
        collector = _run_phases(_bound(), [(PHASE_A, 3), (PHASE_B, 6)])
        # Windows 4..8 are steady on PHASE_B: drift is back to ~0, so
        # the flag series shows a single pulse, not a level shift.
        flags = collector.series("drift_flag")
        assert flags[3] == 1.0
        assert all(f == 0.0 for f in flags[4:])

    def test_two_changes_fire_twice(self):
        collector = _run_phases(
            _bound(), [(PHASE_A, 4), (PHASE_B, 4), (PHASE_A, 4)],
        )
        assert [w for w, _ in collector.drift_events] == [4, 8]

    def test_steady_state_never_fires(self):
        collector = _run_phases(_bound(), [(PHASE_A, 10)])
        assert collector.drift_events == []

    def test_first_window_has_no_baseline(self):
        collector = _run_phases(_bound(), [(PHASE_B, 1)])
        assert collector.drift_events == []


class TestThresholdBoundary:
    def _divergence(self):
        """Exact divergence of one PHASE_A -> PHASE_B transition."""
        return jensen_shannon(
            {str(k): float(v) for k, v in PHASE_B.items()},
            {str(k): float(v) for k, v in PHASE_A.items()},
        )

    def test_exactly_at_threshold_does_not_fire(self):
        # Strict ``>``: a transition whose divergence equals the
        # threshold bit-for-bit is *not* an event.
        d = self._divergence()
        collector = _run_phases(
            _bound(drift_threshold=d), [(PHASE_A, 3), (PHASE_B, 3)],
        )
        assert collector.drift_events == []
        assert all(f == 0.0 for f in collector.series("drift_flag"))

    def test_just_below_threshold_fires(self):
        d = self._divergence()
        collector = _run_phases(
            _bound(drift_threshold=d * (1.0 - 1e-12)),
            [(PHASE_A, 3), (PHASE_B, 3)],
        )
        assert len(collector.drift_events) == 1

    def test_payload_carries_events(self):
        collector = _run_phases(_bound(), [(PHASE_A, 3), (PHASE_B, 3)])
        payload = collector.to_payload()
        assert payload["drift_events"] == [
            {"window": 3, "divergence": collector.drift_events[0][1]},
        ]
