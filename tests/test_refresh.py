"""Tests for the online model-refresh subsystem (log/publisher/
subscriber/scheduler) and its serving integration."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.errors import ConfigError, RefreshError
from repro.faults import FaultSchedule, SlowSubscriber, UpdateLogOutage
from repro.model.trainer import EmbeddingDeltaTrainer, delta_vectors
from repro.obs import MetricsRegistry, install_conservation_laws
from repro.refresh import (
    RefreshScheduler,
    UpdateLog,
    UpdatePublisher,
    UpdateSubscriber,
    fingerprint,
)
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs

DIM = 16


def build_cache(ratio=0.5, corpora=(400, 400)):
    specs = make_table_specs(list(corpora), [DIM] * len(corpora))
    cache = FlatCache(
        specs,
        FlecheConfig(cache_ratio=ratio, unified_index_fraction=1.0),
    )
    cache.set_unified_capacity(50)
    cache.tick()
    return cache


def fill(cache, table, ids):
    features = np.asarray(ids, dtype=np.uint64)
    keys = cache.encode(table, features)
    cache.admit_and_insert(
        keys, reference_vectors(table, features, DIM), DIM
    )
    return keys


def delta(table, ids, version=1):
    ids = np.asarray(ids, dtype=np.uint64)
    return {table: (ids, delta_vectors(table, ids, DIM, version))}


class TestUpdateLog:
    def test_offsets_are_monotonic_and_never_reused(self):
        log = UpdateLog()
        offsets = [
            log.append(v, delta(0, [v], version=v), published_at=float(v))
            for v in range(1, 5)
        ]
        assert offsets == [0, 1, 2, 3]
        assert log.latest_offset == 3
        assert log.next_offset == 4

    def test_version_must_not_go_backwards(self):
        log = UpdateLog()
        log.append(3, delta(0, [1], version=3))
        with pytest.raises(RefreshError):
            log.append(2, delta(0, [1], version=2))

    def test_publish_time_must_not_go_backwards(self):
        log = UpdateLog()
        log.append(1, delta(0, [1]), published_at=5.0)
        with pytest.raises(RefreshError):
            log.append(2, delta(0, [1]), published_at=4.0)

    def test_unpublished_offset_fails_loudly(self):
        log = UpdateLog()
        with pytest.raises(RefreshError):
            log.read(0)

    def test_retention_trims_and_trimmed_reads_fail_loudly(self):
        log = UpdateLog(retention=2)
        for v in range(1, 5):
            log.append(v, delta(0, [v, v + 10], version=v))
        assert log.first_offset == 2
        assert log.trimmed_batches == 2
        assert log.trimmed_keys == 4
        with pytest.raises(RefreshError, match="trimmed"):
            log.read(0)
        # Metadata survives the trim exactly.
        assert log.keys_between(0, 3) == 8
        assert log.num_keys_at(0) == 2
        assert log.total_keys == 8

    def test_replay_is_deterministic(self):
        log = UpdateLog()
        for v in range(1, 4):
            log.append(v, delta(0, [v, v + 1], version=v),
                       published_at=float(v))
        first = list(log.replay(0))
        second = list(log.replay(0))
        assert [b.offset for b in first] == [0, 1, 2]
        for a, b in zip(first, second):
            assert a.model_version == b.model_version
            for da, db in zip(a.deltas, b.deltas):
                np.testing.assert_array_equal(da.feature_ids, db.feature_ids)
                assert da.vectors.tobytes() == db.vectors.tobytes()

    def test_replay_up_to_gates_on_publish_time(self):
        log = UpdateLog()
        for v in range(1, 4):
            log.append(v, delta(0, [v], version=v), published_at=float(v))
        assert [b.offset for b in log.replay(0, up_to=2.0)] == [0, 1]

    def test_version_queries_are_time_gated(self):
        log = UpdateLog()
        log.append(1, delta(0, [1]), published_at=1.0)
        log.append(5, delta(0, [2], version=5), published_at=3.0)
        assert log.latest_version(0.5) == 0
        assert log.latest_version(1.0) == 1
        assert log.latest_version(10.0) == 5
        assert log.latest_published_offset(2.0) == 0
        assert log.latest_published_offset(3.0) == 1

    def test_outage_blocks_payload_but_not_metadata(self):
        schedule = FaultSchedule([UpdateLogOutage(start=1.0, duration=2.0)])
        log = UpdateLog(schedule=schedule)
        log.append(1, delta(0, [1, 2]), published_at=0.5)
        assert log.available(0.5)
        assert not log.available(1.5)
        with pytest.raises(RefreshError, match="outage"):
            log.read(0, now=1.5)
        # The control plane keeps answering during the outage.
        assert log.latest_version(1.5) == 1
        assert log.keys_between(0, 0) == 2
        # And payload reads come back once the window closes.
        assert log.read(0, now=3.0).num_keys == 2

    def test_retention_must_be_positive(self):
        with pytest.raises(ConfigError):
            UpdateLog(retention=0)


class TestUpdatePublisher:
    def test_last_write_wins_coalescing(self):
        log = UpdateLog()
        publisher = UpdatePublisher(log)
        ids = np.array([7], np.uint64)
        publisher.stage(0, ids, np.ones((1, DIM), np.float32))
        publisher.stage(0, ids, np.full((1, DIM), 2.0, np.float32))
        assert publisher.buffered_keys == 1
        publisher.publish(1, now=0.0)
        batch = log.read(0)
        np.testing.assert_array_equal(
            batch.deltas[0].vectors, np.full((1, DIM), 2.0, np.float32)
        )

    def test_publish_chunks_by_max_batch_keys(self):
        log = UpdateLog()
        publisher = UpdatePublisher(log, max_batch_keys=3)
        ids = np.arange(8, dtype=np.uint64)
        publisher.stage(0, ids, np.zeros((8, DIM), np.float32))
        offsets = publisher.publish(1)
        assert offsets == [0, 1, 2]
        assert [log.read(o).num_keys for o in offsets] == [3, 3, 2]

    def test_coalesce_counter_identity(self):
        registry = MetricsRegistry()
        install_conservation_laws(registry)
        log = UpdateLog()
        publisher = UpdatePublisher(log)
        publisher.bind_observability(registry)
        ids = np.arange(4, dtype=np.uint64)
        publisher.stage(0, ids, np.zeros((4, DIM), np.float32))
        publisher.stage(0, ids[:2], np.ones((2, DIM), np.float32))
        publisher.publish(1)
        publisher.stage(1, ids[:3], np.ones((3, DIM), np.float32))
        # staged == published + coalesced + buffered, buffer as a gauge.
        assert registry.total("refresh.staged_keys") == 9
        assert registry.total("refresh.published_keys") == 4
        assert registry.total("refresh.coalesced_writes") == 2
        assert registry.audit() == []

    def test_drain_pulls_one_trainer_round(self):
        log = UpdateLog()
        publisher = UpdatePublisher(log)
        trainer = EmbeddingDeltaTrainer(
            [400, 400], [DIM, DIM], keys_per_round=16, seed=3
        )
        version = publisher.drain(trainer, now=1.0)
        assert version == 1
        assert log.latest_version() == 1
        assert log.total_keys > 0

    def test_stage_validates_shapes(self):
        publisher = UpdatePublisher(UpdateLog())
        with pytest.raises(RefreshError):
            publisher.stage(
                0, np.array([1], np.uint64), np.zeros((2, DIM), np.float32)
            )
        publisher.stage(
            0, np.array([1], np.uint64), np.zeros((1, DIM), np.float32)
        )
        with pytest.raises(RefreshError):
            publisher.stage(
                0, np.array([2], np.uint64), np.zeros((1, 8), np.float32)
            )


class TestUpdateSubscriber:
    def _stream(self, rounds=3, published_at=None):
        log = UpdateLog()
        for v in range(1, rounds + 1):
            at = float(v) if published_at is None else published_at[v - 1]
            log.append(
                v, delta(0, [v, v + 1, v + 2], version=v), published_at=at
            )
        return log

    def test_applies_stream_to_cache(self):
        cache = build_cache()
        fill(cache, 0, [1, 2, 3, 4, 5])
        log = self._stream(rounds=2)
        subscriber = UpdateSubscriber(log, cache)
        assert subscriber.catch_up(now=10.0) == 2
        assert subscriber.applied_offset == 1
        assert subscriber.applied_version == 2
        # The cache serves the version-2 rows for the keys both rounds hit.
        ids = np.array([2, 3], np.uint64)
        keys = cache.encode(0, ids)
        outcome = cache.index_lookup(keys)
        assert outcome.cache_hit.all()
        np.testing.assert_array_equal(
            cache.gather(outcome.locations),
            delta_vectors(0, ids, DIM, 2),
        )

    def test_batches_gate_on_publish_time(self):
        cache = build_cache()
        log = self._stream(rounds=2, published_at=[1.0, 5.0])
        subscriber = UpdateSubscriber(log, cache)
        assert subscriber.catch_up(now=2.0) == 1
        assert subscriber.pending_keys(2.0) == 0
        assert subscriber.pending_keys(5.0) == 3
        assert subscriber.catch_up(now=5.0) == 1

    def test_write_through_to_host_store(self):
        calls = []

        class FakeStore:
            def apply_update(self, table_id, feature_ids, vectors):
                calls.append((table_id, feature_ids.copy(), vectors.copy()))

        cache = build_cache()
        subscriber = UpdateSubscriber(
            self._stream(rounds=1), cache, host_store=FakeStore()
        )
        subscriber.catch_up(now=10.0)
        assert len(calls) == 1
        table_id, ids, vectors = calls[0]
        assert table_id == 0
        np.testing.assert_array_equal(ids, np.array([1, 2, 3], np.uint64))
        np.testing.assert_array_equal(vectors, delta_vectors(0, ids, DIM, 1))

    def test_lag_past_retention_fails_loudly(self):
        cache = build_cache()
        log = UpdateLog(retention=1)
        for v in range(1, 4):
            log.append(v, delta(0, [v], version=v))
        subscriber = UpdateSubscriber(log, cache)
        with pytest.raises(RefreshError, match="retention"):
            subscriber.next_batch(now=10.0)

    def test_allow_gap_resyncs_and_counts_dropped(self):
        registry = MetricsRegistry()
        install_conservation_laws(registry)
        cache = build_cache()
        log = UpdateLog(retention=1)
        for v in range(1, 4):
            log.append(v, delta(0, [v, v + 1], version=v))
        subscriber = UpdateSubscriber(log, cache, allow_gap=True)
        subscriber.bind_observability(registry)
        subscriber.catch_up(now=10.0)
        assert subscriber.applied_version == 3
        assert registry.total("refresh.dropped_keys") == 4
        assert registry.total("refresh.resyncs") == 1
        assert registry.total("refresh.applied_keys") == 2
        # carried + applied + dropped == keys through applied_offset.
        assert registry.audit() == []

    def test_outage_polls_counted_and_stream_resumes(self):
        registry = MetricsRegistry()
        schedule = FaultSchedule([UpdateLogOutage(start=0.0, duration=5.0)])
        log = UpdateLog(schedule=schedule)
        log.append(1, delta(0, [1]), published_at=0.0)
        cache = build_cache()
        subscriber = UpdateSubscriber(log, cache)
        subscriber.bind_observability(registry)
        assert subscriber.next_batch(now=1.0) is None
        assert registry.total("refresh.outage_polls") == 1
        assert subscriber.apply_next(now=6.0) is not None

    def test_gauges_track_stream_position(self):
        registry = MetricsRegistry()
        cache = build_cache()
        log = self._stream(rounds=3)
        subscriber = UpdateSubscriber(log, cache)
        subscriber.bind_observability(registry)
        subscriber.apply_next(now=10.0)
        subscriber.refresh_gauges(10.0)
        assert registry.gauge("refresh.version_lag") == 2.0
        assert registry.gauge("refresh.offset_lag") == 2.0
        assert registry.gauge("refresh.pending_keys") == 6.0
        assert registry.gauge("refresh.staleness_s") == 8.0
        assert registry.gauge("refresh.applied_version") == 1.0
        status = subscriber.status(10.0)
        assert status["version_lag"] == 2
        assert status["staleness_s"] == 8.0

    def test_snapshot_replay_converges_to_uninterrupted_replica(self):
        """The recovery guarantee, at unit scale: kill mid-stream, restore
        into a cold cache, replay — fingerprints match exactly."""
        log = self._stream(rounds=4)

        def replica():
            cache = build_cache()
            fill(cache, 0, range(1, 10))
            fill(cache, 1, range(5))
            return cache

        steady = replica()
        sub_a = UpdateSubscriber(log, steady)
        sub_a.catch_up(now=10.0)

        doomed = replica()
        sub_b = UpdateSubscriber(log, doomed)
        sub_b.catch_up(now=2.0)  # two of four rounds
        snap = sub_b.snapshot()
        assert snap.model_version == 2
        del doomed, sub_b

        cold = build_cache()
        sub_c = UpdateSubscriber.from_snapshot(snap, cold, log)
        assert sub_c.catch_up(now=10.0) == 2
        assert fingerprint(cold) == fingerprint(steady)
        assert sub_c.applied_version == sub_a.applied_version

    def test_restored_replica_audit_counts_carried_keys(self):
        registry = MetricsRegistry()
        log = self._stream(rounds=2)
        cache = build_cache()
        sub = UpdateSubscriber(log, cache)
        sub.catch_up(now=1.0)
        snap = sub.snapshot()

        cold = build_cache()
        restored = UpdateSubscriber.from_snapshot(snap, cold, log)
        restored.bind_observability(registry)
        restored.catch_up(now=10.0)
        assert registry.total("refresh.carried_keys") == 3
        assert registry.total("refresh.applied_keys") == 3
        assert registry.audit() == []


class TestRefreshScheduler:
    def _setup(self, hw, num_keys=8, quantum=512):
        cache = build_cache()
        fill(cache, 0, range(num_keys))
        log = UpdateLog()
        log.append(1, delta(0, range(num_keys)), published_at=0.0)
        subscriber = UpdateSubscriber(log, cache)
        return cache, log, subscriber

    def test_idle_bounded_slot_too_small_applies_nothing(self, hw):
        _, _, subscriber = self._setup(hw)
        scheduler = RefreshScheduler(subscriber, hw, quantum_keys=512)
        end = scheduler.run_idle(0.0, 1e-12)
        assert end == 0.0
        assert scheduler.batches_applied == 0
        # A slot big enough takes the batch.
        scheduler.run_idle(0.0, 1.0)
        assert scheduler.batches_applied == 1
        assert scheduler.keys_applied == 8
        assert scheduler.busy_time > 0.0

    def test_quantum_bounds_keys_per_slot(self, hw):
        _, _, subscriber = self._setup(hw, num_keys=8)
        scheduler = RefreshScheduler(subscriber, hw, quantum_keys=4)
        scheduler.run_idle(0.0, 1.0)
        # The 8-key batch exceeds the 4-key quantum: nothing applies.
        assert scheduler.batches_applied == 0

    def test_aggressive_overruns_the_slot(self, hw):
        _, _, subscriber = self._setup(hw)
        scheduler = RefreshScheduler(
            subscriber, hw, quantum_keys=512, aggressive=True
        )
        end = scheduler.run_idle(0.0, 1e-12)
        assert end > 1e-12
        assert scheduler.batches_applied == 1

    def test_slow_subscriber_fault_inflates_cost(self, hw):
        _, log, subscriber = self._setup(hw)
        schedule = FaultSchedule([
            SlowSubscriber(start=0.0, duration=10.0, factor=4.0)
        ])
        scheduler = RefreshScheduler(subscriber, hw, schedule=schedule)
        batch = log.read(0)
        assert scheduler.batch_cost(batch, now=1.0) == pytest.approx(
            4.0 * scheduler.batch_cost(batch, now=20.0)
        )

    def test_gauges_refreshed_even_when_idle(self, hw):
        registry = MetricsRegistry()
        _, _, subscriber = self._setup(hw)
        subscriber.bind_observability(registry)
        scheduler = RefreshScheduler(subscriber, hw, quantum_keys=4)
        scheduler.run_idle(5.0, 5.0)
        assert registry.gauge("refresh.version_lag") == 1.0

    def test_quantum_must_be_positive(self, hw):
        _, _, subscriber = self._setup(hw)
        with pytest.raises(ConfigError):
            RefreshScheduler(subscriber, hw, quantum_keys=0)


class TestServingIntegration:
    """Refresh wiring in the serving loops."""

    def _workload(self):
        from repro.serving.arrivals import PoissonArrivals
        from repro.workloads.synthetic import uniform_tables_spec

        dataset = uniform_tables_spec(
            num_tables=4, corpus_size=4_000, alpha=-1.2, dim=16,
        )
        requests = PoissonArrivals(dataset, 100_000.0, seed=4).generate(400)
        return dataset, requests

    def _server(self, hw, dataset, depth=1):
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.serving.batcher import BatchingPolicy
        from repro.serving.pipeline import PipelinedInferenceServer
        from repro.tables.store import EmbeddingStore

        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.05), hw
        )
        server = PipelinedInferenceServer(
            dataset, layer, hw, depth=depth,
            policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
        )
        return server, layer

    def test_no_refresher_leaves_no_refresh_telemetry(self, hw):
        """Byte-identity guard: a server never given a refresher emits no
        refresh metrics and serves deterministically."""
        dataset, requests = self._workload()
        reports = []
        for _ in range(2):
            server, _ = self._server(hw, dataset)
            reports.append(server.serve(list(requests)))
            assert not server.obs.has_prefix("refresh.")
        a, b = reports
        assert np.asarray(a.latencies).tobytes() == \
            np.asarray(b.latencies).tobytes()
        assert a.metrics.counters == b.metrics.counters

    def test_empty_stream_does_not_perturb_latencies(self, hw):
        """A wired-but-idle refresher (empty log) must not change a single
        request latency relative to the no-refresher run."""
        dataset, requests = self._workload()
        server_a, _ = self._server(hw, dataset)
        baseline = server_a.serve(list(requests))

        server_b, layer_b = self._server(hw, dataset)
        subscriber = UpdateSubscriber(UpdateLog(), layer_b.cache)
        subscriber.bind_observability(server_b.obs)
        server_b.refresher = RefreshScheduler(subscriber, hw)
        report = server_b.serve(list(requests))
        assert np.asarray(report.latencies).tobytes() == \
            np.asarray(baseline.latencies).tobytes()
        # ... though its staleness gauges are now visible.
        assert server_b.obs.has_prefix("refresh.")

    def test_refresher_applies_during_serving_and_audits_clean(self, hw):
        dataset, requests = self._workload()
        server, layer = self._server(hw, dataset, depth=2)
        horizon = requests[-1].arrival_time
        log = UpdateLog()
        publisher = UpdatePublisher(log, max_batch_keys=256)
        publisher.bind_observability(server.obs)
        trainer = EmbeddingDeltaTrainer(
            [spec.corpus_size for spec in dataset.table_specs()],
            [spec.dim for spec in dataset.table_specs()],
            keys_per_round=32, seed=6,
        )
        for i in range(4):
            publisher.drain(trainer, now=horizon * (i + 1) / 5)
        subscriber = UpdateSubscriber(
            log, layer.cache, host_store=layer.store
        )
        subscriber.bind_observability(server.obs)
        server.refresher = RefreshScheduler(subscriber, hw, quantum_keys=256)
        report = server.serve(list(requests))
        assert report.metrics.total("refresh.applied_keys") > 0
        assert subscriber.applied_version == 4
        assert server.obs.audit() == []
