"""Tests for collision statistics."""

import numpy as np
import pytest

from repro.coding.collision import collision_stats
from repro.coding.fixed_length import FixedLengthCodec
from repro.coding.size_aware import SizeAwareCodec


class TestCollisionStats:
    def test_zero_collisions_with_roomy_keys(self):
        sizes = [100, 200]
        codec = SizeAwareCodec(sizes, key_bits=48)
        ids = [np.arange(s, dtype=np.uint64) for s in sizes]
        stats = collision_stats(codec, ids)
        assert stats.intra_table_rate == 0.0
        assert stats.inter_table_rate == 0.0
        assert stats.total_rate == 0.0

    def test_detects_intra_table_collisions(self):
        # Large corpus hashed into a tiny budget.
        codec = FixedLengthCodec([2**16], key_bits=16, table_bits=8)
        ids = [np.arange(2**16, dtype=np.uint64)]
        stats = collision_stats(codec, ids)
        assert stats.intra_table_rate > 0.5

    def test_per_table_breakdown(self):
        sizes = [16, 2**18]
        codec = FixedLengthCodec(sizes, key_bits=20, table_bits=4)
        ids = [np.arange(s, dtype=np.uint64) for s in sizes]
        stats = collision_stats(codec, ids)
        assert stats.per_table[0] == 0.0
        assert stats.per_table[1] > 0.0

    def test_duplicates_in_input_ignored(self):
        codec = SizeAwareCodec([100], key_bits=32)
        ids = [np.array([1, 1, 1, 2], dtype=np.uint64)]
        stats = collision_stats(codec, ids)
        assert stats.intra_table_rate == 0.0

    def test_size_aware_dominates_fixed_length(self):
        sizes = [8, 32, 128, 50_000, 400_000]
        key_bits = 21
        ids = [np.arange(s, dtype=np.uint64) for s in sizes]
        sa = collision_stats(SizeAwareCodec(sizes, key_bits=key_bits), ids)
        fx = collision_stats(
            FixedLengthCodec(sizes, key_bits=key_bits, table_bits=3), ids
        )
        assert sa.total_rate <= fx.total_rate

    def test_prefix_free_layouts_have_no_inter_table(self):
        sizes = [10, 1000, 100_000]
        codec = SizeAwareCodec(sizes, key_bits=24)
        ids = [np.arange(s, dtype=np.uint64) for s in sizes]
        assert collision_stats(codec, ids).inter_table_rate == 0.0
