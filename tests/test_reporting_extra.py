"""Extra coverage for reporting and harness utilities."""

import os

import pytest

from repro.bench import reporting
from repro.bench.reporting import emit, format_table


class TestEmit:
    def test_writes_report_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = emit("my_report", "hello\nworld")
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read() == "hello\nworld\n"
        assert "hello" in capsys.readouterr().out

    def test_overwrites_previous_report(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        emit("r", "first")
        path = emit("r", "second")
        with open(path) as f:
            assert f.read() == "second\n"

    def test_creates_directory(self, tmp_path, monkeypatch):
        target = tmp_path / "nested" / "dir"
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(target))
        emit("r", "x")
        assert target.exists()


class TestFormatTableEdges:
    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "-" in out

    def test_mixed_types(self):
        out = format_table(["k", "v"], [[1, 2.5], ["x", None]])
        assert "None" in out

    def test_no_title(self):
        out = format_table(["a"], [[1]])
        assert not out.startswith("\n")


class TestExecutorLaunchOverride:
    def test_launch_cost_override_reduces_maintenance(self, hw):
        from repro.gpusim.executor import Executor
        from repro.gpusim.kernel import KernelSpec

        spec = KernelSpec("k", threads=64)
        plain = Executor(hw)
        plain.launch(spec)
        cheap = Executor(hw)
        cheap.launch(spec, launch_cost=1e-7)
        assert cheap.stats.maintenance_time < plain.stats.maintenance_time
        assert cheap.stats.maintenance_time == pytest.approx(1e-7)

    def test_zero_launch_cost_allowed(self, hw):
        from repro.gpusim.executor import Executor
        from repro.gpusim.kernel import KernelSpec

        executor = Executor(hw)
        executor.launch(KernelSpec("k", threads=64), launch_cost=0.0)
        assert executor.stats.maintenance_time == 0.0


class TestCodecEdgeCases:
    def test_size_aware_with_64bit_keys_and_huge_corpus(self):
        from repro.coding.size_aware import SizeAwareCodec

        codec = SizeAwareCodec([2**40, 16], key_bits=64)
        big = codec.layout.code_for(0)
        assert big.collision_free

    def test_size_aware_minimal_key_width(self):
        from repro.coding.size_aware import SizeAwareCodec
        import numpy as np

        codec = SizeAwareCodec([2, 2], key_bits=8)
        a = codec.encode(0, np.arange(2, dtype=np.uint64))
        b = codec.encode(1, np.arange(2, dtype=np.uint64))
        assert len(np.intersect1d(a, b)) == 0

    def test_fixed_length_single_table(self):
        from repro.coding.fixed_length import FixedLengthCodec

        codec = FixedLengthCodec([100], key_bits=16)
        assert codec.layout.codes[0].feature_bits < 16

    def test_encode_batch_empty(self):
        from repro.coding.size_aware import SizeAwareCodec
        import numpy as np

        codec = SizeAwareCodec([10, 10], key_bits=16)
        out = codec.encode_batch(np.zeros(0, np.int64), np.zeros(0, np.uint64))
        assert len(out) == 0

    def test_table_of_on_unknown_bits_returns_minus_one_free(self):
        """All keys produced by encode decode back to a valid table."""
        from repro.coding.size_aware import SizeAwareCodec
        import numpy as np

        sizes = [5, 50, 500]
        codec = SizeAwareCodec(sizes, key_bits=16)
        for t, size in enumerate(sizes):
            keys = codec.encode(t, np.arange(size, dtype=np.uint64))
            assert (codec.table_of(keys) == t).all()


class TestArtifactSchema:
    @pytest.fixture(autouse=True)
    def _results_dir(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))

    def test_emit_json_stamps_version(self):
        path = reporting.emit_json("x", {"kind": "series", "windows": []})
        payload = reporting.load_artifact(path, kind="series")
        assert payload["version"] == reporting.SCHEMA_VERSION

    def test_emit_json_keeps_explicit_version(self):
        path = reporting.emit_json("x", {"version": 1, "a": 2})
        assert reporting.load_artifact(path)["version"] == 1

    def test_emit_json_leaves_lists_unstamped(self, tmp_path):
        path = reporting.emit_json("x", [1, 2, 3])
        with pytest.raises(reporting.ConfigError):
            reporting.load_artifact(path)

    def test_load_rejects_missing_version(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"a": 1}\n')
        with pytest.raises(reporting.ConfigError):
            reporting.load_artifact(str(path))
        path.write_text('{"version": "1"}\n')  # string, not integer
        with pytest.raises(reporting.ConfigError):
            reporting.load_artifact(str(path))

    def test_load_rejects_newer_version(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"version": %d}\n' % (reporting.SCHEMA_VERSION + 1))
        with pytest.raises(reporting.ConfigError):
            reporting.load_artifact(str(path))

    def test_load_rejects_kind_mismatch(self):
        path = reporting.emit_json("x", {"kind": "series"})
        with pytest.raises(reporting.ConfigError):
            reporting.load_artifact(path, kind="alerts")

    def test_emit_timeseries_writes_series_and_alerts(self):
        from repro.obs import (
            MetricsRegistry,
            WindowedCollector,
            default_serving_slos,
        )

        collector = WindowedCollector(
            sla_budget=1e-3, engine=default_serving_slos(1e-3),
        ).bind(MetricsRegistry())
        collector.observe_batch(0.5e-3, [5e-4])
        collector.flush(1e-3)
        paths = reporting.emit_timeseries(collector)
        assert [os.path.basename(p) for p in paths] == [
            "series.json", "alerts.json",
        ]
        series = reporting.load_artifact(paths[0], kind="series")
        assert series["closed_windows"] == collector.closed_windows
        reporting.load_artifact(paths[1], kind="alerts")
