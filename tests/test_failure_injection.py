"""Failure-injection tests: degraded and timing-out remote fetches."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import NetworkSpec, RemoteParameterServer
from repro.tables.table_spec import make_table_specs


@pytest.fixture()
def specs():
    return make_table_specs([2_000], [16])


class TestNetworkFaults:
    def test_defaults_are_deterministic(self, specs):
        a = RemoteParameterServer(specs, seed=1)
        b = RemoteParameterServer(specs, seed=2)
        ids = np.arange(50, dtype=np.uint64)
        assert a.fetch(0, ids).network_time == b.fetch(0, ids).network_time

    def test_slow_path_multiplies_latency(self, specs):
        always_slow = NetworkSpec(slow_probability=1.0, slow_factor=10.0)
        healthy = NetworkSpec()
        slow_ps = RemoteParameterServer(specs, always_slow, seed=3)
        fast_ps = RemoteParameterServer(specs, healthy, seed=3)
        ids = np.arange(100, dtype=np.uint64)
        assert slow_ps.fetch(0, ids).network_time == pytest.approx(
            10.0 * fast_ps.fetch(0, ids).network_time
        )

    def test_timeout_adds_retry_penalty(self, specs):
        flaky = NetworkSpec(timeout_probability=1.0, timeout=5e-4)
        ps = RemoteParameterServer(specs, flaky, seed=4)
        ids = np.arange(10, dtype=np.uint64)
        healthy_time = NetworkSpec().fetch_cost(ids.nbytes + 16 * 40)
        flaky_time = ps.fetch(0, ids).network_time
        assert flaky_time > 5e-4
        # The naive model is exactly "wait out the timeout, the retry
        # wins at the healthy cost".
        assert flaky_time == pytest.approx(healthy_time + 5e-4)

    def test_fault_rate_approximately_respected(self, specs):
        net = NetworkSpec(slow_probability=0.3, slow_factor=50.0)
        ps = RemoteParameterServer(specs, net, seed=5)
        ids = np.arange(10, dtype=np.uint64)
        base = NetworkSpec().fetch_cost(int(ids.nbytes + 8 * len(ids)))
        slow = sum(
            1 for _ in range(500)
            if ps.fetch(0, ids).network_time > 5 * base
        )
        assert slow / 500 == pytest.approx(0.3, abs=0.07)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            NetworkSpec(slow_probability=1.5)
        with pytest.raises(WorkloadError):
            NetworkSpec(timeout_probability=-0.1)
        with pytest.raises(WorkloadError):
            NetworkSpec(slow_factor=0.5)
        with pytest.raises(WorkloadError):
            NetworkSpec(timeout=0.0)


class TestFaultsThroughTheHierarchy:
    def test_faulty_remote_inflates_tail_but_not_correctness(self, specs, hw):
        """Degraded fetches slow the tiered store; the data stays exact."""
        from repro.tables.embedding_table import reference_vectors

        flaky = RemoteParameterServer(
            specs,
            NetworkSpec(slow_probability=0.5, slow_factor=20.0),
            seed=7,
        )
        store = TieredParameterStore(
            specs, hw, dram_capacity=64, remote=flaky
        )
        healthy_store = TieredParameterStore(specs, hw, dram_capacity=64)
        rng = np.random.default_rng(11)
        flaky_time = healthy_time = 0.0
        for _ in range(20):
            ids = rng.integers(0, 2_000, 64).astype(np.uint64)
            r1 = store.query(0, ids)
            r2 = healthy_store.query(0, ids)
            np.testing.assert_array_equal(
                r1.vectors, reference_vectors(0, ids, 16)
            )
            np.testing.assert_array_equal(r1.vectors, r2.vectors)
            flaky_time += r1.cost.total
            healthy_time += r2.cost.total
        assert flaky_time > 1.5 * healthy_time

    def test_bigger_dram_tier_shields_from_flaky_remote(self, specs, hw):
        """The DRAM tier is the failure-isolation layer: more capacity,
        fewer remote trips, less fault exposure."""
        def total_time(capacity):
            flaky = RemoteParameterServer(
                specs,
                NetworkSpec(slow_probability=0.5, slow_factor=20.0),
                seed=9,
            )
            store = TieredParameterStore(
                specs, hw, dram_capacity=capacity, remote=flaky
            )
            rng = np.random.default_rng(13)
            total = 0.0
            for _ in range(25):
                ids = rng.integers(0, 500, 64).astype(np.uint64)
                total += store.query(0, ids).cost.total
            return total

        assert total_time(600) < total_time(32)
