"""Tests for the hardware platform specification."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.hardware import (
    CpuSpec,
    GpuSpec,
    HardwareSpec,
    InterconnectSpec,
    default_platform,
)


class TestDefaultPlatform:
    def test_matches_paper_table1_cpu(self):
        hw = default_platform()
        assert hw.cpu.cores == 64
        assert hw.cpu.dram_capacity == 512 * 1024**3
        assert hw.cpu.dram_bandwidth == 60e9

    def test_matches_paper_table1_gpu(self):
        hw = default_platform()
        assert hw.gpu.cuda_cores == 2560
        assert hw.gpu.hbm_capacity == 15 * 1024**3
        assert hw.gpu.hbm_bandwidth == 300e9

    def test_gdrcopy_much_cheaper_than_cudamemcpy(self):
        # Paper §4: 6-7 us vs ~0.1 us.
        hw = default_platform()
        ratio = hw.interconnect.cudamemcpy_overhead / hw.interconnect.gdrcopy_overhead
        assert ratio > 20

    def test_validate_passes(self):
        default_platform().validate()


class TestValidation:
    def test_rejects_zero_dram_bandwidth(self):
        hw = HardwareSpec(cpu=CpuSpec(dram_bandwidth=0))
        with pytest.raises(ConfigError):
            hw.validate()

    def test_rejects_bad_efficiency(self):
        hw = HardwareSpec(gpu=GpuSpec(hbm_random_efficiency=1.5))
        with pytest.raises(ConfigError):
            hw.validate()

    def test_rejects_negative_launch_overhead(self):
        hw = default_platform().scaled(launch_overhead=-1.0)
        with pytest.raises(ConfigError):
            hw.validate()

    def test_rejects_zero_pcie(self):
        hw = HardwareSpec(interconnect=InterconnectSpec(pcie_bandwidth=0))
        with pytest.raises(ConfigError):
            hw.validate()


class TestScaled:
    def test_scaled_overrides_kernel_costs(self):
        hw = default_platform().scaled(launch_overhead=1e-6)
        assert hw.kernel.launch_overhead == 1e-6
        # Everything else is untouched.
        assert hw.gpu == default_platform().gpu

    def test_scaled_returns_new_object(self):
        base = default_platform()
        changed = base.scaled(sync_overhead=5e-6)
        assert base.kernel.sync_overhead != changed.kernel.sync_overhead

    def test_spec_is_frozen(self):
        hw = default_platform()
        with pytest.raises(dataclasses.FrozenInstanceError):
            hw.cpu.cores = 1
