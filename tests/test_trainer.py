"""Tests for the synthetic CTR task and collision-AUC study."""

import numpy as np
import pytest

from repro.coding.fixed_length import FixedLengthCodec
from repro.coding.size_aware import SizeAwareCodec
from repro.errors import WorkloadError
from repro.model.trainer import CollisionAucStudy, SyntheticCtrTask


@pytest.fixture(scope="module")
def task():
    # Mild skew so tail IDs carry signal: collision damage then registers
    # in AUC, as in the paper's Figure 13.
    return SyntheticCtrTask(
        corpus_sizes=[64, 256, 1024],
        num_train=12000,
        num_test=3000,
        alpha=-0.8,
        seed=3,
    )


class TestSyntheticCtrTask:
    def test_shapes(self, task):
        assert task.train_features.shape == (12000, 3)
        assert task.test_labels.shape == (3000,)

    def test_features_within_corpus(self, task):
        for t, size in enumerate(task.corpus_sizes):
            assert (task.train_features[:, t] < size).all()

    def test_labels_are_binary_and_mixed(self, task):
        labels = task.train_labels
        assert set(np.unique(labels)) == {0, 1}

    def test_needs_tables(self):
        with pytest.raises(WorkloadError):
            SyntheticCtrTask(corpus_sizes=[])

    def test_deterministic(self):
        a = SyntheticCtrTask([32], num_train=100, num_test=50, seed=9)
        b = SyntheticCtrTask([32], num_train=100, num_test=50, seed=9)
        np.testing.assert_array_equal(a.train_features, b.train_features)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)


class TestCollisionAucStudy:
    def test_upper_bound_is_learnable(self, task):
        study = CollisionAucStudy(task, epochs=4)
        assert study.upper_bound_auc() > 0.7

    def test_collision_free_codec_matches_upper_bound(self, task):
        study = CollisionAucStudy(task, epochs=4)
        roomy = SizeAwareCodec(list(task.corpus_sizes), key_bits=32)
        assert study.auc_with_codec(roomy) == pytest.approx(
            study.upper_bound_auc(), abs=0.03
        )

    def test_heavy_collisions_hurt_auc(self, task):
        study = CollisionAucStudy(task, epochs=4)
        tight = FixedLengthCodec(
            list(task.corpus_sizes), key_bits=9, table_bits=2
        )
        roomy = SizeAwareCodec(list(task.corpus_sizes), key_bits=32)
        assert study.auc_with_codec(tight) < study.auc_with_codec(roomy) - 0.01

    def test_size_aware_beats_fixed_at_tight_budget(self, task):
        """The core claim of Experiment #5 on the synthetic task: at the
        same bit budget, size-aware coding preserves more AUC."""
        study = CollisionAucStudy(task, epochs=4)
        bits = 9
        sa = study.auc_with_codec(
            SizeAwareCodec(list(task.corpus_sizes), key_bits=bits)
        )
        fx = study.auc_with_codec(
            FixedLengthCodec(list(task.corpus_sizes), key_bits=bits, table_bits=2)
        )
        assert sa > fx + 0.005
