"""Tests for the power-law sampler."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler


class TestZipfSampler:
    def test_samples_within_corpus(self):
        s = ZipfSampler(1000, seed=1)
        ids = s.sample(5000)
        assert (ids < 1000).all()

    def test_rejects_positive_alpha(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(100, alpha=0.5)

    def test_rejects_empty_corpus(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)

    def test_zero_count(self):
        assert len(ZipfSampler(100).sample(0)) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(100).sample(-1)

    def test_skew_concentrates_mass(self):
        s = ZipfSampler(10_000, alpha=-1.2, seed=3)
        ids = s.sample(50_000)
        hot = set(s.hottest_ids(500).tolist())
        hot_fraction = np.isin(ids, list(hot)).mean()
        # 5% of IDs should carry well over a third of the accesses.
        assert hot_fraction > 0.35

    def test_more_negative_alpha_is_more_skewed(self):
        mild = ZipfSampler(10_000, alpha=-0.8, seed=5)
        steep = ZipfSampler(10_000, alpha=-2.0, seed=5)
        top_mild = np.isin(mild.sample(20_000), mild.hottest_ids(100)).mean()
        top_steep = np.isin(steep.sample(20_000), steep.hottest_ids(100)).mean()
        assert top_steep > top_mild

    def test_deterministic_given_seed(self):
        a = ZipfSampler(1000, seed=9).sample(100)
        b = ZipfSampler(1000, seed=9).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_permutation_decouples_rank_from_id(self):
        s = ZipfSampler(10_000, seed=2, permute=True)
        hot = s.hottest_ids(10)
        # Hot IDs should not simply be 0..9.
        assert sorted(hot.tolist()) != list(range(10))

    def test_no_permutation_keeps_rank_order(self):
        s = ZipfSampler(100, seed=2, permute=False)
        np.testing.assert_array_equal(s.hottest_ids(3), [0, 1, 2])

    def test_popularity_of_rank_decreases(self):
        s = ZipfSampler(1000)
        assert s.popularity_of_rank(1) > s.popularity_of_rank(10)

    def test_popularity_sums_to_one(self):
        s = ZipfSampler(50)
        total = sum(s.popularity_of_rank(r) for r in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_popularity_rank_bounds(self):
        s = ZipfSampler(50)
        with pytest.raises(WorkloadError):
            s.popularity_of_rank(0)
        with pytest.raises(WorkloadError):
            s.popularity_of_rank(51)

    def test_external_rng(self):
        s = ZipfSampler(100, seed=1)
        rng = np.random.default_rng(7)
        a = s.sample(10, rng=rng)
        rng2 = np.random.default_rng(7)
        b = s.sample(10, rng=rng2)
        np.testing.assert_array_equal(a, b)
