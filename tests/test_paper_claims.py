"""Shape-level assertions of the paper's headline claims.

These tests encode the *qualitative* results the reproduction must hold:
who wins, in which regime, and roughly by how much.  Absolute numbers are
platform-model artifacts and are checked loosely or not at all.
"""

import numpy as np
import pytest

from repro import (
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    PerTableCacheLayer,
    PerTableConfig,
    frequency_optimal_hit_rate,
    synthetic_dataset,
    uniform_tables_spec,
)
from repro.core.cache_base import HitRateAccumulator
from repro.workloads.datasets import criteo_kaggle_replica
from repro.workloads.trace import TraceBatch


@pytest.fixture(scope="module")
def replica_setup(hw):
    dataset = criteo_kaggle_replica(scale=0.05)
    trace = synthetic_dataset(dataset, num_batches=40, batch_size=512)
    store = EmbeddingStore(dataset.table_specs(), hw)
    return dataset, trace, store


def _measure_hit_rate(layer, trace, hw, warmup=16):
    executor = Executor(hw)
    acc = HitRateAccumulator()
    for batch in list(trace)[:warmup]:
        layer.query(batch, executor)
    for batch in list(trace)[warmup:]:
        acc.record(layer.query(batch, executor))
    return acc.hit_rate


class TestIssue1CacheUnderUtilization:
    def test_hugectr_trails_optimal_fleche_closes_gap(self, replica_setup, hw):
        """Figures 3 & 12: static per-table caching leaves a large hit-rate
        gap to Optimal; the flat cache recovers most of it."""
        dataset, trace, store = replica_setup
        ratio = 0.05
        hugectr = PerTableCacheLayer(store, PerTableConfig(cache_ratio=ratio), hw)
        fleche = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=ratio, use_unified_index=False), hw
        )
        hr_hugectr = _measure_hit_rate(hugectr, trace, hw)
        hr_fleche = _measure_hit_rate(fleche, trace, hw)
        capacity = max(1, int(dataset.total_sparse_ids * ratio))
        warm, measure = trace.split(16)
        hr_optimal = frequency_optimal_hit_rate(measure, capacity)

        assert hr_optimal > hr_fleche > hr_hugectr
        # The paper's gap at 5% is tens of percent.
        assert hr_optimal - hr_hugectr > 0.10
        # Fleche recovers more than half of the gap.
        assert (hr_fleche - hr_hugectr) > 0.5 * (hr_optimal - hr_hugectr) * 0.5

    def test_gap_widens_with_smaller_cache(self, replica_setup, hw):
        dataset, trace, store = replica_setup
        gaps = {}
        for ratio in (0.20, 0.05):
            hugectr = PerTableCacheLayer(
                store, PerTableConfig(cache_ratio=ratio), hw
            )
            hr = _measure_hit_rate(hugectr, trace, hw)
            capacity = max(1, int(dataset.total_sparse_ids * ratio))
            _, measure = trace.split(16)
            gaps[ratio] = frequency_optimal_hit_rate(measure, capacity) - hr
        assert gaps[0.05] > gaps[0.20]


class TestIssue2KernelMaintenance:
    def test_maintenance_dominates_at_high_table_count(self, hw, rng):
        """Figure 4: at ~60 tables, maintenance exceeds execution time."""
        num_tables, ids_total = 60, 10_000
        spec = uniform_tables_spec(
            num_tables=num_tables, corpus_size=5_000, dim=32
        )
        store = EmbeddingStore(spec.table_specs(), hw)
        layer = PerTableCacheLayer(store, PerTableConfig(cache_ratio=0.1), hw)
        per_table = ids_total // num_tables
        batches = [
            TraceBatch(
                [rng.integers(0, 5_000, per_table).astype(np.uint64)
                 for _ in range(num_tables)],
                batch_size=per_table,
            )
            for _ in range(6)
        ]
        executor = Executor(hw)
        for b in batches[:3]:
            layer.query(b, executor)
        executor.reset()
        for b in batches[3:]:
            layer.query(b, executor)
        stats = executor.stats
        assert stats.maintenance_time > stats.execution_time

    def test_fusion_keeps_latency_flat_in_table_count(self, hw, rng):
        """Figure 14: Fleche's query latency is nearly flat as the table
        count grows, while the per-table baseline scales linearly."""
        def query_time(scheme_name, num_tables, ids_total=10_000):
            spec = uniform_tables_spec(
                num_tables=num_tables,
                corpus_size=200_000 // num_tables,
                dim=32,
            )
            store = EmbeddingStore(spec.table_specs(), hw)
            if scheme_name == "fleche":
                layer = FlecheEmbeddingLayer(
                    store,
                    FlecheConfig(cache_ratio=0.1, use_unified_index=False),
                    hw,
                )
            else:
                layer = PerTableCacheLayer(
                    store, PerTableConfig(cache_ratio=0.1), hw
                )
            per_table = ids_total // num_tables
            local_rng = np.random.default_rng(7)
            batches = [
                TraceBatch(
                    [local_rng.integers(0, spec.fields[t].corpus_size,
                                        per_table).astype(np.uint64)
                     for t in range(num_tables)],
                    batch_size=per_table,
                )
                for _ in range(6)
            ]
            executor = Executor(hw)
            for b in batches[:3]:
                layer.query(b, executor)
            executor.reset()
            for b in batches[3:]:
                layer.query(b, executor)
            executor.drain()
            # Figure 14 plots the *cache query* latency: kernel maintenance
            # plus in-cache kernel time (the DRAM side is orthogonal).
            stats = executor.stats
            return (stats.maintenance_time + stats.cache_query_time) / 3

        hugectr_growth = query_time("hugectr", 60) / query_time("hugectr", 5)
        fleche_growth = query_time("fleche", 60) / query_time("fleche", 5)
        assert hugectr_growth > 2.0
        assert fleche_growth < 1.8
        # And at high table counts Fleche is outright faster.
        assert query_time("fleche", 60) < query_time("hugectr", 60)


class TestHeadlineSpeedup:
    def test_embedding_layer_speedup_in_paper_band(self, replica_setup, hw):
        """§1 / Exp #1: 2.0-5.4x embedding-layer speedup over HugeCTR."""
        dataset, trace, store = replica_setup
        def run(layer):
            executor = Executor(hw)
            for b in list(trace)[:16]:
                layer.query(b, executor)
            executor.reset()
            for b in list(trace)[16:]:
                layer.query(b, executor)
            return executor.drain()

        t_hugectr = run(PerTableCacheLayer(store, PerTableConfig(0.05), hw))
        t_fleche = run(
            FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
        )
        speedup = t_hugectr / t_fleche
        assert speedup > 1.5
