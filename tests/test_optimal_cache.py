"""Tests for the clairvoyant hit-rate upper bounds."""

import numpy as np
import pytest

from repro.baselines.optimal_cache import (
    belady_hit_rate,
    frequency_optimal_hit_rate,
    per_table_static_optimal_hit_rate,
)
from repro.errors import WorkloadError
from repro.workloads.trace import Trace, TraceBatch


def trace_of(*batches):
    return Trace([
        TraceBatch([np.array(ids, np.uint64) for ids in b], batch_size=4)
        for b in batches
    ])


class TestFrequencyOptimal:
    def test_all_fit(self):
        t = trace_of([[1, 2, 1, 2]])
        assert frequency_optimal_hit_rate(t, capacity=2) == 1.0

    def test_picks_most_frequent(self):
        # Key 1 appears 3x, keys 2/3 once each; capacity 1 -> 3/5 hits.
        t = trace_of([[1, 1, 1, 2, 3]])
        assert frequency_optimal_hit_rate(t, capacity=1) == pytest.approx(3 / 5)

    def test_tables_are_distinct_keyspaces(self):
        t = trace_of([[1, 1], [1, 1]])  # same id in two tables
        assert frequency_optimal_hit_rate(t, capacity=1) == pytest.approx(0.5)

    def test_capacity_validation(self):
        with pytest.raises(WorkloadError):
            frequency_optimal_hit_rate(trace_of([[1]]), capacity=0)

    def test_monotone_in_capacity(self):
        ids = list(range(20)) * 2
        t = trace_of([ids])
        small = frequency_optimal_hit_rate(t, 5)
        large = frequency_optimal_hit_rate(t, 15)
        assert large >= small


class TestBelady:
    def test_all_fit_pays_compulsory_misses(self):
        t = trace_of([[1, 2, 1, 2]])
        assert belady_hit_rate(t, capacity=2) == pytest.approx(0.5)

    def test_classic_example(self):
        # Belady on 1,2,3,1,2 with capacity 2:
        # 1 miss, 2 miss, 3 miss (evict whichever of 1/2 is used later...
        # actually evict 2: next use of 1 at idx 3, of 2 at idx 4), 1 hit,
        # 2 miss -> 1 hit / 5.
        t = trace_of([[1, 2, 3, 1, 2]])
        assert belady_hit_rate(t, capacity=2) == pytest.approx(1 / 5)

    def test_belady_at_least_as_good_as_lru_trace(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 30, size=400).tolist()
        t = trace_of([ids])
        # LRU simulation for comparison.
        from collections import OrderedDict

        lru = OrderedDict()
        hits = 0
        for k in ids:
            if k in lru:
                hits += 1
                lru.move_to_end(k)
            else:
                lru[k] = None
                if len(lru) > 10:
                    lru.popitem(last=False)
        assert belady_hit_rate(t, 10) >= hits / len(ids)

    def test_belady_pays_compulsory_misses_frequency_does_not(self):
        # "Optimal knows all accesses" (paper): the frequency bound can
        # prefetch, so it hits everything that fits; Belady still pays
        # compulsory misses.
        t = trace_of([[1, 2, 3, 1, 2, 3]])
        assert frequency_optimal_hit_rate(t, 3) == pytest.approx(1.0)
        assert belady_hit_rate(t, 3) == pytest.approx(0.5)


class TestPerTableStaticOptimal:
    def test_never_exceeds_global_optimal(self):
        rng = np.random.default_rng(1)
        batches = []
        for _ in range(5):
            batches.append([
                rng.integers(0, 100, 64).tolist(),
                rng.integers(0, 10, 64).tolist(),
            ])
        t = trace_of(*batches)
        ratio = 0.2
        capacity = max(1, int(110 * ratio))
        per_table = per_table_static_optimal_hit_rate(t, ratio)
        global_opt = frequency_optimal_hit_rate(t, capacity)
        assert per_table <= global_opt + 1e-9

    def test_ratio_validation(self):
        with pytest.raises(WorkloadError):
            per_table_static_optimal_hit_rate(trace_of([[1]]), 0.0)
