"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["hitrate"])
        assert args.dataset == "avazu"
        assert args.ratio == 0.05

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hitrate", "--dataset", "movielens"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for command in ("hitrate", "throughput", "fusion", "coding", "trace"):
            assert command in out

    def test_hitrate_prints_three_schemes(self, capsys):
        rc = main([
            "hitrate", "--dataset", "avazu", "--batches", "6",
            "--batch", "128", "--scale", "0.02",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Optimal" in out and "HugeCTR" in out and "Fleche" in out

    def test_throughput_reports_speedup(self, capsys):
        rc = main([
            "throughput", "--dataset", "avazu", "--batches", "6",
            "--batch", "128", "--scale", "0.02",
        ])
        assert rc == 0
        assert "speedup" in capsys.readouterr().out

    def test_fusion_table(self, capsys):
        rc = main(["fusion", "--tables", "8", "--keys", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HugeCTR" in out and "Fleche" in out

    def test_coding(self, capsys):
        rc = main(["coding", "--bits", "12"])
        assert rc == 0
        assert "upper bound" in capsys.readouterr().out

    def test_trace_exports_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        rc = main([
            "trace", "--out", str(out_path), "--scale", "0.02",
            "--batch", "64",
        ])
        assert rc == 0
        with open(out_path) as f:
            trace = json.load(f)
        assert trace["traceEvents"]

    def test_serve_prints_summary_and_emits(self, tmp_path, monkeypatch,
                                            capsys):
        from repro.bench import reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        rc = main([
            "serve", "--requests", "400", "--corpus", "4000",
            "--tables", "4", "--rate", "200000", "--emit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "windows" in out
        series = reporting.load_artifact(
            str(tmp_path / "series.json"), kind="series",
        )
        assert series["closed_windows"] > 0
        reporting.load_artifact(str(tmp_path / "alerts.json"), kind="alerts")

    def test_serve_metrics_endpoint_scrapes(self, capsys):
        import re

        rc = main([
            "serve", "--requests", "200", "--corpus", "2000",
            "--tables", "4", "--rate", "200000",
            "--metrics-port", "0", "--hold", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        match = re.search(r"http://127\.0\.0\.1:\d+/metrics", out)
        assert match, out
        # The server is closed after --hold; the URL format is the check.

    def test_refresh_replay_converges(self, capsys):
        rc = main([
            "refresh", "replay", "--rounds", "4", "--corpus", "2000",
            "--tables", "2", "--keys-per-round", "32",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "yes" in out

    def test_refresh_status_reports_lag(self, capsys):
        rc = main([
            "refresh", "status", "--rounds", "4", "--corpus", "2000",
            "--tables", "2", "--keys-per-round", "32",
            "--applied-rounds", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "log.latest_version" in out
        assert "replica.version_lag" in out

    def test_refresh_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["refresh"])

    def test_cluster_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["cluster", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for command in ("serve", "drill", "status"):
            assert command in out

    def test_cluster_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])

    def test_cluster_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "serve", "--policy", "round-robin"]
            )

    def test_cluster_serve_prints_per_replica(self, capsys):
        rc = main([
            "cluster", "serve", "--replicas", "2", "--corpus", "2000",
            "--tables", "2", "--dim", "8", "--rate", "50000",
            "--horizon", "0.015", "--rounds", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLA attainment" in out
        assert "replica 0 dispatched" in out
        assert "replica 1 dispatched" in out

    def test_cluster_drill_beats_unrouted(self, capsys):
        rc = main([
            "cluster", "drill", "--replicas", "4", "--corpus", "2000",
            "--tables", "2", "--dim", "8", "--rate", "60000",
            "--horizon", "0.02", "--rounds", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "routed SLA" in out
        assert "failovers served" in out
        assert "time to detect" in out

    def test_cluster_status_walks_state_machine(self, capsys):
        rc = main([
            "cluster", "status", "--replicas", "3", "--corpus", "2000",
            "--tables", "2", "--dim", "8", "--rate", "50000",
            "--horizon", "0.02", "--rounds", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for state in ("healthy", "suspect", "dead", "recovering"):
            assert state in out

    def test_obs_render_round_trips(self, tmp_path, monkeypatch, capsys):
        from repro.bench import reporting
        from repro.obs import MetricsRegistry, parse_openmetrics

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        registry = MetricsRegistry()
        registry.inc("cache.hits", 9)
        path = reporting.emit_json("metrics", registry.snapshot().to_dict())
        capsys.readouterr()
        rc = main(["obs", "render", "--metrics", path])
        assert rc == 0
        families = parse_openmetrics(capsys.readouterr().out)
        assert families["cache_hits"]["samples"] == [
            ("cache_hits_total", {}, 9.0)
        ]

    def test_obs_render_rejects_unversioned_artifact(self, tmp_path):
        bad = tmp_path / "metrics.json"
        bad.write_text('{"counters": {}}\n')
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["obs", "render", "--metrics", str(bad)])

    def test_obs_critical_path_analyzes_trace(self, tmp_path, monkeypatch,
                                              capsys):
        from repro import FlecheConfig, FlecheEmbeddingLayer
        from repro.bench import reporting
        from repro.obs import RequestTracer, TraceConfig
        from repro.serving.arrivals import PoissonArrivals
        from repro.serving.batcher import BatchingPolicy
        from repro.serving.pipeline import PipelinedInferenceServer
        from repro.tables.store import EmbeddingStore
        from repro.workloads.synthetic import uniform_tables_spec

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        hw = __import__("repro").default_platform()
        dataset = uniform_tables_spec(
            num_tables=4, corpus_size=4_000, alpha=-1.2, dim=16,
        )
        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.1), hw
        )
        tracer = RequestTracer(TraceConfig(
            head_interval=16, sla_budget=1e-4,
        ))
        server = PipelinedInferenceServer(
            dataset, layer, hw,
            policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
            reqtracer=tracer,
        )
        server.serve(PoissonArrivals(
            dataset, 80_000.0, seed=9
        ).generate(300))
        path = reporting.emit_json("reqtrace", tracer.to_payload())
        capsys.readouterr()
        rc = main([
            "obs", "critical-path", "--trace", path, "--top", "5",
            "--emit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sampled of 300 requests" in out
        assert "rootcause" in out
        with open(tmp_path / "critical_path.json") as f:
            analysis = json.load(f)
        assert analysis["requests"] == 300
        assert len(analysis["top"]) <= 5
        assert analysis["rootcause"]["causes"]

    def test_obs_critical_path_rejects_wrong_kind(self, tmp_path,
                                                  monkeypatch):
        from repro.bench import reporting
        from repro.errors import ConfigError

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = reporting.emit_json("metrics", {"counters": {}})
        with pytest.raises(ConfigError):
            main(["obs", "critical-path", "--trace", path])
