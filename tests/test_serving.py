"""Tests for the serving layer: arrivals, batching, the server loop."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError, WorkloadError
from repro.serving.arrivals import BurstyArrivals, PoissonArrivals, Request
from repro.serving.batcher import BatchingPolicy, form_batches
from repro.serving.server import InferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


@pytest.fixture(scope="module")
def dataset():
    return uniform_tables_spec(num_tables=4, corpus_size=2_000, dim=16)


class TestPoissonArrivals:
    def test_monotone_timestamps(self, dataset):
        reqs = PoissonArrivals(dataset, rate=1000.0, seed=1).generate(100)
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_rate_approximately_respected(self, dataset):
        reqs = PoissonArrivals(dataset, rate=10_000.0, seed=2).generate(5_000)
        span = reqs[-1].arrival_time - reqs[0].arrival_time
        assert 5_000 / span == pytest.approx(10_000.0, rel=0.1)

    def test_features_cover_all_tables(self, dataset):
        req = PoissonArrivals(dataset, rate=100.0).generate(1)[0]
        assert len(req.feature_ids) == dataset.num_tables
        for table, ids in enumerate(req.feature_ids):
            assert (ids < dataset.fields[table].corpus_size).all()

    def test_validation(self, dataset):
        with pytest.raises(WorkloadError):
            PoissonArrivals(dataset, rate=0.0)
        with pytest.raises(WorkloadError):
            PoissonArrivals(dataset, rate=10.0).generate(0)

    def test_deterministic_for_seed(self, dataset):
        a = PoissonArrivals(dataset, 100.0, seed=7).generate(10)
        b = PoissonArrivals(dataset, 100.0, seed=7).generate(10)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]


class TestBurstyArrivals:
    def test_generates_requested_count(self, dataset):
        reqs = BurstyArrivals(dataset, 1_000.0, 50_000.0, seed=3).generate(200)
        assert len(reqs) == 200

    def test_burstier_than_poisson(self, dataset):
        """Inter-arrival gaps of the bursty source have a heavier spread."""
        poisson = PoissonArrivals(dataset, 5_000.0, seed=4).generate(2_000)
        bursty = BurstyArrivals(
            dataset, 1_000.0, 100_000.0, burst_fraction=0.3, seed=4,
        ).generate(2_000)

        def cv(reqs):
            gaps = np.diff([r.arrival_time for r in reqs])
            return gaps.std() / gaps.mean()

        assert cv(bursty) > cv(poisson)

    def test_validation(self, dataset):
        with pytest.raises(WorkloadError):
            BurstyArrivals(dataset, 0.0, 10.0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(dataset, 10.0, 10.0, burst_fraction=1.5)


def _request(i, t):
    return Request(i, t, (np.array([i], np.uint64),))


class TestBatcher:
    def test_size_trigger(self):
        reqs = [_request(i, i * 1e-6) for i in range(10)]
        batches = form_batches(reqs, BatchingPolicy(max_batch_size=4,
                                                    max_delay=1.0))
        assert [b.size for b in batches] == [4, 4, 2]

    def test_timeout_trigger(self):
        # Two requests separated by more than the delay: two batches.
        reqs = [_request(0, 0.0), _request(1, 1.0)]
        policy = BatchingPolicy(max_batch_size=100, max_delay=1e-3)
        batches = form_batches(reqs, policy)
        assert len(batches) == 2
        assert batches[0].formed_at == pytest.approx(1e-3)

    def test_batch_preserves_requests(self):
        reqs = [_request(i, i * 1e-6) for i in range(5)]
        batches = form_batches(reqs, BatchingPolicy(max_batch_size=3,
                                                    max_delay=1.0))
        flattened = [r.request_id for b in batches for r in b.requests]
        assert flattened == [0, 1, 2, 3, 4]

    def test_formed_at_never_before_last_arrival_in_full_batch(self):
        reqs = [_request(i, i * 1e-4) for i in range(4)]
        policy = BatchingPolicy(max_batch_size=4, max_delay=10.0)
        batch = form_batches(reqs, policy)[0]
        assert batch.formed_at >= reqs[-1].arrival_time

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ConfigError):
            BatchingPolicy(max_delay=-1.0)


class TestInferenceServer:
    @pytest.fixture()
    def server(self, dataset, hw):
        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.2), hw)
        return InferenceServer(
            dataset, layer, hw,
            policy=BatchingPolicy(max_batch_size=64, max_delay=1e-3),
        )

    def test_serves_every_request(self, server, dataset):
        reqs = PoissonArrivals(dataset, 50_000.0, seed=5).generate(300)
        report = server.serve(reqs)
        assert report.served == 300
        assert len(report.latencies) == 300

    def test_latencies_exceed_batching_floor(self, server, dataset):
        reqs = PoissonArrivals(dataset, 1_000.0, seed=5).generate(50)
        report = server.serve(reqs)
        # Sparse traffic -> most batches seal on timeout, so latency is at
        # least near the batching delay for early arrivals in each batch.
        assert report.median_latency > 0
        assert report.p99_latency >= report.median_latency

    def test_sla_attainment_monotone_in_budget(self, server, dataset):
        reqs = PoissonArrivals(dataset, 50_000.0, seed=6).generate(300)
        report = server.serve(reqs)
        assert report.sla_attainment(1.0) >= report.sla_attainment(1e-3)
        assert report.sla_attainment(1e9) == 1.0

    def test_sla_budget_validation(self, server, dataset):
        reqs = PoissonArrivals(dataset, 50_000.0, seed=6).generate(50)
        report = server.serve(reqs)
        with pytest.raises(WorkloadError):
            report.sla_attainment(0.0)

    def test_higher_load_forms_bigger_batches(self, server, dataset):
        slow = PoissonArrivals(dataset, 5_000.0, seed=7).generate(200)
        fast = PoissonArrivals(dataset, 500_000.0, seed=7).generate(200)
        assert (server.serve(fast).mean_batch_size
                > server.serve(slow).mean_batch_size)

    def test_empty_stream_rejected(self, server):
        with pytest.raises(WorkloadError):
            server.serve([])

    def test_overload_raises_latency(self, server, dataset):
        light = PoissonArrivals(dataset, 20_000.0, seed=8).generate(400)
        heavy = PoissonArrivals(dataset, 2_000_000.0, seed=8).generate(400)
        assert (server.serve(heavy).p99_latency
                > server.serve(light).median_latency)
