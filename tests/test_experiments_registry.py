"""Tests for the experiment registry."""

import os

import pytest

from repro.bench.experiments import all_experiments, registry


class TestRegistry:
    def test_ids_unique(self):
        entries = all_experiments()
        ids = [e.experiment_id for e in entries]
        assert len(ids) == len(set(ids))

    def test_registry_matches_list(self):
        assert set(registry()) == {
            e.experiment_id for e in all_experiments()
        }

    def test_every_bench_file_exists(self):
        for entry in all_experiments():
            assert os.path.exists(entry.bench_file), entry.bench_file

    def test_every_paper_figure_covered(self):
        refs = {e.paper_ref for e in all_experiments()}
        for figure in [f"Figure {n}" for n in (3, 4)] + [
            f"Figure {n}" for n in range(9, 21)
        ]:
            assert figure in refs
        assert "Table 1" in refs and "Table 2" in refs

    def test_cli_run_rejects_unknown(self, capsys):
        from repro.cli import main

        assert main(["run", "definitely-not-real"]) == 2
        assert "unknown experiment" in capsys.readouterr().out
