"""Tests for traces and trace batches."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.trace import Trace, TraceBatch


def batch(ids_lists, batch_size=4):
    return TraceBatch(
        ids_per_table=[np.array(ids, np.uint64) for ids in ids_lists],
        batch_size=batch_size,
    )


class TestTraceBatch:
    def test_counts(self):
        b = batch([[1, 2, 3, 4], [5, 6, 7, 8]])
        assert b.num_tables == 2
        assert b.total_ids == 8

    def test_flattened(self):
        b = batch([[1, 2], [3, 4]], batch_size=2)
        tables, features = b.flattened()
        assert tables.tolist() == [0, 0, 1, 1]
        assert features.tolist() == [1, 2, 3, 4]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(WorkloadError):
            batch([[1]], batch_size=0)

    def test_rejects_multidim_ids(self):
        with pytest.raises(WorkloadError):
            TraceBatch(
                ids_per_table=[np.zeros((2, 2), np.uint64)], batch_size=2
            )


class TestTrace:
    def test_iteration(self):
        t = Trace([batch([[1], [2]]), batch([[3], [4]])])
        assert len(t) == 2
        assert t[1].ids_per_table[0][0] == 3
        assert sum(1 for _ in t) == 2

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            Trace([])

    def test_rejects_inconsistent_tables(self):
        with pytest.raises(WorkloadError):
            Trace([batch([[1]]), batch([[1], [2]])])

    def test_total_ids(self):
        t = Trace([batch([[1, 2], [3, 4]]), batch([[5], [6]])])
        assert t.total_ids == 6

    def test_split(self):
        t = Trace([batch([[i]]) for i in range(10)])
        warm, measure = t.split(4)
        assert len(warm) == 4
        assert len(measure) == 6

    def test_split_bounds(self):
        t = Trace([batch([[1]]), batch([[2]])])
        with pytest.raises(WorkloadError):
            t.split(0)
        with pytest.raises(WorkloadError):
            t.split(2)

    def test_rebatched_preserves_stream(self):
        t = Trace([batch([[1, 2, 3, 4]], batch_size=4),
                   batch([[5, 6, 7, 8]], batch_size=4)])
        r = t.rebatched(batch_size=2)
        assert len(r) == 4
        stream = np.concatenate([b.ids_per_table[0] for b in r])
        assert stream.tolist() == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_rebatched_too_large(self):
        t = Trace([batch([[1, 2]], batch_size=2)])
        with pytest.raises(WorkloadError):
            t.rebatched(batch_size=100)
