"""Tests for the windowed time-series collector."""

import json
import math

import pytest

from repro import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError, SimulationError
from repro.obs import (
    WORKLOAD_SERIES,
    WindowedCollector,
    MetricsRegistry,
    jensen_shannon,
)
from repro.obs.timeseries import WindowRecord
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


def _bound(collector=None, **kwargs):
    collector = collector or WindowedCollector(**kwargs)
    return collector.bind(MetricsRegistry())


class TestJensenShannon:
    def test_identical_distributions_are_zero(self):
        p = {"0": 5.0, "1": 3.0}
        assert jensen_shannon(p, dict(p)) == 0.0

    def test_disjoint_distributions_are_one(self):
        assert jensen_shannon({"0": 4.0}, {"1": 9.0}) == 1.0

    def test_scale_invariant(self):
        p = {"0": 1.0, "1": 3.0}
        q = {"0": 10.0, "1": 30.0}
        assert jensen_shannon(p, q) == pytest.approx(0.0, abs=1e-12)

    def test_empty_distribution_is_nan(self):
        assert math.isnan(jensen_shannon({}, {"0": 1.0}))
        assert math.isnan(jensen_shannon({"0": 1.0}, {"0": 0.0}))


class TestCollectorConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            WindowedCollector(window=0.0)
        with pytest.raises(ConfigError):
            WindowedCollector(capacity=0)
        with pytest.raises(ConfigError):
            WindowedCollector(sla_budget=-1e-3)

    def test_unbound_collector_rejects_recording(self):
        collector = WindowedCollector()
        assert collector.registry is None
        with pytest.raises(ConfigError):
            collector.observe_batch(0.0)
        with pytest.raises(ConfigError):
            collector.begin_run(0.0)

    def test_time_going_backwards_rejected(self):
        collector = _bound(window=1e-3)
        collector.observe_batch(5e-3)
        with pytest.raises(SimulationError):
            collector.observe_batch(1e-3)


class TestWindowing:
    def test_deltas_attributed_to_completion_window(self):
        collector = _bound(window=1e-3)
        registry = collector.registry
        registry.inc("cache.hits", 10)
        collector.observe_batch(0.5e-3)      # window 0
        registry.inc("cache.hits", 7)
        collector.observe_batch(1.5e-3)      # closes window 0, lands in 1
        collector.flush(2e-3)
        hits = collector.series("hits")
        assert hits == [10.0, 7.0]
        assert [w.index for w in collector.windows] == [0, 1]
        assert not collector.windows[0].partial

    def test_summed_deltas_reproduce_registry_diff(self):
        collector = _bound(window=1e-3)
        registry = collector.registry
        before = registry.snapshot()
        for i in range(7):
            registry.inc("cache.hits", 3 * i)
            registry.inc("cache.misses", i)
            collector.observe_batch(i * 0.4e-3)
        # Residual activity after the last batch (e.g. retire sweeps).
        registry.inc("cache.misses", 5)
        collector.flush(3e-3)
        diff = registry.snapshot().diff(before)
        assert sum(collector.series("hits")) == diff.counter("cache.hits")
        assert sum(collector.series("misses")) == diff.counter("cache.misses")

    def test_ring_buffer_bounds_memory(self):
        collector = _bound(window=1e-3, capacity=4)
        for i in range(10):
            collector.registry.inc("cache.hits")
            collector.observe_batch(i * 1e-3 + 0.5e-3)
        collector.flush()
        assert collector.closed_windows >= 9
        assert len(collector.windows) == 4
        # The retained windows are the newest ones.
        assert collector.windows[-1].index == collector.closed_windows - 1

    def test_idle_gap_produces_empty_windows(self):
        collector = _bound(window=1e-3, sla_budget=1e-3)
        collector.registry.inc("cache.hits", 4)
        collector.observe_batch(0.5e-3, [5e-4])
        collector.observe_batch(3.5e-3)      # 2 idle windows roll past
        collector.flush(4e-3)
        empty = collector.windows[1]
        assert empty.value("requests") == 0.0
        assert empty.value("hits") == 0.0
        assert math.isnan(empty.values["latency_p50_s"])
        assert math.isnan(empty.values["sla_attainment"])

    def test_flush_closes_trailing_partial_window(self):
        collector = _bound(window=1e-3)
        collector.registry.inc("cache.hits", 2)
        collector.observe_batch(1.2e-3)
        collector.flush(1.6e-3)
        assert collector.windows[-1].partial
        assert collector.windows[-1].end == pytest.approx(1.6e-3)

    def test_begin_run_absorbs_interrun_noise(self):
        collector = _bound(window=1e-3)
        registry = collector.registry
        registry.inc("cache.hits", 100)      # warmup noise between runs
        collector.begin_run(0.0)
        registry.inc("cache.hits", 6)
        collector.observe_batch(0.5e-3)
        collector.flush(1e-3)
        assert sum(collector.series("hits")) == 6.0

    def test_begin_run_resets_when_clock_restarts(self):
        collector = _bound(window=1e-3)
        collector.registry.inc("cache.hits", 2)
        collector.observe_batch(5e-3)
        collector.flush()
        assert collector.closed_windows > 0
        collector.begin_run(0.0)             # simulated clock restarted
        assert collector.closed_windows == 0
        assert not collector.windows

    def test_sla_series(self):
        collector = _bound(window=1e-3, sla_budget=1e-3)
        collector.observe_batch(0.5e-3, [5e-4, 9e-4, 2e-3, 3e-3])
        collector.flush(1e-3)
        window = collector.windows[0]
        assert window.value("requests") == 4.0
        assert window.value("sla_bad") == 2.0
        assert window.value("sla_attainment") == pytest.approx(0.5)

    def test_window_record_value_defaults_nan(self):
        record = WindowRecord(0, 0.0, 1.0, values={"x": float("nan")})
        assert record.value("x", 7.0) == 7.0
        assert record.value("missing", 3.0) == 3.0
        assert record.to_dict()["values"]["x"] is None


class TestDriftDetector:
    def test_hotspot_shift_flagged(self):
        collector = _bound(window=1e-3, drift_threshold=0.08)
        registry = collector.registry
        # Window 0: traffic concentrated on table 0.
        registry.inc("cache.table_hits", 90, table="0")
        registry.inc("cache.table_hits", 10, table="1")
        collector.observe_batch(0.5e-3)
        # Window 1: same distribution -> low divergence, no flag.
        registry.inc("cache.table_hits", 88, table="0")
        registry.inc("cache.table_hits", 12, table="1")
        collector.observe_batch(1.5e-3)
        # Window 2: hotspot jumps to table 1 -> flagged.
        registry.inc("cache.table_hits", 5, table="0")
        registry.inc("cache.table_hits", 95, table="1")
        collector.observe_batch(2.5e-3)
        collector.flush(3e-3)
        drift = collector.series("hotspot_drift")
        assert math.isnan(drift[0])          # nothing to compare against
        assert drift[1] < 0.08 < drift[2]
        assert [w for w, _ in collector.drift_events] == [2]
        assert collector.series("drift_flag")[2] == 1.0

    def test_falls_back_to_lookup_distribution(self):
        collector = _bound(window=1e-3, drift_threshold=0.05)
        registry = collector.registry
        registry.inc("cache.table_lookups", 50, table="0")
        collector.observe_batch(0.5e-3)
        registry.inc("cache.table_lookups", 50, table="3")
        collector.observe_batch(1.5e-3)
        collector.flush(2e-3)
        assert collector.series("hotspot_drift")[1] == pytest.approx(1.0)
        assert collector.drift_events


class _ServingRuns:
    """Pipelined runs with a collector attached, for integration tests."""

    @staticmethod
    def run(hw, depth, rate=150_000.0, num_requests=400, window=1e-3):
        dataset = uniform_tables_spec(
            num_tables=4, corpus_size=2_000, alpha=-1.2, dim=16,
        )
        store = EmbeddingStore(dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.1), hw)
        collector = WindowedCollector(window=window, sla_budget=2e-3)
        server = PipelinedInferenceServer(
            dataset, layer, hw, depth=depth,
            policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
            collector=collector,
        )
        requests = PoissonArrivals(dataset, rate, seed=3).generate(
            num_requests
        )
        report = server.serve(requests)
        return report, collector


class TestServingIntegration:
    def test_identical_runs_yield_byte_identical_series(self, hw):
        _, collector_a = _ServingRuns.run(hw, depth=2)
        _, collector_b = _ServingRuns.run(hw, depth=2)
        payload_a = json.dumps(collector_a.to_payload(), sort_keys=True)
        payload_b = json.dumps(collector_b.to_payload(), sort_keys=True)
        assert payload_a == payload_b
        assert collector_a.closed_windows > 0

    def test_depths_agree_on_workload_series_when_unsaturated(self, hw):
        """At non-saturating load the pipeline depth changes resource
        timing but not the request stream, so every workload-derived
        series must match window for window."""
        report1, collector1 = _ServingRuns.run(hw, depth=1)
        report2, collector2 = _ServingRuns.run(hw, depth=2)
        assert report1.served == report2.served
        assert collector1.closed_windows == collector2.closed_windows
        for name in WORKLOAD_SERIES:
            series1 = collector1.series(name)
            series2 = collector2.series(name)
            assert len(series1) == len(series2)
            for a, b in zip(series1, series2):
                if math.isnan(a) and math.isnan(b):
                    continue
                assert a == pytest.approx(b, rel=1e-9), (name, series1, series2)

    def test_windows_sum_to_report_totals(self, hw):
        report, collector = _ServingRuns.run(hw, depth=2)
        assert sum(collector.series("requests")) == report.served
        counters = report.metrics.to_dict()["counters"]
        assert sum(collector.series("hits")) == counters["cache.hits"]
        assert sum(collector.series("misses")) == counters["cache.misses"]

    def test_payload_is_json_strict(self, hw):
        _, collector = _ServingRuns.run(hw, depth=2)
        payload = collector.to_payload()
        text = json.dumps(payload, allow_nan=False, sort_keys=True)
        assert json.loads(text)["kind"] == "series"
