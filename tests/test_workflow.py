"""Tests for the Fleche embedding-layer workflow."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import ConfigError
from repro.gpusim.executor import Executor
from repro.tables.embedding_table import reference_vectors
from repro.workloads.trace import TraceBatch


def batch_for(store, rng, n=48):
    ids = [
        rng.integers(0, spec.corpus_size, size=n).astype(np.uint64)
        for spec in store.specs
    ]
    return TraceBatch(ids_per_table=ids, batch_size=n)


@pytest.fixture()
def layer(small_store, hw):
    # Roomy ratio so repeated batches fit fully (hit-rate assertions).
    return FlecheEmbeddingLayer(
        small_store, FlecheConfig(cache_ratio=0.4), hw
    )


class TestCorrectness:
    def test_outputs_match_ground_truth_cold_and_warm(self, layer, small_store, hw, rng):
        for _ in range(5):
            batch = batch_for(small_store, rng)
            result = layer.query(batch, Executor(hw))
            for t, ids in enumerate(batch.ids_per_table):
                expect = reference_vectors(t, ids, small_store.specs[t].dim)
                np.testing.assert_array_equal(result.outputs[t], expect)

    def test_duplicates_within_batch(self, layer, small_store, hw):
        ids = [np.array([3, 3, 3, 7], np.uint64) for _ in small_store.specs]
        batch = TraceBatch(ids_per_table=ids, batch_size=4)
        result = layer.query(batch, Executor(hw))
        for t in range(small_store.num_tables):
            np.testing.assert_array_equal(
                result.outputs[t][0], result.outputs[t][1]
            )

    def test_mixed_dims(self, hw, mixed_dim_specs, rng):
        from repro.tables.store import EmbeddingStore

        store = EmbeddingStore(mixed_dim_specs, hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.2), hw)
        for _ in range(3):
            batch = batch_for(store, rng, n=32)
            result = layer.query(batch, Executor(hw))
            for t, ids in enumerate(batch.ids_per_table):
                expect = reference_vectors(t, ids, store.specs[t].dim)
                np.testing.assert_array_equal(result.outputs[t], expect)

    def test_wrong_table_count_rejected(self, layer, hw):
        bad = TraceBatch([np.zeros(1, np.uint64)], batch_size=1)
        with pytest.raises(ConfigError):
            layer.query(bad, Executor(hw))


class TestStatistics:
    def test_second_query_hits(self, layer, small_store, hw, rng):
        batch = batch_for(small_store, rng)
        first = layer.query(batch, Executor(hw))
        second = layer.query(batch, Executor(hw))
        assert first.hit_rate < second.hit_rate
        assert second.hit_rate > 0.9

    def test_dedup_counts(self, layer, small_store, hw):
        ids = [np.array([1, 1, 2], np.uint64) for _ in small_store.specs]
        batch = TraceBatch(ids_per_table=ids, batch_size=3)
        result = layer.query(batch, Executor(hw))
        assert result.total_keys == 3 * small_store.num_tables
        assert result.unique_keys == 2 * small_store.num_tables

    def test_hit_plus_miss_covers_accesses(self, layer, small_store, hw, rng):
        batch = batch_for(small_store, rng)
        result = layer.query(batch, Executor(hw))
        assert result.hits + result.misses == batch.total_ids


class TestKernelAccounting:
    def test_fusion_uses_one_index_kernel(self, small_store, hw, rng):
        layer = FlecheEmbeddingLayer(
            small_store,
            FlecheConfig(cache_ratio=0.1, use_unified_index=False),
            hw,
        )
        executor = Executor(hw)
        layer.query(batch_for(small_store, rng), executor)
        fused = executor.stats.counters.get("kernel:fc_index_fused", 0)
        assert fused == 1

    def test_unfused_uses_one_kernel_per_table(self, small_store, hw, rng):
        layer = FlecheEmbeddingLayer(
            small_store,
            FlecheConfig(cache_ratio=0.1, use_fusion=False,
                         use_unified_index=False),
            hw,
        )
        executor = Executor(hw)
        layer.query(batch_for(small_store, rng), executor)
        per_table = sum(
            c for name, c in executor.stats.counters.items()
            if name.startswith("kernel:fc_index_t")
        )
        assert per_table == small_store.num_tables

    def test_fusion_reduces_maintenance(self, small_store, hw, rng):
        batch = batch_for(small_store, rng, n=64)

        def maintenance(use_fusion):
            layer = FlecheEmbeddingLayer(
                small_store,
                FlecheConfig(cache_ratio=0.1, use_fusion=use_fusion,
                             use_unified_index=False),
                hw,
            )
            executor = Executor(hw)
            layer.query(batch, executor)  # warm
            executor.reset()
            layer.query(batch, executor)
            return executor.stats.maintenance_time

        assert maintenance(True) < maintenance(False)

    def test_decoupled_launches_copy_kernels(self, small_store, hw, rng):
        layer = FlecheEmbeddingLayer(
            small_store, FlecheConfig(cache_ratio=0.1), hw
        )
        executor = Executor(hw)
        batch = batch_for(small_store, rng)
        layer.query(batch, executor)
        executor.reset()
        layer.query(batch, executor)
        copies = sum(
            c for name, c in executor.stats.counters.items()
            if name.startswith("kernel:fc_copy_d")
        )
        assert copies >= 1


class TestAblations:
    def test_all_variants_remain_correct(self, small_store, hw, rng):
        batch = batch_for(small_store, rng)
        for fusion in (True, False):
            for decouple in (True, False):
                for unified in (True, False):
                    layer = FlecheEmbeddingLayer(
                        small_store,
                        FlecheConfig(
                            cache_ratio=0.1,
                            use_fusion=fusion,
                            decouple_copy=decouple,
                            use_unified_index=unified,
                        ),
                        hw,
                    )
                    layer.query(batch, Executor(hw))
                    result = layer.query(batch, Executor(hw))
                    for t, ids in enumerate(batch.ids_per_table):
                        expect = reference_vectors(
                            t, ids, small_store.specs[t].dim
                        )
                        np.testing.assert_array_equal(
                            result.outputs[t], expect
                        )
