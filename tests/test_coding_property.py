"""Property-based tests for flat-key codecs (hypothesis)."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.fixed_length import FixedLengthCodec
from repro.coding.size_aware import SizeAwareCodec

corpus_lists = st.lists(
    st.integers(min_value=1, max_value=2**30), min_size=1, max_size=24
)


@settings(max_examples=80, deadline=None)
@given(sizes=corpus_lists, key_bits=st.integers(min_value=16, max_value=64))
def test_size_aware_layout_is_always_prefix_free(sizes, key_bits):
    """For any corpus mix, the layout satisfies Kraft and prefix-freedom."""
    codec = SizeAwareCodec(sizes, key_bits=key_bits)
    total = sum(
        Fraction(1, 2 ** c.prefix_bits)
        for c in codec.layout.codes
        if len(sizes) > 1
    )
    assert total <= 1
    # CodecLayout.__post_init__ already raises on nesting; reaching here
    # means the property held.


@settings(max_examples=60, deadline=None)
@given(sizes=corpus_lists)
def test_tables_never_share_flat_keys(sizes):
    """Keys from different tables never collide (inter-table isolation)."""
    codec = SizeAwareCodec(sizes, key_bits=32)
    sample = np.arange(16, dtype=np.uint64)
    seen = {}
    for t, size in enumerate(sizes):
        ids = sample % np.uint64(size)
        for key in codec.encode(t, ids).tolist():
            assert seen.setdefault(key, t) == t
