"""Tests for the slab memory pool."""

import numpy as np
import pytest

from repro.errors import CapacityError, SimulationError
from repro.mempool.slab_pool import SlabMemoryPool, pack_location, unpack_locations


@pytest.fixture()
def pool():
    return SlabMemoryPool({16: 100, 32: 50})


class TestLocationPacking:
    def test_roundtrip(self):
        loc = pack_location(3, 12345)
        classes, slots = unpack_locations(np.array([loc], np.uint64))
        assert classes[0] == 3
        assert slots[0] == 12345

    def test_vectorised_roundtrip(self):
        locs = np.array(
            [pack_location(c, s) for c, s in [(0, 1), (1, 2), (2, 3)]], np.uint64
        )
        classes, slots = unpack_locations(locs)
        assert classes.tolist() == [0, 1, 2]
        assert slots.tolist() == [1, 2, 3]


class TestConstruction:
    def test_needs_classes(self):
        with pytest.raises(SimulationError):
            SlabMemoryPool({})

    def test_rejects_bad_class(self):
        with pytest.raises(SimulationError):
            SlabMemoryPool({0: 100})
        with pytest.raises(SimulationError):
            SlabMemoryPool({16: 0})

    def test_total_bytes(self, pool):
        assert pool.total_bytes == 100 * 16 * 4 + 50 * 32 * 4

    def test_dims_sorted(self, pool):
        assert pool.dims() == [16, 32]

    def test_capacity_of(self, pool):
        assert pool.capacity_of(16) == 100
        assert pool.capacity_of(32) == 50


class TestAllocation:
    def test_allocate_and_release(self, pool):
        locs = pool.allocate(16, 10)
        assert len(locs) == 10
        assert pool.free_of(16) == 90
        pool.release(locs)
        assert pool.free_of(16) == 100

    def test_allocate_zero(self, pool):
        assert len(pool.allocate(16, 0)) == 0

    def test_unknown_dim_rejected(self, pool):
        with pytest.raises(SimulationError):
            pool.allocate(64, 1)

    def test_exhaustion_raises(self, pool):
        pool.allocate(32, 50)
        with pytest.raises(CapacityError):
            pool.allocate(32, 1)

    def test_utilization(self, pool):
        assert pool.utilization == 0.0
        pool.allocate(16, 100)
        assert pool.utilization == pytest.approx(100 / 150)
        assert pool.utilization_of(16) == pytest.approx(1.0)
        assert pool.utilization_of(32) == 0.0

    def test_classes_are_independent(self, pool):
        pool.allocate(16, 100)
        pool.allocate(32, 50)  # still succeeds

    def test_locations_unique(self, pool):
        a = pool.allocate(16, 50)
        b = pool.allocate(16, 50)
        all_locs = np.concatenate([a, b])
        assert len(np.unique(all_locs)) == 100


class TestDataPath:
    def test_write_read_roundtrip(self, pool, rng):
        locs = pool.allocate(16, 5)
        data = rng.standard_normal((5, 16)).astype(np.float32)
        pool.write(locs, data)
        np.testing.assert_array_equal(pool.read(locs), data)

    def test_read_subset_in_any_order(self, pool, rng):
        locs = pool.allocate(32, 8)
        data = rng.standard_normal((8, 32)).astype(np.float32)
        pool.write(locs, data)
        perm = rng.permutation(8)
        np.testing.assert_array_equal(pool.read(locs[perm]), data[perm])

    def test_write_shape_mismatch(self, pool):
        locs = pool.allocate(16, 2)
        with pytest.raises(SimulationError):
            pool.write(locs, np.zeros((2, 32), np.float32))

    def test_write_mixed_classes_rejected(self, pool):
        a = pool.allocate(16, 1)
        b = pool.allocate(32, 1)
        with pytest.raises(SimulationError):
            pool.write(np.concatenate([a, b]), np.zeros((2, 16), np.float32))

    def test_dim_of_locations(self, pool):
        a = pool.allocate(16, 2)
        b = pool.allocate(32, 3)
        dims = pool.dim_of_locations(np.concatenate([a, b]))
        assert dims.tolist() == [16, 16, 32, 32, 32]

    def test_release_then_reallocate_reuses_slots(self, pool):
        locs = pool.allocate(16, 100)  # exhaust
        pool.release(locs[:10])
        again = pool.allocate(16, 10)
        assert set(again.tolist()) == set(locs[:10].tolist())

    def test_double_release_detected(self, pool):
        locs = pool.allocate(16, 5)
        pool.release(locs)
        with pytest.raises(SimulationError):
            pool.release(locs)
