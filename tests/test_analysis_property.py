"""Property-based tests for the analysis package (hypothesis)."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import miss_ratio_curve, reuse_distances
from repro.workloads.trace import Trace, TraceBatch

id_streams = st.lists(
    st.integers(min_value=0, max_value=25), min_size=2, max_size=150
)


def _trace(ids):
    return Trace([
        TraceBatch([np.array(ids, np.uint64)], batch_size=len(ids))
    ])


@settings(max_examples=60, deadline=None)
@given(ids=id_streams)
def test_mattson_matches_lru_at_every_capacity(ids):
    """The stack-distance histogram reproduces exact LRU hit counts for
    every capacity — the defining property of the Mattson algorithm."""
    distances = reuse_distances(_trace(ids))
    for capacity in (1, 2, 5, 13):
        lru = OrderedDict()
        hits = 0
        for k in ids:
            if k in lru:
                hits += 1
                lru.move_to_end(k)
            else:
                lru[k] = None
                if len(lru) > capacity:
                    lru.popitem(last=False)
        predicted = int(((distances >= 0) & (distances < capacity)).sum())
        assert predicted == hits


@settings(max_examples=60, deadline=None)
@given(ids=id_streams)
def test_first_touch_count_equals_distinct_keys(ids):
    distances = reuse_distances(_trace(ids))
    assert int((distances < 0).sum()) == len(set(ids))


@settings(max_examples=60, deadline=None)
@given(ids=id_streams)
def test_mrc_is_monotone_and_bounded(ids):
    mrc = miss_ratio_curve(_trace(ids))
    assert (np.diff(mrc.hit_rates) >= -1e-12).all()
    assert 0.0 <= mrc.hit_rates[0] <= mrc.hit_rates[-1] <= 1.0
    # Compulsory misses bound the best possible hit rate.
    assert mrc.hit_rates[-1] == (len(ids) - mrc.distinct_keys) / len(ids)


@settings(max_examples=40, deadline=None)
@given(ids=id_streams, share=st.floats(min_value=0.1, max_value=1.0))
def test_hotspot_size_monotone_in_share(ids, share):
    from repro.analysis.hotspot import hotspot_profile

    t = _trace(ids)
    small = hotspot_profile(t, share=share * 0.5)
    large = hotspot_profile(t, share=share)
    assert small.hotspot_sizes[0] <= large.hotspot_sizes[0]
