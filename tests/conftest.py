"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import default_platform, Executor, EmbeddingStore
from repro.tables.table_spec import make_table_specs
from repro.workloads.synthetic import synthetic_dataset, uniform_tables_spec


@pytest.fixture(scope="session")
def hw():
    """The paper's testbed platform (immutable, shared across tests)."""
    return default_platform()


@pytest.fixture()
def executor(hw):
    return Executor(hw)


@pytest.fixture(scope="session")
def small_dataset():
    """A small 6-table synthetic dataset reused by integration tests."""
    return uniform_tables_spec(
        num_tables=6, corpus_size=2_000, alpha=-1.2, dim=16, num_samples=50_000
    )


@pytest.fixture(scope="session")
def small_trace(small_dataset):
    return synthetic_dataset(small_dataset, num_batches=12, batch_size=64)


@pytest.fixture()
def small_store(small_dataset, hw):
    return EmbeddingStore(small_dataset.table_specs(), hw)


@pytest.fixture()
def mixed_dim_specs():
    """Tables with two embedding dimensions (16 and 32)."""
    return make_table_specs([500, 800, 1200, 300], [16, 16, 32, 32])


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
