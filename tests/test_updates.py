"""Tests for parameter-update propagation (cache coherence)."""

import numpy as np
import pytest

from repro.core.config import FlecheConfig
from repro.core.flat_cache import FlatCache
from repro.core.updates import UpdateApplier
from repro.errors import WorkloadError
from repro.gpusim.executor import Executor
from repro.tables.embedding_table import reference_vectors
from repro.tables.table_spec import make_table_specs


@pytest.fixture()
def cache():
    specs = make_table_specs([500, 500], [16, 16])
    c = FlatCache(
        specs,
        FlecheConfig(cache_ratio=0.5, unified_index_fraction=1.0),
    )
    c.set_unified_capacity(50)
    c.tick()
    return c


def _fill(cache, table, ids):
    features = np.asarray(ids, dtype=np.uint64)
    keys = cache.encode(table, features)
    cache.admit_and_insert(
        keys, reference_vectors(table, features, 16), 16
    )
    return keys


class TestUpdateApplier:
    def test_refreshes_cached_entries_in_place(self, cache):
        keys = _fill(cache, 0, [1, 2, 3])
        applier = UpdateApplier(cache)
        new_rows = np.full((3, 16), 7.0, dtype=np.float32)
        outcome = applier.apply(0, np.array([1, 2, 3], np.uint64), new_rows)
        assert outcome.refreshed == 3
        got = cache.gather(cache.index_lookup(keys).locations)
        np.testing.assert_array_equal(got, new_rows)

    def test_untracked_keys_cost_nothing(self, cache):
        applier = UpdateApplier(cache)
        outcome = applier.apply(
            0, np.array([9], np.uint64), np.zeros((1, 16), np.float32)
        )
        assert outcome.refreshed == 0
        assert outcome.untracked == 1

    def test_mixed_batch(self, cache):
        _fill(cache, 0, [1])
        applier = UpdateApplier(cache)
        outcome = applier.apply(
            0, np.array([1, 2], np.uint64), np.ones((2, 16), np.float32)
        )
        assert outcome.refreshed == 1
        assert outcome.untracked == 1
        assert outcome.total == 2

    def test_invalidates_dram_pointers(self, cache):
        features = np.array([10, 11], np.uint64)
        keys = cache.encode(1, features)
        cache.publish_dram_pointers(keys, features)
        applier = UpdateApplier(cache)
        outcome = applier.apply(1, features, np.zeros((2, 16), np.float32))
        assert outcome.pointers_invalidated == 2
        assert not cache.index_lookup(keys).dram_hit.any()

    def test_pointer_invalidation_optional(self, cache):
        features = np.array([10], np.uint64)
        keys = cache.encode(1, features)
        cache.publish_dram_pointers(keys, features)
        applier = UpdateApplier(cache, invalidate_pointers=False)
        applier.apply(1, features, np.zeros((1, 16), np.float32))
        assert cache.index_lookup(keys).dram_hit.all()

    def test_version_stamp_bumped(self, cache):
        _fill(cache, 0, [5])
        cache.tick()
        cache.tick()
        key = int(cache.encode(0, np.array([5], np.uint64))[0])
        before = cache.index.stamp_of(key)
        UpdateApplier(cache).apply(
            0, np.array([5], np.uint64), np.ones((1, 16), np.float32)
        )
        assert cache.index.stamp_of(key) >= before

    def test_kernel_accounting_when_executor_given(self, cache, hw):
        _fill(cache, 0, [1, 2])
        executor = Executor(hw)
        UpdateApplier(cache).apply(
            0, np.array([1, 2], np.uint64),
            np.zeros((2, 16), np.float32), executor=executor,
        )
        assert executor.stats.counters.get("kernel:update_copy", 0) == 1
        assert executor.stats.counters.get("kernel:update_index", 0) == 1

    def test_shape_validation(self, cache):
        applier = UpdateApplier(cache)
        with pytest.raises(WorkloadError):
            applier.apply(0, np.array([1], np.uint64),
                          np.zeros((2, 16), np.float32))
        with pytest.raises(WorkloadError):
            applier.apply(0, np.array([1], np.uint64),
                          np.zeros((1, 8), np.float32))

    def test_duplicate_ids_last_write_wins(self, cache):
        keys = _fill(cache, 0, [4])
        applier = UpdateApplier(cache)
        rows = np.stack([
            np.full(16, 1.0, np.float32), np.full(16, 2.0, np.float32),
        ])
        outcome = applier.apply(0, np.array([4, 4], np.uint64), rows)
        assert outcome.duplicates == 1
        assert outcome.refreshed == 1
        got = cache.gather(cache.index_lookup(keys).locations)
        np.testing.assert_array_equal(got, rows[1:])

    def test_outcome_partitions_the_batch(self, cache):
        _fill(cache, 1, [1])
        cache.publish_dram_pointers(
            cache.encode(1, np.array([2], np.uint64)),
            np.array([2], np.uint64),
        )
        applier = UpdateApplier(cache)
        features = np.array([1, 2, 3, 3], np.uint64)
        outcome = applier.apply(1, features, np.zeros((4, 16), np.float32))
        assert (
            outcome.refreshed + outcome.pointers_invalidated
            + outcome.pointers_skipped + outcome.untracked
            + outcome.duplicates
        ) == len(features)

    def test_subsequent_queries_serve_fresh_values(self, cache):
        """Coherence end to end: after an update, hits return new rows."""
        features = np.arange(10, dtype=np.uint64)
        keys = _fill(cache, 0, features)
        fresh = np.tile(
            np.arange(16, dtype=np.float32) * -1.0, (10, 1)
        )
        UpdateApplier(cache).apply(0, features, fresh)
        outcome = cache.index_lookup(keys)
        assert outcome.cache_hit.all()
        np.testing.assert_array_equal(
            cache.gather(outcome.locations), fresh
        )
