"""Tests for the benchmark harness and reporting."""

import pytest

from repro.bench.harness import (
    ExperimentContext,
    make_context,
    run_scheme,
    scheme_factory,
    sweep,
    SCHEME_NAMES,
)
from repro.bench.reporting import format_rate, format_table, format_time


class TestReporting:
    def test_format_time_units(self):
        assert "ns" in format_time(5e-9)
        assert "us" in format_time(5e-6)
        assert "ms" in format_time(5e-3)
        assert format_time(2.0).endswith("s")

    def test_format_rate_units(self):
        assert "G/s" in format_rate(2e9)
        assert "M/s" in format_rate(2e6)
        assert "K/s" in format_rate(2e3)
        assert "/s" in format_rate(2)

    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(set(len(line) for line in lines[1:])) == 1


class TestHarness:
    @pytest.fixture(scope="class")
    def context(self, hw):
        return make_context(
            dataset_name="avazu",
            batch_size=64,
            num_batches=6,
            scale=0.01,
            hw=hw,
        )

    def test_make_context_defaults(self, context):
        assert isinstance(context, ExperimentContext)
        assert context.cache_ratio == 0.05
        assert context.warmup == 3
        assert len(context.measured_batches) == 3

    def test_scheme_factory_all_names(self, context):
        for name in SCHEME_NAMES:
            scheme = scheme_factory(name, context)()
            assert hasattr(scheme, "query")

    def test_scheme_factory_unknown(self, context):
        with pytest.raises(ValueError):
            scheme_factory("bogus", context)

    def test_run_scheme_embedding_only(self, context):
        result = run_scheme(context, "fleche")
        assert result.samples > 0
        assert result.elapsed > 0

    def test_run_scheme_end_to_end(self, context):
        result = run_scheme(context, "fleche", include_dense=True)
        assert result.last_probabilities is not None

    def test_config_overrides_forwarded(self, context):
        result = run_scheme(context, "fleche", use_fusion=False)
        assert result.elapsed > 0

    def test_sweep_runs_every_point(self, hw):
        def factory(batch_size):
            return make_context(
                "avazu", batch_size=batch_size, num_batches=4,
                scale=0.01, hw=hw,
            )

        results = sweep(factory, [16, 32], ["fleche", "hugectr"])
        assert set(results) == {16, 32}
        assert set(results[16]) == {"fleche", "hugectr"}
