"""The observability layer: registry, spans, audits, and the
cross-backend conservation sweep.

Four suites:

* unit tests of :class:`~repro.obs.MetricsRegistry` (counters / gauges /
  histograms / labels, snapshot diffs, deterministic rendering) and of
  the invariant-audit hooks (conservation laws, callable checks,
  :class:`~repro.errors.AuditError`);
* unit tests of :class:`~repro.obs.SpanTracer` and its Chrome-trace
  export;
* the conservation-invariant sweep: every cache backend — Fleche (and
  its ablations), the per-table baseline (with and without CUDA graphs),
  no-cache, the reduction cache — runs the same trace and must pass the
  full law catalogue, with key totals agreeing across backends;
* the determinism regression: two runs from the same (workload seed,
  fault schedule, depth) produce byte-identical metrics JSON and
  identical span lists.
"""

import json

import numpy as np
import pytest

from repro import (
    AuditError,
    ConfigError,
    MetricsRegistry,
    SpanTracer,
    install_conservation_laws,
)
from repro.baselines.no_cache import NoCacheLayer
from repro.baselines.optimal_cache import (
    belady_hit_rate,
    frequency_optimal_hit_rate,
)
from repro.baselines.per_table_cache import PerTableCacheLayer, PerTableConfig
from repro.baselines.reduction_cache import ReductionCache, co_occurrence_workload
from repro.core.config import FlecheConfig
from repro.core.precision import PrecisionConfig
from repro.core.engine import InferenceEngine
from repro.core.workflow import FlecheEmbeddingLayer
from repro.errors import SimulationError
from repro.faults import (
    DegradeConfig,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    ShardOutage,
)
from repro.gpusim.executor import Executor
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import RemoteParameterServer
from repro.obs.registry import Observable, render_key
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer
from repro.tables.store import EmbeddingStore
from repro.workloads.synthetic import uniform_tables_spec


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_labels_and_totals(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits")
        reg.inc("cache.hits", 4, table=1)
        reg.inc("cache.hits", 2, table=2)
        assert reg.counter("cache.hits") == 1
        assert reg.counter("cache.hits", table=1) == 4
        assert reg.total("cache.hits") == 7
        assert reg.counter("never.touched") == 0
        assert reg.total("never.touched") == 0

    def test_counters_are_monotone(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.inc("cache.hits", -1)

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool.live", 5.0)
        reg.set_gauge("pool.live", 3.0)
        assert reg.gauge("pool.live") == 3.0

    def test_histograms(self):
        reg = MetricsRegistry()
        reg.observe_many("lat", [1.0, 3.0, 2.0])
        h = reg.histogram("lat")
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.minimum == 1.0 and h.maximum == 3.0
        d = h.to_dict()
        assert d["min"] == 1.0 and d["max"] == 3.0

    def test_render_key(self):
        assert render_key("a.b", ()) == "a.b"
        key = render_key("a", (("t", "1"), ("z", "x")))
        assert key == "a{t=1,z=x}"


class TestHistogramEdges:
    def _bucketed(self):
        reg = MetricsRegistry()
        reg.declare_buckets("lat", (1.0, 2.0, 4.0))
        return reg

    def test_boundary_exact_observation_lands_in_that_bucket(self):
        """``le`` semantics: a value exactly on a bound belongs to that
        bound's bucket, not the next one."""
        reg = self._bucketed()
        reg.observe("lat", 2.0)
        stats = reg.histogram("lat")
        assert stats.bucket_counts == (0, 1, 0)
        assert stats.cumulative_buckets() == [
            (1.0, 0), (2.0, 1), (4.0, 1), (float("inf"), 1),
        ]

    def test_overflow_bucket_is_implicit(self):
        reg = self._bucketed()
        reg.observe("lat", 100.0)
        stats = reg.histogram("lat")
        assert stats.bucket_counts == (0, 0, 0)
        assert stats.cumulative_buckets()[-1] == (float("inf"), 1)

    def test_negative_observations(self):
        """Negative values are legal (deltas, temperature-style series):
        they land in the lowest bucket and min/sum reflect them."""
        reg = self._bucketed()
        reg.observe("lat", -3.0)
        reg.observe("lat", 0.5)
        stats = reg.histogram("lat")
        assert stats.bucket_counts == (2, 0, 0)
        assert stats.minimum == -3.0
        assert stats.total == pytest.approx(-2.5)

    def test_never_observed_histogram(self):
        reg = self._bucketed()
        stats = reg.histogram("lat")
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.cumulative_buckets() == [(float("inf"), 0)]
        assert stats.to_dict() == {"count": 0, "sum": 0.0}
        # Declared-but-unobserved histograms do not appear in snapshots.
        assert reg.snapshot().histograms == {}

    def test_diff_subtracts_buckets(self):
        reg = self._bucketed()
        reg.observe("lat", 0.5)
        older = reg.snapshot()
        reg.observe("lat", 1.5)
        reg.observe("lat", 9.0)
        delta = reg.snapshot().diff(older)
        stats = delta.histograms[("lat", ())]
        assert stats.count == 2
        assert stats.bucket_counts == (0, 1, 0)
        # min/max are not invertible and are dropped from diffs.
        assert "min" not in stats.to_dict()

    def test_diff_against_empty_prior(self):
        reg = self._bucketed()
        empty = MetricsRegistry().snapshot()
        reg.observe("lat", 1.0)
        delta = reg.snapshot().diff(empty)
        assert delta.histograms[("lat", ())].bucket_counts == (1, 0, 0)

    def test_declare_buckets_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.declare_buckets("lat", ())
        with pytest.raises(ConfigError):
            reg.declare_buckets("lat", (2.0, 1.0))
        with pytest.raises(ConfigError):
            reg.declare_buckets("lat", (1.0, 1.0))
        with pytest.raises(ConfigError):
            reg.declare_buckets("lat", (1.0, float("inf")))

    def test_redeclaration_rules(self):
        reg = self._bucketed()
        reg.declare_buckets("lat", (1.0, 2.0, 4.0))  # same bounds: no-op
        with pytest.raises(ConfigError):
            reg.declare_buckets("lat", (1.0, 8.0))

    def test_declaration_only_affects_later_first_observations(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.5)                      # bucketless series
        reg.declare_buckets("lat", (1.0, 2.0))
        reg.observe("lat", 1.5)
        assert reg.histogram("lat").bucket_counts == ()   # kept bucketless
        reg.observe("lat", 1.5, stream="a")               # new label set
        assert reg.histogram("lat", stream="a").bucket_counts == (0, 1)

    def test_snapshot_diff_subtracts_counters(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.inc("c", 3)
        reg.inc("d", 2)
        reg.observe("h", 4.0)
        delta = reg.snapshot().diff(before)
        assert delta.total("c") == 3
        assert delta.total("d") == 2
        hist = delta.histograms[("h", ())]
        assert hist.count == 1 and hist.total == 4.0
        # min/max are not invertible across a diff: omitted from JSON.
        assert "min" not in hist.to_dict()
        # Unchanged counters drop out of a diff entirely.
        reg2 = MetricsRegistry()
        reg2.inc("c", 5)
        assert reg2.snapshot().diff(reg2.snapshot()).counters == {}

    def test_to_json_is_deterministic(self):
        def build(order):
            reg = MetricsRegistry()
            for name, labels in order:
                reg.inc(name, 1, **labels)
            reg.set_gauge("g", 1.5)
            return reg.snapshot().to_json()

        a = build([("x", {"t": 1}), ("y", {}), ("x", {"t": 0})])
        b = build([("x", {"t": 0}), ("x", {"t": 1}), ("y", {})])
        assert a == b
        json.loads(a)  # strict JSON


class TestInvariantAudits:
    def test_conservation_law_holds_and_violates(self):
        reg = MetricsRegistry()
        reg.add_conservation("lookup", ["lookups"], ["hits", "misses"])
        assert reg.audit() == []  # 0 == 0 + 0: vacuously true
        reg.inc("lookups", 10)
        reg.inc("hits", 7)
        reg.inc("misses", 3)
        assert reg.audit() == []
        reg.inc("hits", 1)
        violations = reg.audit()
        assert len(violations) == 1 and "lookup" in violations[0]
        with pytest.raises(AuditError):
            reg.check()

    def test_inequality_ops(self):
        reg = MetricsRegistry()
        reg.add_conservation("bound", ["a"], ["b"], op="<=")
        reg.inc("a", 2)
        reg.inc("b", 5)
        assert reg.audit() == []
        reg.inc("a", 4)
        assert reg.audit() != []
        with pytest.raises(ConfigError):
            reg.add_conservation("bad", ["a"], ["b"], op="!=")

    def test_law_registration_is_idempotent(self):
        reg = MetricsRegistry()
        install_conservation_laws(reg)
        n = len(reg.laws)
        install_conservation_laws(reg)
        assert len(reg.laws) == n

    def test_laws_fall_back_to_gauges(self):
        reg = MetricsRegistry()
        reg.add_conservation("pool", ["live", "free"], ["capacity"])
        reg.set_gauge("live", 3.0)
        reg.set_gauge("free", 5.0)
        reg.set_gauge("capacity", 8.0)
        assert reg.audit() == []
        reg.set_gauge("free", 4.0)
        assert reg.audit() != []

    def test_checks_run_before_laws(self):
        reg = MetricsRegistry()
        reg.add_conservation("pool", ["live"], ["capacity"])

        def refresh():
            # A component-style hook: refresh gauges, then report health.
            reg.set_gauge("live", 4.0)
            reg.set_gauge("capacity", 4.0)
            return True

        reg.add_check("refresh", refresh)
        assert reg.audit() == []

    def test_check_detail_is_reported(self):
        reg = MetricsRegistry()
        reg.add_check("broken", lambda: (False, "7 slots leaked"))
        violations = reg.audit()
        assert violations == ["check 'broken' failed: 7 slots leaked"]

    def test_observable_lazy_then_rebound(self):
        class Widget(Observable):
            def poke(self):
                self.obs.inc("w.pokes")

        w = Widget()
        w.poke()  # lands in the lazy private registry
        assert w.obs.total("w.pokes") == 1
        shared = MetricsRegistry()
        w.bind_observability(shared)
        w.poke()
        assert shared.total("w.pokes") == 1
        assert w.obs is shared


# ---------------------------------------------------------------------------
# SpanTracer
# ---------------------------------------------------------------------------


class TestSpanTracer:
    def test_record_and_query(self):
        tr = SpanTracer()
        tr.record("lane0", "b0:index", 0.0, 1.5, "index")
        tr.record("lane1", "b1:fetch", 1.0, 3.0, "fetch")
        tr.record("lane0", "b2:copy", 2.0, 2.5, "copy")
        assert len(tr) == 3
        assert tr.tracks() == ["lane0", "lane1"]
        assert tr.busy_time("lane0") == pytest.approx(2.0)
        assert tr.span_list()[0] == ("lane0", "b0:index", 0.0, 1.5, "index")
        tr.clear()
        assert len(tr) == 0

    def test_rejects_negative_duration(self):
        tr = SpanTracer()
        with pytest.raises(SimulationError):
            tr.record("t", "x", 2.0, 1.0, "index")

    def test_chrome_trace_shape(self, tmp_path):
        tr = SpanTracer()
        tr.record("serving", "b0:index", 0.0, 1e-3, "index")
        trace = tr.to_chrome_trace()
        events = trace["traceEvents"]
        kinds = {e["ph"] for e in events}
        assert "X" in kinds and "M" in kinds
        x = next(e for e in events if e["ph"] == "X")
        assert x["name"] == "b0:index"
        assert x["dur"] == pytest.approx(1e3)  # microseconds
        path = tmp_path / "trace.json"
        tr.export_json(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(trace))


# ---------------------------------------------------------------------------
# Conservation-invariant sweep: every backend, same trace, all laws hold
# ---------------------------------------------------------------------------


BACKENDS = {
    "fleche": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05), hw),
    "fleche-no-unified": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, use_unified_index=False), hw),
    "fleche-coupled": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, decouple_copy=False), hw),
    "fleche-no-fusion": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, use_fusion=False), hw),
    "per-table": lambda store, hw: PerTableCacheLayer(
        store, PerTableConfig(cache_ratio=0.05), hw),
    "per-table-graph": lambda store, hw: PerTableCacheLayer(
        store, PerTableConfig(cache_ratio=0.05, use_cuda_graph=True), hw),
    "no-cache": lambda store, hw: NoCacheLayer(store, hw),
}

# Mixed-precision backends join the law sweep only: their slimmer slots
# buy extra capacity at the same byte budget, so the fp32-capacity-based
# optimal hit-rate bound in the totals test does not apply to them.
PRECISION_BACKENDS = {
    "fleche-mixed": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, precision=PrecisionConfig(
            enabled=True, fp32_share=0.25, fp16_share=0.25, int8_share=0.5,
        )), hw),
    "fleche-mixed-lfu": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, precision=PrecisionConfig(
            enabled=True, fp32_share=0.1, fp16_share=0.1, int8_share=0.8,
            eviction_policy="lfu",
        )), hw),
    "fleche-hybrid-evict": lambda store, hw: FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=0.05, precision=PrecisionConfig(
            enabled=True, fp32_share=1.0, fp16_share=0.0, int8_share=0.0,
            eviction_policy="hybrid",
        )), hw),
}


class TestConservationSweep:
    @pytest.fixture(scope="class")
    def accesses(self, small_trace):
        return sum(batch.total_ids for batch in small_trace)

    @pytest.mark.parametrize(
        "backend", sorted({**BACKENDS, **PRECISION_BACKENDS})
    )
    def test_backend_passes_all_laws(
        self, backend, small_dataset, small_trace, hw, accesses
    ):
        store = EmbeddingStore(small_dataset.table_specs(), hw)
        make = {**BACKENDS, **PRECISION_BACKENDS}[backend]
        engine = InferenceEngine(make(store, hw), hw, include_dense=False)
        engine.run(small_trace, Executor(hw))
        engine.obs.check()
        obs = engine.obs
        # Every backend accounts for the identical access stream.
        assert obs.total("cache.lookups") == accesses
        assert obs.total("cache.hits") + obs.total("cache.misses") == accesses
        assert obs.total("cache.queries") == len(small_trace)

    def test_backends_agree_on_workload_totals(
        self, small_dataset, small_trace, hw, accesses
    ):
        """The hit/miss *split* differs per backend; the total traffic and
        the actual model inputs cannot.  Optimal-bound sanity rides along:
        Belady upper-bounds the frequency-pinned static optimal."""
        hit_rates = {}
        for backend, make in sorted(BACKENDS.items()):
            store = EmbeddingStore(small_dataset.table_specs(), hw)
            engine = InferenceEngine(make(store, hw), hw, include_dense=False)
            engine.run(small_trace, Executor(hw))
            obs = engine.obs
            hit_rates[backend] = obs.total("cache.hits") / accesses
        assert hit_rates["no-cache"] == 0.0
        assert max(hit_rates.values()) <= 1.0
        capacity = sum(
            spec.corpus_size for spec in small_dataset.table_specs()
        ) // 20  # the same 5% budget the cached backends get
        freq = frequency_optimal_hit_rate(small_trace, capacity)
        belady = belady_hit_rate(small_trace, capacity)
        assert 0.0 < belady <= 1.0
        assert 0.0 < freq <= 1.0
        # The clairvoyant preloaded-static optimal bounds every cold-start
        # backend given the same capacity budget.  (Belady does not bound
        # ``freq``: it pays compulsory misses the preloaded oracle skips.)
        assert max(hit_rates.values()) <= freq

    def test_reduction_cache_memo_law(self, hw):
        spec = uniform_tables_spec(num_tables=1, corpus_size=500, dim=8)
        store = EmbeddingStore(spec.table_specs(), hw)
        cache = ReductionCache(store, capacity=64, pooling="sum")
        reg = install_conservation_laws(MetricsRegistry())
        cache.bind_observability(reg)
        groups = co_occurrence_workload(
            num_samples=200, group_pool_size=10, ids_per_group=4,
            corpus_size=500, seed=3,
        )
        cache.pooled_batch(0, groups)
        reg.check()
        assert reg.total("memo.queries") == 200
        assert reg.total("memo.hits") == cache.memo_hits > 0
        assert reg.total("memo.lookups_saved") == cache.lookups_saved


# ---------------------------------------------------------------------------
# Determinism regression
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _faulted_run(self, hw):
        dataset = uniform_tables_spec(
            num_tables=4, corpus_size=2_000, alpha=-1.2, dim=16,
        )
        schedule = FaultSchedule([
            ShardOutage(shard=s, start=3e-4, duration=5e-3) for s in range(4)
        ])
        remote = RemoteParameterServer(
            dataset.table_specs(),
            injector=FaultInjector(schedule, seed=11),
            retry_policy=RetryPolicy.naive(timeout=1e-3),
        )
        store = TieredParameterStore(
            dataset.table_specs(), hw, dram_capacity=600, remote=remote,
            degrade=DegradeConfig(policy="stale"),
        )
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
        tracer = SpanTracer()
        server = PipelinedInferenceServer(
            dataset, layer, hw, depth=3, tracer=tracer,
            policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
        )
        reqs = PoissonArrivals(dataset, 400_000.0, seed=5).generate(500)
        report = server.serve(reqs)
        return report, tracer

    def test_identical_runs_are_byte_identical(self, hw):
        """Same (workload seed, fault schedule, depth) twice, from fresh
        servers: the metrics JSON and the Chrome-trace span list must be
        byte-for-byte identical."""
        report_a, tracer_a = self._faulted_run(hw)
        report_b, tracer_b = self._faulted_run(hw)
        assert report_a.metrics.to_json() == report_b.metrics.to_json()
        assert tracer_a.span_list() == tracer_b.span_list()
        chrome_a = json.dumps(tracer_a.to_chrome_trace(), sort_keys=True)
        chrome_b = json.dumps(tracer_b.to_chrome_trace(), sort_keys=True)
        assert chrome_a == chrome_b
        # The run exercised the interesting paths, not a trivial fixture.
        counters = report_a.metrics.to_dict()["counters"]
        assert counters["serving.degraded_requests"] > 0
        assert counters.get("cache.coalesced_keys", 0) > 0
        assert len(tracer_a.span_list()) > 0
