"""Tests for the flat-key codec machinery."""

import numpy as np
import pytest

from repro.coding.layout import (
    CodecLayout,
    TableCode,
    hash_feature_ids,
)
from repro.errors import CodingError


def code(table_id, prefix, prefix_bits, feature_bits, corpus=100):
    return TableCode(table_id, prefix, prefix_bits, feature_bits, corpus)


class TestHashFeatureIds:
    def test_identity_when_corpus_fits(self):
        ids = np.arange(100, dtype=np.uint64)
        out = hash_feature_ids(ids, 8, corpus_size=256)
        np.testing.assert_array_equal(out, ids)

    def test_hash_when_corpus_overflows(self):
        ids = np.arange(1000, dtype=np.uint64)
        out = hash_feature_ids(ids, 8, corpus_size=1000)
        assert (out < 256).all()
        # Hashing 1000 ids into 256 slots must collide.
        assert len(np.unique(out)) < 1000

    def test_full_width_is_identity(self):
        ids = np.array([0, 2**60], dtype=np.uint64)
        np.testing.assert_array_equal(hash_feature_ids(ids, 64), ids)

    def test_deterministic(self):
        ids = np.arange(50, dtype=np.uint64)
        a = hash_feature_ids(ids, 10)
        b = hash_feature_ids(ids, 10)
        np.testing.assert_array_equal(a, b)

    def test_range_respected(self):
        ids = np.arange(10_000, dtype=np.uint64) * 7919
        out = hash_feature_ids(ids, 12)
        assert (out < 4096).all()


class TestCodecLayout:
    def test_valid_layout(self):
        CodecLayout(
            key_bits=16,
            codes=(code(0, 0b0, 1, 15), code(1, 0b1, 1, 15)),
        )

    def test_bits_must_sum(self):
        with pytest.raises(CodingError):
            CodecLayout(key_bits=16, codes=(code(0, 0, 4, 10),))

    def test_duplicate_table_rejected(self):
        with pytest.raises(CodingError):
            CodecLayout(
                key_bits=16,
                codes=(code(0, 0, 1, 15), code(0, 1, 1, 15)),
            )

    def test_nested_prefixes_rejected(self):
        # 0b0 (1 bit) is a prefix of 0b01 (2 bits): inter-table collision.
        with pytest.raises(CodingError):
            CodecLayout(
                key_bits=16,
                codes=(code(0, 0b0, 1, 15), code(1, 0b01, 2, 14)),
            )

    def test_key_bits_bounds(self):
        with pytest.raises(CodingError):
            CodecLayout(key_bits=4, codes=())
        with pytest.raises(CodingError):
            CodecLayout(key_bits=65, codes=())

    def test_code_for_missing_table(self):
        layout = CodecLayout(key_bits=16, codes=(code(0, 0, 1, 15),))
        with pytest.raises(CodingError):
            layout.code_for(5)

    def test_collision_free_flag(self):
        assert code(0, 0, 8, 8, corpus=256).collision_free
        assert not code(0, 0, 8, 8, corpus=257).collision_free
