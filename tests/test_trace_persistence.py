"""Tests for trace save/load."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.persistence import load_trace, save_trace
from repro.workloads.synthetic import synthetic_dataset, uniform_tables_spec


@pytest.fixture()
def trace():
    spec = uniform_tables_spec(num_tables=3, corpus_size=500, dim=8, seed=2)
    return synthetic_dataset(spec, num_batches=5, batch_size=16)


class TestTracePersistence:
    def test_roundtrip_is_exact(self, trace, tmp_path):
        path = save_trace(trace, str(tmp_path / "t.npz"))
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.num_tables == trace.num_tables
        assert loaded.name == trace.name
        for original, restored in zip(trace, loaded):
            assert restored.batch_size == original.batch_size
            for a, b in zip(original.ids_per_table, restored.ids_per_table):
                np.testing.assert_array_equal(a, b)

    def test_loaded_trace_drives_the_cache_identically(self, trace, tmp_path, hw):
        from repro.core.cache_base import HitRateAccumulator
        from repro.core.config import FlecheConfig
        from repro.core.workflow import FlecheEmbeddingLayer
        from repro.gpusim.executor import Executor
        from repro.tables.store import EmbeddingStore

        spec = uniform_tables_spec(num_tables=3, corpus_size=500, dim=8, seed=2)
        loaded = load_trace(save_trace(trace, str(tmp_path / "t.npz")))

        def hit_rate(source):
            store = EmbeddingStore(spec.table_specs(), hw)
            layer = FlecheEmbeddingLayer(
                store, FlecheConfig(cache_ratio=0.1, use_unified_index=False),
                hw,
            )
            executor = Executor(hw)
            acc = HitRateAccumulator()
            for batch in source:
                acc.record(layer.query(batch, executor))
            return acc.hit_rate

        assert hit_rate(trace) == hit_rate(loaded)

    def test_rejects_non_trace_npz(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, foo=np.arange(3))
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_rejects_future_version(self, trace, tmp_path):
        path = save_trace(trace, str(tmp_path / "t.npz"))
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["__version__"] = np.array([99])
        np.savez(path, **arrays)
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_compression_keeps_files_small(self, trace, tmp_path):
        import os

        path = save_trace(trace, str(tmp_path / "t.npz"))
        raw_bytes = trace.total_ids * 8
        assert os.path.getsize(path) < 4 * raw_bytes
