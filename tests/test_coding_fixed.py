"""Tests for the fixed-length (Kraken) codec."""

import numpy as np
import pytest

from repro.coding.fixed_length import FixedLengthCodec
from repro.errors import CodingError


class TestFixedLengthCodec:
    def test_default_table_bits_cover_tables(self):
        codec = FixedLengthCodec([100] * 5, key_bits=32)
        assert codec.table_bits >= 3

    def test_explicit_table_bits(self):
        codec = FixedLengthCodec([100] * 3, key_bits=32, table_bits=8)
        for c in codec.layout.codes:
            assert c.prefix_bits == 8
            assert c.feature_bits == 24

    def test_all_tables_same_feature_bits(self):
        # The defining weakness: a 10-row table and a 1M-row table get the
        # same number of feature bits.
        codec = FixedLengthCodec([10, 1_000_000], key_bits=24, table_bits=8)
        bits = {c.feature_bits for c in codec.layout.codes}
        assert bits == {16}

    def test_too_many_tables_rejected(self):
        with pytest.raises(CodingError):
            FixedLengthCodec([10] * 5, key_bits=32, table_bits=2)

    def test_table_bits_must_leave_feature_room(self):
        with pytest.raises(CodingError):
            FixedLengthCodec([10], key_bits=8, table_bits=8)

    def test_encode_keys_distinct_across_tables(self):
        codec = FixedLengthCodec([100, 100], key_bits=32)
        ids = np.arange(100, dtype=np.uint64)
        a = codec.encode(0, ids)
        b = codec.encode(1, ids)
        assert len(np.intersect1d(a, b)) == 0

    def test_table_of_roundtrip(self):
        codec = FixedLengthCodec([50, 60, 70], key_bits=32)
        ids = np.arange(50, dtype=np.uint64)
        for t in range(3):
            keys = codec.encode(t, ids)
            assert (codec.table_of(keys) == t).all()

    def test_encode_batch(self):
        codec = FixedLengthCodec([100, 100], key_bits=32)
        tables = np.array([0, 1, 0, 1])
        features = np.array([1, 1, 2, 2], dtype=np.uint64)
        keys = codec.encode_batch(tables, features)
        np.testing.assert_array_equal(codec.table_of(keys), tables)

    def test_large_corpus_collides_with_few_bits(self):
        # 2**18 ids into 16 feature bits must collide badly.
        codec = FixedLengthCodec([2**18], key_bits=24, table_bits=8)
        ids = np.arange(2**18, dtype=np.uint64)
        keys = codec.encode(0, ids)
        assert len(np.unique(keys)) < len(ids)
