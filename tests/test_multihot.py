"""Multi-hot end-to-end tests: fields contributing several IDs per sample.

Real DLRM inputs include multi-hot fields ("list of favorite videos",
paper §2.1); the pipeline must pool each sample's group correctly and the
caches must stay bit-exact under the heavier duplicate load.
"""

import numpy as np
import pytest

from repro import (
    DeepCrossNetwork,
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    InferenceEngine,
    PerTableCacheLayer,
    PerTableConfig,
)
from repro.model.pooling import sum_pool
from repro.tables.embedding_table import reference_vectors
from repro.workloads.spec import DatasetSpec, FieldSpec
from repro.workloads.synthetic import synthetic_dataset


@pytest.fixture(scope="module")
def multihot_dataset():
    return DatasetSpec(
        name="multihot",
        fields=tuple(FieldSpec(corpus_size=1_000, alpha=-1.2)
                     for _ in range(4)),
        num_samples=10_000,
        dim=16,
        ids_per_field=3,
        seed=5,
    )


@pytest.fixture(scope="module")
def multihot_trace(multihot_dataset):
    return synthetic_dataset(multihot_dataset, num_batches=8, batch_size=32)


class TestMultiHotTraces:
    def test_batch_carries_k_ids_per_sample(self, multihot_trace):
        batch = multihot_trace[0]
        assert len(batch.ids_per_table[0]) == 32 * 3

    def test_cache_outputs_bit_exact(self, multihot_dataset, multihot_trace, hw):
        store = EmbeddingStore(multihot_dataset.table_specs(), hw)
        for layer in (
            FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw),
            PerTableCacheLayer(store, PerTableConfig(0.3), hw),
        ):
            for batch in list(multihot_trace)[:3]:
                result = layer.query(batch, Executor(hw))
                for t, ids in enumerate(batch.ids_per_table):
                    expect = reference_vectors(t, ids, 16)
                    np.testing.assert_array_equal(result.outputs[t], expect)

    def test_pooling_groups_by_sample(self, multihot_dataset, multihot_trace, hw):
        store = EmbeddingStore(multihot_dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw)
        batch = multihot_trace[0]
        result = layer.query(batch, Executor(hw))
        pooled = sum_pool(result.outputs[0], 3)
        assert pooled.shape == (32, 16)
        # Sample 0's pooled row = sum of its own 3 ID rows.
        ids = batch.ids_per_table[0][:3]
        expect = reference_vectors(0, ids, 16).sum(axis=0)
        np.testing.assert_allclose(pooled[0], expect, rtol=1e-6)

    def test_engine_end_to_end(self, multihot_dataset, multihot_trace, hw):
        store = EmbeddingStore(multihot_dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw)
        model = DeepCrossNetwork(
            num_tables=4, embedding_dim=16, num_cross_layers=2,
            hidden_units=[32],
        )
        engine = InferenceEngine(layer, hw, model=model, ids_per_field=3)
        result = engine.run(list(multihot_trace)[:4], Executor(hw), warmup=1)
        assert result.last_probabilities.shape == (32,)
        assert ((result.last_probabilities >= 0)
                & (result.last_probabilities <= 1)).all()

    def test_multihot_raises_duplicate_pressure(self, multihot_dataset, hw):
        """K IDs per sample inflate in-batch duplicates, which dedup absorbs:
        unique keys grow far slower than total keys."""
        store = EmbeddingStore(multihot_dataset.table_specs(), hw)
        layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw)
        trace = synthetic_dataset(multihot_dataset, num_batches=1,
                                  batch_size=256)
        result = layer.query(trace[0], Executor(hw))
        assert result.total_keys == 256 * 3 * 4
        assert result.unique_keys < result.total_keys * 0.8

    def test_schemes_agree_on_model_output(self, multihot_dataset,
                                           multihot_trace, hw):
        store = EmbeddingStore(multihot_dataset.table_specs(), hw)
        model = DeepCrossNetwork(
            num_tables=4, embedding_dim=16, num_cross_layers=2,
            hidden_units=[32],
        )
        batches = list(multihot_trace)[:3]

        def probabilities(layer):
            engine = InferenceEngine(layer, hw, model=model, ids_per_field=3)
            return engine.run(batches, Executor(hw), warmup=0).last_probabilities

        p_fleche = probabilities(
            FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.3), hw)
        )
        p_hugectr = probabilities(
            PerTableCacheLayer(store, PerTableConfig(0.3), hw)
        )
        np.testing.assert_allclose(p_fleche, p_hugectr, rtol=1e-5)
