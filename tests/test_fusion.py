"""Tests for self-identified kernel fusion (paper §3.2)."""

import numpy as np
import pytest

from repro.core.fusion import (
    FusionPlan,
    build_fusion_plan,
    identify_thread,
    identify_threads,
    round_to_warp,
    warp_divergence_free,
)
from repro.errors import SimulationError
from repro.gpusim.kernel import KernelSpec


def specs(*thread_counts):
    return [
        KernelSpec(f"k{i}", threads=t, random_transactions=t)
        for i, t in enumerate(thread_counts)
    ]


class TestRoundToWarp:
    def test_exact_multiple(self):
        assert round_to_warp(64) == 64

    def test_rounds_up(self):
        assert round_to_warp(65) == 96

    def test_zero(self):
        assert round_to_warp(0) == 0


class TestBuildFusionPlan:
    def test_paper_example(self):
        """The running example of Figure 6: 960/1920/640-thread kernels
        fuse into one 3520-thread launch."""
        plan = build_fusion_plan(specs(960, 1920, 640))
        assert plan.total_threads == 3520
        assert plan.scan.tolist() == [0, 960, 2880, 3520]
        assert plan.num_kernels == 3

    def test_fused_work_is_sum(self):
        plan = build_fusion_plan(specs(100, 200))
        assert plan.fused_spec.random_transactions == 300

    def test_thread_counts_rounded_to_warps(self):
        plan = build_fusion_plan(specs(33, 1))
        assert plan.scan.tolist() == [0, 64, 96]

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            build_fusion_plan([])

    def test_args_length_checked(self):
        with pytest.raises(SimulationError):
            build_fusion_plan(specs(32, 32), args=["only-one"])

    def test_args_array_preserved(self):
        plan = build_fusion_plan(specs(32, 32), args=["a", "b"])
        assert plan.args_array == ("a", "b")

    def test_metadata_bytes_small(self):
        plan = build_fusion_plan(specs(*([32] * 60)))
        # The scan + args metadata stays GDRCopy-sized for 60 tables.
        assert plan.metadata_bytes < 4096


class TestIdentification:
    def test_paper_example_boundaries(self):
        plan = build_fusion_plan(specs(960, 1920, 640))
        assert identify_thread(plan, 0) == (0, 0)
        assert identify_thread(plan, 959) == (0, 959)
        assert identify_thread(plan, 960) == (1, 0)
        assert identify_thread(plan, 2879) == (1, 1919)
        assert identify_thread(plan, 2880) == (2, 0)
        assert identify_thread(plan, 3519) == (2, 639)

    def test_out_of_range_rejected(self):
        plan = build_fusion_plan(specs(32))
        with pytest.raises(SimulationError):
            identify_thread(plan, 32)
        with pytest.raises(SimulationError):
            identify_thread(plan, -1)

    def test_vectorised_matches_scalar(self):
        plan = build_fusion_plan(specs(96, 64, 128))
        tids = np.arange(plan.total_threads)
        kernel_ids, locals_ = identify_threads(plan, tids)
        for tid in range(plan.total_threads):
            k, l = identify_thread(plan, tid)
            assert kernel_ids[tid] == k
            assert locals_[tid] == l

    def test_every_thread_maps_into_its_kernel(self):
        plan = build_fusion_plan(specs(960, 1920, 640))
        tids = np.arange(plan.total_threads)
        kernel_ids, locals_ = identify_threads(plan, tids)
        counts = np.bincount(kernel_ids)
        assert counts.tolist() == [960, 1920, 640]
        assert (locals_ >= 0).all()


class TestDivergenceFreedom:
    def test_warp_uniform_kernel_ids(self):
        """The paper's §3.2 property: with warp-rounded thread counts, every
        warp's 32 threads identify the same original kernel."""
        plan = build_fusion_plan(specs(960, 1920, 640))
        assert warp_divergence_free(plan)

    def test_holds_for_odd_sizes_after_rounding(self):
        plan = build_fusion_plan(specs(33, 7, 100, 1))
        assert warp_divergence_free(plan)
