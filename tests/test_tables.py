"""Tests for table specs, embedding tables, and the host store."""

import numpy as np
import pytest

from repro.errors import ConfigError, WorkloadError
from repro.tables.embedding_table import (
    EmbeddingTable,
    reference_vector,
    reference_vectors,
)
from repro.tables.store import EmbeddingStore
from repro.tables.table_spec import TableSpec, make_table_specs, total_param_bytes


class TestTableSpec:
    def test_value_and_param_bytes(self):
        spec = TableSpec(0, corpus_size=1000, dim=32)
        assert spec.value_bytes == 128
        assert spec.param_bytes == 128_000

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            TableSpec(0, corpus_size=0, dim=32)
        with pytest.raises(ConfigError):
            TableSpec(0, corpus_size=10, dim=0)

    def test_make_table_specs(self):
        specs = make_table_specs([10, 20], [8, 16])
        assert [s.table_id for s in specs] == [0, 1]
        assert specs[1].dim == 16

    def test_make_table_specs_length_mismatch(self):
        with pytest.raises(ConfigError):
            make_table_specs([10], [8, 16])

    def test_total_param_bytes(self):
        specs = make_table_specs([10, 20], [8, 8])
        assert total_param_bytes(specs) == (10 + 20) * 32


class TestReferenceVectors:
    def test_deterministic(self):
        a = reference_vectors(3, np.array([7, 8], np.uint64), 16)
        b = reference_vectors(3, np.array([7, 8], np.uint64), 16)
        np.testing.assert_array_equal(a, b)

    def test_distinct_across_tables(self):
        a = reference_vector(0, 5, 16)
        b = reference_vector(1, 5, 16)
        assert not np.allclose(a, b)

    def test_distinct_across_ids(self):
        a = reference_vector(0, 5, 16)
        b = reference_vector(0, 6, 16)
        assert not np.allclose(a, b)

    def test_bounded_values(self):
        v = reference_vectors(2, np.arange(100, dtype=np.uint64), 32)
        assert (v >= -0.5).all() and (v < 0.5).all()

    def test_scalar_matches_vector(self):
        batch = reference_vectors(1, np.array([42], np.uint64), 8)
        np.testing.assert_array_equal(reference_vector(1, 42, 8), batch[0])


class TestEmbeddingTable:
    def test_lookup_matches_reference(self):
        table = EmbeddingTable(TableSpec(2, corpus_size=100, dim=8))
        ids = np.array([3, 50, 3], dtype=np.uint64)
        got = table.lookup(ids)
        expect = reference_vectors(2, ids, 8)
        np.testing.assert_array_equal(got, expect)

    def test_lazy_materialisation(self):
        table = EmbeddingTable(TableSpec(0, corpus_size=1000, dim=4))
        assert len(table) == 0
        table.lookup(np.array([1, 2, 3], np.uint64))
        assert len(table) == 3

    def test_repeated_lookup_is_stable(self):
        table = EmbeddingTable(TableSpec(0, corpus_size=100, dim=4))
        ids = np.array([7], np.uint64)
        first = table.lookup(ids).copy()
        table.lookup(np.arange(50, dtype=np.uint64))  # growth happens
        np.testing.assert_array_equal(table.lookup(ids), first)

    def test_out_of_corpus_rejected(self):
        table = EmbeddingTable(TableSpec(0, corpus_size=10, dim=4))
        with pytest.raises(WorkloadError):
            table.lookup(np.array([10], np.uint64))

    def test_empty_lookup(self):
        table = EmbeddingTable(TableSpec(0, corpus_size=10, dim=4))
        assert table.lookup(np.zeros(0, np.uint64)).shape == (0, 4)


class TestEmbeddingStore:
    def test_param_bytes(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        assert store.param_bytes == sum(s.param_bytes for s in mixed_dim_specs)

    def test_query_returns_vectors_and_cost(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        result = store.query(0, np.array([1, 2], np.uint64))
        assert result.vectors.shape == (2, 16)
        assert result.cost.total > 0

    def test_unified_index_fraction_reduces_index_time(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        ids = np.arange(100, dtype=np.uint64)
        full = store.query(0, ids, indexed_fraction=0.0)
        half = store.query(0, ids, indexed_fraction=0.5)
        assert half.cost.index_time == pytest.approx(0.5 * full.cost.index_time, rel=0.05)
        assert half.cost.copy_time == pytest.approx(full.cost.copy_time)

    def test_query_many_mixed_tables(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        tables = np.array([0, 1, 0])
        features = np.array([5, 6, 7], np.uint64)
        result = store.query_many(tables, features)
        assert result.vectors.shape == (3, 16)
        expect0 = reference_vectors(0, np.array([5, 7], np.uint64), 16)
        np.testing.assert_array_equal(result.vectors[[0, 2]], expect0)

    def test_query_many_rejects_mixed_dims(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        with pytest.raises(WorkloadError):
            store.query_many(np.array([0, 2]), np.array([1, 1], np.uint64))

    def test_query_many_indexed_mask(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        tables = np.zeros(10, dtype=np.int64)
        features = np.arange(10, dtype=np.uint64)
        all_indexed = store.query_many(tables, features, indexed_mask=np.ones(10, bool))
        none_indexed = store.query_many(tables, features, indexed_mask=np.zeros(10, bool))
        assert all_indexed.cost.index_time == 0.0
        assert none_indexed.cost.index_time > 0.0

    def test_bad_fraction_rejected(self, hw, mixed_dim_specs):
        store = EmbeddingStore(mixed_dim_specs, hw)
        with pytest.raises(WorkloadError):
            store.query(0, np.array([1], np.uint64), indexed_fraction=2.0)

    def test_dense_numbering_enforced(self, hw):
        bad = [TableSpec(1, 10, 4)]
        with pytest.raises(WorkloadError):
            EmbeddingStore(bad, hw)
