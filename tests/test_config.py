"""Tests for FlecheConfig and PerTableConfig validation."""

import pytest

from repro.baselines.per_table_cache import PerTableConfig
from repro.core.config import FlecheConfig
from repro.errors import ConfigError


class TestFlecheConfig:
    def test_defaults_enable_all_techniques(self):
        cfg = FlecheConfig()
        assert cfg.use_fusion and cfg.decouple_copy and cfg.use_unified_index

    def test_rejects_bad_cache_ratio(self):
        with pytest.raises(ConfigError):
            FlecheConfig(cache_ratio=0.0)
        with pytest.raises(ConfigError):
            FlecheConfig(cache_ratio=1.5)

    def test_rejects_bad_key_bits(self):
        with pytest.raises(ConfigError):
            FlecheConfig(key_bits=4)
        with pytest.raises(ConfigError):
            FlecheConfig(key_bits=128)

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigError):
            FlecheConfig(evict_high_watermark=0.5, evict_low_watermark=0.6)
        with pytest.raises(ConfigError):
            FlecheConfig(evict_high_watermark=1.2)

    def test_rejects_bad_admission(self):
        with pytest.raises(ConfigError):
            FlecheConfig(admission_probability=0.0)

    def test_ablated_returns_modified_copy(self):
        base = FlecheConfig()
        off = base.ablated(use_fusion=False)
        assert not off.use_fusion
        assert base.use_fusion  # original unchanged
        assert off.cache_ratio == base.cache_ratio


class TestPerTableConfig:
    def test_defaults(self):
        assert PerTableConfig().cache_ratio == 0.05

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            PerTableConfig(cache_ratio=0.0)
