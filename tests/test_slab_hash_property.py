"""Property-based tests for the slab hash index (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashindex.slab_hash import SlabHashIndex

key_lists = st.lists(
    st.integers(min_value=0, max_value=2**48 - 1), min_size=0, max_size=60
)


@settings(max_examples=60, deadline=None)
@given(keys=key_lists)
def test_inserted_keys_are_always_found(keys):
    """Every inserted key is retrievable while capacity is not exceeded."""
    idx = SlabHashIndex(capacity=4096)
    arr = np.array(sorted(set(keys)), dtype=np.uint64)
    idx.insert(arr, arr, stamp=1)
    found, values, _ = idx.lookup(arr)
    assert found.all()
    np.testing.assert_array_equal(values, arr)


@settings(max_examples=60, deadline=None)
@given(keys=key_lists, probes=key_lists)
def test_lookup_matches_dict_semantics(keys, probes):
    """The index behaves exactly like a Python dict (no false hits)."""
    idx = SlabHashIndex(capacity=4096)
    reference = {}
    arr = np.array(keys, dtype=np.uint64)
    vals = np.arange(len(arr), dtype=np.uint64)
    idx.insert(arr, vals, stamp=1)
    for k, v in zip(arr.tolist(), vals.tolist()):
        reference.setdefault(k, v)  # first occurrence wins on duplicates
    probe_arr = np.array(probes, dtype=np.uint64)
    found, values, _ = idx.lookup(probe_arr)
    for i, k in enumerate(probe_arr.tolist()):
        assert found[i] == (k in reference)
        if found[i]:
            assert values[i] == reference[k]


@settings(max_examples=40, deadline=None)
@given(keys=key_lists)
def test_erase_then_lookup_misses(keys):
    idx = SlabHashIndex(capacity=4096)
    arr = np.unique(np.array(keys, dtype=np.uint64))
    idx.insert(arr, arr, stamp=1)
    idx.erase(arr)
    found, _, _ = idx.lookup(arr)
    assert not found.any()
    assert len(idx) == 0


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**20), min_size=1, max_size=200
    ),
    stamps=st.integers(min_value=0, max_value=100),
)
def test_size_never_exceeds_slots(keys, stamps):
    """Bucket-local eviction keeps occupancy bounded by physical slots."""
    idx = SlabHashIndex(capacity=32, load_factor=1.0)
    arr = np.array(keys, dtype=np.uint64)
    idx.insert(arr, arr, stamp=stamps)
    assert len(idx) <= idx.slots


@settings(max_examples=40, deadline=None)
@given(keys=key_lists)
def test_scan_agrees_with_size(keys):
    idx = SlabHashIndex(capacity=4096)
    arr = np.array(keys, dtype=np.uint64)
    idx.insert(arr, arr, stamp=3)
    scanned, _, _ = idx.scan()
    assert len(scanned) == len(idx)
    assert set(scanned.tolist()) == set(np.unique(arr).tolist())
