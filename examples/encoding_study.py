"""Encoding study: how flat-key layouts shape collisions and model quality.

Walks through the re-encoding problem of paper §3.1: many embedding tables
of wildly different corpus sizes must share one flat key space.  Prints the
bit layouts the fixed-length (Kraken) and size-aware (Fleche) codecs build,
their measured collision rates, and the AUC each achieves on a trainable
synthetic CTR task.

Run:  python examples/encoding_study.py
"""

import numpy as np

from repro import FixedLengthCodec, SizeAwareCodec, collision_stats
from repro.bench.reporting import format_table
from repro.model.trainer import CollisionAucStudy, SyntheticCtrTask

#: A model with a handful of tiny tables next to one huge ID table.
CORPORA = [64, 512, 4096]
KEY_BITS = 10


def main() -> None:
    print(f"Corpora: {CORPORA}, flat keys of {KEY_BITS} bits\n")

    size_aware = SizeAwareCodec(CORPORA, key_bits=KEY_BITS)
    fixed = FixedLengthCodec(CORPORA, key_bits=KEY_BITS, table_bits=2)

    print("Size-aware layout (Fleche):")
    for line in size_aware.describe():
        print("  " + line)
    print("Fixed-length layout (Kraken):")
    for line in fixed.describe():
        print("  " + line)
    print()

    ids = [np.arange(size, dtype=np.uint64) for size in CORPORA]
    rows = []
    for name, codec in (("Kraken (fixed)", fixed),
                        ("Fleche (size-aware)", size_aware)):
        stats = collision_stats(codec, ids)
        rows.append([
            name,
            f"{stats.intra_table_rate:.2%}",
            f"{stats.inter_table_rate:.2%}",
        ])
    print(format_table(
        ["codec", "intra-table collisions", "inter-table collisions"],
        rows, title="Measured collision rates",
    ))
    print()

    task = SyntheticCtrTask(
        corpus_sizes=CORPORA, num_train=15_000, num_test=4_000,
        alpha=-0.8, seed=5,
    )
    study = CollisionAucStudy(task, epochs=4)
    upper = study.upper_bound_auc()
    auc_rows = [
        ["Kraken (fixed)", f"{study.auc_with_codec(fixed):.4f}"],
        ["Fleche (size-aware)", f"{study.auc_with_codec(size_aware):.4f}"],
        ["no-collision upper bound", f"{upper:.4f}"],
    ]
    print(format_table(
        ["codec", "AUC"], auc_rows,
        title="Model quality on the synthetic CTR task (Figure 13's metric)",
    ))
    print()
    print("Size-aware coding spends its bits where corpora need them: the")
    print("big table keeps more feature bits, so fewer hot IDs collide and")
    print("the model keeps more of its accuracy at the same key width.")


if __name__ == "__main__":
    main()
