"""Ad-serving scenario: full DLRM inference on a Criteo-like workload.

Runs the complete pipeline the paper's Figure 1 sketches — sparse lookups
through a GPU-resident cache, pooling, a Deep & Cross Network — for both
the HugeCTR-style per-table baseline and Fleche, and reports end-to-end
throughput, latency percentiles, and where the time goes.

Run:  python examples/ad_serving.py
"""

from repro import (
    Category,
    DeepCrossNetwork,
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    InferenceEngine,
    PerTableCacheLayer,
    PerTableConfig,
    criteo_kaggle_replica,
    default_platform,
    synthetic_dataset,
)
from repro.bench.reporting import format_rate, format_table, format_time

BATCH_SIZE = 1024
NUM_BATCHES = 16
CACHE_RATIO = 0.05


def run_scheme(name, layer, hw, trace, model, dataset):
    engine = InferenceEngine(layer, hw, model=model)
    result = engine.run(list(trace), Executor(hw), warmup=NUM_BATCHES // 2)
    breakdown = result.breakdown
    return [
        name,
        format_rate(result.throughput),
        format_time(result.median_latency),
        format_time(result.p99_latency),
        f"{result.hit_rate:.1%}",
        format_time(breakdown.seconds.get(Category.MLP, 0.0)
                    / len(result.latencies)),
    ]


def main() -> None:
    hw = default_platform()
    dataset = criteo_kaggle_replica(scale=0.5)
    trace = synthetic_dataset(dataset, num_batches=NUM_BATCHES,
                              batch_size=BATCH_SIZE)
    store = EmbeddingStore(dataset.table_specs(), hw)
    model = DeepCrossNetwork(
        num_tables=dataset.num_tables, embedding_dim=dataset.dim
    )

    rows = [
        run_scheme(
            "HugeCTR (per-table)",
            PerTableCacheLayer(store, PerTableConfig(CACHE_RATIO), hw),
            hw, trace, model, dataset,
        ),
        run_scheme(
            "Fleche",
            FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=CACHE_RATIO), hw),
            hw, trace, model, dataset,
        ),
    ]
    print(format_table(
        ["scheme", "throughput", "median", "P99", "hit rate", "MLP/batch"],
        rows,
        title=(f"Ad serving on a Criteo-like workload "
               f"(batch {BATCH_SIZE}, cache {CACHE_RATIO:.0%})"),
    ))
    print()
    print("The MLP time is identical for both schemes: every saved")
    print("microsecond comes from the embedding layer, as in the paper.")


if __name__ == "__main__":
    main()
