"""Online serving scenario: SLA headroom and warm restarts.

Puts the whole stack behind a dynamic batcher under open-loop Poisson
traffic — the operating regime the paper's introduction frames ("given
the same SLA, a higher-performance system can examine more candidate
items") — then demonstrates a warm restart from a cache snapshot.

Run:  python examples/online_serving.py
"""

from repro import (
    DeepCrossNetwork,
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    PerTableCacheLayer,
    PerTableConfig,
    default_platform,
    uniform_tables_spec,
)
from repro.bench.reporting import format_table, format_time
from repro.core.snapshot import restore, snapshot
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.server import InferenceServer

SLA = 2e-3  # 2 ms latency budget


def main() -> None:
    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=12, corpus_size=50_000, alpha=-1.3, dim=32,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    model = DeepCrossNetwork(num_tables=12, embedding_dim=32)
    policy = BatchingPolicy(max_batch_size=512, max_delay=5e-4)

    rows = []
    fleche_layer = None
    for name, layer in (
        ("HugeCTR", PerTableCacheLayer(store, PerTableConfig(0.05), hw)),
        ("Fleche", FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)),
    ):
        if name == "Fleche":
            fleche_layer = layer
        server = InferenceServer(
            dataset, layer, hw, policy=policy, model=model, include_dense=True,
        )
        server.serve(PoissonArrivals(dataset, 200_000.0, seed=1).generate(800))
        for rate in (400_000, 2_400_000):
            reqs = PoissonArrivals(dataset, float(rate), seed=2).generate(4_000)
            report = server.serve(reqs)
            rows.append([
                name, f"{rate:,}/s",
                f"{report.sla_attainment(SLA):.1%}",
                format_time(report.p99_latency),
            ])
    print(format_table(
        ["scheme", "offered load", f"SLA@{SLA * 1e3:.0f}ms", "P99"],
        rows,
        title="Open-loop serving (dynamic batching, 5% cache, DCN model)",
    ))

    # --- Warm restart from a snapshot.
    snap = snapshot(fleche_layer.cache)
    cold = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
    warm = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)
    restore(warm.cache, snap)
    probe = PoissonArrivals(dataset, 200_000.0, seed=3).generate(600)
    restart_rows = []
    for label, layer in (("cold restart", cold), ("warm restart", warm)):
        server = InferenceServer(
            dataset, layer, hw, policy=policy, model=model, include_dense=True,
        )
        report = server.serve(probe)
        restart_rows.append([
            label, f"{report.sla_attainment(SLA):.1%}",
            format_time(report.p99_latency),
        ])
    print()
    print(format_table(
        ["restart mode", f"SLA@{SLA * 1e3:.0f}ms (first minute)", "P99"],
        restart_rows,
        title=f"Restart behaviour ({snap.num_entries:,} snapshot entries)",
    ))


if __name__ == "__main__":
    main()
