"""Capacity planning: how big must the cache be for a target hit rate?

Uses the analysis toolkit — exact Mattson miss-ratio curves and hotspot
profiles — to size a Fleche cache for an Avazu-like workload *before*
deploying it, then verifies the prediction against the real cache.

Run:  python examples/capacity_planning.py
"""

from repro import (
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    avazu_replica,
    default_platform,
    synthetic_dataset,
)
from repro.analysis.hotspot import global_vs_static_split, hotspot_profile
from repro.analysis.reuse import miss_ratio_curve
from repro.bench.reporting import format_table

TARGETS = (0.90, 0.95, 0.98)


def main() -> None:
    hw = default_platform()
    dataset = avazu_replica(scale=0.05)
    trace = synthetic_dataset(dataset, num_batches=40, batch_size=512)

    print(f"Workload: {dataset.name} replica, "
          f"{dataset.total_sparse_ids:,} distinct IDs, "
          f"{trace.total_ids:,} accesses\n")

    # 1. One pass over the trace yields the hit rate at EVERY cache size.
    mrc = miss_ratio_curve(trace)
    rows = []
    for target in TARGETS:
        capacity = mrc.capacity_for(target)
        rows.append([
            f"{target:.0%}",
            f"{capacity:,}" if capacity else "unreachable",
            f"{capacity / dataset.total_sparse_ids:.2%}"
            if capacity else "-",
        ])
    print(format_table(
        ["target hit rate", "entries needed (LRU)", "as % of parameters"],
        rows, title="Mattson MRC: capacity for a target hit rate",
    ))
    print()

    # 2. Why the cache must be *global*: hotspot sizes differ per table.
    profile = hotspot_profile(trace, share=0.8)
    smallest = min(profile.hotspot_sizes.values())
    largest = max(profile.hotspot_sizes.values())
    split = global_vs_static_split(
        trace, total_budget=max(1, int(dataset.total_sparse_ids * 0.05))
    )
    print(f"Per-table hotspot sizes (80% of traffic) span {smallest:,} to "
          f"{largest:,} keys ({profile.imbalance:.0f}x imbalance).")
    print(f"At a 5% budget, a global hot set covers {split['global']:.1%} "
          f"of traffic; the best static per-table split covers "
          f"{split['static']:.1%} — Issue 1's structural gap of "
          f"{split['gap']:.1%}.\n")

    # 3. Verify the plan: deploy at the 95% target and measure.
    capacity = mrc.capacity_for(0.95)
    ratio = min(1.0, 1.3 * capacity / dataset.total_sparse_ids)
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = FlecheEmbeddingLayer(
        store, FlecheConfig(cache_ratio=ratio, use_unified_index=False), hw
    )
    executor = Executor(hw)
    batches = list(trace)
    hits = misses = 0
    for batch in batches[:20]:
        layer.query(batch, executor)
    for batch in batches[20:]:
        result = layer.query(batch, executor)
        hits += result.hits
        misses += result.misses
    measured = hits / (hits + misses)
    print(f"Deployed at {ratio:.2%} of parameters "
          f"({layer.cache.capacity_slots:,} slots): "
          f"measured hit rate {measured:.1%} vs 95% plan — "
          f"{'on target' if measured >= 0.94 else 'below target'}.")


if __name__ == "__main__":
    main()
