"""Giant-model deployment: the three-tier hierarchy of paper §5.

When embedding parameters exceed local DRAM, the CPU-DRAM layer becomes a
cache over a remote parameter server.  Fleche's workflow runs unchanged on
top; the subtlety is the unified index, whose DRAM pointers go stale when
the DRAM tier evicts.  This example drives the full stack, shrinks the
DRAM tier, and shows the invalidation machinery doing its job.

Run:  python examples/giant_model.py
"""

from repro import (
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    default_platform,
    synthetic_dataset,
    uniform_tables_spec,
)
from repro.bench.reporting import format_table, format_time
from repro.multitier.hierarchy import TieredParameterStore


def main() -> None:
    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=8, corpus_size=40_000, alpha=-1.1, dim=32,
    )
    trace = synthetic_dataset(dataset, num_batches=20, batch_size=1024)

    rows = []
    for label, dram_share in (("ample DRAM (all fits)", 1.0),
                              ("tight DRAM (10%)", 0.10)):
        store = TieredParameterStore(
            dataset.table_specs(),
            hw,
            dram_capacity=max(64, int(dataset.total_sparse_ids * dram_share)),
        )
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.02), hw
        )
        executor = Executor(hw)
        batches = list(trace)
        for batch in batches[:12]:
            layer.query(batch, executor)
        executor.reset()
        for batch in batches[12:]:
            layer.query(batch, executor)
        stats = store.stats
        rows.append([
            label,
            format_time(executor.drain() / 8),
            f"{stats.dram_hit_rate:.1%}",
            f"{stats.remote_keys:,}",
            f"{stats.pointer_invalidations:,}",
        ])

    print(format_table(
        ["deployment", "latency/batch", "DRAM tier hit rate",
         "keys from remote PS", "stale pointers invalidated"],
        rows,
        title="Giant-model inference through GPU -> DRAM -> remote tiers",
    ))
    print()
    print("With a tight DRAM tier, evicted embeddings invalidate their")
    print("GPU-side unified-index pointers (the §5 corner case) — lookups")
    print("stay correct, and the extra traffic shows up as remote fetches.")


if __name__ == "__main__":
    main()
