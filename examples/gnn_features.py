"""GNN feature store scenario (paper §5's applicability claim).

Graph neural networks look up categorical features of nodes and edges —
many large embedding tables accessed with degree skew, just like a
recommender.  This example samples mini-batch neighbourhoods from a
power-law graph and serves the feature lookups through Fleche, then runs
the paper's NLP counter-example to show when a GPU cache is *not* needed.

Run:  python examples/gnn_features.py
"""

from repro import (
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    PerTableCacheLayer,
    PerTableConfig,
    default_platform,
)
from repro.bench.reporting import format_table, format_time
from repro.workloads.gnn import (
    gnn_feature_dataset,
    gnn_neighbourhood_trace,
    nlp_word_table_fits_hbm,
)


def main() -> None:
    hw = default_platform()
    spec = gnn_feature_dataset(num_nodes=200_000, degree_alpha=-1.6)
    trace = gnn_neighbourhood_trace(
        spec, num_batches=16, seeds_per_batch=256, fanout=8
    )
    store = EmbeddingStore(spec.table_specs(), hw)

    rows = []
    for name, layer in (
        ("HugeCTR (per-table)", PerTableCacheLayer(
            store, PerTableConfig(cache_ratio=0.05), hw)),
        ("Fleche", FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=0.05), hw)),
    ):
        executor = Executor(hw)
        batches = list(trace)
        for batch in batches[:8]:
            layer.query(batch, executor)
        executor.reset()
        hits = misses = 0
        for batch in batches[8:]:
            result = layer.query(batch, executor)
            hits += result.hits
            misses += result.misses
        rows.append([
            name,
            f"{hits / (hits + misses):.1%}",
            format_time(executor.drain() / 8),
        ])

    print(format_table(
        ["scheme", "feature hit rate", "lookup time/batch"],
        rows,
        title=(f"GNN neighbourhood sampling over {spec.fields[0].corpus_size:,} "
               f"nodes, {spec.num_tables} feature tables, 5% cache"),
    ))
    print()
    print("Hub nodes recur across mini-batches, so the elastic flat cache")
    print("pays off for GNN feature stores too — the paper's §5 conjecture.")
    print()
    if nlp_word_table_fits_hbm(hw):
        print("Counter-example: a BERT-scale word-embedding table (~94 MB)")
        print("fits whole in the T4's HBM — no cache hierarchy needed, which")
        print("is why the paper says Fleche does not apply to NLP models.")


if __name__ == "__main__":
    main()
