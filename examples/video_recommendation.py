"""Video-recommendation scenario: drifting hotspots and elastic caching.

Models the workload that motivates the flat cache (paper §2.2, Issue 1):
a feed service whose per-table hotspots *move over time* — trending videos
rise and fade, new users appear.  A static per-table cache keeps chasing
stale local hotspots; Fleche's shared backend rebalances elastically and
holds its hit rate through the drift.

Run:  python examples/video_recommendation.py
"""

import numpy as np

from repro import (
    DatasetSpec,
    EmbeddingStore,
    Executor,
    FieldSpec,
    FlecheConfig,
    FlecheEmbeddingLayer,
    PerTableCacheLayer,
    PerTableConfig,
    default_platform,
    synthetic_dataset,
)
from repro.bench.reporting import format_table

CACHE_RATIO = 0.05
PHASE_BATCHES = 16
BATCH_SIZE = 1024


def drifting_feed_dataset() -> DatasetSpec:
    """A feed model: users, videos, authors, topics, devices, ...

    High-drift fields (videos, authors: trending content) sit next to
    nearly static ones (device type, country).
    """
    fields = (
        FieldSpec(corpus_size=500_000, alpha=-1.1, drift=0.10),  # user id
        FieldSpec(corpus_size=300_000, alpha=-1.5, drift=0.20),  # video id
        FieldSpec(corpus_size=60_000, alpha=-1.4, drift=0.15),   # author id
        FieldSpec(corpus_size=5_000, alpha=-1.2, drift=0.02),    # topic
        FieldSpec(corpus_size=2_000, alpha=-1.3, drift=0.01),    # city
        FieldSpec(corpus_size=50, alpha=-1.0, drift=0.0),        # device
        FieldSpec(corpus_size=30_000, alpha=-1.6, drift=0.25),   # sound/meme
        FieldSpec(corpus_size=200, alpha=-0.9, drift=0.0),       # country
    )
    return DatasetSpec(
        name="video-feed", fields=fields, num_samples=10_000_000, dim=32,
        seed=77,
    )


def main() -> None:
    hw = default_platform()
    dataset = drifting_feed_dataset()
    # Three "hours" of traffic; hotspots drift every few batches.
    trace = synthetic_dataset(
        dataset, num_batches=3 * PHASE_BATCHES, batch_size=BATCH_SIZE,
        drift_every=4,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    schemes = {
        "HugeCTR (static split)": PerTableCacheLayer(
            store, PerTableConfig(CACHE_RATIO), hw
        ),
        "Fleche (flat cache)": FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=CACHE_RATIO), hw
        ),
    }

    rows = []
    per_phase = {name: [] for name in schemes}
    for name, layer in schemes.items():
        executor = Executor(hw)
        for phase in range(3):
            hits = misses = 0
            for batch in list(trace)[phase * PHASE_BATCHES:(phase + 1) * PHASE_BATCHES]:
                result = layer.query(batch, executor)
                hits += result.hits
                misses += result.misses
            per_phase[name].append(hits / (hits + misses))

    for name, phases in per_phase.items():
        rows.append([name] + [f"{p:.1%}" for p in phases])
    print(format_table(
        ["scheme", "hour 1 (cold)", "hour 2", "hour 3"],
        rows,
        title=(f"Hit rates under drifting hotspots "
               f"(cache {CACHE_RATIO:.0%}, {dataset.num_tables} tables)"),
    ))

    fleche_hit = per_phase["Fleche (flat cache)"][-1]
    hugectr_hit = per_phase["HugeCTR (static split)"][-1]
    print()
    print(f"After warm-up, the elastic flat cache sustains "
          f"{fleche_hit:.1%} vs the static split's {hugectr_hit:.1%} — "
          f"a {(fleche_hit - hugectr_hit) * 100:.1f}-point gap born purely "
          f"from cache *structure*, not size.")


if __name__ == "__main__":
    main()
