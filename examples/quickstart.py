"""Quickstart: cache a model's embedding tables with Fleche.

Builds a small synthetic recommendation workload, serves it through the
Fleche embedding layer on the simulated T4 platform, and prints hit rates
and simulated timing — the smallest end-to-end tour of the public API.

Run:  python examples/quickstart.py
"""

from repro import (
    EmbeddingStore,
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    default_platform,
    synthetic_dataset,
    uniform_tables_spec,
)
from repro.bench.reporting import format_time


def main() -> None:
    # 1. The platform: the paper's testbed (Xeon Gold 6252 + NVIDIA T4).
    hw = default_platform()

    # 2. A workload: 12 embedding tables of 50K IDs each, power-law accesses.
    dataset = uniform_tables_spec(
        num_tables=12, corpus_size=50_000, alpha=-1.2, dim=32
    )
    trace = synthetic_dataset(dataset, num_batches=24, batch_size=512)

    # 3. The CPU-DRAM layer holding all parameters, and the Fleche cache
    #    (5% of the parameters, all techniques enabled).
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)

    # 4. Serve the trace.  The first half warms the cache.
    executor = Executor(hw)
    batches = list(trace)
    for batch in batches[:12]:
        layer.query(batch, executor)
    executor.reset()

    hits = misses = 0
    for batch in batches[12:]:
        result = layer.query(batch, executor)
        hits += result.hits
        misses += result.misses

    elapsed = executor.drain()
    per_batch = elapsed / 12
    print("Fleche quickstart")
    print(f"  tables                : {dataset.num_tables}")
    print(f"  cache size            : 5% of {dataset.total_sparse_ids:,} IDs")
    print(f"  hit rate              : {hits / (hits + misses):.1%}")
    print(f"  simulated batch time  : {format_time(per_batch)}")
    print(f"  embedding throughput  : {512 / per_batch:,.0f} inferences/sec")
    print(f"  kernel launches/batch : "
          f"{executor.stats.counters['kernel_launches'] / 12:.1f}")
    print(f"  maintenance share     : "
          f"{executor.stats.maintenance_time / elapsed:.1%}")


if __name__ == "__main__":
    main()
