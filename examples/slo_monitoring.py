"""SLO monitoring scenario: windowed telemetry, scraping, and alerting.

Serves an open-loop Poisson stream through the pipelined server with a
windowed collector and the default burn-rate SLO catalogue attached,
injects a parameter-server shard outage halfway through, and shows

* the per-window series the collector captured (hit rate, p99, SLA),
* the alert lifecycle the outage triggered (time-to-detect /
  time-to-recover on the simulated clock),
* a live scrape of the embedded ``/metrics`` endpoint, validated with
  the bundled OpenMetrics parser.

The same data is reachable from the CLI:

    repro serve --requests 2000 --metrics-port 0 --emit
    repro obs render --metrics benchmarks/results/metrics.json

Run:  python examples/slo_monitoring.py
"""

import urllib.request

from repro import (
    EmbeddingStore,
    FlecheConfig,
    FlecheEmbeddingLayer,
    default_platform,
    uniform_tables_spec,
)
from repro.bench.reporting import format_table, format_time
from repro.faults import (
    DegradeConfig,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    ShardOutage,
)
from repro.multitier.hierarchy import TieredParameterStore
from repro.multitier.remote_ps import RemoteParameterServer
from repro.obs import (
    MetricsHttpServer,
    WindowedCollector,
    default_serving_slos,
    parse_openmetrics,
)
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelinedInferenceServer

SLA = 2.5e-3     # per-request latency budget
HORIZON = 0.06   # simulated seconds of traffic
WINDOW = 1e-3    # collector window


def main() -> None:
    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=4, corpus_size=4_000, alpha=-1.2, dim=16,
    )

    # A tiered store whose remote shards all go dark mid-run.
    outage_start = 0.4 * HORIZON
    outage_duration = 0.2 * HORIZON
    remote = RemoteParameterServer(
        dataset.table_specs(),
        injector=FaultInjector(FaultSchedule([
            ShardOutage(shard=s, start=outage_start, duration=outage_duration)
            for s in range(4)
        ]), seed=17),
        retry_policy=RetryPolicy.naive(timeout=1e-3),
    )
    store = TieredParameterStore(
        dataset.table_specs(), hw, dram_capacity=800, remote=remote,
        degrade=DegradeConfig(policy="stale"),
    )
    layer = FlecheEmbeddingLayer(store, FlecheConfig(cache_ratio=0.05), hw)

    # Collector + the standard SLO catalogue (latency 99%, degraded 99.5%).
    engine = default_serving_slos(SLA)
    collector = WindowedCollector(window=WINDOW, sla_budget=SLA, engine=engine)
    server = PipelinedInferenceServer(
        dataset, layer, hw, depth=2,
        policy=BatchingPolicy(max_batch_size=64, max_delay=5e-4),
        collector=collector,
    )
    requests = PoissonArrivals(dataset, 40_000.0, seed=5).generate_until(HORIZON)
    server.serve(requests)

    # --- The windowed series around the outage.
    rows = []
    for record in list(collector.windows)[::6]:
        rows.append([
            record.index,
            format_time(record.start),
            f"{record.value('hit_rate', float('nan')):.2f}",
            format_time(record.value('latency_p99_s')),
            f"{record.value('sla_attainment', 1.0):.1%}",
            int(record.value("degraded_requests")),
        ])
    print(format_table(
        ["window", "start", "hit rate", "p99", f"SLA@{SLA * 1e3:.1f}ms",
         "degraded"],
        rows,
        title=(f"Windowed series, every 6th of "
               f"{collector.closed_windows} windows "
               f"(outage at {format_time(outage_start)} for "
               f"{format_time(outage_duration)})"),
    ))

    # --- The alert lifecycle the outage produced.
    alert_rows = [[
        a.rule, a.state, format_time(a.fired_at),
        "-" if a.resolved_at is None else format_time(a.resolved_at),
        f"{a.peak_burn_rate:.0f}x",
    ] for a in engine.alerts]
    print()
    print(format_table(
        ["rule", "state", "fired", "resolved", "peak burn"],
        alert_rows, title="Burn-rate alerts",
    ))
    ttd = engine.time_to_detect(outage_start)
    ttr = engine.time_to_recover(outage_start + outage_duration)
    print(f"\ntime-to-detect  {format_time(ttd)} after the outage began"
          f"\ntime-to-recover {format_time(ttr)} after it ended")

    # --- Scrape the run like a monitoring system would.
    with MetricsHttpServer(server.obs, collector=collector,
                           engine=engine) as metrics:
        with urllib.request.urlopen(metrics.url("/metrics")) as response:
            text = response.read().decode("utf-8")
    families = parse_openmetrics(text)
    hits = families["cache_hits"]["samples"][0][2]
    print(f"\nscraped {len(families)} OpenMetrics families from "
          f"/metrics (cache_hits_total={hits:g})")


if __name__ == "__main__":
    main()
