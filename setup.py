"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) in
offline environments whose setuptools lacks PEP 660 support.
"""

from setuptools import setup

setup()
