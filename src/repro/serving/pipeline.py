"""Pipelined multi-stream serving: inter-batch overlap + miss coalescing.

Fleche's §3.3 decoupling overlaps work *inside* one batch (the copy
kernels run while the CPU queries DRAM).  This module applies the same
idea at batch scale: the engine's staged batch — ``index`` (encode/dedup
+ cache indexing), ``fetch`` (CPU-DRAM miss query + replacement),
``copy`` (restore/assemble) and ``dense`` (MLP) — is scheduled across up
to ``depth`` concurrently in-flight batches, so batch ``i+1``'s
cache-index and DRAM-miss stages overlap batch ``i``'s copy and MLP
stages, the way production parameter-server stacks pipeline hierarchical
fetches against compute (HugeCTR HPS, arXiv:2210.08804).

Two physical resources stay strictly serial across batches and bound the
overlap (modelled as :class:`~repro.gpusim.executor.SharedResource`
timelines):

* the **single host thread** that drives encoding, deduplication, hash
  probing, and the DRAM query — occupied for the full ``index`` and
  ``fetch`` stages;
* the **single PCIe link** — co-held through the ``fetch`` stage, whose
  miss payloads stream over the wire;
* the **GPU** — held by the ``copy`` and ``dense`` stages (their few
  sub-microsecond kernel-launch slices are assumed to interleave freely:
  the pipelined loop is event-driven, never blocking the host thread on a
  stream the way the sequential loop's synchronize does).

Cross-batch **in-flight miss coalescing** rides on the overlap window:
when consecutive in-flight batches miss the same flat key, only the first
(leading) batch issues the DRAM/remote fetch and inserts into the cache;
followers take the vectors from the :class:`InFlightMissTable` — the
thundering-herd suppression for hot new keys.  Entries retire when their
owning batch leaves the pipeline.

At ``depth=1`` the scheduler degenerates to the sequential loop exactly:
one batch in flight, stages back-to-back, an empty in-flight table — the
same operations in the same order as :class:`InferenceServer.serve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.cache_base import (
    STAGE_COPY,
    STAGE_DENSE,
    STAGE_FETCH,
    STAGE_INDEX,
)
from ..errors import ConfigError, WorkloadError
from ..gpusim.executor import Executor, SharedResource
from ..obs.registry import Observable
from .arrivals import Request
from .batcher import FormedBatch, form_batches
from .server import InferenceServer, ServingReport

#: Which serial resources each stage occupies for its whole duration.
STAGE_RESOURCES: Dict[str, tuple] = {
    STAGE_INDEX: ("host",),
    STAGE_FETCH: ("host", "pcie"),
    STAGE_COPY: ("gpu",),
    STAGE_DENSE: ("gpu",),
}

#: Resource set charged to stages a scheme invents beyond the canonical
#: four: host-driven by assumption (the conservative choice).
_DEFAULT_RESOURCES = ("host",)


# --------------------------------------------------------------------------
# In-flight miss coalescing
# --------------------------------------------------------------------------


@dataclass
class CoalescingStats:
    """Counters of the in-flight miss table."""

    #: Keys published by leading batches (fetched once, shareable).
    published_keys: int = 0
    #: Keys follower batches took from the table instead of re-fetching.
    coalesced_keys: int = 0
    #: Entries dropped when their owning batch left the pipeline.
    retired_keys: int = 0


class _Segment:
    """One publish call's keys, sorted, with sort-ordered vector rows."""

    __slots__ = ("owner", "keys", "rows", "degraded")

    def __init__(self, owner, keys, rows, degraded):
        self.owner = owner
        self.keys = keys
        self.rows = rows
        self.degraded = degraded


class InFlightMissTable(Observable):
    """Pending-fetch table shared by concurrently in-flight batches.

    The leading batch publishes ``flat key -> vector`` right after its
    DRAM/remote fetch returns; the entry lives until every batch that
    could have indexed before the leader's replacement kernels ran — any
    batch concurrently in flight with the leader — has completed.  (Later
    batches index after the insertion and simply hit the cache.)  A
    follower whose indexing ran before the leader's insertion — and
    therefore missed — matches the table in its fetch stage and shares
    the result: the fetch is issued exactly once, and so is the cache
    insertion.

    Hot path (vectorization contract: no per-key Python in steady
    state).  Entries live in per-publish *segments* — a sorted uint64
    key array plus the matching vector rows — so :meth:`match` is one
    ``np.searchsorted`` probe per live segment, :meth:`publish` is one
    argsort, and :meth:`retire` drops whole segments by owner tag.  A
    key is published at most once while in flight (misses are matched
    against the table before the leader fetches), so live segments hold
    disjoint key sets.
    """

    def __init__(self):
        #: Per-publish segments, in publish order (later segments win).
        self._segments: List[_Segment] = []
        self._size = 0
        self._owner = None
        self.stats = CoalescingStats()
        #: When on (a request tracer is attached), :meth:`match` also
        #: accumulates ``leader batch -> matched key count`` so traces
        #: can attribute a follower's coalesce-wait to the batch whose
        #: fetch it joined.  Off by default: zero hot-loop cost.
        self.track_sources = False
        self._match_owners: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    def set_owner(self, tag) -> None:
        """Tag subsequent :meth:`publish` calls with the executing batch."""
        self._owner = tag

    def match(self, flat_keys: np.ndarray, dim: int):  # hot-path: vectorized
        """Split a miss list against the in-flight table.

        Returns ``(mask, rows, degraded)``: which of ``flat_keys`` are
        already in flight, their vectors (``mask.sum() x dim``, in
        ``flat_keys`` order), and how many of those carried a degraded
        vector.
        """
        n = len(flat_keys)
        mask = np.zeros(n, dtype=bool)
        degraded = 0
        matched = 0
        if self._segments and n:
            keys = np.asarray(flat_keys).astype(np.uint64, copy=False)
            seg_of = np.zeros(n, dtype=np.intp)
            row_of = np.zeros(n, dtype=np.intp)
            for si, seg in enumerate(self._segments):  # lint: allow-loop (per live segment, bounded by pipeline depth)
                pos = np.searchsorted(seg.keys, keys)
                np.clip(pos, 0, seg.keys.size - 1, out=pos)
                hit = seg.keys[pos] == keys
                mask |= hit
                seg_of[hit] = si
                row_of[hit] = pos[hit]
            matched_idx = np.flatnonzero(mask)
            matched = int(matched_idx.size)
            shared_rows = np.empty((matched, dim), dtype=np.float32)
            if matched:
                seg_sel = seg_of[matched_idx]
                for si in np.unique(seg_sel):  # lint: allow-loop (per matched segment)
                    seg = self._segments[si]
                    where = seg_sel == si
                    shared_rows[where] = seg.rows[row_of[matched_idx[where]]]
                    taken = int(where.sum())
                    if seg.degraded:
                        degraded += taken
                    if self.track_sources:
                        self._match_owners[seg.owner] = (
                            self._match_owners.get(seg.owner, 0) + taken
                        )
        else:
            shared_rows = np.empty((0, dim), dtype=np.float32)
        self.stats.coalesced_keys += matched
        self.obs.inc("coalescer.coalesced", matched)
        return mask, shared_rows, degraded

    # hot-path: vectorized
    def publish(
        self, flat_keys: np.ndarray, vectors: np.ndarray, degraded: bool = False
    ) -> None:
        """Record a leading batch's freshly fetched keys."""
        count = len(flat_keys)
        if count:
            keys = np.asarray(flat_keys).astype(np.uint64, copy=False)
            order = np.argsort(keys, kind="stable")
            rows = np.ascontiguousarray(
                np.asarray(vectors, dtype=np.float32)[order]
            )
            self._segments.append(
                _Segment(self._owner, keys[order], rows, bool(degraded))
            )
            self._size += count
        self.stats.published_keys += count
        self.obs.inc("coalescer.published", count)

    def drain_match_sources(self) -> Dict[int, int]:
        """Take (and clear) the leader attribution since the last drain.

        The workflow drains once per batch query, after its per-group
        fetch loop, so the returned dict covers exactly that batch's
        coalesced misses.  Always ``{}`` while ``track_sources`` is off.
        """
        if not self._match_owners:
            return {}
        out = self._match_owners
        self._match_owners = {}
        return out

    def retire(self, owner) -> int:  # hot-path: vectorized
        """Drop every entry owned by ``owner`` (its batch completed)."""
        dead = 0
        if self._segments:
            kept = []
            for seg in self._segments:  # lint: allow-loop (per live segment)
                if seg.owner == owner:
                    dead += seg.keys.size
                else:
                    kept.append(seg)
            if dead:
                self._segments = kept
                self._size -= dead
        self.stats.retired_keys += dead
        self.obs.inc("coalescer.retired", dead)
        return dead


# --------------------------------------------------------------------------
# The pipelined server
# --------------------------------------------------------------------------


class _InFlightBatch:
    """Book-keeping of one batch moving through the stage pipeline."""

    __slots__ = (
        "index", "formed", "stages", "executor", "next_stage",
        "ready_at", "start", "stall", "degraded", "trace", "last_elapsed",
    )

    def __init__(self, index: int, formed: FormedBatch, stages, executor,
                 next_stage: str, ready_at: float, trace=None):
        self.index = index
        self.formed = formed
        self.stages = stages
        self.executor = executor
        self.next_stage = next_stage
        self.ready_at = ready_at
        #: Dispatch instant (actual start of the first stage).
        self.start: Optional[float] = None
        #: Accumulated time spent waiting on busy shared resources.  Stage
        #: ends are computed as ``start + (stall + executor elapsed)`` so
        #: an uncontended batch's finish is bit-for-bit the sequential
        #: loop's ``start + service_time`` (stall stays exactly 0.0).
        self.stall = 0.0
        self.degraded = False
        #: Request-tracing record (None unless a tracer is attached).
        self.trace = trace
        #: Executor elapsed after the previous stage — the trace's
        #: per-stage exec is the delta, telescoping exactly to elapsed.
        self.last_elapsed = 0.0


@dataclass
class PipelineRunInfo:
    """Introspection of the last pipelined run (resources + coalescing)."""

    #: per-resource (busy seconds, grants) over the run.
    resource_busy: Dict[str, tuple] = field(default_factory=dict)
    coalescing: Optional[CoalescingStats] = None
    depth: int = 1


class PipelinedInferenceServer(InferenceServer):
    """Serving loop executing up to ``depth`` batches concurrently.

    ``depth=1`` reproduces :class:`InferenceServer.serve` exactly (same
    operations, same order, same simulated instants).  ``coalesce``
    enables the cross-batch in-flight miss table (inert at depth 1, where
    no two batches are ever in flight together).
    """

    def __init__(self, *args, depth: int = 2, coalesce: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        if depth < 1:
            raise ConfigError("pipeline depth must be >= 1")
        self.depth = depth
        self.coalesce = coalesce
        self.last_run: Optional[PipelineRunInfo] = None

    # ------------------------------------------------------------------ serve

    def serve(self, requests: Sequence[Request]) -> ServingReport:
        if not requests:
            raise WorkloadError("no requests to serve")
        batches = form_batches(requests, self.policy)
        resources = {
            name: SharedResource(name) for name in ("host", "pcie", "gpu")
        }
        coalescer = InFlightMissTable() if self.coalesce else None
        obs = self.obs
        rt = self.reqtracer
        if coalescer is not None:
            coalescer.bind_observability(obs)
            coalescer.track_sources = rt is not None
        before = self._begin_run(requests)
        collector = self.collector
        if collector is not None:
            collector.begin_run(min(r.arrival_time for r in requests))

        n = len(batches)
        # Per-request arrival instants, batch-partition offsets: batches
        # partition ``requests`` contiguously in order, so per-batch
        # latency bookkeeping is an array slice, not a Python loop.
        arrival_arr = np.fromiter(
            (r.arrival_time for r in requests), dtype=np.float64,
            count=len(requests),
        )
        sizes_arr = np.fromiter(
            (b.size for b in batches), dtype=np.intp, count=n,
        )
        offsets = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(sizes_arr, out=offsets[1:])
        if rt is not None:
            rt.begin_run(
                np.fromiter(
                    (r.request_id for r in requests), dtype=np.int64,
                    count=len(requests),
                ),
                arrival_arr,
            )
        #: Latest occupied instant across every shared resource; the gap
        #: up to the next dispatch is a provably idle slot the refresher
        #: may fill.  Refresh work is hard-capped at the dispatch instant
        #: (the scheduler is idle-bounded here), so serving timing with a
        #: refresher differs from without only through cache *contents*.
        busy_until = 0.0
        finish_times = [0.0] * n
        probabilities: List[Optional[np.ndarray]] = [None] * n
        in_flight: List[_InFlightBatch] = []
        next_index = 0
        completed = [False] * n
        frontier = 0  # smallest batch index not yet completed
        unretired: List[int] = []  # owners whose table entries are live

        def admit() -> int:
            """Admit batches while the in-flight window has room."""
            nonlocal next_index
            admitted = 0
            while next_index < n and len(in_flight) < self.depth:
                i = next_index
                formed = batches[i]
                # Depth gate: batch i may not dispatch before batch
                # i-depth has fully finished (depth=1 == sequential).
                floor = finish_times[i - self.depth] if i >= self.depth else 0.0
                executor = Executor(self.hw)
                trace_rec = None
                if rt is not None:
                    trace_rec = rt.begin_batch(
                        i, int(offsets[i]), int(offsets[i + 1]),
                        formed.formed_at,
                    )
                stages = self.engine.run_batch_stages(
                    self._to_trace_batch(formed), executor,
                    coalescer=coalescer, trace=trace_rec,
                )
                first_stage = next(stages)  # announce only; no work yet
                in_flight.append(_InFlightBatch(
                    index=i, formed=formed, stages=stages, executor=executor,
                    next_stage=first_stage,
                    ready_at=max(formed.formed_at, floor),
                    trace=trace_rec,
                ))
                next_index += 1
                admitted += 1
            return admitted

        admit()
        while in_flight:
            # Pick the in-flight batch whose announced stage can start
            # earliest: event-driven dispatch over the shared resource
            # timelines.  At equal instants, host-driven stages execute
            # (in simulation order) before device stages: host code reads
            # cache state at its stage *start*, while a device stage's
            # mutations (the deferred replacement kernels) land at its
            # stage *end* — the reader must observe pre-mutation state.
            # Within a tier, the older batch goes first.
            chosen = None
            chosen_key = None
            chosen_start = 0.0
            for flight in in_flight:
                needs = STAGE_RESOURCES.get(
                    flight.next_stage, _DEFAULT_RESOURCES
                )
                candidate = flight.ready_at
                for name in needs:
                    candidate = resources[name].next_start(candidate)
                tier = 0 if "host" in needs else 1
                key = (candidate, tier, flight.index)
                if chosen is None or key < chosen_key:
                    chosen, chosen_key, chosen_start = flight, key, candidate

            if self.refresher is not None and chosen_start > busy_until:
                self.refresher.run_idle(busy_until, chosen_start)
                busy_until = chosen_start

            lane = f"lane{chosen.index % self.depth}"
            wait = 0.0
            if chosen.start is None:
                # First stage: the wait for a free host thread is absorbed
                # into the dispatch instant itself, not counted as stall.
                chosen.start = chosen_start
                if chosen.trace is not None:
                    chosen.trace.dispatched(chosen_start)
                if (
                    self.tracer is not None
                    and chosen_start > chosen.formed.formed_at
                ):
                    self._trace_span(
                        lane, chosen.index, "queue",
                        chosen.formed.formed_at, chosen_start,
                    )
            else:
                wait = chosen_start - chosen.ready_at
                chosen.stall += wait
            # Align fault windows with this batch's dispatch instant (the
            # same instant the sequential loop uses).
            self.engine.scheme.advance_clock(chosen.start)
            if coalescer is not None:
                coalescer.set_owner(chosen.index)
            degraded_before = obs.total("tier.degraded_keys")
            stage_name = chosen.next_stage
            needs = STAGE_RESOURCES.get(stage_name, _DEFAULT_RESOURCES)
            finished = False
            try:
                chosen.next_stage = chosen.stages.send(None)
            except StopIteration as stop:
                _, batch_probs = stop.value
                finished = True
            end = chosen.start + (chosen.stall + chosen.executor.elapsed())
            if chosen.trace is not None:
                elapsed = chosen.executor.elapsed()
                chosen.trace.stage(
                    stage_name, wait, elapsed - chosen.last_elapsed
                )
                chosen.last_elapsed = elapsed
            for name in needs:
                resources[name].occupy(chosen_start, end)
            busy_until = max(busy_until, end)
            chosen.ready_at = end
            self._trace_span(lane, chosen.index, stage_name, chosen_start, end)
            if obs.total("tier.degraded_keys") > degraded_before:
                chosen.degraded = True

            if finished:
                finish_times[chosen.index] = chosen.ready_at
                if chosen.trace is not None:
                    rt.finish_batch(chosen.trace, chosen.ready_at)
                probabilities[chosen.index] = batch_probs
                obs.inc("serving.batches")
                obs.inc("serving.batched_requests", chosen.formed.size)
                if chosen.degraded:
                    obs.inc("serving.degraded_requests", chosen.formed.size)
                if collector is not None:
                    # Completion instants are nondecreasing: the dense
                    # stage holds the serial GPU resource through each
                    # batch's finish, so this batch's counter delta folds
                    # into the window containing its completion.
                    lo, hi = offsets[chosen.index], offsets[chosen.index + 1]
                    collector.observe_batch(
                        chosen.ready_at,
                        (chosen.ready_at - arrival_arr[lo:hi]).tolist(),
                        first_request=int(lo),
                    )
                if self.autotuner is not None:
                    self.autotuner.on_batch_complete(chosen.ready_at)
                completed[chosen.index] = True
                while frontier < n and completed[frontier]:
                    frontier += 1
                if coalescer is not None:
                    # Owner i's entries may still be matched by any batch
                    # that indexed before i's replacement kernels ran —
                    # only batches in flight concurrently with i, i.e.
                    # j < i + depth.  Retire once all of those completed.
                    unretired.append(chosen.index)
                    still = []
                    for owner in unretired:
                        if owner + self.depth <= frontier:
                            coalescer.retire(owner)
                        else:
                            still.append(owner)
                    unretired = still
                in_flight.remove(chosen)
                admit()

        # End of run: no batch is in flight any more, so every remaining
        # in-flight-table entry is retireable — drain them so the table is
        # provably empty (``coalescer.retired == coalescer.published``).
        if coalescer is not None:
            for owner in unretired:
                coalescer.retire(owner)
            unretired = []
        if self.refresher is not None:
            # Close the books: staleness gauges reflect the run's end even
            # when the pipeline never left an idle slot.
            self.refresher.subscriber.refresh_gauges(max(finish_times))
        if collector is not None:
            collector.flush(max(finish_times))

        # Flatten per-request latencies in batch order (identical request
        # ordering to the sequential loop): repeat each batch's finish
        # over its contiguous request slice and subtract arrivals.
        finish_arr = np.asarray(finish_times, dtype=np.float64)
        latencies = np.repeat(finish_arr, sizes_arr) - arrival_arr
        if rt is not None and rt.finalize_on_serve:
            rt.finalize(obs)

        report = self._finalize_report(
            requests, latencies, arrival_arr, sizes_arr.tolist(),
            max(finish_times), before,
        )
        dense = [p for p in probabilities if p is not None]
        if dense:
            report.probabilities = np.concatenate(dense)
        self.last_run = PipelineRunInfo(
            resource_busy={
                name: (res.busy_time, res.grants)
                for name, res in resources.items()
            },
            coalescing=coalescer.stats if coalescer is not None else None,
            depth=self.depth,
        )
        return report
