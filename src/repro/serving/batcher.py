"""Dynamic batch formation.

The standard inference-server policy: accumulate requests until either the
maximum batch size is reached or the oldest queued request has waited the
batching timeout.  Bigger batches amortise per-batch overheads (exactly
the kernel-maintenance costs the paper studies) at the price of queueing
delay — the knob every serving stack tunes against its SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from .arrivals import Request


@dataclass(frozen=True)
class BatchingPolicy:
    """Max-size / max-delay batching."""

    max_batch_size: int = 256
    #: Longest a request may wait for companions before the batch closes.
    max_delay: float = 2e-3

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigError("max_batch_size must be positive")
        if self.max_delay < 0:
            raise ConfigError("max_delay must be >= 0")


@dataclass(frozen=True)
class FormedBatch:
    """One batch handed to the engine."""

    requests: tuple
    #: Instant the batch was sealed (dispatch cannot start earlier).
    formed_at: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival(self) -> float:
        return min(r.arrival_time for r in self.requests)


# hot-path: vectorized
def form_batches(
    requests: Sequence[Request], policy: BatchingPolicy
) -> List[FormedBatch]:
    """Group an arrival-ordered request stream into batches.

    A batch seals when it holds ``max_batch_size`` requests, or when the
    next arrival would make its oldest member exceed ``max_delay`` of
    waiting (the batch then seals at exactly ``oldest + max_delay``).
    """
    batches: List[FormedBatch] = []
    n = len(requests)
    if n == 0:
        return batches
    requests = list(requests)
    times = np.fromiter(
        (r.arrival_time for r in requests), dtype=np.float64, count=n
    )
    # One iteration per *batch*: a batch starting at ``start`` seals at
    # the earlier of (a) the request filling it to max size — sealed at
    # that request's arrival — or (b) the first later arrival strictly
    # past ``times[start] + max_delay`` — sealed at the deadline itself.
    # The stream is arrival-ordered, so (b) is a single searchsorted.
    if n > 1 and not bool((times[1:] >= times[:-1]).all()):
        return _form_batches_unsorted(requests, policy)
    start = 0
    while start < n:  # lint: allow-loop (per formed batch)
        deadline = times[start] + policy.max_delay
        stop = int(np.searchsorted(times, deadline, side="right"))
        if stop - start >= policy.max_batch_size:
            stop = start + policy.max_batch_size
            formed_at = float(times[stop - 1])
        else:
            formed_at = float(deadline)
        batches.append(FormedBatch(tuple(requests[start:stop]), formed_at))
        start = stop
    return batches


def _form_batches_unsorted(
    requests: Sequence[Request], policy: BatchingPolicy
) -> List[FormedBatch]:
    """Reference per-request scan, kept for out-of-order streams."""
    batches: List[FormedBatch] = []
    pending: List[Request] = []
    for request in requests:
        if pending:
            deadline = pending[0].arrival_time + policy.max_delay
            if request.arrival_time > deadline:
                batches.append(FormedBatch(tuple(pending), deadline))
                pending = []
        pending.append(request)
        if len(pending) >= policy.max_batch_size:
            batches.append(
                FormedBatch(tuple(pending), request.arrival_time)
            )
            pending = []
    if pending:
        batches.append(
            FormedBatch(
                tuple(pending), pending[0].arrival_time + policy.max_delay
            )
        )
    return batches
