"""Open-loop request arrival processes.

A :class:`Request` is one inference candidate batch of size 1: a user
context needing scores.  Arrival processes generate timestamped requests
whose sparse features follow the dataset's per-field distributions, so the
cache sees realistic locality under load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import WorkloadError
from ..workloads.spec import DatasetSpec
from ..workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_time: float
    #: per-table feature IDs (``ids_per_field`` each).
    feature_ids: tuple


class _FeatureSource:
    """Draws per-request sparse features from the dataset's fields."""

    def __init__(self, dataset: DatasetSpec, seed: int):
        self.dataset = dataset
        self._samplers = [
            ZipfSampler(f.corpus_size, f.alpha, seed=seed * 31 + i)
            for i, f in enumerate(dataset.fields)
        ]

    def draw(self) -> tuple:
        k = self.dataset.ids_per_field
        return tuple(s.sample(k) for s in self._samplers)


class PoissonArrivals:
    """Memoryless arrivals at a configured rate (requests/second)."""

    def __init__(self, dataset: DatasetSpec, rate: float, seed: int = 0):
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._features = _FeatureSource(dataset, seed)

    def generate(self, count: int) -> List[Request]:
        """The first ``count`` requests of the process."""
        if count <= 0:
            raise WorkloadError("count must be positive")
        gaps = self._rng.exponential(1.0 / self.rate, size=count)
        times = np.cumsum(gaps)
        return [
            Request(i, float(times[i]), self._features.draw())
            for i in range(count)
        ]

    def generate_until(
        self, horizon: float, max_count: int = 1_000_000
    ) -> List[Request]:
        """All requests arriving before ``horizon`` seconds.

        Unlike :meth:`generate`, the run's span is known up front, which
        lets fault schedules place outage windows covering an exact
        fraction of the run (``max_count`` is a runaway guard).
        """
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        requests: List[Request] = []
        now = 0.0
        while len(requests) < max_count:
            now += float(self._rng.exponential(1.0 / self.rate))
            if now >= horizon:
                break
            requests.append(
                Request(len(requests), now, self._features.draw())
            )
        if not requests:
            raise WorkloadError("horizon too short: no arrivals")
        return requests


class BurstyArrivals:
    """Markov-modulated arrivals: quiet/burst phases with distinct rates.

    Production feeds show diurnal spikes and hot events; the bursty source
    stresses the batcher's timeout behaviour and the P99 tail.
    """

    def __init__(
        self,
        dataset: DatasetSpec,
        base_rate: float,
        burst_rate: float,
        burst_fraction: float = 0.2,
        phase_length: float = 0.01,
        seed: int = 0,
    ):
        if base_rate <= 0 or burst_rate <= 0:
            raise WorkloadError("rates must be positive")
        if not 0.0 < burst_fraction < 1.0:
            raise WorkloadError("burst_fraction must be in (0, 1)")
        if phase_length <= 0:
            raise WorkloadError("phase_length must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.burst_fraction = burst_fraction
        self.phase_length = phase_length
        self._rng = np.random.default_rng(seed)
        self._features = _FeatureSource(dataset, seed)

    def generate(self, count: int) -> List[Request]:
        if count <= 0:
            raise WorkloadError("count must be positive")
        requests: List[Request] = []
        now = 0.0
        while len(requests) < count:
            bursting = self._rng.random() < self.burst_fraction
            rate = self.burst_rate if bursting else self.base_rate
            phase_end = now + self.phase_length
            while now < phase_end and len(requests) < count:
                now += float(self._rng.exponential(1.0 / rate))
                requests.append(
                    Request(len(requests), now, self._features.draw())
                )
            now = phase_end
        return requests
