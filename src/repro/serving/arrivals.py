"""Open-loop request arrival processes.

A :class:`Request` is one inference candidate batch of size 1: a user
context needing scores.  Arrival processes generate timestamped requests
whose sparse features follow the dataset's per-field distributions, so the
cache sees realistic locality under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import WorkloadError
from ..workloads.spec import DatasetSpec
from ..workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_time: float
    #: per-table feature IDs (``ids_per_field`` each).
    feature_ids: tuple
    #: optional fast-path handle ``(cube, row)``: the source stream's
    #: ``(count, tables, ids)`` id array plus this request's row in it.
    #: ``feature_ids`` are views into that row, so batch assembly can
    #: gather whole batches from the cube in one indexing op instead of
    #: re-stacking per-request tuples.  Purely an accelerator: identity,
    #: equality, and repr ignore it.
    source: tuple = field(default=None, compare=False, repr=False)


class _FeatureSource:
    """Draws per-request sparse features from the dataset's fields."""

    def __init__(self, dataset: DatasetSpec, seed: int):
        self.dataset = dataset
        self._samplers = [
            ZipfSampler(f.corpus_size, f.alpha, seed=seed * 31 + i)
            for i, f in enumerate(dataset.fields)
        ]

    def draw(self) -> tuple:
        k = self.dataset.ids_per_field
        return tuple(s.sample(k) for s in self._samplers)

    def draw_batch(self, count: int) -> tuple:
        """``(cube, feature tuples)`` for ``count`` requests in one pass.

        Each sampler draws ``count * k`` ids in a single vectorised call
        — bit-identical to ``count`` sequential ``k``-draws from the same
        generator.  The draws are stacked into one ``(count, tables, k)``
        cube; per-request tuples are row views into it, and the cube
        itself rides along on each :class:`Request` (via ``source``) so
        batch assembly can gather ids without per-request re-stacking.
        """
        k = self.dataset.ids_per_field
        cols = [s.sample(count * k).reshape(count, k) for s in self._samplers]
        cube = np.stack(cols, axis=1)
        return cube, [tuple(row) for row in cube]


class PoissonArrivals:
    """Memoryless arrivals at a configured rate (requests/second)."""

    def __init__(self, dataset: DatasetSpec, rate: float, seed: int = 0):
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._features = _FeatureSource(dataset, seed)

    def generate(self, count: int) -> List[Request]:
        """The first ``count`` requests of the process."""
        if count <= 0:
            raise WorkloadError("count must be positive")
        gaps = self._rng.exponential(1.0 / self.rate, size=count)
        times = np.cumsum(gaps).tolist()
        cube, features = self._features.draw_batch(count)
        return [
            Request(i, times[i], features[i], source=(cube, i))
            for i in range(count)
        ]

    def generate_until(
        self, horizon: float, max_count: int = 1_000_000
    ) -> List[Request]:
        """All requests arriving before ``horizon`` seconds.

        Unlike :meth:`generate`, the run's span is known up front, which
        lets fault schedules place outage windows covering an exact
        fraction of the run (``max_count`` is a runaway guard).
        """
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        # Gap draws stay sequential (the arrival count is unknown up
        # front and over-drawing would advance the RNG differently);
        # feature draws batch once the times are known.
        times: List[float] = []
        now = 0.0
        while len(times) < max_count:
            now += float(self._rng.exponential(1.0 / self.rate))
            if now >= horizon:
                break
            times.append(now)
        if not times:
            raise WorkloadError("horizon too short: no arrivals")
        cube, features = self._features.draw_batch(len(times))
        return [
            Request(i, times[i], features[i], source=(cube, i))
            for i in range(len(times))
        ]


class BurstyArrivals:
    """Markov-modulated arrivals: quiet/burst phases with distinct rates.

    Production feeds show diurnal spikes and hot events; the bursty source
    stresses the batcher's timeout behaviour and the P99 tail.
    """

    def __init__(
        self,
        dataset: DatasetSpec,
        base_rate: float,
        burst_rate: float,
        burst_fraction: float = 0.2,
        phase_length: float = 0.01,
        seed: int = 0,
    ):
        if base_rate <= 0 or burst_rate <= 0:
            raise WorkloadError("rates must be positive")
        if not 0.0 < burst_fraction < 1.0:
            raise WorkloadError("burst_fraction must be in (0, 1)")
        if phase_length <= 0:
            raise WorkloadError("phase_length must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.burst_fraction = burst_fraction
        self.phase_length = phase_length
        self._rng = np.random.default_rng(seed)
        self._features = _FeatureSource(dataset, seed)

    def generate(self, count: int) -> List[Request]:
        if count <= 0:
            raise WorkloadError("count must be positive")
        # Phase/gap draws stay sequential (phase boundaries depend on the
        # draws); feature draws batch once all times are known — the
        # feature samplers hold their own generators, so moving their
        # draws after the clock loop leaves every stream bit-identical.
        times: List[float] = []
        now = 0.0
        while len(times) < count:
            bursting = self._rng.random() < self.burst_fraction
            rate = self.burst_rate if bursting else self.base_rate
            phase_end = now + self.phase_length
            while now < phase_end and len(times) < count:
                now += float(self._rng.exponential(1.0 / rate))
                times.append(now)
            now = phase_end
        cube, features = self._features.draw_batch(count)
        return [
            Request(i, times[i], features[i], source=(cube, i))
            for i in range(count)
        ]
