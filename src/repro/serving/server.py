"""The serving queueing simulation.

Couples an arrival stream, a batching policy, a cache scheme, and the
simulated platform into one run: batches dispatch in order on the engine
(a single serving executor — one GPU), and each request's latency is

    queueing (until its batch seals)
  + head-of-line wait (until the engine is free)
  + batch service time (simulated embedding + dense compute).

The report carries the latency distribution and SLA attainment, making
"how much more traffic fits under the same SLA with Fleche?" — the
paper's framing of why embedding speed matters — directly answerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.cache_base import EmbeddingCacheScheme
from ..core.engine import InferenceEngine
from ..errors import WorkloadError
from ..gpusim.executor import Executor
from ..hardware import HardwareSpec
from ..model.dcn import DeepCrossNetwork
from ..workloads.spec import DatasetSpec
from ..workloads.trace import TraceBatch
from .arrivals import Request
from .batcher import BatchingPolicy, FormedBatch, form_batches


@dataclass
class ServingReport:
    """Outcome of one serving run."""

    latencies: np.ndarray
    batch_sizes: List[int] = field(default_factory=list)
    served: int = 0
    span: float = 0.0

    @property
    def throughput(self) -> float:
        return self.served / self.span if self.span > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q))

    @property
    def median_latency(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.percentile(99.0)

    def sla_attainment(self, budget: float) -> float:
        """Fraction of requests served within the latency ``budget``."""
        if budget <= 0:
            raise WorkloadError("SLA budget must be positive")
        return float((self.latencies <= budget).mean())


class InferenceServer:
    """Single-GPU serving loop over a cache scheme."""

    def __init__(
        self,
        dataset: DatasetSpec,
        scheme: EmbeddingCacheScheme,
        hw: HardwareSpec,
        policy: Optional[BatchingPolicy] = None,
        model: Optional[DeepCrossNetwork] = None,
        include_dense: bool = False,
    ):
        self.dataset = dataset
        self.scheme = scheme
        self.hw = hw
        self.policy = policy or BatchingPolicy()
        self.engine = InferenceEngine(
            scheme,
            hw,
            model=model,
            ids_per_field=dataset.ids_per_field,
            include_dense=include_dense and model is not None,
        )

    def _to_trace_batch(self, batch: FormedBatch) -> TraceBatch:
        ids_per_table = []
        for table in range(self.dataset.num_tables):
            ids_per_table.append(
                np.concatenate(
                    [r.feature_ids[table] for r in batch.requests]
                ).astype(np.uint64)
            )
        return TraceBatch(ids_per_table=ids_per_table,
                          batch_size=len(batch.requests))

    def serve(self, requests: Sequence[Request]) -> ServingReport:
        """Run the whole request stream; returns the latency report."""
        if not requests:
            raise WorkloadError("no requests to serve")
        batches = form_batches(requests, self.policy)
        executor = Executor(self.hw)
        gpu_free_at = 0.0
        latencies: List[float] = []
        sizes: List[int] = []
        for batch in batches:
            start = max(batch.formed_at, gpu_free_at)
            executor.reset()
            _, _, _, service_time = self.engine.run_batch(
                self._to_trace_batch(batch), executor
            )
            executor.drain()
            finish = start + service_time
            gpu_free_at = finish
            sizes.append(batch.size)
            for request in batch.requests:
                latencies.append(finish - request.arrival_time)
        arr = np.asarray(latencies)
        span = max(r.arrival_time for r in requests) - min(
            r.arrival_time for r in requests
        )
        return ServingReport(
            latencies=arr,
            batch_sizes=sizes,
            served=len(requests),
            span=max(span, 1e-12),
        )
