"""The serving queueing simulation.

Couples an arrival stream, a batching policy, a cache scheme, and the
simulated platform into one run: batches dispatch in order on the engine
(a single serving executor — one GPU), and each request's latency is

    queueing (until its batch seals)
  + head-of-line wait (until the engine is free)
  + batch service time (simulated embedding + dense compute).

The report carries the latency distribution and SLA attainment, making
"how much more traffic fits under the same SLA with Fleche?" — the
paper's framing of why embedding speed matters — directly answerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.cache_base import EmbeddingCacheScheme
from ..core.engine import InferenceEngine
from ..errors import WorkloadError
from ..gpusim.executor import Executor
from ..hardware import HardwareSpec
from ..model.dcn import DeepCrossNetwork
from ..workloads.spec import DatasetSpec
from ..workloads.trace import TraceBatch
from .arrivals import Request
from .batcher import BatchingPolicy, FormedBatch, form_batches


@dataclass
class ServingReport:
    """Outcome of one serving run.

    The resilience fields stay zero / empty on fault-free runs; they are
    populated when the scheme's backing store is fault-aware (a
    :class:`~repro.multitier.hierarchy.TieredParameterStore` with a
    fault injector installed).
    """

    latencies: np.ndarray
    batch_sizes: List[int] = field(default_factory=list)
    served: int = 0
    #: Makespan of the run: first request arrival -> last batch finish
    #: (so throughput accounts for the tail batches draining).
    span: float = 0.0
    #: Cache hits / misses / unified-index hits over deduplicated keys,
    #: summed across all served batches.
    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    #: Missed keys served from another in-flight batch's pending fetch
    #: (pipelined serving only; 0 on the sequential path).
    coalesced_keys: int = 0
    #: Click probabilities concatenated in request order (dense runs only).
    probabilities: Optional[np.ndarray] = None
    #: Requests whose batch served at least one degraded (stale/default)
    #: embedding because the remote tier missed its retry budget.
    degraded_requests: int = 0
    #: Remote-fetch retries beyond each first attempt.
    retries: int = 0
    #: Hedged second requests fired after the hedge delay.
    hedges_fired: int = 0
    #: Total simulated time per-shard circuit breakers spent open.
    breaker_open_time: float = 0.0
    #: Merged ``(start, end)`` fault windows of the installed schedule.
    fault_windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Per-request arrival times, aligned with ``latencies``.
    arrival_times: Optional[np.ndarray] = None

    @property
    def throughput(self) -> float:
        return self.served / self.span if self.span > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile; ``nan`` on an empty (zero-request) window."""
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    @property
    def median_latency(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.percentile(99.0)

    def sla_attainment(self, budget: float, window: str = "all") -> float:
        """Fraction of requests served within the latency ``budget``.

        ``window`` restricts the population: ``"all"`` (default),
        ``"healthy"`` — requests arriving outside every fault window —
        or ``"faulty"`` — requests arriving inside one.  An empty
        population yields ``nan``.
        """
        if budget <= 0:
            raise WorkloadError("SLA budget must be positive")
        ok = self.latencies <= budget
        if window == "all":
            return float(ok.mean())
        if window not in ("healthy", "faulty"):
            raise WorkloadError(
                "window must be 'all', 'healthy', or 'faulty'"
            )
        if self.arrival_times is None:
            raise WorkloadError(
                "windowed SLA needs per-request arrival times"
            )
        in_fault = np.zeros(len(self.latencies), dtype=bool)
        for start, end in self.fault_windows:
            in_fault |= (self.arrival_times >= start) & (
                self.arrival_times < end
            )
        mask = in_fault if window == "faulty" else ~in_fault
        return float(ok[mask].mean()) if mask.any() else float("nan")


class InferenceServer:
    """Single-GPU serving loop over a cache scheme."""

    def __init__(
        self,
        dataset: DatasetSpec,
        scheme: EmbeddingCacheScheme,
        hw: HardwareSpec,
        policy: Optional[BatchingPolicy] = None,
        model: Optional[DeepCrossNetwork] = None,
        include_dense: bool = False,
    ):
        self.dataset = dataset
        self.scheme = scheme
        self.hw = hw
        self.policy = policy or BatchingPolicy()
        self.engine = InferenceEngine(
            scheme,
            hw,
            model=model,
            ids_per_field=dataset.ids_per_field,
            include_dense=include_dense and model is not None,
        )

    def _to_trace_batch(self, batch: FormedBatch) -> TraceBatch:
        ids_per_table = []
        for table in range(self.dataset.num_tables):
            ids_per_table.append(
                np.concatenate(
                    [r.feature_ids[table] for r in batch.requests]
                ).astype(np.uint64)
            )
        return TraceBatch(ids_per_table=ids_per_table,
                          batch_size=len(batch.requests))

    @property
    def _fault_store(self):
        """The scheme's backing store when it is fault-aware, else None."""
        store = getattr(self.scheme, "store", None)
        if store is not None and hasattr(store, "fault_stats"):
            return store
        return None

    def _finalize_report(
        self,
        requests: Sequence[Request],
        latencies: List[float],
        arrivals: List[float],
        sizes: List[int],
        last_finish: float,
        degraded_requests: int,
        stats_before: Optional[dict],
    ) -> ServingReport:
        """Assemble the report shared by the sequential and pipelined loops."""
        span = last_finish - min(r.arrival_time for r in requests)
        report = ServingReport(
            latencies=np.asarray(latencies),
            batch_sizes=sizes,
            served=len(requests),
            span=max(span, 1e-12),
            arrival_times=np.asarray(arrivals),
        )
        store = self._fault_store
        if store is not None:
            stats_after = store.fault_stats()
            report.degraded_requests = degraded_requests
            report.retries = stats_after["retries"] - stats_before["retries"]
            report.hedges_fired = (
                stats_after["hedges_fired"] - stats_before["hedges_fired"]
            )
            report.breaker_open_time = (
                stats_after["breaker_open_time"]
                - stats_before["breaker_open_time"]
            )
            report.fault_windows = store.fault_windows()
        return report

    @staticmethod
    def _record_query(report: ServingReport, query) -> None:
        """Accumulate one batch's cache statistics into the report."""
        report.hits += query.hits
        report.misses += query.misses
        report.unified_hits += query.unified_hits
        report.coalesced_keys += query.coalesced_keys

    def serve(self, requests: Sequence[Request]) -> ServingReport:
        """Run the whole request stream; returns the latency report."""
        if not requests:
            raise WorkloadError("no requests to serve")
        batches = form_batches(requests, self.policy)
        executor = Executor(self.hw)
        gpu_free_at = 0.0
        latencies: List[float] = []
        arrivals: List[float] = []
        sizes: List[int] = []
        store = self._fault_store
        stats_before = store.fault_stats() if store is not None else None
        degraded_requests = 0
        queries = []
        probabilities: List[np.ndarray] = []
        for batch in batches:
            start = max(batch.formed_at, gpu_free_at)
            degraded_before = (
                store.stats.degraded_keys if store is not None else 0
            )
            executor.reset()
            query, batch_probs, _, service_time = self.engine.run_batch(
                self._to_trace_batch(batch), executor, now=start
            )
            executor.drain()
            finish = start + service_time
            gpu_free_at = finish
            sizes.append(batch.size)
            queries.append(query)
            if batch_probs is not None:
                probabilities.append(batch_probs)
            if store is not None and (
                store.stats.degraded_keys > degraded_before
            ):
                degraded_requests += batch.size
            for request in batch.requests:
                latencies.append(finish - request.arrival_time)
                arrivals.append(request.arrival_time)
        report = self._finalize_report(
            requests, latencies, arrivals, sizes, gpu_free_at,
            degraded_requests, stats_before,
        )
        for query in queries:
            self._record_query(report, query)
        if probabilities:
            report.probabilities = np.concatenate(probabilities)
        return report
