"""The serving queueing simulation.

Couples an arrival stream, a batching policy, a cache scheme, and the
simulated platform into one run: batches dispatch in order on the engine
(a single serving executor — one GPU), and each request's latency is

    queueing (until its batch seals)
  + head-of-line wait (until the engine is free)
  + batch service time (simulated embedding + dense compute).

The report carries the latency distribution and SLA attainment, making
"how much more traffic fits under the same SLA with Fleche?" — the
paper's framing of why embedding speed matters — directly answerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cache_base import EmbeddingCacheScheme
from ..core.engine import InferenceEngine
from ..errors import WorkloadError
from ..gpusim.executor import Executor
from ..hardware import HardwareSpec
from ..model.dcn import DeepCrossNetwork
from ..obs.registry import MetricsRegistry, MetricsSnapshot
from ..obs.spans import SpanTracer
from ..obs.timeseries import DEFAULT_LATENCY_BUCKETS, WindowedCollector
from ..workloads.spec import DatasetSpec
from ..workloads.trace import TraceBatch
from .arrivals import Request
from .batcher import BatchingPolicy, FormedBatch, form_batches


@dataclass
class ServingReport:
    """Outcome of one serving run.

    Every counter-valued field is derived from the engine's metrics
    registry: the serving loop snapshots the registry at run entry and
    diffs at run exit, so the report, the benchmarks and the tests all
    read the same audited numbers (the raw delta is kept in ``metrics``).
    The resilience fields stay zero / empty on fault-free runs; they are
    populated when the scheme's backing store is fault-aware (a
    :class:`~repro.multitier.hierarchy.TieredParameterStore` with a
    fault injector installed).
    """

    latencies: np.ndarray
    batch_sizes: List[int] = field(default_factory=list)
    served: int = 0
    #: Makespan of the run: first request arrival -> last batch finish
    #: (so throughput accounts for the tail batches draining).
    span: float = 0.0
    #: Cache hits / misses / unified-index hits over deduplicated keys,
    #: summed across all served batches.
    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    #: Missed keys served from another in-flight batch's pending fetch
    #: (pipelined serving only; 0 on the sequential path).
    coalesced_keys: int = 0
    #: Click probabilities concatenated in request order (dense runs only).
    probabilities: Optional[np.ndarray] = None
    #: Requests whose batch served at least one degraded (stale/default)
    #: embedding because the remote tier missed its retry budget.
    degraded_requests: int = 0
    #: Remote-fetch retries beyond each first attempt.
    retries: int = 0
    #: Hedged second requests fired after the hedge delay.
    hedges_fired: int = 0
    #: Total simulated time per-shard circuit breakers spent open.
    breaker_open_time: float = 0.0
    #: Merged ``(start, end)`` fault windows of the installed schedule.
    fault_windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Per-request arrival times, aligned with ``latencies``.
    arrival_times: Optional[np.ndarray] = None
    #: Request-tracing summary (zero / empty unless a
    #: :class:`~repro.obs.reqtrace.RequestTracer` is attached): requests
    #: covered by trace recording, traces actually materialized under the
    #: sampling policy, and the SLA-miss root-cause breakdown
    #: (``cause -> violating request count``).
    traced_requests: int = 0
    sampled_traces: int = 0
    rootcause: Dict[str, int] = field(default_factory=dict)
    #: Registry delta covering exactly this run (counters, gauges,
    #: histograms) — the source the scalar fields above are read from.
    metrics: Optional[MetricsSnapshot] = None

    @property
    def throughput(self) -> float:
        return self.served / self.span if self.span > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile; ``nan`` on an empty (zero-request) window."""
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    @property
    def median_latency(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.percentile(99.0)

    def sla_attainment(self, budget: float, window: str = "all") -> float:
        """Fraction of requests served within the latency ``budget``.

        ``window`` restricts the population: ``"all"`` (default),
        ``"healthy"`` — requests arriving outside every fault window —
        or ``"faulty"`` — requests arriving inside one.  An empty
        population yields ``nan``.
        """
        if budget <= 0:
            raise WorkloadError("SLA budget must be positive")
        ok = self.latencies <= budget
        if window == "all":
            return float(ok.mean())
        if window not in ("healthy", "faulty"):
            raise WorkloadError(
                "window must be 'all', 'healthy', or 'faulty'"
            )
        if self.arrival_times is None:
            raise WorkloadError(
                "windowed SLA needs per-request arrival times"
            )
        in_fault = np.zeros(len(self.latencies), dtype=bool)
        for start, end in self.fault_windows:
            in_fault |= (self.arrival_times >= start) & (
                self.arrival_times < end
            )
        mask = in_fault if window == "faulty" else ~in_fault
        return float(ok[mask].mean()) if mask.any() else float("nan")


class InferenceServer:
    """Single-GPU serving loop over a cache scheme."""

    def __init__(
        self,
        dataset: DatasetSpec,
        scheme: EmbeddingCacheScheme,
        hw: HardwareSpec,
        policy: Optional[BatchingPolicy] = None,
        model: Optional[DeepCrossNetwork] = None,
        include_dense: bool = False,
        tracer: Optional[SpanTracer] = None,
        collector: Optional[WindowedCollector] = None,
        refresher=None,
        reqtracer=None,
        autotuner=None,
    ):
        self.dataset = dataset
        self.scheme = scheme
        self.hw = hw
        self.policy = policy or BatchingPolicy()
        #: optional :class:`~repro.refresh.scheduler.RefreshScheduler`;
        #: when set, model-update quanta run in the gaps between batches
        #: (idle-bounded unless the scheduler is aggressive, in which
        #: case an overrunning quantum delays the next batch — the
        #: sequential loop makes that SLA cost measurable).
        self.refresher = refresher
        #: optional serving-level span tracer (one span per batch stage on
        #: the absolute simulated clock; exports Chrome trace JSON).
        self.tracer = tracer
        #: optional :class:`~repro.obs.reqtrace.RequestTracer` — per-request
        #: distributed tracing with bounded-overhead sampling.  ``None``
        #: (the default) leaves every serving code path byte-identical to
        #: an untraced run: no ``reqtrace.*`` counter is ever incremented.
        self.reqtracer = reqtracer
        self.engine = InferenceEngine(
            scheme,
            hw,
            model=model,
            ids_per_field=dataset.ids_per_field,
            include_dense=include_dense and model is not None,
        )
        self.engine.obs.declare_buckets(
            "serving.latency", DEFAULT_LATENCY_BUCKETS
        )
        #: optional windowed time-series collector, fed at each batch's
        #: completion instant on the simulated clock by both serving loops.
        self.collector = collector
        if collector is not None:
            collector.bind(self.engine.obs)
        #: optional :class:`~repro.autotune.AdaptiveController` — the
        #: closed-loop retuner, fed after every batch completion.  ``None``
        #: (or a disabled controller) leaves every serving code path
        #: byte-identical to an untuned run: no cache knob is touched and
        #: no ``autotune.*`` metric is ever created.
        self.autotuner = autotuner
        if autotuner is not None:
            autotuner.attach(self)

    @property
    def obs(self) -> MetricsRegistry:
        """The engine's metrics registry (single source of truth)."""
        return self.engine.obs

    def _to_trace_batch(self, batch: FormedBatch) -> TraceBatch:
        # Hot path: when every table draws the same number of ids per
        # request (the common workload shape), one C-level stack builds a
        # (requests, tables, ids) cube and each table's id column is a
        # single reshape — no per-request concatenate loop.
        requests = batch.requests
        # Fastest path: every request carries a (cube, row) source handle
        # into one shared id cube — the whole batch is a single gather.
        src = getattr(requests[0], "source", None)
        if src is not None:
            cube = src[0]
            rows = np.empty(len(requests), dtype=np.intp)
            for i, r in enumerate(requests):
                s = r.source
                if s is None or s[0] is not cube:
                    rows = None
                    break
                rows[i] = s[1]
            if rows is not None and cube.ndim == 3:
                stacked = cube[rows]
                ids_per_table = [
                    stacked[:, table, :].reshape(-1)
                    for table in range(self.dataset.num_tables)
                ]
                return TraceBatch(ids_per_table=ids_per_table,
                                  batch_size=len(requests))
        try:
            stacked = np.asarray(
                [r.feature_ids for r in requests], dtype=np.uint64
            )
        except ValueError:
            stacked = None
        if stacked is not None and stacked.ndim == 3:
            ids_per_table = [
                stacked[:, table, :].reshape(-1)
                for table in range(self.dataset.num_tables)
            ]
        else:  # ragged per-table id counts: exact per-table fallback
            ids_per_table = [
                np.concatenate(
                    [r.feature_ids[table] for r in requests]
                ).astype(np.uint64)
                for table in range(self.dataset.num_tables)
            ]
        return TraceBatch(ids_per_table=ids_per_table,
                          batch_size=len(requests))

    @property
    def _fault_store(self):
        """The scheme's backing store when it is fault-aware, else None."""
        store = getattr(self.scheme, "store", None)
        if store is not None and hasattr(store, "fault_stats"):
            return store
        return None

    def _begin_run(self, requests: Sequence[Request]) -> MetricsSnapshot:
        """Audit barrier at run entry; returns the pre-run snapshot.

        The audit runs every registered hook (refreshing occupancy and
        breaker gauges) and every conservation law, so a report is only
        ever diffed between two verified registry states.
        """
        obs = self.obs
        obs.check()
        before = obs.snapshot()
        obs.inc("serving.requests", len(requests))
        return before

    def _finalize_report(
        self,
        requests: Sequence[Request],
        latencies: Sequence[float],
        arrivals: Sequence[float],
        sizes: List[int],
        last_finish: float,
        before: MetricsSnapshot,
    ) -> ServingReport:
        """Assemble the report shared by the sequential and pipelined loops.

        Every counter-valued field is read from the registry delta across
        the run — there is no independently-maintained accounting left in
        the serving layer.
        """
        obs = self.obs
        obs.observe_many("serving.latency", latencies)
        obs.check()
        delta = obs.snapshot().diff(before)
        span = last_finish - min(r.arrival_time for r in requests)
        report = ServingReport(
            latencies=np.asarray(latencies),
            batch_sizes=sizes,
            served=int(delta.total("serving.requests")),
            span=max(span, 1e-12),
            arrival_times=np.asarray(arrivals),
            hits=int(delta.total("cache.hits")),
            misses=int(delta.total("cache.misses")),
            unified_hits=int(delta.total("cache.unified_hits")),
            coalesced_keys=int(delta.total("cache.coalesced_keys")),
            degraded_requests=int(delta.total("serving.degraded_requests")),
            retries=int(delta.total("faults.retries")),
            hedges_fired=int(delta.total("faults.hedges_fired")),
            breaker_open_time=float(delta.total("faults.breaker_open_time")),
            traced_requests=int(delta.total("reqtrace.requests")),
            sampled_traces=int(delta.total("reqtrace.sampled")),
            metrics=delta,
        )
        for (name, labels), value in delta.counters.items():
            if name == "reqtrace.rootcause" and value:
                report.rootcause[dict(labels).get("cause", "")] = int(value)
        store = self._fault_store
        if store is not None:
            report.fault_windows = store.fault_windows()
        return report

    def _trace_span(
        self, track: str, batch_index: int, stage: str, t0: float, t1: float
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(track, f"b{batch_index}:{stage}", t0, t1, stage)

    def _run_traced_batch(
        self,
        batch_index: int,
        trace_batch: TraceBatch,
        executor: Executor,
        start: float,
        track: str = "serving",
        trace=None,
    ):
        """Run one batch stage-by-stage, recording one span per stage.

        Timing-identical to :meth:`InferenceEngine.run_batch` — the stages
        are driven back-to-back with no scheduling in between; the tracer
        only observes executor clock values at the stage boundaries.
        ``trace`` (a :class:`~repro.obs.reqtrace.BatchTraceRecord`) gets
        the same stage boundaries as zero-wait stage entries — on the
        sequential loop every stage starts the instant its predecessor
        ends.  Returns ``(query, probabilities, service_time)``.
        """
        stages = self.engine.run_batch_stages(
            trace_batch, executor, now=start, trace=trace
        )
        stage = next(stages)
        prev = executor.elapsed()
        while True:
            try:
                next_stage = stages.send(None)
            except StopIteration as stop:
                end = executor.elapsed()
                self._trace_span(track, batch_index, stage, start + prev,
                                 start + end)
                if trace is not None:
                    trace.stage(stage, 0.0, end - prev)
                query, probabilities = stop.value
                return query, probabilities, end
            end = executor.elapsed()
            self._trace_span(track, batch_index, stage, start + prev,
                             start + end)
            if trace is not None:
                trace.stage(stage, 0.0, end - prev)
            stage, prev = next_stage, end

    def serve(self, requests: Sequence[Request]) -> ServingReport:
        """Run the whole request stream; returns the latency report."""
        if not requests:
            raise WorkloadError("no requests to serve")
        batches = form_batches(requests, self.policy)
        executor = Executor(self.hw)
        obs = self.obs
        rt = self.reqtracer
        before = self._begin_run(requests)
        collector = self.collector
        if collector is not None:
            collector.begin_run(min(r.arrival_time for r in requests))
        gpu_free_at = 0.0
        # Batches partition ``requests`` contiguously in order, so each
        # batch's latency bookkeeping is one array slice (no per-request
        # Python loop on the hot path).
        arrival_arr = np.fromiter(
            (r.arrival_time for r in requests), dtype=np.float64,
            count=len(requests),
        )
        offsets = np.zeros(len(batches) + 1, dtype=np.intp)
        np.cumsum(
            np.fromiter((b.size for b in batches), dtype=np.intp,
                        count=len(batches)),
            out=offsets[1:],
        )
        if rt is not None:
            rt.begin_run(
                np.fromiter(
                    (r.request_id for r in requests), dtype=np.int64,
                    count=len(requests),
                ),
                arrival_arr,
            )
        latencies: List[np.ndarray] = []
        sizes: List[int] = []
        probabilities: List[np.ndarray] = []
        for i, batch in enumerate(batches):
            dispatch_at = max(batch.formed_at, gpu_free_at)
            start = dispatch_at
            if self.refresher is not None:
                busy_until = self.refresher.run_idle(gpu_free_at, start)
                start = max(start, busy_until)
            bt = None
            if rt is not None:
                bt = rt.begin_batch(
                    i, int(offsets[i]), int(offsets[i + 1]), batch.formed_at
                )
                bt.dispatched(dispatch_at)
                if start > dispatch_at:
                    # The refresher's overrunning quantum delayed this
                    # batch — the trace's only source of refresh charge.
                    bt.refresh_wait(start - dispatch_at)
            degraded_before = obs.total("tier.degraded_keys")
            executor.reset()
            _, batch_probs, service_time = self._run_traced_batch(
                i, self._to_trace_batch(batch), executor, start, trace=bt
            )
            executor.drain()
            finish = start + service_time
            if bt is not None:
                rt.finish_batch(bt, finish)
            gpu_free_at = finish
            sizes.append(batch.size)
            obs.inc("serving.batches")
            obs.inc("serving.batched_requests", batch.size)
            if batch_probs is not None:
                probabilities.append(batch_probs)
            if obs.total("tier.degraded_keys") > degraded_before:
                obs.inc("serving.degraded_requests", batch.size)
            batch_latencies = finish - arrival_arr[offsets[i]:offsets[i + 1]]
            latencies.append(batch_latencies)
            if collector is not None:
                collector.observe_batch(
                    finish, batch_latencies.tolist(),
                    first_request=int(offsets[i]),
                )
            if self.autotuner is not None:
                self.autotuner.on_batch_complete(finish)
        if collector is not None:
            collector.flush(gpu_free_at)
        if rt is not None and rt.finalize_on_serve:
            rt.finalize(obs)
        report = self._finalize_report(
            requests, np.concatenate(latencies), arrival_arr, sizes,
            gpu_free_at, before,
        )
        if probabilities:
            report.probabilities = np.concatenate(probabilities)
        return report
