"""Inference serving layer: open-loop load over the simulated engine.

The paper frames its goal in SLA terms (§1): at a fixed latency budget, a
faster embedding layer lets the service examine more candidate items.
This package closes that loop:

* :mod:`repro.serving.arrivals` — open-loop request generators (Poisson
  and bursty) over a dataset's sparse-feature distribution;
* :mod:`repro.serving.batcher` — dynamic batch formation with a max batch
  size and a batching timeout, the standard inference-server policy;
* :mod:`repro.serving.server` — the queueing simulation: requests arrive,
  batches form, the engine serves them on the simulated platform, and
  per-request latencies (queueing + batching + compute) come out, so
  SLA-attainment curves under offered load can be measured for any cache
  scheme;
* :mod:`repro.serving.pipeline` — the pipelined serving engine: up to
  ``depth`` batches in flight on separate simulated streams, stages
  overlapped across batches with the host thread and PCIe link serialized,
  plus cross-batch in-flight miss coalescing.
"""

from .arrivals import PoissonArrivals, BurstyArrivals, Request
from .batcher import BatchingPolicy, FormedBatch
from .pipeline import (
    CoalescingStats,
    InFlightMissTable,
    PipelinedInferenceServer,
)
from .server import InferenceServer, ServingReport

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "Request",
    "BatchingPolicy",
    "FormedBatch",
    "InferenceServer",
    "ServingReport",
    "PipelinedInferenceServer",
    "InFlightMissTable",
    "CoalescingStats",
]
