"""The flat cache (FC) data structure (paper §3.1, Figure 5).

FC is organised as key-value separation: a slab memory pool stores all
embeddings (one slab class per embedding dimension), and one GPU-resident
slab-hash index maps *flat keys* to tagged pointers — either a memory-pool
location (LSB 0) or, when the unified index is enabled, a CPU-DRAM pointer
(LSB 1).  Each index slot carries a timestamp implementing approximate LRU
and doubling as a version for conflict detection.

Because all tables share the one backend, cache shares per table expand and
contract elastically with the workload's global hotspot — the property that
closes HugeCTR's hit-rate gap (Figure 12).

This module is the pure data structure: every method returns the probe
statistics and byte counts the *workflow* layer converts into simulated
time, so the structure itself stays unit-testable without an executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..coding.size_aware import SizeAwareCodec
from ..coding.layout import FlatKeyCodec
from ..errors import ConfigError
from ..hashindex.slab_hash import ProbeStats, SlabHashIndex
from ..mempool.epoch import EpochReclaimer
from ..mempool.slab_pool import SlabMemoryPool
from ..obs.registry import Observable
from ..tables.table_spec import TableSpec
from .admission import AdmissionFilter, FrequencyEstimator
from .config import FlecheConfig
from .precision import (
    TIER_CODES,
    TIERS,
    make_eviction_policy,
    slot_payload_bytes,
)
from .unified_index import (
    is_dram_pointer,
    tag_cache_location,
    tag_dram_pointer,
    untag,
)


@dataclass
class IndexOutcome:
    """Result of the indexing phase over one deduplicated key batch."""

    #: Mask over the batch: present in the index with a cache location.
    cache_hit: np.ndarray
    #: Mask over the batch: present in the index with a DRAM pointer.
    dram_hit: np.ndarray
    #: Raw (untagged) pool locations; valid where ``cache_hit``.
    locations: np.ndarray
    #: Device probe statistics of the indexing kernel.
    stats: ProbeStats

    @property
    def miss(self) -> np.ndarray:
        """Mask of keys with no usable cached embedding (DRAM hits miss too —
        the unified index only short-circuits host *indexing*)."""
        return ~self.cache_hit


class FlatCache(Observable):
    """One global cache backend shared by all embedding tables."""

    def __init__(
        self,
        specs: Sequence[TableSpec],
        config: FlecheConfig,
        codec: Optional[FlatKeyCodec] = None,
    ):
        if not specs:
            raise ConfigError("flat cache needs at least one table spec")
        self.specs = list(specs)
        self.config = config
        self.codec = codec or SizeAwareCodec(
            [s.corpus_size for s in specs], key_bits=config.key_bits
        )

        # Size the pool: cache_ratio of total parameter bytes, split across
        # dimension classes proportionally to each class's parameter share.
        # Index metadata (24 B/slot: key + tagged pointer + timestamp) is
        # charged against the same budget.  Unified-index pointers live in
        # the index's load-factor headroom plus a bounded slack region; the
        # tuner trades cached embeddings for pointers dynamically (§3.3),
        # so the slack is not pre-charged against the pool.
        total_bytes = sum(s.param_bytes for s in specs)
        budget = config.cache_ratio * total_bytes
        unified_factor = (
            config.unified_index_fraction if config.use_unified_index else 0.0
        )
        index_overhead = 24.0 / config.index_load_factor
        bytes_per_dim: Dict[int, int] = {}
        for s in specs:
            bytes_per_dim[s.dim] = bytes_per_dim.get(s.dim, 0) + s.param_bytes
        precision = config.precision
        self.precision = precision
        self.quantizing = precision.quantizing
        class_capacities = {}
        if not self.quantizing:
            for dim, dim_bytes in bytes_per_dim.items():
                share = budget * (dim_bytes / total_bytes)
                class_capacities[dim] = max(16, int(share // (dim * 4 + index_overhead)))
        else:
            # Each dimension's byte share splits across precision tiers by
            # the configured fractions; slimmer slots buy more slots at
            # the same byte budget (the effective-capacity multiplier).
            for dim, dim_bytes in bytes_per_dim.items():
                share = budget * (dim_bytes / total_bytes)
                for tier in precision.tiers_in_use():
                    tier_share = share * precision.share_of(tier)
                    cost = slot_payload_bytes(dim, tier) + index_overhead
                    class_capacities[(dim, tier)] = max(
                        16, int(tier_share // cost)
                    )
        self.pool = SlabMemoryPool(class_capacities)

        total_slots = sum(class_capacities.values())
        unified_slots = int(total_slots * unified_factor)
        self.index = SlabHashIndex(
            capacity=total_slots + unified_slots,
            load_factor=config.index_load_factor,
        )
        if precision.needs_estimator:
            self._estimator: Optional[FrequencyEstimator] = FrequencyEstimator(
                width=precision.sketch_width,
                depth=precision.sketch_depth,
                seed=config.seed,
            )
            self.admission = AdmissionFilter(
                config.admission_probability,
                seed=config.seed,
                estimator=self._estimator,
                hot_min_count=precision.hot_min_count,
                warm_min_count=precision.warm_min_count,
            )
        else:
            self._estimator = None
            self.admission = AdmissionFilter(
                config.admission_probability, seed=config.seed
            )
        self._eviction_policy = make_eviction_policy(
            precision.eviction_policy,
            recency_weight=precision.hybrid_recency_weight,
        )
        self.reclaimer = EpochReclaimer()
        self._clock = 0
        #: live unified-index entries (bounded by the tuner's capacity).
        self.unified_entries = 0
        self.unified_capacity = unified_slots if config.use_unified_index else 0
        self._dim_of_table = {s.table_id: s.dim for s in specs}
        #: Runtime-retunable copy of the config watermark: the adaptive
        #: controller (:mod:`repro.autotune`) adjusts eviction depth here
        #: without touching the frozen :class:`FlecheConfig`.  Untouched,
        #: eviction is byte-identical to the config-driven behaviour.
        self.evict_low_watermark = config.evict_low_watermark

    # ------------------------------------------------------------------ obs

    def _register_observability(self, registry) -> None:
        registry.add_check("flatcache.pool-accounting", self._audit_pool)

    def _audit_pool(self):
        """Audit hook: refresh pool/index occupancy gauges and cross-check
        slot accounting against a live index scan.

        Feeds the declarative ``pool.live + pool.free == pool.capacity``
        law, and directly verifies the stronger invariant that every
        occupied pool slot is either reachable from the index or awaiting
        epoch reclamation (no slot leaks, no double frees).
        """
        capacity = sum(self.pool.capacity_of(d) for d in self.pool.dims())
        free = sum(self.pool.free_of(d) for d in self.pool.dims())
        live = capacity - free
        pending = self.reclaimer.pending
        _, values, _ = self.index.scan()
        cache_mask = ~is_dram_pointer(values)
        cached = int(cache_mask.sum())
        obs = self.obs
        obs.set_gauge("pool.capacity", capacity)
        obs.set_gauge("pool.live", live)
        obs.set_gauge("pool.free", free)
        obs.set_gauge("pool.pending_reclaim", pending)
        obs.set_gauge("cache.live_entries", cached)
        obs.set_gauge("cache.unified_entries", self.unified_entries)
        if self.quantizing:
            self._refresh_precision_gauges(untag(values[cache_mask]), cached)
        ok = live == cached + pending
        return ok, (f"pool occupies {live} slots but index scan sees "
                    f"{cached} live + {pending} pending reclaim")

    def _refresh_precision_gauges(
        self, locations: np.ndarray, cached: int
    ) -> None:
        """Per-tier entry/byte/drift gauges from one live index scan.

        Feeds the ``precision.entry-split`` / ``precision.bytes-bounded``
        / ``precision.tier-drift`` conservation laws — only emitted on
        quantizing caches, so a pinned-fp32 configuration never grows a
        ``precision.*`` key.
        """
        obs = self.obs
        codes = self.pool.tier_codes_of_locations(locations)
        payload = self.pool.payload_bytes_of_locations(locations)
        obs.set_gauge("precision.cached_entries", cached)
        for tier, code in TIER_CODES.items():
            mask = codes == code
            obs.set_gauge(f"precision.entries_{tier}", int(mask.sum()))
            obs.set_gauge(f"precision.bytes_{tier}", int(payload[mask].sum()))
        obs.set_gauge("precision.byte_budget", self.pool.total_bytes)
        drift = (
            self.pool.born_of_locations(locations).astype(np.int64)
            - codes.astype(np.int64)
        )
        obs.set_gauge("precision.drift_up_live", int(drift[drift > 0].sum()))
        obs.set_gauge("precision.drift_dn_live", int(-drift[drift < 0].sum()))

    # ------------------------------------------------------------------ info

    @property
    def capacity_slots(self) -> int:
        """Total embedding slots across all slab classes."""
        return sum(self.pool.capacity_of(d) for d in self.pool.dims())

    def memory_usage(self) -> Dict[str, int]:
        return {
            "pool": self.pool.total_bytes,
            "index": self.index.metadata_bytes,
        }

    def tick(self) -> int:
        """Advance the logical clock (one tick per batch); returns stamp."""
        self._clock += 1
        self.reclaimer.advance()
        freed = self.reclaimer.collect()
        if len(freed):
            self.pool.release(freed)
        interval = self.precision.aging_interval
        if (
            self._estimator is not None
            and interval
            and self._clock % interval == 0
        ):
            self._estimator.age()
        return self._clock

    # ------------------------------------------------------------------ encode

    def encode(self, table_id: int, feature_ids: np.ndarray) -> np.ndarray:
        """Re-encode one table's feature IDs to flat keys (§3.1)."""
        return self.codec.encode(table_id, feature_ids)

    # ------------------------------------------------------------------ index

    def index_lookup(self, flat_keys: np.ndarray) -> IndexOutcome:
        """Indexing kernel: resolve flat keys to tagged pointers."""
        found, pointers, stats = self.index.lookup(flat_keys, stamp=self._clock)
        dram = found & is_dram_pointer(pointers)
        cache_hit = found & ~is_dram_pointer(pointers)
        locations = untag(pointers)
        return IndexOutcome(
            cache_hit=cache_hit, dram_hit=dram, locations=locations, stats=stats
        )

    def contains_cached(self, flat_keys: np.ndarray) -> np.ndarray:
        """Mask of keys currently holding a *cache* location (not a pointer).

        A pure metadata probe — no LRU stamp refresh.  The replacement path
        of a pipelined batch uses it to skip keys that a concurrently
        in-flight batch already inserted: re-inserting would overwrite the
        index entry in place and leak the existing pool slot.
        """
        found, pointers, _ = self.index.lookup(flat_keys)
        return found & ~is_dram_pointer(pointers)

    # ------------------------------------------------------------------ read

    def gather(self, locations: np.ndarray) -> np.ndarray:
        """Copying kernel: read embeddings at pool ``locations``.

        Thread safety comes from epoch-based reclamation: slots freed by a
        concurrent eviction cannot be reused before this reader finishes.
        """
        epoch = self.reclaimer.pin()
        try:
            return self.pool.read(locations)
        finally:
            self.reclaimer.unpin(epoch)

    # ------------------------------------------------------------------ insert

    def admit_and_insert(
        self,
        flat_keys: np.ndarray,
        vectors: np.ndarray,
        dim: int,
        dram_mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, ProbeStats]:
        """Cache replacement for missing embeddings (§3.1).

        Applies the probability filter, allocates pool slots, writes the
        vectors (the decoupled copying kernel), and only then publishes the
        key -> location mappings (the indexing kernel) — the order §3.3
        prescribes, since copying is invisible to indexing.

        Returns:
            ``(inserted_mask, stats)``: which of ``flat_keys`` actually
            entered the cache, and the index-update probe stats.
        """
        n = len(flat_keys)
        inserted_mask = np.zeros(n, dtype=bool)
        if n == 0:
            return inserted_mask, ProbeStats(0, 0, 0.0)
        admitted = self.admission.admit(flat_keys)
        positions = np.nonzero(admitted)[0]
        if len(positions) == 0:
            return inserted_mask, ProbeStats(0, 0, 0.0)
        if self.quantizing:
            return self._insert_tiered(
                flat_keys, vectors, dim, dram_mask, positions, inserted_mask
            )

        free = self.pool.free_of(dim)
        if free < len(positions):
            self._evict(dim, need=len(positions) - free)
            free = self.pool.free_of(dim)
            if free < len(positions):  # pool smaller than one batch's misses
                positions = positions[:free]
        if len(positions) == 0:
            return inserted_mask, ProbeStats(0, 0, 0.0)

        keys = flat_keys[positions]
        rows = vectors[positions]
        # Admitted keys currently carrying a DRAM pointer get their entry
        # overwritten with a cache location: fewer unified entries live.
        # (``dram_mask`` lets callers who already indexed skip the lookup.)
        if dram_mask is not None:
            promoted = int(dram_mask[positions].sum())
        else:
            found, pointers, _ = self.index.lookup(keys)
            promoted = int((found & is_dram_pointer(pointers)).sum())
        self.unified_entries = max(0, self.unified_entries - promoted)

        locations = self.pool.allocate(dim, len(keys))
        self.pool.write(locations, rows)  # copying kernel
        result = self.index.insert(
            keys, tag_cache_location(locations), stamp=self._clock
        )
        self._release_displaced(result.evicted_values)
        inserted_mask[positions] = True
        self.obs.inc("cache.inserted", len(positions))
        return inserted_mask, result.stats

    def _insert_tiered(
        self,
        flat_keys: np.ndarray,
        vectors: np.ndarray,
        dim: int,
        dram_mask: Optional[np.ndarray],
        positions: np.ndarray,
        inserted_mask: np.ndarray,
    ) -> Tuple[np.ndarray, ProbeStats]:
        """Mixed-precision replacement: admitted keys land in the tier the
        admission filter's frequency estimate assigns them (hot → fp32,
        warm → fp16, tail → int8).

        Tier classes fill under *spill* pressure: when a class has fewer
        free slots than candidates, the highest-estimate candidates take
        the free slots and the overflow demotes to the next colder tier —
        a hot key served at reduced precision still hits, which beats
        churning another hot entry out of the cache.  Only the coldest
        tier evicts, so total entry capacity is the binding constraint
        (the effective-capacity multiplier the tiering is for); on-hit
        retiering later promotes spilled keys as fp32 room opens up.
        """
        codes = self._clamp_codes(
            dim, self.admission.tier_codes(flat_keys[positions])
        )
        available = sorted(TIER_CODES[t] for t in self.pool.tiers_of(dim))
        for i, code in enumerate(available[:-1]):
            sel = np.nonzero(codes == code)[0]
            free = self.pool.free_of(dim, TIERS[code])
            if len(sel) > free:
                counts = self._estimator.estimate(
                    flat_keys[positions[sel]]
                )
                keep = np.argsort(-counts, kind="stable")[:free]
                spill = np.setdiff1d(sel, sel[keep], assume_unique=True)
                codes[spill] = available[i + 1]
        stats = ProbeStats(0, 0, 0.0)
        for code in np.unique(codes):
            tier = TIERS[code]
            sel = positions[codes == code]
            free = self.pool.free_of(dim, tier)
            if free < len(sel):
                self._evict(dim, need=len(sel) - free, tier=tier)
                free = self.pool.free_of(dim, tier)
                if free < len(sel):
                    sel = sel[:free]
            if len(sel) == 0:
                continue
            keys = flat_keys[sel]
            rows = vectors[sel]
            if dram_mask is not None:
                promoted = int(dram_mask[sel].sum())
            else:
                found, pointers, _ = self.index.lookup(keys)
                promoted = int((found & is_dram_pointer(pointers)).sum())
            self.unified_entries = max(0, self.unified_entries - promoted)
            locations = self.pool.allocate(dim, len(keys), tier=tier)
            self.pool.write(locations, rows)  # quantize-on-insert
            self.pool.set_born(locations, code)
            result = self.index.insert(
                keys, tag_cache_location(locations), stamp=self._clock
            )
            self._release_displaced(result.evicted_values)
            inserted_mask[sel] = True
            stats = stats.merged_with(result.stats)
        inserted = int(inserted_mask.sum())
        if inserted:
            self.obs.inc("cache.inserted", inserted)
        return inserted_mask, stats

    def _clamp_codes(self, dim: int, codes: np.ndarray) -> np.ndarray:
        """Clamp desired tier codes to tiers that have a slab class.

        A tier with zero byte share gets no class; its keys fall to the
        nearest *hotter* tier present (fp32 always exists when enabled).
        """
        available = [TIER_CODES[t] for t in self.pool.tiers_of(dim)]
        if len(available) == len(TIERS):
            return codes
        lookup = np.zeros(len(TIERS), dtype=np.int8)
        for code in range(len(TIERS)):
            hotter = [a for a in available if a <= code]
            lookup[code] = max(hotter) if hotter else min(available)
        return lookup[codes]

    # ------------------------------------------------------------ promotion

    def observe_keys(self, flat_keys: np.ndarray) -> None:
        """Feed one batch's deduplicated keys to the frequency estimator."""
        if self._estimator is not None:
            self.admission.observe(flat_keys)

    def retier_hits(
        self,
        flat_keys: np.ndarray,
        locations: np.ndarray,
        rows: np.ndarray,
        dim: int,
    ) -> Tuple[int, int]:
        """Move hit entries whose frequency crossed a tier boundary.

        ``rows`` are the freshly gathered (dequantized) vectors, so no
        second pool read is needed.  Moves are opportunistic: an entry
        only moves when its target tier has a free slot — the hit path
        never triggers an eviction.  The old slot is retired through the
        epoch reclaimer (read-after-delete safety for concurrent
        pipelined readers); the entry's *born* tier rides along so the
        drift audit stays exact.  Returns ``(promoted, demoted)`` entry
        counts; the matching ``precision.promotions`` / ``.demotions``
        counters are rank-step weighted (int8 → fp32 counts two steps)
        so they balance the drift gauges in the tier-drift law.
        """
        if not self.quantizing or len(flat_keys) == 0:
            return 0, 0
        desired = self._clamp_codes(
            dim, self.admission.tier_codes(flat_keys)
        )
        current = self.pool.tier_codes_of_locations(locations)
        moved = desired != current
        if not moved.any():
            return 0, 0
        promoted = demoted = 0
        promotion_steps = demotion_steps = 0
        for code in np.unique(desired[moved]):
            tier = TIERS[code]
            sel = np.nonzero(moved & (desired == code))[0]
            free = self.pool.free_of(dim, tier)
            if free < len(sel):
                sel = sel[:free]
            if len(sel) == 0:
                continue
            old_locations = locations[sel]
            born = self.pool.born_of_locations(old_locations)
            new_locations = self.pool.allocate(dim, len(sel), tier=tier)
            self.pool.write(new_locations, rows[sel])
            self.pool.set_born(new_locations, born)
            result = self.index.insert(
                flat_keys[sel],
                tag_cache_location(new_locations),
                stamp=self._clock,
            )
            # Overwriting a live key's pointer leaves its old slot
            # unreferenced: retire it ourselves (the entry itself lives
            # on, so this is *not* an entry death for the drift audit).
            self.reclaimer.retire(old_locations)
            self._release_displaced(result.evicted_values)
            steps = current[sel].astype(np.int64) - int(code)
            promoted += int((steps > 0).sum())
            demoted += int((steps < 0).sum())
            promotion_steps += int(steps[steps > 0].sum())
            demotion_steps += int(-steps[steps < 0].sum())
        if promotion_steps:
            self.obs.inc("precision.promotions", promotion_steps)
        if demotion_steps:
            self.obs.inc("precision.demotions", demotion_steps)
        return promoted, demoted

    def read_payload_bytes(self, locations: np.ndarray) -> int:
        """Total stored payload bytes behind ``locations`` (gather size)."""
        return int(self.pool.payload_bytes_of_locations(locations).sum())

    # ------------------------------------------------------------------ unified

    def publish_dram_pointers(
        self, flat_keys: np.ndarray, dram_rows: np.ndarray
    ) -> int:
        """Record DRAM locations of cold embeddings in the index (§3.3)."""
        budget = self.unified_capacity - self.unified_entries
        if budget <= 0 or len(flat_keys) == 0:
            return 0
        # Keys already present (cached embedding or existing pointer) are
        # skipped: a cache entry always beats a pointer, and re-publishing
        # a pointer must not inflate the entry count.
        found, _, _ = self.index.lookup(flat_keys)
        candidates = flat_keys[~found]
        rows = np.asarray(dram_rows, dtype=np.uint64)[~found]
        if len(candidates) == 0:
            return 0
        take = min(budget, len(candidates))
        keys = candidates[:take]
        pointers = tag_dram_pointer(rows[:take])
        inserted = self.index.insert(
            keys, pointers, stamp=self._clock, overwrite=False
        )
        self._release_displaced(inserted.evicted_values)
        self.unified_entries += take
        self.obs.inc("cache.pointers_published", take)
        return take

    def _release_displaced(self, displaced: np.ndarray) -> None:
        """Retire pool slots (and unified entries) bumped by bucket LRU."""
        if not len(displaced):
            return
        dram = is_dram_pointer(displaced)
        cache_ptrs = displaced[~dram]
        if len(cache_ptrs):
            locations = untag(cache_ptrs)
            self._record_entry_death(locations)
            self.reclaimer.retire(locations)
        self.unified_entries -= int(dram.sum())

    def _record_entry_death(self, locations: np.ndarray) -> None:
        """Fold dying entries' net tier drift into the retired counters.

        An entry's drift (born tier rank minus current rank) leaves the
        live gauges when the entry leaves the pool; accumulating it here
        keeps ``promotions - demotions == net tier drift`` exact across
        the entry's whole lifetime (the ``precision.tier-drift`` law).
        """
        if not self.quantizing or len(locations) == 0:
            return
        drift = (
            self.pool.born_of_locations(locations).astype(np.int64)
            - self.pool.tier_codes_of_locations(locations).astype(np.int64)
        )
        up = int(drift[drift > 0].sum())
        down = int(-drift[drift < 0].sum())
        if up:
            self.obs.inc("precision.drift_up_retired", up)
        if down:
            self.obs.inc("precision.drift_dn_retired", down)

    def invalidate_dram_pointers(self, flat_keys: np.ndarray) -> int:
        """Erase unified-index entries whose DRAM target no longer exists.

        §5's corner case for giant models: when the CPU-DRAM layer is
        itself a cache, its evictions leave GPU-side DRAM pointers
        dangling.  Only entries that actually carry a DRAM pointer are
        touched; cached embeddings for the same keys stay valid.
        """
        flat_keys = np.ascontiguousarray(flat_keys, dtype=np.uint64)
        if len(flat_keys) == 0:
            return 0
        found, pointers, _ = self.index.lookup(flat_keys)
        stale = found & is_dram_pointer(pointers)
        if not stale.any():
            return 0
        removed, _ = self.index.erase(flat_keys[stale])
        count = int(removed.sum())
        self.unified_entries = max(0, self.unified_entries - count)
        self.obs.inc("cache.pointers_invalidated", count)
        return count

    def clear_unified_index(self) -> int:
        """Drop every DRAM pointer (the tuner's reset action).

        Returns the number of entries removed.  Implemented as the same
        full-table scan the eviction pass uses.
        """
        keys, values, _ = self.index.scan()
        dram = is_dram_pointer(values)
        if not dram.any():
            self.unified_entries = 0
            return 0
        removed, _ = self.index.erase(keys[dram])
        self.unified_entries = 0
        return int(removed.sum())

    def set_unified_capacity(self, capacity: int) -> None:
        """Apply a tuner decision.

        Growing proactively demotes the coldest cached embeddings into DRAM
        pointers (freeing their pool slots for hotter keys); shrinking drops
        the oldest DRAM pointers.
        """
        capacity = max(0, int(capacity))
        if capacity < self.unified_entries:
            keys, values, stamps = self.index.scan()
            dram = is_dram_pointer(values)
            dram_keys = keys[dram]
            order = np.argsort(stamps[dram])
            surplus = self.unified_entries - capacity
            victims = dram_keys[order[:surplus]]
            self.index.erase(victims)
            self.unified_entries = capacity
        elif capacity > self.unified_entries:
            self._demote_cold(capacity - self.unified_entries)
        self.unified_capacity = capacity

    # ----------------------------------------------------------------- retune
    #
    # Validated runtime knobs for the adaptive controller
    # (:mod:`repro.autotune`).  None of these mutate the frozen
    # :class:`FlecheConfig` — they act on the live, mutable pieces
    # (admission filter, eviction watermark, slab-pool capacities) so a
    # run with the controller disabled stays byte-identical to one where
    # these methods do not exist.

    def set_admission_probability(self, probability: float) -> None:
        """Retune the cache-admission probability (insert aggressiveness)."""
        if not 0.0 < probability <= 1.0:
            raise ConfigError(
                f"admission probability must be in (0, 1], got {probability}"
            )
        self.admission.probability = float(probability)

    def set_tier_thresholds(self, hot_min_count: int, warm_min_count: int) -> None:
        """Retune the frequency thresholds assigning precision tiers."""
        if self._estimator is None:
            raise ConfigError(
                "tier thresholds need a mixed-precision cache "
                "(no frequency estimator configured)"
            )
        hot, warm = int(hot_min_count), int(warm_min_count)
        if not 0 < warm <= hot:
            raise ConfigError(
                f"need 0 < warm_min_count <= hot_min_count, got "
                f"warm={warm} hot={hot}"
            )
        self.admission.hot_min_count = hot
        self.admission.warm_min_count = warm

    def set_evict_low_watermark(self, low: float) -> None:
        """Retune eviction depth: lower cuts deeper per eviction pass."""
        if not 0.0 < low < self.config.evict_high_watermark:
            raise ConfigError(
                f"evict_low_watermark must be in (0, "
                f"{self.config.evict_high_watermark}), got {low}"
            )
        self.evict_low_watermark = float(low)

    def transfer_tier_capacity(
        self, dim: int, from_tier: str, to_tier: str, fraction: float
    ) -> Tuple[int, int]:
        """Move ~``fraction`` of one tier's byte share to another tier.

        Retires free slots from the donor class and grows the recipient
        by the byte-equivalent slot count (integer floor — the pool's
        logical byte footprint never grows).  The donor keeps a 16-slot
        floor, and only *free* slots move, so live entries are never
        disturbed.  Returns ``(retired_slots, grown_slots)``; ``(0, 0)``
        when the donor has nothing spare.
        """
        if not self.quantizing:
            raise ConfigError(
                "tier capacity transfer needs a mixed-precision cache"
            )
        if from_tier == to_tier:
            raise ConfigError("transfer_tier_capacity: tiers must differ")
        for tier in (from_tier, to_tier):
            if tier not in TIERS:
                raise ConfigError(f"unknown precision tier {tier!r}")
            if tier not in self.pool.tiers_of(dim):
                raise ConfigError(
                    f"dim {dim} has no {tier} slab class to transfer"
                )
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(
                f"transfer fraction must be in (0, 1], got {fraction}"
            )
        src_capacity = self.pool.capacity_of(dim, from_tier)
        want = min(int(src_capacity * fraction), max(0, src_capacity - 16))
        retired = self.pool.retire_free(dim, from_tier, want)
        if retired == 0:
            return (0, 0)
        grow = (
            retired * slot_payload_bytes(dim, from_tier)
        ) // slot_payload_bytes(dim, to_tier)
        grown = self.pool.grow_class(dim, to_tier, grow)
        return (retired, grown)

    def _demote_cold(self, count: int) -> None:
        """Convert up to ``count`` of the coldest cache entries to pointers.

        Only entries that have not been touched for a couple of batches are
        candidates — the paper replaces the cache of *cold* embeddings, so
        freshly inserted or recently hit entries must never be demoted.
        """
        if count <= 0:
            return
        keys, values, stamps = self.index.scan()
        cold = ~is_dram_pointer(values) & (stamps <= self._clock - 2)
        if not cold.any():
            return
        cache_keys = keys[cold]
        cache_stamps = stamps[cold]
        cache_locations = untag(values[cold])
        order = np.argsort(cache_stamps)
        victims = order[: min(count, len(order))]
        self.index.insert(
            cache_keys[victims],
            tag_dram_pointer(cache_keys[victims]),
            stamp=self._clock,
        )
        self._record_entry_death(cache_locations[victims])
        self.reclaimer.retire(cache_locations[victims])
        self.unified_entries += len(victims)
        self.obs.inc("cache.demotions", len(victims))

    # ------------------------------------------------------------------ evict

    def _evict(self, dim: int, need: int, tier: Optional[str] = None) -> None:
        """Full-scan eviction (§3.1): drop cold entries of slab class ``dim``.

        Runs when the slab class cannot satisfy an allocation (utilisation
        above the high watermark); evicts the coldest entries until
        utilisation falls to the low watermark (or ``need`` is satisfied).
        Victim order comes from the configured eviction policy — pure
        recency by default (byte-identical to the pre-tiering scan), or a
        frequency-aware LFU/hybrid score over the estimator's counts.  On
        a mixed-precision pool each (dim, tier) class evicts
        independently.  Freed slots are retired through the epoch
        reclaimer, so concurrent readers never observe reuse
        (read-after-delete safety).
        """
        keys, values, stamps = self.index.scan()
        cache_mask = ~is_dram_pointer(values)
        locations = untag(values[cache_mask])
        dims = self.pool.dim_of_locations(locations)
        in_class = dims == dim
        if tier is not None:
            tier_codes = self.pool.tier_codes_of_locations(locations)
            in_class &= tier_codes == TIER_CODES[tier]
        class_keys = keys[cache_mask][in_class]
        class_stamps = stamps[cache_mask][in_class]
        class_locations = locations[in_class]
        if len(class_keys) == 0:
            return

        capacity = self.pool.capacity_of(dim, tier)
        target_live = int(capacity * self.evict_low_watermark)
        to_evict = max(need, len(class_keys) - target_live)
        to_evict = min(to_evict, len(class_keys))
        counts = (
            self._estimator.estimate(class_keys)
            if self._estimator is not None else None
        )
        order = self._eviction_policy.victim_order(class_stamps, counts)
        victims = order[:to_evict]
        victim_keys = class_keys[victims]

        # Demote as many victims as the unified-index budget allows: their
        # index entries become DRAM pointers instead of disappearing (§3.3,
        # "replacing the cache of cold embeddings with CPU-DRAM pointers").
        demote = min(
            max(0, self.unified_capacity - self.unified_entries),
            len(victim_keys),
        )
        if demote:
            demoted_keys = victim_keys[:demote]
            self.index.insert(
                demoted_keys,
                tag_dram_pointer(demoted_keys),
                stamp=self._clock,
            )
            self.unified_entries += demote
            victim_keys = victim_keys[demote:]
        if len(victim_keys):
            self.index.erase(victim_keys)
        self.reclaimer.retire(class_locations[victims])
        self.obs.inc("cache.evictions", len(victims))
        if demote:
            self.obs.inc("cache.demotions", demote)
        # Eviction happens between batches: the grace period elapses before
        # the next batch's readers arrive, so reclaim one epoch ahead.
        self.reclaimer.advance()
        freed = self.reclaimer.collect()
        if len(freed):
            self.pool.release(freed)

    # ------------------------------------------------------------------ debug

    def live_entries(self) -> int:
        """Number of cached embeddings (excluding DRAM pointers)."""
        _, values, _ = self.index.scan()
        return int((~is_dram_pointer(values)).sum())
