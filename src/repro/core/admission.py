"""Probability-based admission filter (paper §3.1).

To reduce the flat cache's swap-in/swap-out overhead for rarely occurring
IDs, each missing embedding is admitted with probability ``p``; in
expectation, features seen fewer than ``1/p`` times bypass the cache
(the trick of McMahan et al., KDD'13).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class AdmissionFilter:
    """Bernoulli admission filter over missing keys."""

    def __init__(self, probability: float = 1.0, seed: int = 0):
        if not 0.0 < probability <= 1.0:
            raise ConfigError("admission probability must be in (0, 1]")
        self.probability = probability
        self._rng = np.random.default_rng(seed)

    @property
    def bypass_threshold(self) -> float:
        """Expected occurrence count below which an ID bypasses the cache."""
        return 1.0 / self.probability

    def admit(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask of keys admitted to the cache."""
        n = len(keys)
        if self.probability >= 1.0:
            return np.ones(n, dtype=bool)
        return self._rng.random(n) < self.probability
