"""Probability-based admission filter + frequency estimation (paper §3.1).

To reduce the flat cache's swap-in/swap-out overhead for rarely occurring
IDs, each missing embedding is admitted with probability ``p``; in
expectation, features seen fewer than ``1/p`` times bypass the cache
(the trick of McMahan et al., KDD'13).

For mixed-precision tiering the filter additionally carries a
:class:`FrequencyEstimator` — a count-min sketch over observed flat keys
— and maps its estimates onto precision tiers (hot → fp32, warm → fp16,
tail → int8).  The sketch never *under*-estimates a key's count (the
classic CMS guarantee, absent aging), so a genuinely hot key can never be
banished to the int8 tail by estimation error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError

_MIX1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX2 = np.uint64(0xC4CEB9FE1A85EC53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64-style finalizer (vectorised) for sketch row hashing."""
    x = x.astype(np.uint64)
    x ^= x >> np.uint64(33)
    x *= _MIX1
    x ^= x >> np.uint64(33)
    x *= _MIX2
    x ^= x >> np.uint64(33)
    return x


class FrequencyEstimator:
    """Count-min sketch over flat keys (vectorised, deterministic).

    ``observe`` folds a key batch in (typically the deduplicated keys of
    one serving batch, so counts approximate "batches containing the
    key"); ``estimate`` returns the row-wise minimum — an upper bound on
    the true count.  ``age`` halves every counter, letting estimates
    track a drifting hotspot (and enabling tier demotion).
    """

    def __init__(self, width: int = 2048, depth: int = 2, seed: int = 0):
        if width < 16 or depth < 1:
            raise ConfigError("sketch needs width >= 16 and depth >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self._counts = np.zeros((depth, width), dtype=np.int64)
        # One salt per row, derived from the seed so replicas with the
        # same config build identical sketches.
        self._salts = _mix64(
            np.uint64(seed) + np.arange(1, depth + 1, dtype=np.uint64)
        )

    # hot-path: vectorized
    def observe(self, keys: np.ndarray) -> None:
        """Fold one key batch into the sketch (+1 per key per row)."""
        if len(keys) == 0:
            return
        keys = np.asarray(keys, dtype=np.uint64)
        for r in range(self.depth):  # lint: allow-loop (per sketch row, depth-bounded)
            idx = _mix64(keys ^ self._salts[r]) % np.uint64(self.width)
            np.add.at(self._counts[r], idx.astype(np.int64), 1)

    # hot-path: vectorized
    def estimate(self, keys: np.ndarray) -> np.ndarray:
        """Estimated occurrence count per key (never under the truth)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int64)
        counts = np.full(len(keys), np.iinfo(np.int64).max, dtype=np.int64)
        for r in range(self.depth):  # lint: allow-loop (per sketch row, depth-bounded)
            idx = _mix64(keys ^ self._salts[r]) % np.uint64(self.width)
            np.minimum(counts, self._counts[r][idx.astype(np.int64)], out=counts)
        return counts

    def age(self) -> None:
        """Halve every counter (periodic exponential decay)."""
        self._counts >>= 1


def assign_tier_codes(
    counts: np.ndarray, hot_min_count: int, warm_min_count: int
) -> np.ndarray:
    """Map frequency estimates to tier codes (0=fp32, 1=fp16, 2=int8)."""
    codes = np.full(len(counts), 2, dtype=np.int8)
    codes[counts >= warm_min_count] = 1
    codes[counts >= hot_min_count] = 0
    return codes


class AdmissionFilter:
    """Bernoulli admission filter over missing keys.

    With an attached estimator (the mixed-precision configuration) the
    filter also answers "which precision tier should this key get?" —
    the tier assignment the tentpole derives from admission-time
    frequency estimates.
    """

    def __init__(
        self,
        probability: float = 1.0,
        seed: int = 0,
        estimator: Optional[FrequencyEstimator] = None,
        hot_min_count: int = 8,
        warm_min_count: int = 2,
    ):
        if not 0.0 < probability <= 1.0:
            raise ConfigError("admission probability must be in (0, 1]")
        self.probability = probability
        self._rng = np.random.default_rng(seed)
        self.estimator = estimator
        self.hot_min_count = int(hot_min_count)
        self.warm_min_count = int(warm_min_count)

    @property
    def bypass_threshold(self) -> float:
        """Expected occurrence count below which an ID bypasses the cache."""
        return 1.0 / self.probability

    def admit(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask of keys admitted to the cache."""
        n = len(keys)
        if self.probability >= 1.0:
            return np.ones(n, dtype=bool)
        return self._rng.random(n) < self.probability

    def observe(self, keys: np.ndarray) -> None:
        """Feed one batch's (deduplicated) keys to the estimator, if any."""
        if self.estimator is not None:
            self.estimator.observe(keys)

    def tier_codes(self, keys: np.ndarray) -> np.ndarray:
        """Per-key precision tier codes from the frequency estimates.

        Without an estimator every key gets the fp32 tier (code 0).
        """
        if self.estimator is None:
            return np.zeros(len(keys), dtype=np.int8)
        return assign_tier_codes(
            self.estimator.estimate(keys),
            self.hot_min_count,
            self.warm_min_count,
        )
