"""Configuration of the Fleche cache scheme."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .precision import PrecisionConfig


@dataclass(frozen=True)
class FlecheConfig:
    """Tunables of the Fleche embedding layer.

    Attributes:
        cache_ratio: cache size as a fraction of total embedding parameters
            (the paper's "5%" notation).
        key_bits: width of flat keys produced by the codec.
        admission_probability: probability-based filter (§3.1): a missing
            embedding is admitted to the cache with this probability, so
            IDs occurring fewer than ``1/p`` times tend to bypass the cache.
        evict_high_watermark: pool utilisation that triggers eviction.
        evict_low_watermark: utilisation eviction drives the pool down to.
        use_fusion: merge per-table query kernels via self-identified
            kernel fusion (§3.2).
        decouple_copy: split indexing and copying into separate kernels and
            overlap the DRAM query with the copy kernel (§3.3).
        use_unified_index: offload part of the CPU-DRAM index to the GPU
            (§3.3).
        unified_index_fraction: fraction of FC index slots the unified
            index may occupy (tuned at runtime by
            :class:`repro.core.unified_index.UnifiedIndexTuner`).
        index_load_factor: target load factor of the slab-hash index.
        precision: mixed-precision tiering of cache entries
            (:class:`repro.core.precision.PrecisionConfig`); disabled by
            default, in which case the cache takes exactly the fp32-only
            code path.
    """

    cache_ratio: float = 0.05
    key_bits: int = 64
    admission_probability: float = 1.0
    evict_high_watermark: float = 0.95
    evict_low_watermark: float = 0.85
    use_fusion: bool = True
    decouple_copy: bool = True
    use_unified_index: bool = True
    unified_index_fraction: float = 0.5
    index_load_factor: float = 0.75
    seed: int = 0
    precision: PrecisionConfig = field(default_factory=PrecisionConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.cache_ratio <= 1.0:
            raise ConfigError("cache_ratio must be in (0, 1]")
        if not 8 <= self.key_bits <= 64:
            raise ConfigError("key_bits must be in [8, 64]")
        if not 0.0 < self.admission_probability <= 1.0:
            raise ConfigError("admission_probability must be in (0, 1]")
        if not 0.0 < self.evict_low_watermark < self.evict_high_watermark <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 < low < high <= 1"
            )
        if not 0.0 <= self.unified_index_fraction <= 4.0:
            raise ConfigError("unified_index_fraction must be in [0, 4]")
        if not 0.0 < self.index_load_factor <= 1.0:
            raise ConfigError("index_load_factor must be in (0, 1]")

    def ablated(self, **changes) -> "FlecheConfig":
        """Return a copy with selected fields replaced (for ablations)."""
        from dataclasses import replace

        return replace(self, **changes)
