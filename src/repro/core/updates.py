"""Parameter-update propagation: cache coherence with model refreshes.

Production recommendation models are continuously retrained; refreshed
embeddings stream into the serving fleet while inference keeps running.
A GPU-resident cache must not keep serving stale vectors.  The paper's
machinery already contains the needed primitive — each index slot's
timestamp "also acts as a version number to detect concurrent read-write
conflicts" (§3.1) — and its deduplicating guarantees one writer per key.

:class:`UpdateApplier` builds on that:

* updates arrive as (table, feature_id, vector) batches from the trainer;
* duplicate IDs within a batch resolve **last-write-wins**: only the final
  row of each ID is applied, earlier ones are counted as ``duplicates``;
* cached keys are *refreshed in place* (write the pool slot, bump the
  version stamp) — one copying kernel plus one indexing kernel, the same
  decoupled shape as replacement (§3.3);
* unified-index DRAM pointers for updated keys are invalidated when the
  update also relocated the host copy (or counted as ``pointers_skipped``
  when invalidation is disabled, keeping the accounting conservative);
* uncached keys cost nothing (the cache simply doesn't know them).

The outcome partitions the batch exactly:
``len(feature_ids) == refreshed + pointers_invalidated + pointers_skipped
+ untracked + duplicates``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import WorkloadError
from ..gpusim.executor import Executor
from ..gpusim.stats import Category
from .flat_cache import FlatCache
from .unified_index import is_dram_pointer
from .workflow import _copy_kernel_spec, _index_kernel_spec


@dataclass(frozen=True)
class UpdateOutcome:
    """What one update batch did to the cache.

    The five counters partition the input batch: every input row is
    exactly one of refreshed (rewritten in place on the GPU), pointer
    invalidated / skipped (key lived behind a unified-index DRAM
    pointer), untracked (cache never heard of it), or a duplicate
    squashed by a later row for the same ID.
    """

    refreshed: int
    pointers_invalidated: int
    untracked: int
    duplicates: int = 0
    pointers_skipped: int = 0

    @property
    def total(self) -> int:
        return (
            self.refreshed
            + self.pointers_invalidated
            + self.pointers_skipped
            + self.untracked
            + self.duplicates
        )


def _last_occurrence_mask(feature_ids: np.ndarray) -> np.ndarray:
    """Boolean mask keeping only the last occurrence of each ID."""
    # np.unique keeps the *first* occurrence; reverse to keep the last.
    reversed_ids = feature_ids[::-1]
    _, first_in_reversed = np.unique(reversed_ids, return_index=True)
    keep = np.zeros(len(feature_ids), dtype=bool)
    keep[len(feature_ids) - 1 - first_in_reversed] = True
    return keep


class UpdateApplier:
    """Applies trainer-pushed embedding refreshes to a flat cache."""

    def __init__(self, cache: FlatCache, invalidate_pointers: bool = True):
        self.cache = cache
        self.invalidate_pointers = invalidate_pointers
        self.applied_batches = 0

    def apply(
        self,
        table_id: int,
        feature_ids: np.ndarray,
        vectors: np.ndarray,
        executor: Optional[Executor] = None,
    ) -> UpdateOutcome:
        """Refresh one table's updated embeddings inside the cache.

        Args:
            table_id: table whose parameters changed.
            feature_ids: updated IDs; duplicates resolve last-write-wins
                (only the final row per ID touches the cache).
            vectors: the new embedding rows, aligned with ``feature_ids``.
            executor: when given, the refresh kernels are accounted on the
                simulated timeline (category OTHER — off the query path).
        """
        feature_ids = np.ascontiguousarray(feature_ids, dtype=np.uint64)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape[0] != len(feature_ids):
            raise WorkloadError("updates: ids/vectors length mismatch")
        dim = self.cache._dim_of_table[table_id]
        if vectors.shape[1] != dim:
            raise WorkloadError(
                f"updates: expected dim {dim}, got {vectors.shape[1]}"
            )
        self.applied_batches += 1

        total = len(feature_ids)
        duplicates = 0
        if total:
            keep = _last_occurrence_mask(feature_ids)
            duplicates = int(total - keep.sum())
            if duplicates:
                feature_ids = feature_ids[keep]
                vectors = vectors[keep]

        keys = self.cache.encode(table_id, feature_ids)
        found, pointers, _ = self.cache.index.lookup(keys)
        dram = found & is_dram_pointer(pointers)
        cached = found & ~dram

        refreshed = 0
        if cached.any():
            # In-place refresh: write the pool slots, then bump versions.
            from .unified_index import untag

            locations = untag(pointers[cached])
            self.cache.pool.write(locations, vectors[cached])
            # Version bump = re-stamp via a lookup touch at current clock.
            self.cache.index.lookup(keys[cached], stamp=self.cache._clock)
            refreshed = int(cached.sum())
            if executor is not None:
                executor.launch(
                    _copy_kernel_spec("update_copy", refreshed, dim,
                                      executor.hw),
                    stream=executor.stream("copy"),
                    category=Category.OTHER,
                )
                executor.launch(
                    _index_kernel_spec("update_index", refreshed),
                    stream=executor.stream("main"),
                    category=Category.OTHER,
                )

        invalidated = 0
        skipped = 0
        if dram.any():
            if self.invalidate_pointers:
                invalidated = self.cache.invalidate_dram_pointers(keys[dram])
                skipped = int(dram.sum()) - invalidated
            else:
                skipped = int(dram.sum())

        untracked = int(len(keys) - refreshed - int(dram.sum()))
        return UpdateOutcome(
            refreshed=refreshed,
            pointers_invalidated=invalidated,
            untracked=untracked,
            duplicates=duplicates,
            pointers_skipped=skipped,
        )
