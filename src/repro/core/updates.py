"""Parameter-update propagation: cache coherence with model refreshes.

Production recommendation models are continuously retrained; refreshed
embeddings stream into the serving fleet while inference keeps running.
A GPU-resident cache must not keep serving stale vectors.  The paper's
machinery already contains the needed primitive — each index slot's
timestamp "also acts as a version number to detect concurrent read-write
conflicts" (§3.1) — and its deduplicating guarantees one writer per key.

:class:`UpdateApplier` builds on that:

* updates arrive as (table, feature_id, vector) batches from the trainer;
* cached keys are *refreshed in place* (write the pool slot, bump the
  version stamp) — one copying kernel plus one indexing kernel, the same
  decoupled shape as replacement (§3.3);
* unified-index DRAM pointers for updated keys are invalidated when the
  update also relocated the host copy;
* uncached keys cost nothing (the cache simply doesn't know them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import WorkloadError
from ..gpusim.executor import Executor
from ..gpusim.stats import Category
from .flat_cache import FlatCache
from .unified_index import is_dram_pointer
from .workflow import _copy_kernel_spec, _index_kernel_spec


@dataclass(frozen=True)
class UpdateOutcome:
    """What one update batch did to the cache."""

    refreshed: int
    pointers_invalidated: int
    untracked: int

    @property
    def total(self) -> int:
        return self.refreshed + self.pointers_invalidated + self.untracked


class UpdateApplier:
    """Applies trainer-pushed embedding refreshes to a flat cache."""

    def __init__(self, cache: FlatCache, invalidate_pointers: bool = True):
        self.cache = cache
        self.invalidate_pointers = invalidate_pointers
        self.applied_batches = 0

    def apply(
        self,
        table_id: int,
        feature_ids: np.ndarray,
        vectors: np.ndarray,
        executor: Optional[Executor] = None,
    ) -> UpdateOutcome:
        """Refresh one table's updated embeddings inside the cache.

        Args:
            table_id: table whose parameters changed.
            feature_ids: updated IDs (duplicates tolerated; last wins is
                irrelevant since the trainer sends one row per ID).
            vectors: the new embedding rows, aligned with ``feature_ids``.
            executor: when given, the refresh kernels are accounted on the
                simulated timeline (category OTHER — off the query path).
        """
        feature_ids = np.ascontiguousarray(feature_ids, dtype=np.uint64)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape[0] != len(feature_ids):
            raise WorkloadError("updates: ids/vectors length mismatch")
        dim = self.cache._dim_of_table[table_id]
        if vectors.shape[1] != dim:
            raise WorkloadError(
                f"updates: expected dim {dim}, got {vectors.shape[1]}"
            )
        self.applied_batches += 1

        keys = self.cache.encode(table_id, feature_ids)
        found, pointers, _ = self.cache.index.lookup(keys)
        dram = found & is_dram_pointer(pointers)
        cached = found & ~dram

        refreshed = 0
        if cached.any():
            # In-place refresh: write the pool slots, then bump versions.
            from .unified_index import untag

            locations = untag(pointers[cached])
            self.cache.pool.write(locations, vectors[cached])
            # Version bump = re-stamp via a lookup touch at current clock.
            self.cache.index.lookup(keys[cached], stamp=self.cache._clock)
            refreshed = int(cached.sum())
            if executor is not None:
                executor.launch(
                    _copy_kernel_spec("update_copy", refreshed, dim,
                                      executor.hw),
                    stream=executor.stream("copy"),
                    category=Category.OTHER,
                )
                executor.launch(
                    _index_kernel_spec("update_index", refreshed),
                    stream=executor.stream("main"),
                    category=Category.OTHER,
                )

        invalidated = 0
        if self.invalidate_pointers and dram.any():
            removed = self.cache.invalidate_dram_pointers(keys[dram])
            invalidated = removed

        untracked = int(len(keys) - refreshed - int(dram.sum()))
        return UpdateOutcome(
            refreshed=refreshed,
            pointers_invalidated=invalidated,
            untracked=untracked,
        )
