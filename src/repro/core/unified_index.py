"""Unified index: GPU-side pointers into the CPU-DRAM layer (paper §3.3).

Fleche opportunistically records the DRAM locations of selected cold
embeddings inside the flat cache's index, tagging the pointer's least
significant bit.  A miss whose entry carries a DRAM pointer skips the slow
host-side hash indexing entirely — the embedding still travels over PCIe,
but the random DRAM probe chain is replaced by the GPU's parallel lookup.

The pointer tagging scheme here follows the paper exactly: payloads are
shifted left one bit, and the LSB distinguishes cache locations (0) from
DRAM pointers (1).

:class:`UnifiedIndexTuner` implements the paper's empirical capacity rule:
grow the unified index while performance improves, stop at the peak, and
reset when a significant decline signals a workload change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError

_TAG_BIT = np.uint64(1)


def tag_cache_location(locations: np.ndarray) -> np.ndarray:
    """Encode memory-pool locations as untagged pointers (LSB = 0)."""
    return np.asarray(locations, dtype=np.uint64) << np.uint64(1)


def tag_dram_pointer(rows: np.ndarray) -> np.ndarray:
    """Encode DRAM rows as tagged pointers (LSB = 1)."""
    return (np.asarray(rows, dtype=np.uint64) << np.uint64(1)) | _TAG_BIT


def is_dram_pointer(pointers: np.ndarray) -> np.ndarray:
    """Boolean mask: which pointers reference the CPU-DRAM layer."""
    return (np.asarray(pointers, dtype=np.uint64) & _TAG_BIT).astype(bool)


def untag(pointers: np.ndarray) -> np.ndarray:
    """Strip the tag bit, recovering the raw location / row value."""
    return np.asarray(pointers, dtype=np.uint64) >> np.uint64(1)


@dataclass
class TunerDecision:
    """One step of the capacity auto-tuner."""

    capacity: int
    action: str  # "grow", "hold", or "reset"


class UnifiedIndexTuner:
    """Empirical capacity tuner for the unified index (paper §3.3).

    The paper's rule — grow from empty while performance improves, pause at
    the peak, reset on a significant decline — implemented as a *windowed
    hill climber*: latencies are averaged over a window (smoothing batch
    noise and the cache-warmup transient), and each window the capacity
    takes one step in the current direction, reversing when the step made
    things worse.  Capacity therefore keeps tracking the optimum — near
    zero when pointers do not pay for themselves on the workload, near the
    maximum when DRAM indexing dominates.  A drastic regression against the
    best window seen (workload change) clears the index and restarts.
    """

    def __init__(
        self,
        max_capacity: int,
        step: Optional[int] = None,
        window: int = 4,
        regression_tolerance: float = 0.25,
    ):
        if max_capacity < 0:
            raise ConfigError("max_capacity must be >= 0")
        if window <= 0:
            raise ConfigError("window must be positive")
        if not 0.0 < regression_tolerance < 1.0:
            raise ConfigError("regression_tolerance must be in (0, 1)")
        self.max_capacity = max_capacity
        self.step = step or max(1, max_capacity // 8)
        self.window = window
        self.regression_tolerance = regression_tolerance
        self.capacity = 0
        self._direction = 1
        self._pending: list = []
        self._last_window: Optional[float] = None
        self._best_window: Optional[float] = None

    def _reset_search(self) -> TunerDecision:
        self.capacity = 0
        self._direction = 1
        self._pending.clear()
        self._last_window = None
        self._best_window = None
        return TunerDecision(self.capacity, "reset")

    def observe(self, batch_latency: float) -> TunerDecision:
        """Feed one measured batch latency; returns the new capacity."""
        self._pending.append(batch_latency)
        if len(self._pending) < self.window:
            return TunerDecision(self.capacity, "hold")

        mean = sum(self._pending) / len(self._pending)
        self._pending.clear()

        if (
            self._best_window is not None
            and mean > self._best_window * (1.0 + self.regression_tolerance)
        ):
            return self._reset_search()  # workload changed

        if self._best_window is None or mean < self._best_window:
            self._best_window = mean

        action = "grow" if self._direction > 0 else "shrink"
        if self._last_window is not None and mean > self._last_window:
            # Last step hurt: walk back the other way.
            self._direction = -self._direction
            action = "backoff"
        self._last_window = mean

        proposed = self.capacity + self._direction * self.step
        if proposed < 0 or proposed > self.max_capacity:
            self._direction = -self._direction
            proposed = self.capacity + self._direction * self.step
            proposed = min(max(proposed, 0), self.max_capacity)
        self.capacity = proposed
        return TunerDecision(self.capacity, action)


def split_pointers(pointers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split tagged pointers into (cache mask, raw values)."""
    pointers = np.asarray(pointers, dtype=np.uint64)
    dram = is_dram_pointer(pointers)
    return ~dram, untag(pointers)
