"""Shared interface and result types for embedding cache schemes.

Both the HugeCTR-style per-table baseline and Fleche implement
:class:`EmbeddingCacheScheme`: given one :class:`~repro.workloads.trace.TraceBatch`
and an :class:`~repro.gpusim.Executor`, produce the per-table output
matrices and drive the simulated timeline through the query.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..gpusim.executor import Executor
from ..obs.registry import MetricsRegistry, Observable
from ..workloads.trace import TraceBatch

#: Canonical stage names of a staged embedding query.  ``STAGE_INDEX``
#: covers encode/dedup plus cache indexing (host-driven), ``STAGE_FETCH``
#: the CPU-DRAM miss fetch (host thread + PCIe link), and ``STAGE_COPY``
#: the copy/restore/assemble tail (device streams).  The inference engine
#: appends its own ``STAGE_DENSE`` for the MLP.
STAGE_INDEX = "index"
STAGE_FETCH = "fetch"
STAGE_COPY = "copy"
STAGE_DENSE = "dense"


def drain_stages(stages):
    """Run a staged-query generator to completion; return its result.

    Stage generators follow the protocol ``yield <stage-name>`` *before*
    performing that stage's work, then ``return result`` — so a driver can
    schedule each stage before it executes.  Draining with no scheduling
    in between reproduces the plain sequential query exactly.
    """
    try:
        while True:
            next(stages)
    except StopIteration as stop:
        return stop.value


@dataclass
class CacheQueryResult:
    """Outcome of one batched embedding-layer query.

    Attributes:
        outputs: per-table output matrices ``O_i`` with shape
            ``len(ID_List_i) x d_i`` (the paper's notation, §2.2).
        hits: cache hits among *deduplicated* keys.
        misses: cache misses among deduplicated keys.
        unified_hits: misses whose DRAM location was resolved by the GPU
            unified index (bypassing host indexing, §3.3).
        unique_keys: deduplicated key count of the batch.
        total_keys: raw key count of the batch.
        coalesced_keys: missed keys served from another in-flight batch's
            pending fetch instead of a fresh DRAM/remote query (pipelined
            serving only; always 0 on the sequential path).
        coalesced_degraded: coalesced keys whose shared fetch had served a
            degraded (stale/default) vector.
        promoted_keys: cached entries moved to a hotter (more precise)
            tier during this query's hit pass (mixed-precision schemes
            only; always 0 otherwise).  Entry counts — the step-weighted
            ``precision.promotions``/``precision.demotions`` counters are
            incremented by the cache itself.
        demoted_keys: entries moved to a colder tier, same convention.
        per_table_hits: per-access hit counts by table index (duplicates
            weighted), parallel to the batch's tables; empty when the
            scheme does not break hits down by table.
        per_table_misses: per-access miss counts by table index, same
            convention as ``per_table_hits``.
    """

    outputs: List[np.ndarray]
    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    unique_keys: int = 0
    total_keys: int = 0
    coalesced_keys: int = 0
    coalesced_degraded: int = 0
    promoted_keys: int = 0
    demoted_keys: int = 0
    per_table_hits: List[int] = field(default_factory=list)
    per_table_misses: List[int] = field(default_factory=list)
    #: ``leader batch index -> coalesced key count``: which in-flight
    #: batch's pending fetch this batch's coalesced keys joined.  Filled
    #: only when the coalescer's source tracking is on (a request tracer
    #: is attached); empty otherwise — the causal link the critical-path
    #: analyzer uses to attribute ``coalesce_wait`` to the leader.
    coalesce_sources: Dict[int, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hit rate over deduplicated keys (the paper's cache hit rate)."""
        denominator = self.hits + self.misses
        return self.hits / denominator if denominator else 0.0


def record_query_metrics(
    registry: MetricsRegistry,
    result: CacheQueryResult,
    batch: TraceBatch = None,
) -> None:
    """Fold one query result into the shared registry.

    Called once per batch from the engine's stage generator, so every
    scheme — Fleche, per-table, no-cache — feeds the same ``cache.*``
    counters and the conservation law ``cache.lookups == cache.hits +
    cache.misses`` audits each backend's own accounting.

    When ``batch`` is given, per-table access counts are recorded under
    ``cache.table_lookups{table=t}`` for every scheme, and the optional
    per-table hit/miss split (``per_table_hits``/``per_table_misses``)
    lands under ``cache.table_hits``/``cache.table_misses`` — the raw
    material for the hotspot-drift detector's per-table distributions.
    Zero increments are skipped so quiet tables never pollute reports.
    """
    registry.inc("cache.queries")
    registry.inc("cache.lookups", result.total_keys)
    registry.inc("cache.hits", result.hits)
    registry.inc("cache.misses", result.misses)
    registry.inc("cache.unified_hits", result.unified_hits)
    registry.inc("cache.unique_keys", result.unique_keys)
    registry.inc("cache.coalesced_keys", result.coalesced_keys)
    registry.inc("cache.coalesced_degraded", result.coalesced_degraded)
    if batch is None:
        return
    for t, ids in enumerate(batch.ids_per_table):
        n = len(ids)
        if n:
            registry.inc("cache.table_lookups", n, table=str(t))
    for t, n in enumerate(result.per_table_hits):
        if n:
            registry.inc("cache.table_hits", n, table=str(t))
    for t, n in enumerate(result.per_table_misses):
        if n:
            registry.inc("cache.table_misses", n, table=str(t))


@dataclass
class HitRateAccumulator:
    """Aggregates hit statistics across many batches."""

    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    per_batch: List[float] = field(default_factory=list)

    def record(self, result: CacheQueryResult) -> None:
        self.hits += result.hits
        self.misses += result.misses
        self.unified_hits += result.unified_hits
        self.per_batch.append(result.hit_rate)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EmbeddingCacheScheme(Observable, abc.ABC):
    """A GPU-resident embedding cache scheme under test."""

    #: Human-readable scheme name used by the benchmark reports.
    name: str = "abstract"

    def _register_observability(self, registry) -> None:
        """Propagate a shared registry to observable components.

        Schemes carry their cache and backing store under conventional
        attribute names; anything that is itself :class:`Observable`
        (FlatCache, TieredParameterStore, ...) is rebound so its counters
        and audit hooks land in the engine's registry.
        """
        for attr in ("cache", "store"):
            child = getattr(self, attr, None)
            bind = getattr(child, "bind_observability", None)
            if bind is not None:
                bind(registry)

    @abc.abstractmethod
    def query(self, batch: TraceBatch, executor: Executor) -> CacheQueryResult:
        """Serve one batch, advancing ``executor``'s simulated timeline."""

    def query_stages(
        self, batch: TraceBatch, executor: Executor, coalescer=None
    ):
        """Staged variant of :meth:`query` for pipelined serving.

        A generator following the :func:`drain_stages` protocol: it yields
        the name of the *next* stage before performing it, so a scheduler
        can interleave stages of concurrent batches, and returns the
        :class:`CacheQueryResult`.  ``coalescer`` (an in-flight miss table
        with ``match``/``publish`` methods, or ``None``) lets overlapping
        batches share DRAM fetches for the same flat key; schemes that do
        not support it simply ignore the argument.

        The default implementation exposes the whole query as one
        host-driven ``STAGE_INDEX`` stage, which is always correct —
        just pipelined at batch granularity only.
        """
        yield STAGE_INDEX
        return self.query(batch, executor)

    def advance_clock(self, now: float) -> None:
        """Propagate the simulated wall-clock to a fault-aware backing.

        Schemes over a :class:`~repro.multitier.hierarchy.TieredParameterStore`
        forward ``now`` so fault windows (shard outages, DRAM failures)
        line up with request time; everything else is a no-op.
        """
        advance = getattr(getattr(self, "store", None), "advance_to", None)
        if advance is not None:
            advance(now)

    @abc.abstractmethod
    def memory_usage(self) -> Dict[str, int]:
        """HBM bytes consumed, keyed by component (pool, index, ...)."""

    def warm(self, batches, executor: Executor) -> None:
        """Replay ``batches`` to warm the cache (timings discarded)."""
        for batch in batches:
            self.query(batch, executor)
        executor.reset()
