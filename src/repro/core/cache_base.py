"""Shared interface and result types for embedding cache schemes.

Both the HugeCTR-style per-table baseline and Fleche implement
:class:`EmbeddingCacheScheme`: given one :class:`~repro.workloads.trace.TraceBatch`
and an :class:`~repro.gpusim.Executor`, produce the per-table output
matrices and drive the simulated timeline through the query.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..gpusim.executor import Executor
from ..workloads.trace import TraceBatch


@dataclass
class CacheQueryResult:
    """Outcome of one batched embedding-layer query.

    Attributes:
        outputs: per-table output matrices ``O_i`` with shape
            ``len(ID_List_i) x d_i`` (the paper's notation, §2.2).
        hits: cache hits among *deduplicated* keys.
        misses: cache misses among deduplicated keys.
        unified_hits: misses whose DRAM location was resolved by the GPU
            unified index (bypassing host indexing, §3.3).
        unique_keys: deduplicated key count of the batch.
        total_keys: raw key count of the batch.
    """

    outputs: List[np.ndarray]
    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    unique_keys: int = 0
    total_keys: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate over deduplicated keys (the paper's cache hit rate)."""
        denominator = self.hits + self.misses
        return self.hits / denominator if denominator else 0.0


@dataclass
class HitRateAccumulator:
    """Aggregates hit statistics across many batches."""

    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    per_batch: List[float] = field(default_factory=list)

    def record(self, result: CacheQueryResult) -> None:
        self.hits += result.hits
        self.misses += result.misses
        self.unified_hits += result.unified_hits
        self.per_batch.append(result.hit_rate)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EmbeddingCacheScheme(abc.ABC):
    """A GPU-resident embedding cache scheme under test."""

    #: Human-readable scheme name used by the benchmark reports.
    name: str = "abstract"

    @abc.abstractmethod
    def query(self, batch: TraceBatch, executor: Executor) -> CacheQueryResult:
        """Serve one batch, advancing ``executor``'s simulated timeline."""

    def advance_clock(self, now: float) -> None:
        """Propagate the simulated wall-clock to a fault-aware backing.

        Schemes over a :class:`~repro.multitier.hierarchy.TieredParameterStore`
        forward ``now`` so fault windows (shard outages, DRAM failures)
        line up with request time; everything else is a no-op.
        """
        advance = getattr(getattr(self, "store", None), "advance_to", None)
        if advance is not None:
            advance(now)

    @abc.abstractmethod
    def memory_usage(self) -> Dict[str, int]:
        """HBM bytes consumed, keyed by component (pool, index, ...)."""

    def warm(self, batches, executor: Executor) -> None:
        """Replay ``batches`` to warm the cache (timings discarded)."""
        for batch in batches:
            self.query(batch, executor)
        executor.reset()
