"""End-to-end inference engine: embedding layer + pooling + dense part.

One inference step (paper Figure 1):

1. the embedding cache scheme serves all sparse lookups (simulated timing
   through the executor);
2. pooled embedding vectors and dense features are concatenated;
3. the DCN's cross and MLP kernels run on the GPU (FLOP-roofline timing,
   one launch per layer);
4. the batch's click probabilities come back.

The engine works with *any* :class:`~repro.core.cache_base.EmbeddingCacheScheme`
— Fleche, the per-table baseline, or no cache — which is how every
end-to-end figure of the paper is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from ..gpusim.executor import Executor
from ..gpusim.stats import Category, TimeBreakdown
from ..hardware import HardwareSpec
from ..model.dcn import DeepCrossNetwork
from ..model.pooling import sum_pool
from ..obs.registry import MetricsRegistry, install_conservation_laws
from ..workloads.trace import TraceBatch
from .cache_base import (
    STAGE_DENSE,
    CacheQueryResult,
    EmbeddingCacheScheme,
    record_query_metrics,
)


@dataclass
class InferenceResult:
    """Outcome of one engine run over a sequence of batches."""

    #: total simulated wall-clock of the measured window (seconds).
    elapsed: float
    #: per-batch simulated latencies (seconds).
    latencies: List[float] = field(default_factory=list)
    #: per-batch embedding-layer latencies (seconds).
    embedding_latencies: List[float] = field(default_factory=list)
    samples: int = 0
    hits: int = 0
    misses: int = 0
    unified_hits: int = 0
    #: cached entries moved across precision tiers over the run
    #: (mixed-precision schemes only; always 0 otherwise).
    promotions: int = 0
    demotions: int = 0
    breakdown: Optional[TimeBreakdown] = None
    #: final batch's click probabilities (for correctness checks).
    last_probabilities: Optional[np.ndarray] = None

    @property
    def throughput(self) -> float:
        """Inferences per second over the measured window."""
        return self.samples / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds (q in [0, 100])."""
        return float(np.percentile(self.latencies, q)) if self.latencies else 0.0

    @property
    def median_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)


class InferenceEngine:
    """Drives a cache scheme plus a dense model over traces."""

    def __init__(
        self,
        scheme: EmbeddingCacheScheme,
        hw: HardwareSpec,
        model: Optional[DeepCrossNetwork] = None,
        ids_per_field: int = 1,
        include_dense: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.scheme = scheme
        self.hw = hw
        self.model = model
        self.ids_per_field = ids_per_field
        self.include_dense = include_dense and model is not None
        #: the engine's metrics registry — the single source of truth for
        #: cache/tier/fault counters; the scheme and everything observable
        #: beneath it (flat cache, tiered store, fetch client) is bound to
        #: it, and the standard conservation-law catalogue is installed.
        self.obs = registry if registry is not None else MetricsRegistry()
        install_conservation_laws(self.obs)
        scheme.bind_observability(self.obs)

    # ------------------------------------------------------------------ steps

    def _run_dense(
        self,
        batch: TraceBatch,
        query: CacheQueryResult,
        executor: Executor,
    ) -> np.ndarray:
        """Pool, concatenate, and run the dense part (timed per kernel)."""
        pooled = [
            sum_pool(output, self.ids_per_field) for output in query.outputs
        ]
        x = self.model.concat_inputs(pooled)
        dense_stream = executor.stream("dense")
        for spec in self.model.kernels(batch.batch_size):
            executor.launch(spec, stream=dense_stream, category=Category.MLP)
        executor.synchronize(dense_stream)
        return self.model.forward(x).probabilities

    def run_batch_stages(
        self,
        batch: TraceBatch,
        executor: Executor,
        now: Optional[float] = None,
        coalescer=None,
        trace=None,
    ):
        """Staged variant of :meth:`run_batch` for pipelined serving.

        A generator following the stage protocol of
        :func:`~repro.core.cache_base.drain_stages`: it yields the name of
        each stage *before* performing it — the scheme's embedding stages
        first, then ``STAGE_DENSE`` when a dense model is attached — and
        returns ``(query result, probabilities or None)``.  Driving it to
        exhaustion with no scheduling in between performs exactly the
        sequential batch.

        ``trace`` (optional) is the batch's request-tracing record
        (:class:`~repro.obs.reqtrace.BatchTraceRecord`); the engine
        stamps the query's coalesced-miss attribution into it at the
        same choke point that feeds the metrics registry, so the trace
        sees exactly the numbers the counters see.
        """
        if now is not None:
            self.scheme.advance_clock(now)
        stages = self.scheme.query_stages(batch, executor, coalescer=coalescer)
        query = None
        try:
            stage = next(stages)
            while True:
                yield stage
                stage = stages.send(None)
        except StopIteration as stop:
            query = stop.value
        probabilities = None
        if self.include_dense:
            yield STAGE_DENSE
            probabilities = self._run_dense(batch, query, executor)
        record_query_metrics(self.obs, query, batch=batch)
        if trace is not None:
            trace.note_query(query)
        return query, probabilities

    def run_batch(
        self,
        batch: TraceBatch,
        executor: Executor,
        now: Optional[float] = None,
    ) -> tuple:
        """Run one batch; returns (query result, probabilities or None).

        ``now`` is the batch's simulated dispatch time; when given it is
        forwarded to the cache scheme so a fault-aware backing store can
        align outage windows with wall-clock (no-op otherwise).
        """
        t0 = executor.elapsed()
        t_embed: Optional[float] = None
        stages = self.run_batch_stages(batch, executor, now=now)
        try:
            stage = next(stages)
            while True:
                if stage == STAGE_DENSE:
                    t_embed = executor.elapsed()
                stage = stages.send(None)
        except StopIteration as stop:
            query, probabilities = stop.value
        t1 = executor.elapsed()
        if t_embed is None:
            t_embed = t1
        return query, probabilities, t_embed - t0, t1 - t0

    # ------------------------------------------------------------------ runs

    def run(
        self,
        batches: Iterable[TraceBatch],
        executor: Executor,
        warmup: int = 0,
        collector=None,
    ) -> InferenceResult:
        """Replay ``batches``; the first ``warmup`` warm the cache untimed.

        ``collector`` (a :class:`~repro.obs.timeseries.WindowedCollector`)
        turns the replay into windowed time-series: each batch's registry
        delta and latency are folded at its completion instant on the
        simulated clock.  An unbound collector is bound to the engine's
        registry automatically.
        """
        batches = list(batches)
        for batch in batches[:warmup]:
            self.scheme.query(batch, executor)
        executor.reset()
        if collector is not None:
            if collector.registry is None:
                collector.bind(self.obs, start=0.0)
            collector.begin_run(0.0)

        result = InferenceResult(elapsed=0.0)
        for batch in batches[warmup:]:
            query, probabilities, embed_latency, latency = self.run_batch(
                batch, executor
            )
            result.latencies.append(latency)
            result.embedding_latencies.append(embed_latency)
            result.samples += batch.batch_size
            result.hits += query.hits
            result.misses += query.misses
            result.unified_hits += query.unified_hits
            result.promotions += query.promoted_keys
            result.demotions += query.demoted_keys
            if probabilities is not None:
                result.last_probabilities = probabilities
            if collector is not None:
                collector.observe_batch(executor.elapsed(), [latency])
        result.elapsed = executor.drain()
        result.breakdown = executor.stats
        if collector is not None:
            collector.flush(result.elapsed)
        return result
