"""Self-identified kernel fusion (paper §3.2, Figure 6).

Per-table cache queries are calls to the *same* kernel function with
different arguments, so instead of ``n`` launches Fleche issues one fused
launch and lets each thread work out which original kernel it belongs to:

1. **Initialization** — the CPU builds an *Args Array* with the original n
   kernels' arguments and a prefix-sum array ``scan`` over their thread
   counts, then launches ``sum(m_i)`` threads.
2. **Identification** — thread ``tid`` binary-searches ``scan`` for the
   largest element not exceeding ``tid``; its index ``phi`` names the
   original kernel, and ``tid - scan[phi]`` its position inside it.
   Rounding each kernel's thread count to warp multiples keeps the branch
   conditions of every warp uniform, so the search causes no divergence.
3. **Execution** — the thread reads its arguments from the Args Array and
   runs the original job.

:func:`build_fusion_plan` performs phase 1; :func:`identify_thread` is the
phase-2 search, implemented exactly as each GPU thread would run it (and
exercised heavily in the test suite); the workflow module performs phase 3
by fusing the per-table :class:`~repro.gpusim.KernelSpec` work into one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..gpusim.kernel import KernelSpec


def round_to_warp(threads: int, warp_size: int = 32) -> int:
    """Round a thread count up to a warp multiple (divergence-free search)."""
    if threads <= 0:
        return 0
    return -(-threads // warp_size) * warp_size


@dataclass(frozen=True)
class FusionPlan:
    """Phase-1 output: args array + prefix-sum scan + the fused spec."""

    #: Original per-kernel arguments (opaque to the fusion machinery).
    args_array: Tuple[object, ...]
    #: ``scan[i]`` = threads of kernels 0..i-1; ``scan[n]`` = total threads.
    scan: np.ndarray
    #: The single fused kernel covering all original work.
    fused_spec: KernelSpec

    @property
    def num_kernels(self) -> int:
        return len(self.args_array)

    @property
    def total_threads(self) -> int:
        return int(self.scan[-1])

    @property
    def metadata_bytes(self) -> int:
        """Host->device bytes for the scan and args arrays (GDRCopy-sized)."""
        # scan: 4 bytes per entry; args: pointer+dim+count ~ 24 bytes/kernel.
        return 4 * len(self.scan) + 24 * self.num_kernels


def build_fusion_plan(
    kernels: Sequence[KernelSpec],
    args: Sequence[object] = None,
    warp_size: int = 32,
    name: str = "fused_query",
) -> FusionPlan:
    """Fuse ``kernels`` into one launch (phase 1 of §3.2).

    Thread counts are rounded up to warp multiples before building the
    prefix sum, matching the paper's divergence-free guarantee.
    """
    if not kernels:
        raise SimulationError("cannot fuse an empty kernel list")
    if args is not None and len(args) != len(kernels):
        raise SimulationError("args array length must match kernel count")

    rounded = [round_to_warp(k.threads, warp_size) for k in kernels]
    scan = np.zeros(len(kernels) + 1, dtype=np.int64)
    np.cumsum(rounded, out=scan[1:])

    fused = KernelSpec(
        name=name,
        threads=int(scan[-1]),
        stream_bytes=sum(k.stream_bytes for k in kernels),
        random_transactions=sum(k.random_transactions for k in kernels),
        dependent_hops=max((k.dependent_hops for k in kernels), default=0.0),
        flops=sum(k.flops for k in kernels),
    )
    args_tuple = tuple(args) if args is not None else tuple(
        k.name for k in kernels
    )
    return FusionPlan(args_array=args_tuple, scan=scan, fused_spec=fused)


def identify_thread(plan: FusionPlan, tid: int) -> Tuple[int, int]:
    """Phase 2: map fused thread ``tid`` to (original kernel, local tid).

    Performs the binary search each GPU thread runs on the shared ``scan``
    array: find the largest scan element that is <= ``tid``.
    """
    if not 0 <= tid < plan.total_threads:
        raise SimulationError(
            f"tid {tid} outside fused launch of {plan.total_threads} threads"
        )
    scan = plan.scan
    lo, hi = 0, len(scan) - 1
    # Invariant: scan[lo] <= tid < scan[hi].
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if scan[mid] <= tid:
            lo = mid
        else:
            hi = mid
    return lo, tid - int(scan[lo])


def identify_threads(plan: FusionPlan, tids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised phase 2 for a whole launch (used by tests/examples)."""
    tids = np.asarray(tids, dtype=np.int64)
    if len(tids) and (tids.min() < 0 or tids.max() >= plan.total_threads):
        raise SimulationError("tid outside fused launch")
    kernel_ids = np.searchsorted(plan.scan, tids, side="right") - 1
    local = tids - plan.scan[kernel_ids]
    return kernel_ids.astype(np.int64), local.astype(np.int64)


def warp_divergence_free(plan: FusionPlan, warp_size: int = 32) -> bool:
    """Check the paper's divergence property: one kernel id per warp."""
    total = plan.total_threads
    if total == 0:
        return True
    tids = np.arange(total, dtype=np.int64)
    kernel_ids, _ = identify_threads(plan, tids)
    per_warp = kernel_ids.reshape(-1, warp_size) if total % warp_size == 0 else None
    if per_warp is None:
        return False
    return bool((per_warp == per_warp[:, :1]).all())


def unfused_specs(kernels: Sequence[KernelSpec]) -> List[KernelSpec]:
    """Identity helper making call sites symmetrical with the fused path."""
    return list(kernels)
