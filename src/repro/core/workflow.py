"""The Fleche embedding-layer query workflow (paper §3.1-§3.3, Figure 8).

One batched query proceeds as:

1. **Re-encode** all feature IDs to flat keys (host, nearly free).
2. **Deduplicate** keys on device (one radix-sort kernel, "Other" time).
3. **Index** the flat cache — with self-identified kernel fusion this is a
   single kernel regardless of table count; without it, one kernel per
   table (the ablation Experiment #8 measures as "+FC").
4. **Decoupled copy**: a separate gather kernel copies hit embeddings to
   the output while the CPU *simultaneously* queries the CPU-DRAM layer
   for the misses (Figure 8b).  With the coupled ablation the copy rides
   inside the indexing kernel and the DRAM query must wait.
5. **Unified index**: misses whose index entry carried a DRAM pointer skip
   the host-side hash probing (Figure 8c).
6. **Replacement**: missing embeddings come back over PCIe, a copying
   kernel writes them into the memory pool, then an indexing kernel
   publishes the new key -> location mappings.
7. **Restore** the full output matrices from the deduplicated rows.

All data movement really happens (numpy); all timing flows through the
:class:`~repro.gpusim.Executor` so maintenance and execution are accounted
the way the paper measures them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..gpusim.executor import Executor, Stream
from ..gpusim.kernel import KernelSpec, coalesced_bytes
from ..gpusim.stats import Category
from ..hardware import HardwareSpec
from ..tables.store import EmbeddingStore
from ..workloads.trace import TraceBatch
from .cache_base import (
    STAGE_COPY,
    STAGE_FETCH,
    STAGE_INDEX,
    CacheQueryResult,
    EmbeddingCacheScheme,
    drain_stages,
)
from .config import FlecheConfig
from .dedup import dedup_kernel_spec, restore_kernel_spec
from .flat_cache import FlatCache
from .fusion import build_fusion_plan
from .unified_index import UnifiedIndexTuner

#: Host cost of re-encoding one table's ID list: a lookup in the dozens-entry
#: mapping table plus one vectorised transform (paper: "ultra-fast and at
#: almost no cost").
_ENCODE_COST_PER_TABLE = 0.2e-6
_ENCODE_COST_PER_KEY = 0.5e-9

#: Threads a warp-cooperative probe dedicates to one key.
_WARP = 32


def _index_kernel_spec(name: str, num_keys: int, hops: float = 1.0) -> KernelSpec:
    """Indexing kernel: one warp probes one key (one 128 B transaction)."""
    return KernelSpec(
        name=name,
        threads=max(num_keys, 1) * _WARP,
        random_transactions=num_keys,
        dependent_hops=hops,
    )


def _copy_kernel_spec(
    name: str,
    rows: int,
    dim: int,
    hw: HardwareSpec,
    read_bytes: Optional[int] = None,
) -> KernelSpec:
    """Decoupled copying kernel: threads scale with embedding dimension.

    Reads are gathers of whole embeddings (coalesced transactions), writes
    are dense; with many threads per embedding the kernel is throughput-
    bound, the improvement §3.3 credits to decoupling.

    ``read_bytes`` is the total *stored* payload behind the gather: a
    mixed-precision cache reads fp16/int8 lines (the dequant is ALU work
    fused into the same pass) while still writing fp32 rows, so its read
    side streams fewer bytes than the write side.
    """
    row_bytes = coalesced_bytes(dim * 4, hw.gpu.transaction_bytes)
    if read_bytes is None:
        read_side = rows * row_bytes
    else:
        per_row = -(-read_bytes // rows) if rows else 0
        read_side = rows * coalesced_bytes(per_row, hw.gpu.transaction_bytes)
    return KernelSpec(
        name=name,
        threads=max(rows, 1) * min(max(dim, _WARP), 256),
        stream_bytes=read_side + rows * row_bytes,
    )


#: Spin-retry rounds warps burn against a held lock while the owner copies
#: its embedding (Figure 7a).  The waste is bounded by the device's
#: concurrency window: only resident warps can spin at any instant.
_LOCK_RETRY_ROUNDS = 5

#: A warp-per-embedding gather moves whole lines one warp at a time; it
#: achieves roughly half the streaming bandwidth of the wide, many-threads-
#: per-embedding gather the decoupled copying kernel uses (§3.3).
_NARROW_GATHER_PENALTY = 2.0


def coupled_query_kernel_spec(
    name: str,
    num_keys: int,
    hit_rows: int,
    output_rows: int,
    dim: int,
    hw: HardwareSpec,
    concurrent_tables: int = 1,
) -> KernelSpec:
    """HugeCTR-style coupled index+copy kernel (Figure 7a).

    One warp locks the entry, then copies the whole embedding while holding
    it: the copy's memory rounds extend the dependent chain, the gather is
    warp-granular (half-rate), and contending warps spin-retry against the
    held lock.  Spin waste is bounded by the device's resident-warp window,
    a *global* resource shared by however many tables' kernels run
    concurrently — callers pass ``concurrent_tables`` so the bound is split
    fairly.
    """
    row_bytes = coalesced_bytes(dim * 4, hw.gpu.transaction_bytes)
    tx_per_embedding = max(1, row_bytes // hw.gpu.transaction_bytes)
    resident_warps = hw.gpu.max_resident_threads // hw.gpu.warp_size
    spin_window = max(1, resident_warps // max(1, concurrent_tables))
    retry_tx = int(
        min(hit_rows, spin_window) * tx_per_embedding * _LOCK_RETRY_ROUNDS
    )
    gather_bytes = int(hit_rows * row_bytes * _NARROW_GATHER_PENALTY)
    out_bytes = row_bytes * output_rows
    return KernelSpec(
        name=name,
        threads=max(num_keys, 1) * _WARP,
        random_transactions=num_keys + retry_tx,
        dependent_hops=1.0 + tx_per_embedding,
        stream_bytes=gather_bytes + out_bytes,
    )


@dataclass
class _DimGroup:
    """Work of one embedding dimension within a batch."""

    dim: int
    #: positions (into the batch's unique-key array) of this group's keys.
    positions: np.ndarray
    unique_keys: np.ndarray
    rep_tables: np.ndarray
    rep_features: np.ndarray


class FlecheEmbeddingLayer(EmbeddingCacheScheme):
    """Fleche: flat cache + fusion + decoupling + unified index."""

    name = "fleche"

    def __init__(
        self,
        store: EmbeddingStore,
        config: FlecheConfig,
        hw: HardwareSpec,
        codec=None,
    ):
        self.store = store
        self.config = config
        self.hw = hw
        self.cache = FlatCache(store.specs, config, codec=codec)
        self._dim_of_table = np.array(
            [spec.dim for spec in store.specs], dtype=np.int64
        )
        self.tuner: Optional[UnifiedIndexTuner] = None
        if config.use_unified_index:
            self.tuner = UnifiedIndexTuner(max_capacity=self.cache.unified_capacity)
            # The tuner starts from an empty unified index and grows it.
            self.cache.set_unified_capacity(0)
        # Giant-model deployments (paper §5): if the store is itself a
        # cache over a remote tier, register for its eviction notices so
        # stale unified-index pointers get erased.
        register = getattr(store, "register_pointer_invalidator", None)
        if register is not None and config.use_unified_index:
            register(self._invalidate_stale_pointers)
        #: Kernel-spec / fusion-plan memos: steady-state batches repeat a
        #: small set of (table, key count, hit count) shapes, so spec
        #: construction amortises to a dict hit (specs and plans are
        #: frozen — safe to share across batches).
        self._spec_memo: Dict[tuple, object] = {}
        self._fusion_memo: Dict[tuple, object] = {}
        self._weighted_dim = (
            int(np.average(self._dim_of_table)) if len(store.specs) else 0
        )
        #: The dataset's single embedding width, or None when tables mix
        #: widths (drives the `_dim_groups` single-group fast path).
        self._uniform_dim = (
            int(self._dim_of_table[0])
            if len(self._dim_of_table)
            and int(self._dim_of_table.min()) == int(self._dim_of_table.max())
            else None
        )

    def _memo_spec(self, key: tuple, build):
        spec = self._spec_memo.get(key)
        if spec is None:
            spec = build()
            if len(self._spec_memo) >= 8192:
                self._spec_memo.clear()
            self._spec_memo[key] = spec
        return spec

    def _invalidate_stale_pointers(self, global_keys: np.ndarray) -> None:
        """Translate DRAM-tier eviction notices into flat-key erasures."""
        global_keys = np.asarray(global_keys, dtype=np.uint64)
        if len(global_keys) == 0:
            return
        tables = (global_keys >> np.uint64(48)).astype(np.int64)
        features = global_keys & np.uint64((1 << 48) - 1)
        # Group by table over a stable sort order (one pass, no per-table
        # mask scans), encode each contiguous run, scatter back.
        order = np.argsort(tables, kind="stable")
        sorted_tables = tables[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], sorted_tables[1:] != sorted_tables[:-1]))
        )
        flat = np.zeros(len(global_keys), dtype=np.uint64)
        for i, start in enumerate(bounds):
            stop = bounds[i + 1] if i + 1 < len(bounds) else len(order)
            run = order[start:stop]
            flat[run] = self.cache.encode(
                int(sorted_tables[start]), features[run]
            )
        self.cache.invalidate_dram_pointers(flat)

    # ------------------------------------------------------------------ public

    def memory_usage(self) -> Dict[str, int]:
        return self.cache.memory_usage()

    def query(self, batch: TraceBatch, executor: Executor) -> CacheQueryResult:
        return drain_stages(self.query_stages(batch, executor))

    def query_stages(
        self, batch: TraceBatch, executor: Executor, coalescer=None
    ):
        """Staged query (see :func:`~repro.core.cache_base.drain_stages`).

        Yields ``STAGE_INDEX`` (encode/dedup/index + miss readback),
        ``STAGE_FETCH`` (decoupled hit-copy kernels overlapping the
        CPU-DRAM miss fetch), and ``STAGE_COPY`` (replacement kernels,
        restore, final synchronisation, output assembly); drained
        back-to-back it performs exactly the operations of the sequential
        query, in the same order.
        """
        if batch.num_tables != self.store.num_tables:
            raise ConfigError(
                f"batch covers {batch.num_tables} tables, store has "
                f"{self.store.num_tables}"
            )
        yield STAGE_INDEX
        start = executor.elapsed()
        self.cache.tick()
        result = yield from self._query_stages(batch, executor, coalescer)
        if self.tuner is not None:
            latency = executor.elapsed() - start
            decision = self.tuner.observe(latency)
            if decision.action == "reset":
                self.cache.clear_unified_index()
            self.cache.set_unified_capacity(decision.capacity)
        return result

    # ------------------------------------------------------------------ phases

    # hot-path: vectorized
    def _encode_batch(self, batch: TraceBatch, executor: Executor) -> np.ndarray:
        """Phase 1: host-side re-encoding of all ID lists to flat keys."""
        encode_time = (
            _ENCODE_COST_PER_TABLE * batch.num_tables
            + _ENCODE_COST_PER_KEY * batch.total_ids
        )
        executor.host_work(encode_time, Category.OTHER)
        keys = [
            self.cache.encode(t, ids) for t, ids in enumerate(batch.ids_per_table)
        ]
        return np.concatenate(keys) if keys else np.zeros(0, np.uint64)

    # hot-path: vectorized
    def _dedup_on_device(
        self, flat_keys: np.ndarray, executor: Executor, stream: Stream
    ):
        """Phase 2: ship keys to the device and deduplicate there."""
        executor.copy(
            flat_keys.nbytes, Category.OTHER, async_stream=stream
        )
        executor.launch(
            self._memo_spec(
                ("dedup", len(flat_keys)),
                lambda: dedup_kernel_spec(len(flat_keys)),
            ),
            stream=stream,
            category=Category.OTHER,
        )
        unique_keys, rep_index, inverse = np.unique(
            flat_keys, return_index=True, return_inverse=True
        )
        return unique_keys, rep_index, inverse.astype(np.int64)

    def _dim_groups(
        self,
        unique_keys: np.ndarray,
        rep_tables: np.ndarray,
        rep_features: np.ndarray,
    ) -> List[_DimGroup]:
        # Uniform-dim fast path (the common case: one embedding width per
        # dataset): a single group covering every position, no masks.
        if self._uniform_dim is not None and len(unique_keys):
            return [
                _DimGroup(
                    dim=self._uniform_dim,
                    positions=np.arange(len(unique_keys)),
                    unique_keys=unique_keys,
                    rep_tables=rep_tables,
                    rep_features=rep_features,
                )
            ]
        dims = self._dim_of_table[rep_tables]
        groups = []
        for dim in np.unique(dims):
            mask = dims == dim
            positions = np.nonzero(mask)[0]
            groups.append(
                _DimGroup(
                    dim=int(dim),
                    positions=positions,
                    unique_keys=unique_keys[positions],
                    rep_tables=rep_tables[positions],
                    rep_features=rep_features[positions],
                )
            )
        return groups

    def _degraded_count(self) -> int:
        """Degraded-key counter of a fault-aware backing store (else 0)."""
        stats = getattr(self.store, "stats", None)
        return int(getattr(stats, "degraded_keys", 0)) if stats else 0

    # ------------------------------------------------------------------ query

    # hot-path: vectorized
    def _query_stages(
        self, batch: TraceBatch, executor: Executor, coalescer=None
    ):
        config = self.config
        main_stream = executor.stream("main")
        copy_stream = executor.stream("copy")

        tables_flat, features_flat = batch.flattened()
        flat_keys = self._encode_batch(batch, executor)
        unique_keys, rep_index, inverse = self._dedup_on_device(
            flat_keys, executor, main_stream
        )
        rep_tables = tables_flat[rep_index]
        rep_features = features_flat[rep_index]

        # --- Phase 3: indexing.  Per-table work is described once; fusion
        # decides whether it becomes a single launch or one per table, and
        # decoupling decides whether the copy rides inside it (coupled) or
        # in separate gather kernels (phase 4a).
        outcome = self.cache.index_lookup(unique_keys)
        # Frequency estimation rides the indexing pass: one sketch fold of
        # the deduplicated keys (no-op unless mixed precision / LFU is on).
        self.cache.observe_keys(unique_keys)
        # Pin the reclamation epoch for the resolve -> gather window: the
        # locations just read from the index must stay readable through
        # phase 4a even if a concurrently pipelined batch's replacement
        # evicts them in between (read-after-delete safety, §3.1).  The
        # sequential path never contends, so this is free there.
        read_epoch = self.cache.reclaimer.pin()
        # One grouped bincount pass replaces the per-table mask loop; the
        # spec for each (table, count[, hit count]) shape is memoized, so
        # steady-state batches build zero new spec objects.
        table_counts = np.bincount(rep_tables, minlength=batch.num_tables)
        if config.decouple_copy:
            per_table_specs = [
                self._memo_spec(
                    ("index", t, count),
                    lambda t=t, count=count: _index_kernel_spec(
                        f"fc_index_t{t}", count
                    ),
                )
                for t, count in enumerate(table_counts.tolist())
            ]
        else:
            # Fleche deduplicates regardless (§4), so the coupled
            # ablation queries unique keys and writes unique rows; the
            # restore kernel expands them, exactly as on the decoupled
            # path.
            hit_counts = np.bincount(
                rep_tables[outcome.cache_hit], minlength=batch.num_tables
            )
            per_table_specs = [
                self._memo_spec(
                    ("coupled", t, count, hits),
                    lambda t=t, count=count, hits=hits:
                        coupled_query_kernel_spec(
                            f"fc_query_t{t}",
                            num_keys=count,
                            hit_rows=hits,
                            output_rows=count,
                            dim=int(self._dim_of_table[t]),
                            hw=self.hw,
                            concurrent_tables=batch.num_tables,
                        ),
                )
                for t, (count, hits) in enumerate(
                    zip(table_counts.tolist(), hit_counts.tolist())
                )
            ]
        if config.use_fusion:
            fusion_key = tuple(per_table_specs)
            plan = self._fusion_memo.get(fusion_key)
            if plan is None:
                plan = build_fusion_plan(
                    per_table_specs, name="fc_index_fused"
                )
                if len(self._fusion_memo) >= 8192:
                    self._fusion_memo.clear()
                self._fusion_memo[fusion_key] = plan
            executor.copy(
                plan.metadata_bytes, Category.CACHE_INDEX, async_stream=main_stream
            )
            executor.launch(
                plan.fused_spec, stream=main_stream,
                category=Category.CACHE_INDEX,
            )
        else:
            for t, spec in enumerate(per_table_specs):  # lint: allow-loop (per table, unfused ablation only)
                stream = executor.stream(f"table{t}")
                executor.copy(
                    24 + 8 * spec.threads // _WARP,
                    Category.CACHE_INDEX,
                    async_stream=stream,
                )
                executor.launch(
                    spec, stream=stream, category=Category.CACHE_INDEX
                )

        # CPU needs the miss list: synchronise and read it back.
        executor.synchronize(None if not config.use_fusion else main_stream)
        miss_mask = outcome.miss
        executor.copy(max(1, int(miss_mask.sum())) * 8, Category.MAINTENANCE)

        # Stage boundary: the miss list is on the host; everything past
        # this point is the fetch/replacement phase a pipelined server may
        # overlap with another batch's indexing.
        yield STAGE_FETCH

        groups = self._dim_groups(unique_keys, rep_tables, rep_features)
        unique_vectors: Dict[int, np.ndarray] = {}
        for group in groups:  # lint: allow-loop (per dim group)
            unique_vectors[group.dim] = np.zeros(
                (len(group.positions), group.dim), dtype=np.float32
            )

        # --- Phase 4a: decoupled copy kernel(s) for the hits (async).
        # On the mixed-precision path the dequant fuses into this gather
        # (the spec's read side shrinks to the stored payload bytes) and a
        # hit doubles as a retier opportunity: keys whose frequency
        # estimate crossed a tier threshold move to their new tier while
        # their fp32 rows are already in registers.
        quantizing = self.cache.quantizing
        promoted_keys = 0
        demoted_keys = 0
        hit_rows_by_group = {}
        for group in groups:  # lint: allow-loop (per dim group)
            hit_here = outcome.cache_hit[group.positions]
            hit_rows_by_group[group.dim] = hit_here
            locations = outcome.locations[group.positions][hit_here]
            if config.decouple_copy:
                rows = len(locations)
                if quantizing:
                    read_bytes = self.cache.read_payload_bytes(locations)
                    spec = self._memo_spec(
                        ("copy", group.dim, rows, read_bytes),
                        lambda dim=group.dim, rows=rows, rb=read_bytes:
                            _copy_kernel_spec(
                                f"fc_copy_d{dim}", rows, dim, self.hw,
                                read_bytes=rb,
                            ),
                    )
                else:
                    spec = self._memo_spec(
                        ("copy", group.dim, rows),
                        lambda dim=group.dim, rows=rows: _copy_kernel_spec(
                            f"fc_copy_d{dim}", rows, dim, self.hw
                        ),
                    )
                executor.launch(
                    spec, stream=copy_stream, category=Category.CACHE_COPY
                )
            if len(locations):
                gathered = self.cache.gather(locations)
                unique_vectors[group.dim][hit_here] = gathered
                if quantizing:
                    up, down = self.cache.retier_hits(
                        group.unique_keys[hit_here],
                        locations,
                        gathered,
                        group.dim,
                    )
                    promoted_keys += up
                    demoted_keys += down
        self.cache.reclaimer.unpin(read_epoch)

        # --- Phase 4b/5: DRAM query for the misses (overlaps with copies
        # when decoupled; with the coupled ablation the sync above already
        # serialised everything).  Keys another in-flight batch has already
        # fetched but not yet published to the index are taken from the
        # coalescer instead of re-querying DRAM/remote (issued-once
        # semantics; the leading batch alone inserts them).
        total_unified = 0
        coalesced_keys = 0
        coalesced_degraded = 0
        pending_replacements = []
        for group in groups:  # lint: allow-loop (per dim group)
            miss_here = outcome.miss[group.positions]
            if not miss_here.any():
                continue
            dram_hit_here = outcome.dram_hit[group.positions][miss_here]
            miss_tables = group.rep_tables[miss_here]
            miss_features = group.rep_features[miss_here]
            miss_keys = group.unique_keys[miss_here]
            degraded_before = self._degraded_count()

            shared = None
            if coalescer is not None:
                shared, shared_rows, shared_degraded = coalescer.match(
                    miss_keys, group.dim
                )
                if not shared.any():
                    shared = None
            if shared is None:
                # No in-flight overlap: this batch leads on every miss.
                lead = np.ones(len(miss_keys), dtype=bool)
                indexed_mask = (
                    dram_hit_here if config.use_unified_index else None
                )
                store_result = self.store.query_many(
                    miss_tables, miss_features, indexed_mask=indexed_mask
                )
                vectors = store_result.vectors
                lead_vectors = vectors
            else:
                lead = ~shared
                coalesced_keys += int(shared.sum())
                coalesced_degraded += int(shared_degraded)
                vectors = np.zeros((len(miss_keys), group.dim), np.float32)
                vectors[shared] = shared_rows
                store_result = None
                lead_vectors = np.zeros((0, group.dim), np.float32)
                if lead.any():
                    indexed_mask = (
                        dram_hit_here[lead]
                        if config.use_unified_index else None
                    )
                    store_result = self.store.query_many(
                        miss_tables[lead],
                        miss_features[lead],
                        indexed_mask=indexed_mask,
                    )
                    lead_vectors = store_result.vectors
                    vectors[lead] = lead_vectors
            if store_result is not None:
                executor.host_work(
                    store_result.cost.index_time, Category.DRAM_INDEX
                )
                executor.host_work(
                    store_result.cost.copy_time, Category.DRAM_COPY
                )
                payload = store_result.vectors.nbytes
                executor.copy(
                    payload, Category.DRAM_COPY, async_stream=copy_stream
                )
            unique_vectors[group.dim][miss_here] = vectors
            lead_keys = miss_keys[lead]
            lead_dram = dram_hit_here[lead]
            total_unified += int(lead_dram.sum())
            # Miss-routing accounting: every deduplicated miss either leads
            # its own fetch or coalesces onto an in-flight one (the
            # ``fleche.miss-routing`` conservation law).
            self.obs.inc("cache.unique_misses", len(miss_keys))
            self.obs.inc("cache.lead_keys", int(lead.sum()))
            if coalescer is not None and len(lead_keys):
                coalescer.publish(
                    lead_keys,
                    lead_vectors,
                    degraded=self._degraded_count() > degraded_before,
                )

            # Phase 6 (replacement) is deferred to the copy stage: the
            # paper's replacement copy/indexing kernels run on device
            # streams, so the new key -> location mappings only become
            # visible once that device work executes (§3.3) — not while
            # the CPU is still mid-fetch.  Only the leading keys replace;
            # coalesced followers must not insert a second time.
            if len(lead_keys):
                pending_replacements.append((
                    group.dim, lead_keys, lead_vectors, lead_dram,
                    miss_tables[lead], miss_features[lead],
                ))

        # Stage boundary: misses are fetched; the remaining work —
        # replacement kernels, restore, output assembly — is device-side.
        # A pipelined batch indexing between this batch's fetch and copy
        # stages misses the keys fetched above and takes them from the
        # in-flight table instead of re-querying DRAM.
        yield STAGE_COPY

        # --- Phase 6: replacement (copy kernel, then indexing kernel) for
        # the leading keys only.  Keys a concurrently in-flight batch has
        # published since this batch's fetch are skipped — the insertion
        # happens exactly once per key, never overwriting a live slot.
        for (dim, lead_keys, lead_vectors, lead_dram,  # lint: allow-loop (per dim group)
             lead_tables, lead_features) in pending_replacements:
            already = self.cache.contains_cached(lead_keys)
            if already.any():
                keep = ~already
                lead_keys = lead_keys[keep]
                lead_vectors = lead_vectors[keep]
                lead_dram = lead_dram[keep]
                lead_tables = lead_tables[keep]
                lead_features = lead_features[keep]
                if not len(lead_keys):
                    continue
            inserted_mask, _ = self.cache.admit_and_insert(
                lead_keys,
                lead_vectors,
                dim,
                dram_mask=lead_dram,
            )
            inserted = int(inserted_mask.sum())
            executor.launch(
                self._memo_spec(
                    ("replace_copy", dim, inserted),
                    lambda dim=dim, rows=inserted: _copy_kernel_spec(
                        f"fc_replace_copy_d{dim}", rows, dim, self.hw
                    ),
                ),
                stream=copy_stream,
                category=Category.CACHE_COPY,
            )
            executor.launch(
                self._memo_spec(
                    ("replace_index", dim, inserted),
                    lambda dim=dim, rows=inserted: _index_kernel_spec(
                        f"fc_replace_index_d{dim}", rows, hops=2.0
                    ),
                ),
                stream=main_stream,
                category=Category.CACHE_INDEX,
            )
            # Denied, not-yet-tracked keys may enter the unified index.
            if config.use_unified_index:
                candidates = ~inserted_mask & ~lead_dram
                if candidates.any():
                    rows = (
                        lead_tables[candidates].astype(np.uint64)
                        << np.uint64(40)
                    ) | lead_features[candidates]
                    self.cache.publish_dram_pointers(
                        lead_keys[candidates], rows
                    )

        # --- Phase 7: restore the full output matrices from unique rows
        # (both paths — Fleche always deduplicates, §4).
        executor.launch(
            self._memo_spec(
                ("restore", len(flat_keys), len(unique_keys)),
                lambda: restore_kernel_spec(
                    len(flat_keys), self._weighted_dim,
                    unique_rows=len(unique_keys),
                ),
            ),
            stream=copy_stream,
            category=Category.OTHER,
        )
        executor.synchronize(None)

        outputs = self._assemble_outputs(
            batch, inverse, unique_keys, unique_vectors, groups
        )
        # Hit statistics are per *access* (duplicates weighted), matching
        # how the paper's hit rates are measured.
        counts = np.bincount(inverse, minlength=len(unique_keys))
        hits = int(counts[outcome.cache_hit].sum())
        misses = int(counts[outcome.miss].sum())
        per_table_hits = np.bincount(
            rep_tables[outcome.cache_hit],
            weights=counts[outcome.cache_hit],
            minlength=batch.num_tables,
        )
        per_table_misses = np.bincount(
            rep_tables[outcome.miss],
            weights=counts[outcome.miss],
            minlength=batch.num_tables,
        )
        return CacheQueryResult(
            outputs=outputs,
            hits=hits,
            misses=misses,
            unified_hits=total_unified,
            unique_keys=len(unique_keys),
            total_keys=len(flat_keys),
            coalesced_keys=coalesced_keys,
            coalesced_degraded=coalesced_degraded,
            promoted_keys=promoted_keys,
            demoted_keys=demoted_keys,
            per_table_hits=[int(h) for h in per_table_hits],
            per_table_misses=[int(m) for m in per_table_misses],
            # Which leader batches this batch's coalesced misses joined
            # (accumulated inside ``coalescer.match`` across the per-group
            # fetches above; {} unless source tracking is on).
            coalesce_sources=(
                coalescer.drain_match_sources()
                if coalescer is not None else {}
            ),
        )

    # ------------------------------------------------------------------ output

    def _assemble_outputs(
        self,
        batch: TraceBatch,
        inverse: np.ndarray,
        unique_keys: np.ndarray,
        unique_vectors: Dict[int, np.ndarray],
        groups: Sequence[_DimGroup],
    ) -> List[np.ndarray]:
        """Restore per-table output matrices from deduplicated rows."""
        # Uniform-dim fast path: group rows are unique-key positions, so
        # one gather expands every table's outputs and the per-table
        # matrices are contiguous views of it.
        if (
            self._uniform_dim is not None
            and len(groups) == 1
            and len(groups[0].positions) == len(unique_keys)
        ):
            expanded = unique_vectors[self._uniform_dim][inverse]
            outputs = []
            offset = 0
            for ids in batch.ids_per_table:
                outputs.append(expanded[offset:offset + len(ids)])
                offset += len(ids)
            return outputs

        # Map each unique key position to (dim, row-within-dim-group).
        dim_of_unique = np.zeros(len(unique_keys), dtype=np.int64)
        row_of_unique = np.zeros(len(unique_keys), dtype=np.int64)
        for group in groups:
            dim_of_unique[group.positions] = group.dim
            row_of_unique[group.positions] = np.arange(len(group.positions))

        outputs: List[np.ndarray] = []
        offset = 0
        for t, ids in enumerate(batch.ids_per_table):
            n = len(ids)
            dim = int(self._dim_of_table[t])
            positions = inverse[offset:offset + n]
            rows = row_of_unique[positions]
            outputs.append(unique_vectors[dim][rows] if n else
                           np.zeros((0, dim), np.float32))
            offset += n
        return outputs
