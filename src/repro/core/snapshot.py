"""Flat-cache snapshots: warm restarts for serving (operational feature).

A serving process that restarts with a cold cache serves its first
minutes at DRAM speed — production stacks therefore persist the cache's
hot set and restore it at boot.  :func:`snapshot` captures a FlatCache's
live entries (keys, vectors, recency) into a compact, serialisable
:class:`CacheSnapshot`; :func:`restore` loads one into a freshly built
cache of any compatible geometry (a smaller cache keeps the hottest
prefix).

DRAM pointers are deliberately *not* snapshotted: after a restart the
CPU-DRAM layer's layout cannot be trusted (the §5 invalidation argument),
so the unified index restarts empty and the tuner re-grows it.

Version 2 additionally stamps the replica's model-refresh position — the
model version and update-log offset last applied — so a restored replica
knows exactly where to resume replaying the update stream instead of
silently re-applying or skipping updates.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import WorkloadError
from .flat_cache import FlatCache
from .unified_index import is_dram_pointer, untag

#: Format marker so stale snapshot files fail loudly.
SNAPSHOT_VERSION = 2


@dataclass(frozen=True)
class CacheSnapshot:
    """The persisted hot set of a flat cache."""

    version: int
    key_bits: int
    #: per-dimension entry arrays: dim -> (keys, stamps, vectors)
    entries: Dict[int, tuple]
    #: model version the replica had applied when snapshotted (0 = none).
    model_version: int = 0
    #: update-log offset last applied (-1 = stream never consumed).
    log_offset: int = -1

    @property
    def num_entries(self) -> int:
        return sum(len(keys) for keys, _, _ in self.entries.values())

    def to_bytes(self) -> bytes:
        buffer = io.BytesIO()
        pickle.dump(
            {
                "version": self.version,
                "key_bits": self.key_bits,
                "entries": self.entries,
                "model_version": self.model_version,
                "log_offset": self.log_offset,
            },
            buffer,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CacheSnapshot":
        data = pickle.loads(payload)
        if data.get("version") != SNAPSHOT_VERSION:
            raise WorkloadError(
                f"unsupported snapshot version {data.get('version')!r}"
            )
        return cls(
            version=data["version"],
            key_bits=data["key_bits"],
            entries=data["entries"],
            model_version=data["model_version"],
            log_offset=data["log_offset"],
        )


def snapshot(
    cache: FlatCache, model_version: int = 0, log_offset: int = -1
) -> CacheSnapshot:
    """Capture every cached embedding (not DRAM pointers) with recency."""
    keys, values, stamps = cache.index.scan()
    cached = ~is_dram_pointer(values)
    keys = keys[cached]
    stamps = stamps[cached]
    locations = untag(values[cached])
    dims = cache.pool.dim_of_locations(locations)

    entries: Dict[int, tuple] = {}
    for dim in np.unique(dims):
        mask = dims == dim
        vectors = cache.pool.read(locations[mask])
        entries[int(dim)] = (
            keys[mask].copy(), stamps[mask].copy(), vectors.copy()
        )
    return CacheSnapshot(
        version=SNAPSHOT_VERSION,
        key_bits=cache.codec.key_bits,
        entries=entries,
        model_version=int(model_version),
        log_offset=int(log_offset),
    )


def restore(cache: FlatCache, snap: CacheSnapshot) -> int:
    """Load a snapshot into ``cache``; returns the entries restored.

    Entries are inserted hottest-first, so when the target cache is
    smaller than the snapshot, the coldest tail is the part that does not
    fit.  The codec must agree on key width (otherwise flat keys would
    mean different IDs).
    """
    if snap.key_bits != cache.codec.key_bits:
        raise WorkloadError(
            f"snapshot key width {snap.key_bits} != cache's "
            f"{cache.codec.key_bits}"
        )
    restored = 0
    cache.tick()
    for dim, (keys, stamps, vectors) in snap.entries.items():
        if dim not in cache.pool.dims():
            raise WorkloadError(
                f"snapshot contains dimension {dim} the cache lacks"
            )
        order = np.argsort(stamps)[::-1]  # hottest first
        budget = cache.pool.free_of(dim)
        take = min(budget, len(order))
        chosen = order[:take]
        inserted, _ = cache.admit_and_insert(
            keys[chosen], vectors[chosen], dim
        )
        restored += int(inserted.sum())
    return restored
