"""Deduplicating and restoring (paper §4).

Batches carry many duplicate IDs across samples; Fleche deduplicates all
flat keys before querying and restores the full output matrix afterwards.
Deduplication also guarantees at most one outstanding GPU-side writer per
key, which is what lets the per-slot timestamp double as a concurrency
version (§3.1).

The real work happens in numpy; :func:`dedup_kernel_spec` and
:func:`restore_kernel_spec` describe the equivalent device kernels (a
radix-sort-based unique and a gather) so the workflow can charge their
time to the "Other" category the paper's Figure 16 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.kernel import KernelSpec, coalesced_bytes


@dataclass(frozen=True)
class DedupResult:
    """Deduplicated view of a key batch."""

    unique_keys: np.ndarray
    #: index into ``unique_keys`` for every original position.
    inverse: np.ndarray

    @property
    def duplication_factor(self) -> float:
        if len(self.unique_keys) == 0:
            return 1.0
        return len(self.inverse) / len(self.unique_keys)


def deduplicate(keys: np.ndarray) -> DedupResult:
    """Collapse duplicate keys, remembering how to restore the batch."""
    unique, inverse = np.unique(np.asarray(keys, dtype=np.uint64),
                                return_inverse=True)
    return DedupResult(unique_keys=unique, inverse=inverse.astype(np.int64))


def restore(unique_rows: np.ndarray, inverse: np.ndarray) -> np.ndarray:
    """Expand per-unique-key rows back to the full batch order."""
    return unique_rows[inverse]


def dedup_kernel_spec(num_keys: int) -> KernelSpec:
    """Device cost of deduplicating ``num_keys`` (radix sort + compaction).

    A radix sort makes a small constant number of full passes over the key
    array; we count 4 passes of read+write over 8-byte keys.
    """
    passes = 4
    bytes_moved = passes * 2 * 8 * num_keys
    return KernelSpec(
        name="dedup",
        threads=max(num_keys, 1),
        stream_bytes=bytes_moved,
    )


def restore_kernel_spec(
    num_rows: int,
    dim: int,
    unique_rows: int = None,
    transaction_bytes: int = 128,
) -> KernelSpec:
    """Device cost of scattering unique rows back to the full output.

    Reads the deduplicated row matrix once and writes the full output
    matrix (``num_rows`` rows, duplicates included).
    """
    row_bytes = coalesced_bytes(dim * 4, transaction_bytes)
    if unique_rows is None:
        unique_rows = num_rows
    return KernelSpec(
        name="restore",
        threads=max(num_rows, 1) * min(dim, 32),
        stream_bytes=row_bytes * (num_rows + unique_rows),
    )
