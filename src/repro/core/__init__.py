"""Fleche: the paper's primary contribution.

* :mod:`repro.core.flat_cache` — the flat cache (FC) data structure: one
  global slab-hash backend + slab memory pool shared by all tables.
* :mod:`repro.core.fusion` — self-identified kernel fusion.
* :mod:`repro.core.workflow` — the query pipeline: deduplication, fused
  indexing, decoupled copying, overlapped DRAM query, unified index.
* :mod:`repro.core.engine` — end-to-end inference engine (embedding +
  pooling + dense part) with simulated timing.
"""

from .config import FlecheConfig
from .precision import PrecisionConfig
from .cache_base import CacheQueryResult, EmbeddingCacheScheme
from .flat_cache import FlatCache
from .fusion import FusionPlan, build_fusion_plan, identify_thread
from .workflow import FlecheEmbeddingLayer
from .engine import InferenceEngine, InferenceResult
from .snapshot import CacheSnapshot, snapshot, restore
from .updates import UpdateApplier, UpdateOutcome

__all__ = [
    "FlecheConfig",
    "PrecisionConfig",
    "CacheQueryResult",
    "EmbeddingCacheScheme",
    "FlatCache",
    "FusionPlan",
    "build_fusion_plan",
    "identify_thread",
    "FlecheEmbeddingLayer",
    "InferenceEngine",
    "InferenceResult",
    "CacheSnapshot",
    "snapshot",
    "restore",
    "UpdateApplier",
    "UpdateOutcome",
]
