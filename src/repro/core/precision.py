"""Mixed-precision, frequency-aware cache entries.

Fleche's flat cache stores one fixed-width fp32 embedding per key, so
effective capacity is bytes-per-entry bound.  Following "Mixed-Precision
Embedding Using a Cache" (arXiv 2010.11305), hot keys need full precision
while the warm/cold tail tolerates fp16/int8: this module defines the
precision *tiers*, the vectorized quantize/dequantize kernels the slab
pool fuses into its write/read paths, the analytic per-tier round-trip
error bounds the property tests pin, and the pluggable eviction-score
policies (LRU / LFU / hybrid, mirroring hpcaitech FreqCacheEmbedding's
replacement variants) that make eviction frequency-aware.

Quantization format:

* ``fp32`` — stored verbatim (4 B/value), bit-exact.
* ``fp16`` — IEEE half, saturating at ±65504 (2 B/value).
* ``int8`` — symmetric per-row linear quantization: one float32 scale per
  embedding row (``max|row| / 127``), values rounded to the nearest of
  255 signed steps (1 B/value + 4 B/row).  Zero rows are exact.

Everything here is pure array math so the copy kernels stay plain
vectorised gathers — the dequant rides inside the grouped gather and the
hot-path lint contract holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError

#: Tier names, hottest first.  The tuple index is the tier *code* used in
#: per-slot metadata (smaller code = hotter = more precise).
TIER_FP32 = "fp32"
TIER_FP16 = "fp16"
TIER_INT8 = "int8"
TIERS: Tuple[str, ...] = (TIER_FP32, TIER_FP16, TIER_INT8)
TIER_CODES = {name: code for code, name in enumerate(TIERS)}

#: Largest finite IEEE half — fp16 quantization saturates here.
_FP16_MAX = np.float32(65504.0)

#: Absolute error floor of the int8 path covering float32 subnormal
#: scales (a scale below ~2^-149 underflows to zero and the whole row —
#: itself below ~127 * 2^-149 — dequantizes to zero).
_INT8_TINY = 2.0 ** -140


def slot_payload_bytes(dim: int, tier: str) -> int:
    """Payload bytes one cached embedding of ``dim`` occupies at ``tier``."""
    if tier == TIER_FP32:
        return dim * 4
    if tier == TIER_FP16:
        return dim * 2
    if tier == TIER_INT8:
        return dim + 4  # 1 B/value + one float32 scale per row
    raise ConfigError(f"unknown precision tier {tier!r}")


@dataclass(frozen=True)
class PrecisionConfig:
    """Tunables of the mixed-precision tiering subsystem.

    Attributes:
        enabled: master switch.  Disabled (the default) the cache takes
            exactly the fp32-only code path, byte-for-byte.
        fp32_share / fp16_share / int8_share: fraction of each dimension
            class's *byte* budget allocated to each tier (must sum to 1
            when enabled; a zero share means the tier gets no slab class).
        hot_min_count: estimated occurrence count at or above which a key
            is assigned the fp32 tier.
        warm_min_count: count at or above which a key is at least fp16;
            keys below it land in the int8 tail.
        eviction_policy: victim-ordering policy — ``"lru"`` (pure recency,
            byte-identical to the pre-tiering scan), ``"lfu"`` (least
            frequent first, recency breaking ties), or ``"hybrid"``
            (weighted blend of both ranks).
        hybrid_recency_weight: recency weight of the hybrid policy.
        sketch_width / sketch_depth: count-min sketch geometry of the
            frequency estimator.
        aging_interval: halve every sketch counter each this-many cache
            ticks (0 disables aging; aging is what makes demotion and LFU
            track a drifting hotspot).
    """

    enabled: bool = False
    fp32_share: float = 0.25
    fp16_share: float = 0.25
    int8_share: float = 0.5
    hot_min_count: int = 8
    warm_min_count: int = 2
    eviction_policy: str = "lru"
    hybrid_recency_weight: float = 0.5
    sketch_width: int = 2048
    sketch_depth: int = 2
    aging_interval: int = 64

    def __post_init__(self) -> None:
        shares = (self.fp32_share, self.fp16_share, self.int8_share)
        if any(s < 0.0 for s in shares):
            raise ConfigError("tier shares must be non-negative")
        if self.enabled:
            if abs(sum(shares) - 1.0) > 1e-9:
                raise ConfigError("tier shares must sum to 1 when enabled")
            if self.fp32_share <= 0.0:
                raise ConfigError(
                    "fp32_share must be positive when enabled (hot keys "
                    "need a full-precision tier to promote into)"
                )
        if self.eviction_policy not in ("lru", "lfu", "hybrid"):
            raise ConfigError(
                "eviction_policy must be one of 'lru', 'lfu', 'hybrid'"
            )
        if self.eviction_policy != "lru" and not self.enabled:
            raise ConfigError(
                "frequency-aware eviction needs enabled=True (the "
                "frequency estimator only runs on the precision path)"
            )
        if not 0 < self.warm_min_count <= self.hot_min_count:
            raise ConfigError(
                "thresholds must satisfy 0 < warm_min_count <= hot_min_count"
            )
        if not 0.0 <= self.hybrid_recency_weight <= 1.0:
            raise ConfigError("hybrid_recency_weight must be in [0, 1]")
        if self.sketch_width < 16 or self.sketch_depth < 1:
            raise ConfigError("sketch must have width >= 16 and depth >= 1")
        if self.aging_interval < 0:
            raise ConfigError("aging_interval must be >= 0")

    @property
    def quantizing(self) -> bool:
        """Whether any entry is actually stored below fp32.

        Pinning every tier to fp32 (``fp32_share == 1``) keeps the cache
        on the exact pre-tiering code path — the golden no-op guarantee.
        """
        return self.enabled and (self.fp16_share > 0.0 or self.int8_share > 0.0)

    @property
    def needs_estimator(self) -> bool:
        """Whether the cache must maintain a frequency estimator."""
        return self.enabled and (
            self.quantizing or self.eviction_policy != "lru"
        )

    def share_of(self, tier: str) -> float:
        return {
            TIER_FP32: self.fp32_share,
            TIER_FP16: self.fp16_share,
            TIER_INT8: self.int8_share,
        }[tier]

    def tiers_in_use(self) -> Tuple[str, ...]:
        """Tiers with a positive byte share, hottest first."""
        return tuple(t for t in TIERS if self.share_of(t) > 0.0)


# ---------------------------------------------------------------- quantize


# hot-path: vectorized
def quantize_rows(
    rows: np.ndarray, tier: str
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Quantize fp32 ``rows`` to ``tier``; returns ``(payload, scales)``.

    ``scales`` is ``None`` except for int8, where it is one float32 per
    row.  The int8 scale is computed in float64 (``max|row| / 127``) and
    narrowed to float32 for storage, matching what the slab pool holds.
    """
    rows = np.asarray(rows, dtype=np.float32)
    if tier == TIER_FP32:
        return rows, None
    if tier == TIER_FP16:
        clipped = np.clip(rows, -_FP16_MAX, _FP16_MAX)
        return clipped.astype(np.float16), None
    if tier == TIER_INT8:
        amax = np.abs(rows).max(axis=1, initial=0.0).astype(np.float64)
        scales = (amax / 127.0).astype(np.float32)
        safe = np.where(scales > 0.0, scales, 1.0).astype(np.float64)
        q = np.rint(rows.astype(np.float64) / safe[:, None])
        payload = np.clip(q, -127, 127).astype(np.int8)
        payload[scales == 0.0] = 0
        return payload, scales
    raise ConfigError(f"unknown precision tier {tier!r}")


# hot-path: vectorized
def dequantize_rows(
    payload: np.ndarray, scales: Optional[np.ndarray], tier: str
) -> np.ndarray:
    """Reconstruct fp32 rows from a tier's stored payload."""
    if tier == TIER_FP32:
        return np.asarray(payload, dtype=np.float32)
    if tier == TIER_FP16:
        return payload.astype(np.float32)
    if tier == TIER_INT8:
        return payload.astype(np.float32) * scales.astype(np.float32)[:, None]
    raise ConfigError(f"unknown precision tier {tier!r}")


def roundtrip_error_bound(rows: np.ndarray, tier: str) -> np.ndarray:
    """Analytic per-element bound on ``|x - dequant(quant(x))|``.

    The property suite asserts the implementation against these bounds:

    * fp32: exact (bound 0).
    * fp16: half-ulp rounding — ``max(|x| * 2^-11, 2^-25)`` for values in
      the representable range, plus the saturation overshoot ``|x| -
      65504`` beyond it (subnormal halves round within the absolute
      spacing ``2^-25``).
    * int8: half-step rounding ``scale / 2`` with slack ``scale * 2^-14``
      for the float32 narrowing of the scale and the dequant product
      rounding, plus an absolute floor covering subnormal-scale
      underflow (see ``_INT8_TINY``).
    """
    rows = np.asarray(rows, dtype=np.float32).astype(np.float64)
    if tier == TIER_FP32:
        return np.zeros_like(rows)
    if tier == TIER_FP16:
        magnitude = np.abs(rows)
        rounding = np.maximum(magnitude * 2.0**-11, 2.0**-25)
        saturation = np.maximum(magnitude - float(_FP16_MAX), 0.0)
        return rounding + saturation
    if tier == TIER_INT8:
        amax = np.abs(rows).max(axis=1, initial=0.0)
        scale = amax / 127.0
        bound = scale * (0.5 + 2.0**-14) + _INT8_TINY
        return np.broadcast_to(bound[:, None], rows.shape).copy()
    raise ConfigError(f"unknown precision tier {tier!r}")


# ---------------------------------------------------------------- eviction


class EvictionPolicy:
    """Victim-ordering policy of the flat cache's full-scan eviction.

    ``victim_order`` returns indices into the candidate arrays, coldest
    first; the cache evicts a prefix of that order.  ``counts`` is the
    frequency estimate per candidate key, or ``None`` when the cache
    maintains no estimator (the pure-LRU configuration).
    """

    name = "abstract"

    def victim_order(
        self, stamps: np.ndarray, counts: Optional[np.ndarray]
    ) -> np.ndarray:
        raise NotImplementedError


class LruEviction(EvictionPolicy):
    """Pure recency — exactly the pre-tiering ``argsort(stamps)`` scan."""

    name = "lru"

    def victim_order(self, stamps, counts):
        return np.argsort(stamps)


class LfuEviction(EvictionPolicy):
    """Least estimated frequency first; recency breaks ties."""

    name = "lfu"

    def victim_order(self, stamps, counts):
        if counts is None:
            return np.argsort(stamps)
        # lexsort: last key is primary — frequency first, then stamp.
        return np.lexsort((stamps, counts))


class HybridEviction(EvictionPolicy):
    """Weighted blend of recency and frequency ranks.

    Both signals are reduced to normalized ranks in [0, 1] so the weight
    is scale-free; the stamp lexsort tie-break keeps the order fully
    deterministic.
    """

    name = "hybrid"

    def __init__(self, recency_weight: float = 0.5):
        self.recency_weight = float(recency_weight)

    def victim_order(self, stamps, counts):
        if counts is None:
            return np.argsort(stamps)
        n = len(stamps)
        if n <= 1:
            return np.arange(n)
        span = float(n - 1)
        stamp_rank = np.empty(n, dtype=np.float64)
        stamp_rank[np.argsort(stamps, kind="stable")] = (
            np.arange(n, dtype=np.float64) / span
        )
        count_rank = np.empty(n, dtype=np.float64)
        count_rank[np.argsort(counts, kind="stable")] = (
            np.arange(n, dtype=np.float64) / span
        )
        w = self.recency_weight
        score = w * stamp_rank + (1.0 - w) * count_rank
        return np.lexsort((stamps, score))


def make_eviction_policy(
    name: str, recency_weight: float = 0.5
) -> EvictionPolicy:
    """Factory mirroring :func:`repro.cluster.routing.make_policy`."""
    if name == "lru":
        return LruEviction()
    if name == "lfu":
        return LfuEviction()
    if name == "hybrid":
        return HybridEviction(recency_weight)
    raise ConfigError(f"unknown eviction policy {name!r}")
