"""Command-line interface: run experiments without pytest.

Usage::

    python -m repro list
    python -m repro hitrate --dataset avazu --ratio 0.05
    python -m repro throughput --dataset criteo-kaggle --batch 2048
    python -m repro fusion --tables 60
    python -m repro coding --bits 10
    python -m repro trace --out batch.trace.json

Each subcommand runs a focused experiment on the simulated platform and
prints a paper-style table; ``trace`` additionally exports a Chrome-trace
JSON of one batch's timeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import (
    Executor,
    FlecheConfig,
    FlecheEmbeddingLayer,
    PerTableCacheLayer,
    PerTableConfig,
    default_platform,
    frequency_optimal_hit_rate,
)
from .bench.harness import make_context, run_scheme
from .bench.reporting import format_rate, format_table, format_time
from .core.cache_base import HitRateAccumulator


def _cmd_list(_args) -> int:
    rows = [
        ["hitrate", "Optimal / HugeCTR / Fleche hit rates (Figs 3, 12)"],
        ["throughput", "embedding throughput HugeCTR vs Fleche (Fig 9)"],
        ["fusion", "cache-query latency vs table count (Figs 4, 14)"],
        ["coding", "AUC of fixed-length vs size-aware coding (Fig 13)"],
        ["trace", "export one batch's simulated timeline (Chrome trace)"],
        ["run", "run a registered paper experiment via pytest-benchmark"],
    ]
    print(format_table(["command", "what it runs"], rows,
                       title="repro quick experiments"))
    from .bench.experiments import all_experiments

    print()
    print(format_table(
        ["id", "paper ref", "regenerates"],
        [[e.experiment_id, e.paper_ref, e.description]
         for e in all_experiments()],
        title="registered experiments (use: python -m repro run <id>)",
    ))
    return 0


def _cmd_run(args) -> int:
    import subprocess

    from .bench.experiments import registry

    entries = registry()
    entry = entries.get(args.experiment)
    if entry is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"known: {', '.join(sorted(entries))}")
        return 2
    command = [
        sys.executable, "-m", "pytest", entry.bench_file,
        "--benchmark-only", "-q",
    ]
    print(f"running {entry.paper_ref}: {entry.description}")
    return subprocess.call(command)


def _cmd_hitrate(args) -> int:
    hw = default_platform()
    context = make_context(
        args.dataset, batch_size=args.batch, num_batches=args.batches,
        cache_ratio=args.ratio, scale=args.scale, hw=hw,
    )
    rows = []
    _, measure = context.trace.split(context.warmup)
    capacity = max(1, int(context.dataset.total_sparse_ids * args.ratio))
    rows.append(["Optimal",
                 f"{frequency_optimal_hit_rate(measure, capacity):.1%}"])
    for name in ("hugectr", "fleche-noui"):
        from .bench.harness import scheme_factory

        layer = scheme_factory(name, context)()
        executor = Executor(hw)
        acc = HitRateAccumulator()
        batches = list(context.trace)
        for batch in batches[:context.warmup]:
            layer.query(batch, executor)
        for batch in batches[context.warmup:]:
            acc.record(layer.query(batch, executor))
        label = "HugeCTR" if name == "hugectr" else "Fleche"
        rows.append([label, f"{acc.hit_rate:.1%}"])
    print(format_table(
        ["scheme", "hit rate"], rows,
        title=(f"Hit rates on {args.dataset} "
               f"(cache {args.ratio:.1%}, batch {args.batch})"),
    ))
    return 0


def _cmd_throughput(args) -> int:
    hw = default_platform()
    context = make_context(
        args.dataset, batch_size=args.batch, num_batches=args.batches,
        cache_ratio=args.ratio, scale=args.scale, hw=hw,
    )
    rows = []
    results = {}
    for name in ("hugectr", "fleche"):
        result = run_scheme(context, name, include_dense=args.end_to_end)
        results[name] = result
        rows.append([
            "HugeCTR" if name == "hugectr" else "Fleche",
            format_rate(result.throughput),
            format_time(result.median_latency),
            f"{result.hit_rate:.1%}",
        ])
    speedup = results["fleche"].throughput / results["hugectr"].throughput
    print(format_table(
        ["scheme", "throughput", "median latency", "hit rate"], rows,
        title=(f"{'End-to-end' if args.end_to_end else 'Embedding-layer'} "
               f"throughput on {args.dataset}, batch {args.batch} "
               f"(Fleche speedup x{speedup:.2f})"),
    ))
    return 0


def _cmd_fusion(args) -> int:
    from .tables.store import EmbeddingStore
    from .workloads.synthetic import synthetic_dataset, uniform_tables_spec

    hw = default_platform()
    rows = []
    for n in sorted({1, args.tables // 4 or 1, args.tables // 2 or 1,
                     args.tables}):
        spec = uniform_tables_spec(
            num_tables=n, corpus_size=max(1000, 250_000 // n), dim=32,
        )
        per_table = max(1, args.keys // n)
        trace = synthetic_dataset(spec, num_batches=6, batch_size=per_table)
        store = EmbeddingStore(spec.table_specs(), hw)
        times = {}
        for name in ("hugectr", "fleche"):
            if name == "fleche":
                layer = FlecheEmbeddingLayer(
                    store,
                    FlecheConfig(cache_ratio=0.1, use_unified_index=False),
                    hw,
                )
            else:
                layer = PerTableCacheLayer(
                    store, PerTableConfig(cache_ratio=0.1), hw
                )
            executor = Executor(hw)
            for b in list(trace)[:3]:
                layer.query(b, executor)
            executor.reset()
            for b in list(trace)[3:]:
                layer.query(b, executor)
            executor.drain()
            stats = executor.stats
            times[name] = (stats.maintenance_time
                           + stats.cache_query_time) / 3
        rows.append([n, format_time(times["hugectr"]),
                     format_time(times["fleche"])])
    print(format_table(
        ["# tables", "HugeCTR", "Fleche"], rows,
        title=f"Cache-query latency, {args.keys} keys total (Fig 14)",
    ))
    return 0


def _cmd_coding(args) -> int:
    from .coding.fixed_length import FixedLengthCodec
    from .coding.size_aware import SizeAwareCodec
    from .model.trainer import CollisionAucStudy, SyntheticCtrTask

    corpora = [64, 512, 4096]
    task = SyntheticCtrTask(
        corpus_sizes=corpora, num_train=12_000, num_test=3_000,
        alpha=-0.8, seed=5,
    )
    study = CollisionAucStudy(task, epochs=4)
    rows = [
        ["Kraken (fixed-length)",
         f"{study.auc_with_codec(FixedLengthCodec(corpora, key_bits=args.bits, table_bits=2)):.4f}"],
        ["Fleche (size-aware)",
         f"{study.auc_with_codec(SizeAwareCodec(corpora, key_bits=args.bits)):.4f}"],
        ["upper bound", f"{study.upper_bound_auc():.4f}"],
    ]
    print(format_table(
        ["codec", "AUC"], rows,
        title=f"Model quality at {args.bits}-bit flat keys (Fig 13)",
    ))
    return 0


def _cmd_serve(args) -> int:
    """Run a synthetic serving stream with live telemetry attached."""
    import time

    from .core.workflow import FlecheEmbeddingLayer as Layer
    from .obs import (
        MetricsHttpServer,
        WindowedCollector,
        default_serving_slos,
    )
    from .serving.arrivals import PoissonArrivals
    from .serving.batcher import BatchingPolicy
    from .serving.pipeline import PipelinedInferenceServer
    from .tables.store import EmbeddingStore
    from .workloads.synthetic import uniform_tables_spec

    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=args.tables, corpus_size=args.corpus, alpha=-1.2,
        dim=args.dim,
    )
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = Layer(store, FlecheConfig(cache_ratio=args.ratio), hw)
    slo_engine = default_serving_slos(args.sla)
    collector = WindowedCollector(
        window=args.window, sla_budget=args.sla, engine=slo_engine,
    )
    server = PipelinedInferenceServer(
        dataset, layer, hw, depth=args.depth,
        policy=BatchingPolicy(max_batch_size=512, max_delay=5e-4),
        collector=collector,
    )
    http = None
    if args.metrics_port is not None:
        http = MetricsHttpServer(
            server.obs, collector=collector, engine=slo_engine,
            port=args.metrics_port,
        ).start()
        print(f"metrics: {http.url('/metrics')}  "
              f"healthz: {http.url('/healthz')}  "
              f"series: {http.url('/series')}")
    requests = PoissonArrivals(dataset, args.rate, seed=2).generate(
        args.requests
    )
    report = server.serve(requests)
    print(format_table(
        ["requests", "throughput", "P50", "P99", f"SLA@{args.sla * 1e3:g}ms",
         "windows", "alerts"],
        [[report.served, format_rate(report.throughput),
          format_time(report.median_latency),
          format_time(report.p99_latency),
          f"{report.sla_attainment(args.sla):.1%}",
          collector.closed_windows, len(slo_engine.alerts)]],
        title=(f"Serving {args.requests} requests at "
               f"{format_rate(args.rate)} (depth {args.depth}, "
               f"{args.window * 1e3:g} ms windows)"),
    ))
    if args.emit:
        from .bench.reporting import emit_timeseries

        for path in emit_timeseries(collector):
            print(f"wrote {path}")
    if http is not None:
        if args.hold > 0:
            print(f"serving metrics for {args.hold:g}s more "
                  "(ctrl-c to stop) ...")
            try:
                time.sleep(args.hold)
            except KeyboardInterrupt:
                pass
        http.close()
    return 0


def _cmd_scenario(args) -> int:
    """Adversarial scenario serving (``repro scenario list|run``)."""
    from .scenarios import SCENARIOS

    if args.scenario_command == "list":
        rows = [
            [name, cls.__name__, (cls.__doc__ or "").strip().splitlines()[0]]
            for name, cls in sorted(SCENARIOS.items())
        ]
        print(format_table(["name", "class", "summary"], rows,
                           title="Adversarial scenario catalogue"))
        return 0

    from .autotune import AdaptiveController
    from .core.precision import PrecisionConfig
    from .core.workflow import FlecheEmbeddingLayer as Layer
    from .obs import WindowedCollector, default_serving_slos
    from .scenarios import build_scenario, validate_load
    from .serving.batcher import BatchingPolicy
    from .serving.pipeline import PipelinedInferenceServer
    from .tables.store import EmbeddingStore
    from .workloads.synthetic import uniform_tables_spec

    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=args.tables, corpus_size=args.corpus, alpha=-1.2,
        dim=args.dim,
    )
    scenario = build_scenario(
        args.name, dataset, seed=args.seed, base_rate=args.rate,
    ) if args.name in ("flash_crowd", "cold_start_flood") else build_scenario(
        args.name, dataset, seed=args.seed,
    )
    load = scenario.build()
    validate_load(load, dataset)

    config = FlecheConfig(cache_ratio=args.ratio)
    if args.autotune:
        # The controller's tier-rebalance lever needs the quantizing
        # (multi-tier) slab layout to have anything to move.
        config = FlecheConfig(
            cache_ratio=args.ratio,
            precision=PrecisionConfig(enabled=True),
        )
    store = EmbeddingStore(dataset.table_specs(), hw)
    layer = Layer(store, config, hw)
    if args.admission < 1.0:
        layer.cache.set_admission_probability(args.admission)
    slo_engine = default_serving_slos(args.sla)
    collector = WindowedCollector(
        window=args.window, sla_budget=args.sla, engine=slo_engine,
    )
    if load.tenant_of is not None:
        collector.set_tenancy(load.tenant_of, load.tenant_slos)
    autotuner = AdaptiveController() if args.autotune else None
    server = PipelinedInferenceServer(
        dataset, layer, hw, depth=2,
        policy=BatchingPolicy(max_batch_size=512, max_delay=5e-4),
        collector=collector,
        autotuner=autotuner,
    )
    if load.update_log is not None:
        from .refresh import RefreshScheduler, UpdateSubscriber

        subscriber = UpdateSubscriber(
            load.update_log, layer.cache, host_store=layer.store,
        )
        subscriber.bind_observability(server.obs)
        server.refresher = RefreshScheduler(subscriber, hw)
    report = server.serve(load.requests)

    def _acc(name: str) -> int:
        return int(server.obs.total(name))

    rows = [[
        report.served, format_rate(report.throughput),
        format_time(report.median_latency), format_time(report.p99_latency),
        f"{report.sla_attainment(args.sla):.1%}",
        collector.closed_windows,
        _acc("autotune.applied") if args.autotune else "-",
        _acc("autotune.suppressed") if args.autotune else "-",
        _acc("autotune.clamped") if args.autotune else "-",
    ]]
    print(format_table(
        ["requests", "throughput", "P50", "P99",
         f"SLA@{args.sla * 1e3:g}ms", "windows",
         "applied", "suppressed", "clamped"],
        rows,
        title=(f"Scenario {args.name!r} (seed {args.seed}, "
               f"controller {'on' if args.autotune else 'off'})"),
    ))
    for phase in load.phases:
        note = f"  [{phase.note}]" if phase.note else ""
        print(f"  phase {phase.name}: {phase.start * 1e3:.2f}-"
              f"{phase.end * 1e3:.2f} ms @ {format_rate(phase.rate)}{note}")
    if args.emit:
        from .bench.reporting import emit_timeseries

        for path in emit_timeseries(collector):
            print(f"wrote {path}")
    return 0


def _cmd_obs(args) -> int:
    """Observability artifact tooling (``repro obs render``)."""
    from .bench.reporting import load_artifact
    from .obs import render_openmetrics
    from .obs.exposition import snapshot_from_payload

    if args.obs_command == "render":
        payload = load_artifact(args.metrics)
        snapshot = snapshot_from_payload(payload)
        sys.stdout.write(render_openmetrics(snapshot))
        return 0
    if args.obs_command == "critical-path":
        from .bench.reporting import emit_json
        from .obs import analyze_payload, top_table_rows

        payload = load_artifact(args.trace, kind="reqtrace")
        analysis = analyze_payload(payload, top=args.top)
        causes = analysis["rootcause"].get("causes", {})
        budget = analysis.get("sla_budget_s")
        print(
            f"{analysis['sampled']} sampled of {analysis['requests']} "
            f"requests"
            + (f", SLA budget {budget * 1e3:.3f}ms" if budget else "")
        )
        if causes:
            print(format_table(
                ["root cause", "violations"],
                [[k, str(causes[k])] for k in sorted(causes)],
            ))
        print(format_table(
            ["request", "latency_ms", "dispatch", "rootcause",
             "dominant segments"],
            top_table_rows(analysis),
        ))
        if args.emit:
            print(f"wrote {emit_json('critical_path', analysis)}")
        return 0
    return 2  # pragma: no cover - argparse enforces the choice


def _refresh_setup(args):
    """Shared scaffolding for ``repro refresh``: dataset, log, stream.

    Builds a deterministic update stream (trainer seeded, one version per
    round, round ``i`` published at simulated time ``i + 1``) and returns
    ``(build_replica, log, horizon)`` where ``build_replica(warm=True)``
    constructs one serving replica, warmed by querying a synthetic trace
    so the cache holds the hot keys the trainer churns.
    """
    from .model.trainer import EmbeddingDeltaTrainer
    from .refresh import UpdateLog, UpdatePublisher
    from .tables.store import EmbeddingStore
    from .workloads.synthetic import synthetic_dataset, uniform_tables_spec

    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=args.tables, corpus_size=args.corpus, alpha=-1.2,
        dim=args.dim,
    )
    specs = dataset.table_specs()

    def build_replica(warm: bool = True):
        store = EmbeddingStore(specs, hw)
        layer = FlecheEmbeddingLayer(
            store, FlecheConfig(cache_ratio=args.ratio), hw
        )
        if warm:
            trace = synthetic_dataset(
                dataset, num_batches=6, batch_size=256
            )
            executor = Executor(hw)
            for batch in trace:
                layer.query(batch, executor)
        return layer

    log = UpdateLog(retention=args.retention)
    publisher = UpdatePublisher(log, max_batch_keys=args.quantum)
    trainer = EmbeddingDeltaTrainer(
        [spec.corpus_size for spec in specs],
        [spec.dim for spec in specs],
        keys_per_round=args.keys_per_round, seed=9,
    )
    for i in range(args.rounds):
        publisher.drain(trainer, now=float(i + 1))
    return build_replica, log, float(args.rounds + 1)


def _cmd_refresh(args) -> int:
    """Model-refresh stream tooling (``repro refresh replay|status``)."""
    from .refresh import UpdateSubscriber, fingerprint

    build_replica, log, horizon = _refresh_setup(args)

    if args.refresh_command == "status":
        layer = build_replica()
        subscriber = UpdateSubscriber(log, layer.cache)
        applied_rounds = (
            args.rounds // 2 if args.applied_rounds is None
            else args.applied_rounds
        )
        subscriber.catch_up(float(applied_rounds) + 0.5)
        rows = [[f"log.{k}", v] for k, v in log.describe().items()]
        rows += [
            [f"replica.{k}", v]
            for k, v in subscriber.status(horizon).items()
        ]
        print(format_table(
            ["field", "value"], rows,
            title=(f"Update-stream position after {applied_rounds}/"
                   f"{args.rounds} rounds"),
        ))
        return 0

    # replay: the crash-recovery demo.  Replica A consumes the stream
    # uninterrupted; replica B dies mid-stream leaving only a snapshot;
    # the replacement restores it and replays the log to convergence.
    kill_after = (
        args.rounds // 2 if args.kill_after is None else args.kill_after
    )
    layer_a = build_replica()
    sub_a = UpdateSubscriber(log, layer_a.cache)
    sub_a.catch_up(horizon)

    layer_b = build_replica()
    sub_b = UpdateSubscriber(log, layer_b.cache)
    sub_b.catch_up(float(kill_after) + 0.5)
    snap = sub_b.snapshot()
    del layer_b, sub_b

    layer_c = build_replica(warm=False)
    sub_c = UpdateSubscriber.from_snapshot(snap, layer_c.cache, log)
    replayed = sub_c.catch_up(horizon)

    converged = fingerprint(layer_a.cache) == fingerprint(layer_c.cache)
    print(format_table(
        ["field", "value"],
        [
            ["published versions", args.rounds],
            ["published keys", log.total_keys],
            ["killed at version", snap.model_version],
            ["snapshot offset", snap.log_offset],
            ["replayed batches", replayed],
            ["restored version", sub_c.applied_version],
            ["converged", "yes" if converged else "NO"],
        ],
        title="Snapshot + log replay vs an uninterrupted replica",
    ))
    return 0 if converged else 1


def _cluster_setup(args):
    """Shared scaffolding for ``repro cluster``: dataset, log, config.

    Publishes ``args.rounds`` trainer rounds spread evenly across the
    serving horizon so every replica has a refresh stream to subscribe
    to (and a snapshot/replay path to exercise in the drill).
    """
    from .cluster import ClusterConfig
    from .model.trainer import EmbeddingDeltaTrainer
    from .refresh import UpdateLog, UpdatePublisher
    from .workloads.synthetic import uniform_tables_spec

    hw = default_platform()
    dataset = uniform_tables_spec(
        num_tables=args.tables, corpus_size=args.corpus, alpha=-1.2,
        dim=args.dim,
    )
    specs = dataset.table_specs()
    log = UpdateLog(retention=1_000_000)
    publisher = UpdatePublisher(log, max_batch_keys=256)
    trainer = EmbeddingDeltaTrainer(
        [spec.corpus_size for spec in specs],
        [spec.dim for spec in specs],
        keys_per_round=args.keys_per_round, seed=11,
    )
    for i in range(args.rounds):
        publisher.drain(
            trainer, now=args.horizon * (i + 1) / (args.rounds + 1)
        )
    config = ClusterConfig(
        num_replicas=args.replicas,
        policy=args.policy,
        cache_ratio=args.ratio,
        hot_keys=args.hot_keys,
    )
    return hw, dataset, log, config


def _cluster_requests(dataset, args):
    from .serving.arrivals import PoissonArrivals

    return PoissonArrivals(dataset, args.rate, seed=args.seed).generate_until(
        args.horizon
    )


def _cluster_victim(dataset, args) -> int:
    """The replica that consistent-hash owns the Zipf hottest key —
    killing it is the worst case for an unrouted deployment."""
    from .multigpu.partition import HashPartitioner
    from .workloads.zipf import zipf_head_ids

    hottest = zipf_head_ids(dataset.fields[:1], args.seed, 1)[0]
    return int(HashPartitioner(args.replicas).owner_of(hottest)[0])


def _cmd_cluster(args) -> int:
    """Multi-replica serving tooling (``repro cluster serve|drill|status``)."""
    import dataclasses

    from .cluster import ClusterRouter
    from .faults import FaultSchedule, ReplicaCrash

    hw, dataset, log, config = _cluster_setup(args)
    requests = _cluster_requests(dataset, args)

    if args.cluster_command == "serve":
        router = ClusterRouter(dataset, hw, config=config, update_log=log)
        report = router.serve(requests)
        rows = [
            ["requests", len(requests)],
            ["served", report.served],
            ["shed", report.shed],
            ["SLA attainment", f"{report.sla_attainment(args.sla):.1%}"],
            ["p50 latency", format_time(report.percentile(50))],
            ["p99 latency", format_time(report.percentile(99))],
        ]
        for r, summary in sorted(report.per_replica.items()):
            rows.append([
                f"replica {r} dispatched",
                f"{summary['dispatched']} "
                f"(version {summary.get('applied_version', '-')})",
            ])
        print(format_table(
            ["field", "value"], rows,
            title=(f"Fault-free cluster: {args.replicas} replicas, "
                   f"{args.policy} routing"),
        ))
        return 0

    # drill and status both stage the same kill: crash the replica that
    # owns the hottest key for the middle of the run.
    start = args.horizon * args.crash_at
    duration = args.horizon * args.crash_for
    victim = _cluster_victim(dataset, args)
    schedule = FaultSchedule(
        [ReplicaCrash(replica=victim, start=start, duration=duration)]
    )

    if args.cluster_command == "status":
        router = ClusterRouter(
            dataset, hw, config=config, schedule=schedule, update_log=log
        )
        horizon = args.horizon + 16 * config.health.heartbeat_interval
        timelines = router.monitor.observe(horizon)
        rows = []
        for r in sorted(timelines):
            for t in timelines[r].transitions:
                rows.append([r, format_time(t.at), t.state])
        print(format_table(
            ["replica", "at", "state"], rows,
            title=(f"Health timeline: replica {victim} killed "
                   f"{format_time(start)}-{format_time(start + duration)}"),
        ))
        return 0

    # drill: routed cluster vs an unrouted baseline on identical traffic.
    from .bench.harness import alert_timing

    router = ClusterRouter(
        dataset, hw, config=config, schedule=schedule, update_log=log
    )
    routed = router.serve(requests)
    unrouted_cfg = dataclasses.replace(config, failover=False)
    baseline = ClusterRouter(
        dataset, hw, config=unrouted_cfg, schedule=schedule, update_log=log
    ).serve(requests)

    timing = alert_timing(routed.alerts, start, start + duration)
    counts = routed.disposition_counts()
    rows = [
        ["victim replica", victim],
        ["crash window",
         f"{format_time(start)} - {format_time(start + duration)}"],
        ["routed SLA", f"{routed.sla_attainment(args.sla):.1%}"],
        ["unrouted SLA", f"{baseline.sla_attainment(args.sla):.1%}"],
        ["routed shed", routed.shed],
        ["unrouted shed", baseline.shed],
        ["failovers served", counts["failover"]],
        ["time to detect",
         "-" if timing["ttd_s"] is None else format_time(timing["ttd_s"])],
        ["time to resolve",
         "-" if timing["ttr_s"] is None else format_time(timing["ttr_s"])],
        ["early alerts", timing["early_alerts"]],
    ]
    for r, summary in sorted(routed.per_replica.items()):
        if "version_lag" in summary:
            rows.append([f"replica {r} version lag", summary["version_lag"]])
    print(format_table(
        ["field", "value"], rows,
        title=(f"Kill drill: {args.replicas} replicas, {args.policy} "
               f"routing, hot owner down"),
    ))
    healthy = (
        routed.shed == 0
        and timing["ttd_s"] is not None
        and timing["early_alerts"] == 0
    )
    return 0 if healthy else 1


def _cmd_trace(args) -> int:
    from .gpusim.tracing import TraceRecorder

    hw = default_platform()
    context = make_context(
        args.dataset, batch_size=args.batch, num_batches=4,
        scale=args.scale, hw=hw, warmup=3,
    )
    layer = FlecheEmbeddingLayer(
        context.store, FlecheConfig(cache_ratio=context.cache_ratio), hw
    )
    executor = Executor(hw)
    batches = list(context.trace)
    for batch in batches[:3]:
        layer.query(batch, executor)
    recorder = TraceRecorder.attach(executor)
    layer.query(batches[3], executor)
    path = recorder.export_json(args.out)
    print(f"wrote {len(recorder.spans)} spans on "
          f"{len(recorder.tracks())} tracks to {path}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fleche reproduction: run paper experiments from the CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def common(p):
        p.add_argument("--dataset", default="avazu",
                       choices=("avazu", "criteo-kaggle", "criteo-tb"))
        p.add_argument("--batch", type=int, default=1024)
        p.add_argument("--batches", type=int, default=16)
        p.add_argument("--ratio", type=float, default=0.05)
        p.add_argument("--scale", type=float, default=0.2)

    p = sub.add_parser("hitrate", help="hit rates (Figs 3, 12)")
    common(p)
    p = sub.add_parser("throughput", help="throughput (Fig 9)")
    common(p)
    p.add_argument("--end-to-end", action="store_true")
    p = sub.add_parser("fusion", help="latency vs table count (Fig 14)")
    p.add_argument("--tables", type=int, default=60)
    p.add_argument("--keys", type=int, default=10_000)
    p = sub.add_parser("coding", help="coding AUC (Fig 13)")
    p.add_argument("--bits", type=int, default=10)
    p = sub.add_parser("trace", help="export one batch's timeline")
    p.add_argument("--dataset", default="avazu",
                   choices=("avazu", "criteo-kaggle", "criteo-tb"))
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--out", default="fleche.trace.json")
    p = sub.add_parser("run", help="run a registered paper experiment")
    p.add_argument("experiment", help="experiment id (see `repro list`)")
    p = sub.add_parser(
        "serve", help="serve a synthetic stream with live telemetry"
    )
    p.add_argument("--tables", type=int, default=8)
    p.add_argument("--corpus", type=int, default=20_000)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--ratio", type=float, default=0.05)
    p.add_argument("--rate", type=float, default=400_000.0,
                   help="offered load (requests/sec, Poisson)")
    p.add_argument("--requests", type=int, default=2_000)
    p.add_argument("--depth", type=int, default=2,
                   help="pipeline depth (1 = sequential)")
    p.add_argument("--window", type=float, default=1e-3,
                   help="collector window (simulated seconds)")
    p.add_argument("--sla", type=float, default=2e-3,
                   help="per-request latency budget (seconds)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="expose /metrics,/healthz,/series on this port "
                        "(0 = ephemeral)")
    p.add_argument("--hold", type=float, default=0.0,
                   help="keep the metrics endpoint up this many wall "
                        "seconds after the run")
    p.add_argument("--emit", action="store_true",
                   help="persist series.json/alerts.json under "
                        "benchmarks/results")
    from .scenarios import SCENARIOS

    p = sub.add_parser(
        "scenario", help="adversarial scenarios + adaptive tiering"
    )
    scenario_sub = p.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list the scenario catalogue")
    q = scenario_sub.add_parser(
        "run",
        help="serve one adversarial scenario, optionally with the "
             "adaptive controller closed-loop",
    )
    q.add_argument("--name", default="flash_crowd",
                   choices=sorted(SCENARIOS))
    q.add_argument("--tables", type=int, default=6)
    q.add_argument("--corpus", type=int, default=12_000)
    q.add_argument("--dim", type=int, default=16)
    q.add_argument("--ratio", type=float, default=0.03)
    q.add_argument("--rate", type=float, default=150_000.0,
                   help="base arrival rate (requests/sec)")
    q.add_argument("--seed", type=int, default=7)
    q.add_argument("--window", type=float, default=1e-3,
                   help="collector window (simulated seconds)")
    q.add_argument("--sla", type=float, default=2e-3,
                   help="per-request latency budget (seconds)")
    q.add_argument("--autotune", action="store_true",
                   help="attach the closed-loop adaptive controller")
    q.add_argument("--admission", type=float, default=1.0,
                   help="static admission probability (the controller "
                        "retunes it at runtime when --autotune is on)")
    q.add_argument("--emit", action="store_true",
                   help="persist series.json under benchmarks/results")

    p = sub.add_parser("obs", help="observability artifact tooling")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "render", help="render a metrics.json artifact as OpenMetrics text"
    )
    p.add_argument("--metrics", default="benchmarks/results/metrics.json",
                   help="path to an emitted metrics.json")
    p = obs_sub.add_parser(
        "critical-path",
        help="top-k slowest traced requests with segment decomposition "
             "and SLA-miss root causes",
    )
    p.add_argument("--trace", default="benchmarks/results/reqtrace.json",
                   help="path to an emitted reqtrace.json artifact")
    p.add_argument("--top", type=int, default=10,
                   help="how many slowest requests to show")
    p.add_argument("--emit", action="store_true",
                   help="persist the analysis as critical_path.json "
                        "under benchmarks/results")
    p = sub.add_parser("refresh", help="model-refresh stream tooling")
    refresh_sub = p.add_subparsers(dest="refresh_command", required=True)

    def refresh_common(q):
        q.add_argument("--tables", type=int, default=4)
        q.add_argument("--corpus", type=int, default=5_000)
        q.add_argument("--dim", type=int, default=8)
        q.add_argument("--ratio", type=float, default=0.05)
        q.add_argument("--rounds", type=int, default=8,
                       help="trainer rounds (one model version each)")
        q.add_argument("--keys-per-round", type=int, default=64)
        q.add_argument("--quantum", type=int, default=256,
                       help="max keys per published batch")
        q.add_argument("--retention", type=int, default=1024,
                       help="update-log retention (batches)")

    q = refresh_sub.add_parser(
        "replay",
        help="crash-recovery demo: snapshot + log replay convergence",
    )
    refresh_common(q)
    q.add_argument("--kill-after", type=int, default=None,
                   help="versions applied before the crash "
                        "(default: half the rounds)")
    q = refresh_sub.add_parser(
        "status", help="print a replica's update-stream position"
    )
    refresh_common(q)
    q.add_argument("--applied-rounds", type=int, default=None,
                   help="rounds applied before reporting "
                        "(default: half the rounds)")

    from .cluster import POLICY_NAMES

    p = sub.add_parser(
        "cluster", help="fault-tolerant multi-replica serving tooling"
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)

    def cluster_common(q):
        q.add_argument("--replicas", type=int, default=4)
        q.add_argument("--policy", default="hash", choices=POLICY_NAMES)
        q.add_argument("--tables", type=int, default=4)
        q.add_argument("--corpus", type=int, default=8_000)
        q.add_argument("--dim", type=int, default=16)
        q.add_argument("--ratio", type=float, default=0.05)
        q.add_argument("--rate", type=float, default=120_000.0,
                       help="offered load (requests/sec, Poisson)")
        q.add_argument("--horizon", type=float, default=0.03,
                       help="simulated seconds of traffic")
        q.add_argument("--sla", type=float, default=2e-3,
                       help="per-request latency budget (seconds)")
        q.add_argument("--hot-keys", type=int, default=128,
                       help="Zipf head replicated onto every replica")
        q.add_argument("--rounds", type=int, default=12,
                       help="trainer rounds published over the horizon")
        q.add_argument("--keys-per-round", type=int, default=64)
        q.add_argument("--seed", type=int, default=5)
        q.add_argument("--crash-at", type=float, default=0.3,
                       help="crash start as a fraction of the horizon")
        q.add_argument("--crash-for", type=float, default=0.4,
                       help="crash duration as a fraction of the horizon")

    q = cluster_sub.add_parser(
        "serve", help="fault-free routed run with per-replica dispatch"
    )
    cluster_common(q)
    q = cluster_sub.add_parser(
        "drill",
        help="kill the hot-owner replica: routed vs unrouted SLA",
    )
    cluster_common(q)
    q = cluster_sub.add_parser(
        "status", help="print the failure detector's health timeline"
    )
    cluster_common(q)
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "hitrate": _cmd_hitrate,
    "throughput": _cmd_throughput,
    "fusion": _cmd_fusion,
    "coding": _cmd_coding,
    "trace": _cmd_trace,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "scenario": _cmd_scenario,
    "obs": _cmd_obs,
    "refresh": _cmd_refresh,
    "cluster": _cmd_cluster,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
