"""Benchmark harness: experiment runners and report formatting.

Every table and figure of the paper's evaluation has a runner here; the
``benchmarks/`` directory wraps them in pytest-benchmark entry points, and
the runners can also be driven directly (see ``examples/``).
"""

from .reporting import format_table, format_rate, format_time
from .harness import (
    ExperimentContext,
    make_context,
    run_scheme,
    scheme_factory,
    SCHEME_NAMES,
)

__all__ = [
    "format_table",
    "format_rate",
    "format_time",
    "ExperimentContext",
    "make_context",
    "run_scheme",
    "scheme_factory",
    "SCHEME_NAMES",
]
