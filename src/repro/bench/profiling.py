"""Built-in hot-path profiling for the benchmark suite.

Every CLI bench accepts ``--profile``; when set, the run happens under a
:class:`HotPathProfiler` — a thin harness over :mod:`cProfile` plus
deterministic ``perf_counter_ns`` sections — and a ``profile*.json``
artifact is emitted next to the other bench results.  The artifact
attributes wall-clock to the serving hot-path *layers* the vectorization
work targets (miss table, scheduler, workflow, router, dense, registry),
so a speedup claim is diagnosable per layer and a regression in one layer
is visible even when end-to-end runtime hides it.

Attribution is by code location: each profiled function's self-time is
charged to the layer owning its file (with the miss table split out of
``serving/pipeline.py`` by function name).  The mapping is suffix-based so
it works on any checkout path — including the pre-rewrite tree the pinned
baselines were measured on.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

#: The hot-path layers wall-clock is attributed to.  Order is the
#: presentation order in tables and ``profile.json``.
LAYERS = (
    "miss_table", "scheduler", "workflow", "router",
    "dense", "registry", "other",
)

#: Path-suffix -> layer.  First (longest) match wins; files matching no
#: suffix are charged to ``other``.
_LAYER_OF_SUFFIX: Tuple[Tuple[str, str], ...] = (
    ("repro/serving/pipeline.py", "scheduler"),
    ("repro/serving/server.py", "scheduler"),
    ("repro/serving/batcher.py", "scheduler"),
    ("repro/serving/arrivals.py", "scheduler"),
    ("repro/core/workflow.py", "workflow"),
    ("repro/core/engine.py", "workflow"),
    ("repro/core/flat_cache.py", "workflow"),
    ("repro/core/unified_index.py", "workflow"),
    ("repro/core/tuner.py", "workflow"),
    ("repro/hashindex/", "workflow"),
    ("repro/mempool/", "workflow"),
    ("repro/tables/", "workflow"),
    ("repro/coding/", "workflow"),
    ("repro/workloads/", "scheduler"),
    ("repro/gpusim/", "workflow"),
    ("repro/cluster/", "router"),
    ("repro/multigpu/", "router"),
    ("repro/model/", "dense"),
    ("repro/obs/", "registry"),
)

#: ``serving/pipeline.py`` functions that belong to the in-flight miss
#: table rather than the pipelined scheduler.
_MISS_TABLE_FUNCS = frozenset(
    {"match", "publish", "retire", "outstanding", "__init__"}
)


def layer_of(filename: str, funcname: str = "") -> str:
    """Map one profiled code location to its hot-path layer."""
    path = filename.replace("\\", "/")
    for suffix, layer in _LAYER_OF_SUFFIX:
        if suffix in path:
            if (
                layer == "scheduler"
                and suffix.endswith("pipeline.py")
                and funcname in _MISS_TABLE_FUNCS
            ):
                return "miss_table"
            return layer
    return "other"


class HotPathProfiler:
    """cProfile + named wall-clock sections with per-layer attribution.

    Usage::

        prof = HotPathProfiler()
        with prof.section("depth_sweep"):
            run_depth_sweep(hw)
        prof.emit("profile", mode="full", bench="serving_sla")

    Sections are deterministic names chosen by the bench (not derived
    from timestamps or ids), so two runs of the same bench produce
    payloads whose keys — though not the measured times — are identical.
    """

    def __init__(self, use_cprofile: bool = True):
        self.use_cprofile = use_cprofile
        self._profile = cProfile.Profile() if use_cprofile else None
        #: section name -> [calls, total nanoseconds]
        self._sections: Dict[str, List[int]] = {}
        self._wall_ns = 0

    @contextmanager
    def section(self, name: str, cprofile: bool = True):
        """Time one named region (and cProfile it, when enabled).

        ``cprofile=False`` keeps a region out of the layer attribution
        (wall-clock only) — used for side work the pinned baselines do
        not cover, so before/after layer profiles compare like for like.
        """
        profile = self._profile if cprofile else None
        if profile is not None:
            profile.enable()
        started = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - started
            if profile is not None:
                profile.disable()
            cell = self._sections.setdefault(name, [0, 0])
            cell[0] += 1
            cell[1] += elapsed
            self._wall_ns += elapsed

    # -- attribution -------------------------------------------------------

    def layer_seconds(self) -> Dict[str, float]:
        """Self-time per layer, from the cProfile stats (empty without)."""
        totals = {layer: 0.0 for layer in LAYERS}
        if self._profile is None:
            return totals
        stats = pstats.Stats(self._profile)
        for (filename, _lineno, funcname), row in stats.stats.items():
            totals[layer_of(filename, funcname)] += row[2]  # tottime
        return totals

    def top_functions(self, limit: int = 15) -> List[dict]:
        """The heaviest functions by self-time, for the artifact."""
        if self._profile is None:
            return []
        stats = pstats.Stats(self._profile)
        ranked = sorted(
            stats.stats.items(), key=lambda kv: kv[1][2], reverse=True
        )
        out = []
        for (filename, lineno, funcname), row in ranked[:limit]:
            short = filename.replace("\\", "/")
            marker = "/repro/"
            if marker in short:
                short = "repro/" + short.split(marker, 1)[1]
            out.append({
                "function": f"{short}:{lineno}({funcname})",
                "layer": layer_of(filename, funcname),
                "calls": row[1],
                "self_s": round(row[2], 6),
                "cumulative_s": round(row[3], 6),
            })
        return out

    # -- artifact ----------------------------------------------------------

    def to_payload(
        self,
        bench: str,
        mode: str,
        baseline_layers_s: Optional[Dict[str, float]] = None,
    ) -> dict:
        """The ``profile.json`` payload.

        When ``baseline_layers_s`` (pinned pre-rewrite self-time per
        layer, same workload) is given, each layer also carries its
        measured speedup — the per-layer attribution of the end-to-end
        claim.
        """
        layers_now = self.layer_seconds()
        layers = {}
        for layer in LAYERS:
            cell = {"self_s": round(layers_now[layer], 6)}
            if baseline_layers_s is not None:
                base = baseline_layers_s.get(layer)
                if base is not None:
                    cell["baseline_self_s"] = base
                    cell["speedup"] = round(
                        base / layers_now[layer], 3
                    ) if layers_now[layer] > 0 else None
            layers[layer] = cell
        return {
            "bench": bench,
            "mode": mode,
            "profiler": "cprofile" if self.use_cprofile else "sections",
            "wall_s": round(self._wall_ns / 1e9, 6),
            "sections": {
                name: {"calls": calls, "total_s": round(ns / 1e9, 6)}
                for name, (calls, ns) in sorted(self._sections.items())
            },
            "layers": layers,
            "top_functions": self.top_functions(),
        }

    def emit(
        self,
        name: str,
        bench: str,
        mode: str,
        baseline_layers_s: Optional[Dict[str, float]] = None,
    ) -> str:
        """Write the payload via the standard artifact writer; print a
        per-layer attribution table.  Returns the path written."""
        from .reporting import emit_json, format_table

        payload = self.to_payload(
            bench, mode, baseline_layers_s=baseline_layers_s
        )
        rows = []
        for layer in LAYERS:
            cell = payload["layers"][layer]
            rows.append([
                layer,
                f"{cell['self_s']:.4f} s",
                (f"{cell['baseline_self_s']:.4f} s"
                 if "baseline_self_s" in cell else "-"),
                (f"{cell['speedup']:.2f}x"
                 if cell.get("speedup") is not None else "-"),
            ])
        print()
        print(format_table(
            ["layer", "self time", "pre-rewrite", "speedup"],
            rows,
            title=f"Hot-path attribution ({bench}, {mode} mode)",
        ))
        return emit_json(name, payload)


#: Pinned pre-rewrite per-layer self-time (seconds) for
#: ``bench_serving_sla.py``'s depth sweep, measured with this module's
#: attribution on the PR-6 tree (commit 59a9b57) on the CI reference
#: machine.  These are the "before" column of the speedup attribution in
#: ``profile.json``; re-pin by running ``--profile`` on the old tree.
SERVING_BASELINE_LAYERS_S: Dict[str, Dict[str, float]] = {
    # mode -> layer -> pre-rewrite self seconds (cProfile tottime).
    "full": {
        "miss_table": 0.0858, "scheduler": 0.4910, "workflow": 0.5601,
        "router": 0.0, "dense": 1.5352, "registry": 0.2279,
        "other": 0.7074,
    },
    "smoke": {
        "miss_table": 0.0264, "scheduler": 0.2515, "workflow": 0.2747,
        "router": 0.0, "dense": 0.6230, "registry": 0.0947,
        "other": 0.3294,
    },
}


def serving_baseline(mode: str) -> Optional[Dict[str, float]]:
    """The pinned pre-rewrite layer profile for a serving-sweep mode."""
    layers = SERVING_BASELINE_LAYERS_S.get(mode)
    return layers if layers else None


def maybe_section(profiler: Optional[HotPathProfiler], name: str,
                  cprofile: bool = True):
    """``profiler.section(name)`` or a no-op when profiling is off.

    Lets a bench write one code path for both plain and ``--profile``
    runs without duplicating the section structure.
    """
    if profiler is None:
        from contextlib import nullcontext

        return nullcontext()
    return profiler.section(name, cprofile=cprofile)
