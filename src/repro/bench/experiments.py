"""Experiment registry: one entry per paper table/figure and study.

Maps stable experiment IDs to the benchmark that regenerates them, so
tools (the CLI's ``run`` command, docs) can address experiments without
knowing the file layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible experiment."""

    experiment_id: str
    paper_ref: str
    description: str
    bench_file: str


_ENTRIES: Tuple[ExperimentEntry, ...] = (
    ExperimentEntry("table1", "Table 1", "hardware platform constants",
                    "benchmarks/bench_table1_hardware.py"),
    ExperimentEntry("table2", "Table 2", "dataset replica characteristics",
                    "benchmarks/bench_table2_datasets.py"),
    ExperimentEntry("fig3", "Figure 3", "HugeCTR hit-rate gap vs Optimal",
                    "benchmarks/bench_fig03_hitrate_gap.py"),
    ExperimentEntry("fig4", "Figure 4", "kernel maintenance vs execution",
                    "benchmarks/bench_fig04_kernel_maintenance.py"),
    ExperimentEntry("exp1", "Figure 9", "overall throughput improvement",
                    "benchmarks/bench_exp01_throughput.py"),
    ExperimentEntry("exp2", "Figure 10", "throughput vs median/P99 latency",
                    "benchmarks/bench_exp02_latency.py"),
    ExperimentEntry("exp3", "Figure 11", "speedup across cache sizes",
                    "benchmarks/bench_exp03_cache_sizes.py"),
    ExperimentEntry("exp4", "Figure 12", "flat-cache hit rates",
                    "benchmarks/bench_exp04_flat_cache_hitrate.py"),
    ExperimentEntry("exp5", "Figure 13", "size-aware coding AUC",
                    "benchmarks/bench_exp05_size_aware_coding.py"),
    ExperimentEntry("exp6", "Figure 14", "kernel fusion vs table count",
                    "benchmarks/bench_exp06_kernel_fusion.py"),
    ExperimentEntry("exp7", "Figure 15", "workflow optimisations",
                    "benchmarks/bench_exp07_workflow_opts.py"),
    ExperimentEntry("exp8", "Figure 16", "cumulative technique breakdown",
                    "benchmarks/bench_exp08_breakdown.py"),
    ExperimentEntry("exp9", "Figure 17", "skewness sensitivity",
                    "benchmarks/bench_exp09_skewness.py"),
    ExperimentEntry("exp10", "Figure 18", "embedding-dimension sensitivity",
                    "benchmarks/bench_exp10_dimension.py"),
    ExperimentEntry("exp11", "Figure 19", "table-count sensitivity",
                    "benchmarks/bench_exp11_table_count.py"),
    ExperimentEntry("exp12", "Figure 20", "MLP-depth sensitivity",
                    "benchmarks/bench_exp12_mlp_depth.py"),
    ExperimentEntry("serving", "§1 framing", "SLA under open-loop load",
                    "benchmarks/bench_serving_sla.py"),
    ExperimentEntry("models", "§6.1 discussion", "dense-part families",
                    "benchmarks/bench_model_families.py"),
    ExperimentEntry("analysis", "Issue 1 / planning",
                    "MRC validation + hotspot gap",
                    "benchmarks/bench_analysis_capacity.py"),
    ExperimentEntry("ablations", "design choices",
                    "admission/watermarks/tuner/copies/alternatives/scaling",
                    "benchmarks/bench_ablation_admission.py"),
)


def registry() -> Dict[str, ExperimentEntry]:
    """Experiment ID -> entry."""
    return {entry.experiment_id: entry for entry in _ENTRIES}


def all_experiments() -> List[ExperimentEntry]:
    return list(_ENTRIES)
