"""Plain-text report formatting for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence

from ..errors import ConfigError

#: Where :func:`emit` persists benchmark reports (overridable via env).
RESULTS_DIR = os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")

#: Schema version stamped into every emitted JSON artifact
#: (``metrics.json``, ``trace.json``, ``series.json``, ``alerts.json``,
#: benchmark payloads).  Bump when an artifact's shape changes
#: incompatibly; :func:`load_artifact` refuses newer-than-supported files.
SCHEMA_VERSION = 1


def format_time(seconds: float) -> str:
    """Human-readable duration with an appropriate unit."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_rate(per_second: float) -> str:
    """Human-readable rate (inferences/sec, keys/sec, ...)."""
    if per_second >= 1e9:
        return f"{per_second / 1e9:.2f} G/s"
    if per_second >= 1e6:
        return f"{per_second / 1e6:.2f} M/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.2f} K/s"
    return f"{per_second:.1f} /s"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt_row(row: List[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(lines)


def emit(name: str, text: str) -> str:
    """Print a benchmark report and persist it under ``RESULTS_DIR``.

    Returns the path written, for logging.
    """
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path


def emit_observability(snapshot, tracer) -> List[str]:
    """Persist a run's registry snapshot and span trace under ``RESULTS_DIR``.

    Writes ``metrics.json`` (the :class:`~repro.obs.MetricsSnapshot`
    rendered via ``to_dict`` — counters, gauges, histograms) and
    ``trace.json`` (the :class:`~repro.obs.SpanTracer` exported in the
    Chrome trace-event format; load in ``chrome://tracing`` or Perfetto).
    Both carry the ``version`` schema stamp.  Returns the two paths
    written.
    """
    paths = [emit_json("metrics", snapshot.to_dict())]
    paths.append(emit_json("trace", tracer.to_chrome_trace()))
    return paths


def emit_timeseries(collector, engine=None) -> List[str]:
    """Persist a run's windowed series and alert history.

    Writes ``series.json`` (the
    :class:`~repro.obs.timeseries.WindowedCollector` ring buffer) and —
    when an SLO engine is attached to the collector or passed explicitly —
    ``alerts.json`` (the :class:`~repro.obs.alerts.SloEngine` payload).
    Returns the paths written.
    """
    paths = [emit_json("series", collector.to_payload())]
    engine = engine if engine is not None else collector.engine
    if engine is not None:
        paths.append(emit_json("alerts", engine.to_payload()))
    return paths


def emit_json(name: str, payload: object) -> str:
    """Persist a machine-readable benchmark result under ``RESULTS_DIR``.

    ``payload`` must be JSON-serialisable (dicts/lists of plain numbers
    and strings).  Dict payloads are stamped with the artifact
    ``version`` (:data:`SCHEMA_VERSION`).  Written as ``<name>.json``
    next to the text reports so downstream tooling (CI trend tracking,
    plotting) can consume the same numbers the text tables show.
    Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    if isinstance(payload, dict) and "version" not in payload:
        payload = {"version": SCHEMA_VERSION, **payload}
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_artifact(path: str, kind: Optional[str] = None) -> dict:
    """Load an emitted JSON artifact, checking its schema version.

    Raises :class:`~repro.errors.ConfigError` when the file is not a JSON
    object, carries no ``version``, declares a version newer than this
    code supports, or (``kind`` given) declares a different ``kind``.
    """
    with open(path) as f:
        payload = json.load(f)
    if not isinstance(payload, dict):
        raise ConfigError(f"{path}: artifact must be a JSON object")
    version = payload.get("version")
    if not isinstance(version, int):
        raise ConfigError(f"{path}: missing integer 'version' field")
    if version > SCHEMA_VERSION:
        raise ConfigError(
            f"{path}: artifact version {version} is newer than supported "
            f"version {SCHEMA_VERSION}"
        )
    if kind is not None and payload.get("kind") != kind:
        raise ConfigError(
            f"{path}: expected kind {kind!r}, got {payload.get('kind')!r}"
        )
    return payload
