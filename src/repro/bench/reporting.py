"""Plain-text report formatting for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence

#: Where :func:`emit` persists benchmark reports (overridable via env).
RESULTS_DIR = os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")


def format_time(seconds: float) -> str:
    """Human-readable duration with an appropriate unit."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_rate(per_second: float) -> str:
    """Human-readable rate (inferences/sec, keys/sec, ...)."""
    if per_second >= 1e9:
        return f"{per_second / 1e9:.2f} G/s"
    if per_second >= 1e6:
        return f"{per_second / 1e6:.2f} M/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.2f} K/s"
    return f"{per_second:.1f} /s"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt_row(row: List[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(lines)


def emit(name: str, text: str) -> str:
    """Print a benchmark report and persist it under ``RESULTS_DIR``.

    Returns the path written, for logging.
    """
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path


def emit_observability(snapshot, tracer) -> List[str]:
    """Persist a run's registry snapshot and span trace under ``RESULTS_DIR``.

    Writes ``metrics.json`` (the :class:`~repro.obs.MetricsSnapshot`
    rendered via ``to_dict`` — counters, gauges, histograms) and
    ``trace.json`` (the :class:`~repro.obs.SpanTracer` exported in the
    Chrome trace-event format; load in ``chrome://tracing`` or Perfetto).
    Returns the two paths written.
    """
    paths = [emit_json("metrics", snapshot.to_dict())]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = os.path.join(RESULTS_DIR, "trace.json")
    tracer.export_json(trace_path)
    paths.append(trace_path)
    return paths


def emit_json(name: str, payload: object) -> str:
    """Persist a machine-readable benchmark result under ``RESULTS_DIR``.

    ``payload`` must be JSON-serialisable (dicts/lists of plain numbers
    and strings).  Written as ``<name>.json`` next to the text reports so
    downstream tooling (CI trend tracking, plotting) can consume the same
    numbers the text tables show.  Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
