"""Shared machinery for running the paper's experiments.

An :class:`ExperimentContext` bundles a dataset replica, its trace, the
host store, and the platform spec; :func:`run_scheme` replays the trace
through a cache scheme and returns the engine's result.  Benchmarks use
these so every figure is produced by the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..baselines.no_cache import NoCacheLayer
from ..baselines.per_table_cache import PerTableCacheLayer, PerTableConfig
from ..core.config import FlecheConfig
from ..core.engine import InferenceEngine, InferenceResult
from ..core.workflow import FlecheEmbeddingLayer
from ..gpusim.executor import Executor
from ..hardware import HardwareSpec, default_platform
from ..model.dcn import DeepCrossNetwork
from ..tables.store import EmbeddingStore
from ..workloads.datasets import DATASET_REPLICAS, PAPER_DEFAULT_RATIO
from ..workloads.spec import DatasetSpec
from ..workloads.synthetic import synthetic_dataset
from ..workloads.trace import Trace

#: Replica scale used by benchmarks: full ladder, laptop-sized corpora.
BENCH_SCALE = 1.0

#: Scheme names accepted by :func:`scheme_factory`.
SCHEME_NAMES = ("hugectr", "fleche", "fleche-noui", "no-cache")


@dataclass
class ExperimentContext:
    """Everything one experiment run needs."""

    dataset: DatasetSpec
    trace: Trace
    store: EmbeddingStore
    hw: HardwareSpec
    cache_ratio: float
    warmup: int

    @property
    def measured_batches(self) -> List:
        return list(self.trace)[self.warmup:]


def make_context(
    dataset_name: str = "avazu",
    batch_size: int = 4096,
    num_batches: int = 24,
    cache_ratio: Optional[float] = None,
    scale: float = BENCH_SCALE,
    hw: Optional[HardwareSpec] = None,
    warmup: Optional[int] = None,
    dataset: Optional[DatasetSpec] = None,
) -> ExperimentContext:
    """Build a context for one of the paper's dataset replicas.

    Args:
        dataset_name: one of ``avazu``, ``criteo-kaggle``, ``criteo-tb``
            (ignored when ``dataset`` is given).
        batch_size: inference batch size.
        num_batches: total batches generated (warmup + measurement).
        cache_ratio: cache size as a fraction of all parameters; defaults
            to the paper's per-dataset default (5% / 5% / 0.5%).
        scale: replica corpus scale factor.
        hw: platform spec (defaults to the paper's testbed).
        warmup: warm-up batches (default: half the trace).
        dataset: pre-built dataset spec overriding the named replica.
    """
    hw = hw or default_platform()
    if dataset is None:
        dataset = DATASET_REPLICAS[dataset_name](scale=scale)
    if cache_ratio is None:
        cache_ratio = PAPER_DEFAULT_RATIO.get(dataset.name, 0.05)
    trace = synthetic_dataset(dataset, num_batches=num_batches, batch_size=batch_size)
    store = EmbeddingStore(dataset.table_specs(), hw)
    return ExperimentContext(
        dataset=dataset,
        trace=trace,
        store=store,
        hw=hw,
        cache_ratio=cache_ratio,
        warmup=warmup if warmup is not None else num_batches // 2,
    )


def scheme_factory(
    name: str, context: ExperimentContext, **config_overrides
) -> Callable[[], object]:
    """Return a zero-arg constructor for the named cache scheme."""
    if name not in SCHEME_NAMES:
        raise ValueError(f"unknown scheme {name!r}; pick from {SCHEME_NAMES}")
    hw, store, ratio = context.hw, context.store, context.cache_ratio

    def build():
        if name == "hugectr":
            return PerTableCacheLayer(store, PerTableConfig(cache_ratio=ratio), hw)
        if name == "fleche":
            cfg = FlecheConfig(cache_ratio=ratio, **config_overrides)
            return FlecheEmbeddingLayer(store, cfg, hw)
        if name == "fleche-noui":
            cfg = FlecheConfig(
                cache_ratio=ratio, use_unified_index=False, **config_overrides
            )
            return FlecheEmbeddingLayer(store, cfg, hw)
        if name == "no-cache":
            return NoCacheLayer(store, hw)
        raise ValueError(f"unknown scheme {name!r}; pick from {SCHEME_NAMES}")

    return build


def run_scheme(
    context: ExperimentContext,
    scheme_name: str,
    include_dense: bool = False,
    model: Optional[DeepCrossNetwork] = None,
    pin_unified: bool = False,
    **config_overrides,
) -> InferenceResult:
    """Replay the context's trace through one scheme; warm-up untimed.

    ``pin_unified`` disables the capacity auto-tuner and pins the unified
    index at its configured maximum — the steady state the paper's
    sensitivity experiments operate in.
    """
    scheme = scheme_factory(scheme_name, context, **config_overrides)()
    if pin_unified and isinstance(scheme, FlecheEmbeddingLayer):
        if scheme.tuner is not None:
            fraction = scheme.config.unified_index_fraction
            scheme.tuner = None
            scheme.cache.set_unified_capacity(
                int(scheme.cache.capacity_slots * fraction)
            )
    if include_dense and model is None:
        model = DeepCrossNetwork(
            num_tables=context.dataset.num_tables,
            embedding_dim=context.dataset.dim,
        )
    engine = InferenceEngine(
        scheme,
        context.hw,
        model=model,
        include_dense=include_dense,
    )
    executor = Executor(context.hw)
    return engine.run(list(context.trace), executor, warmup=context.warmup)


def sweep(
    context_factory: Callable[[object], ExperimentContext],
    points: Iterable[object],
    scheme_names: Iterable[str],
    **run_kwargs,
) -> Dict[object, Dict[str, InferenceResult]]:
    """Run a parameter sweep: one context per point, all schemes on each."""
    results: Dict[object, Dict[str, InferenceResult]] = {}
    for point in points:
        context = context_factory(point)
        results[point] = {
            name: run_scheme(context, name, **run_kwargs)
            for name in scheme_names
        }
    return results


# --------------------------------------------------------------------------
# Drill harness: fault-window setup, alert timing, deterministic artifacts.
# Shared by bench_serving_faults.py and bench_cluster.py so every chaos
# drill measures detection/recovery the same way and emits comparable,
# byte-stable artifacts.

def fault_window(
    horizon: float, start_fraction: float, duration_fraction: float
) -> "tuple[float, float, float]":
    """Place one fault window inside a run: ``(start, duration, end)``.

    Fractions are of ``horizon``; a zero duration returns an empty
    window (``duration == 0``) the caller can treat as fault-free.
    """
    start = start_fraction * horizon
    duration = duration_fraction * horizon
    return start, duration, start + duration


def shard_outage_events(num_shards: int, start: float, duration: float):
    """One :class:`~repro.faults.schedule.ShardOutage` per shard, or an
    empty list when ``duration`` is zero (the fault-free control)."""
    from ..faults.schedule import ShardOutage

    if duration <= 0:
        return []
    return [
        ShardOutage(shard=shard, start=start, duration=duration)
        for shard in range(num_shards)
    ]


def alert_timing(alerts, event_start: float, event_end: float) -> dict:
    """Score a list of :class:`~repro.obs.alerts.Alert` against a known
    fault window.

    Returns time-to-detect (first alert fired at/after onset),
    time-to-recover (last alert resolved after the window cleared, or
    ``None`` while any alert is still firing), the count of alerts fired
    *before* the fault existed (false positives — drills assert zero),
    and which rules remain unresolved.
    """
    fired = [
        a.fired_at - event_start for a in alerts
        if a.fired_at >= event_start
    ]
    resolved = [
        a.resolved_at - event_end for a in alerts
        if a.resolved_at is not None and a.resolved_at >= event_end
    ]
    unresolved = sorted({a.rule for a in alerts if a.resolved_at is None})
    return {
        "ttd_s": min(fired) if fired else None,
        "ttr_s": max(resolved) if (resolved and not unresolved) else None,
        "early_alerts": sum(1 for a in alerts if a.fired_at < event_start),
        "alerts": len(alerts),
        "unresolved": unresolved,
    }


def canonical_json(payload) -> str:
    """The byte-stable JSON encoding drill determinism is judged on."""
    import json

    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def payload_digest(payload) -> str:
    """sha256 over :func:`canonical_json` — the report hash drills pin."""
    import hashlib

    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def emit_drill(name: str, text: str, payload) -> "tuple[str, str]":
    """Emit a drill's human table + JSON artifact; returns their paths."""
    from .reporting import emit, emit_json

    return emit(name, text), emit_json(name, payload)


def emit_rootcause(name: str, trace_payload: dict) -> "tuple[str, str]":
    """Emit a ``reqtrace`` artifact plus its critical-path analysis.

    Persists the raw trace payload as ``<name>.json`` and the
    :func:`~repro.obs.critical_path.analyze_payload` summary — per-cause
    SLA-miss counts and the top slowest requests with their segment
    decompositions — as ``<name>_rootcause.json``, the pair the CI
    cluster smoke uploads and ``repro obs critical-path`` consumes.
    Returns both paths.
    """
    from ..obs.critical_path import analyze_payload
    from .reporting import emit_json

    trace_path = emit_json(name, trace_payload)
    analysis = analyze_payload(trace_payload)
    return trace_path, emit_json(f"{name}_rootcause", analysis)
