"""Pooling operations over multi-hot embedding lookups.

After embedding lookup, the vectors of each categorical field are
compressed into one dense vector per sample through a pooling operation
(paper §2.1).  Pooling is segment-wise: a field contributing ``k`` IDs per
sample pools each consecutive group of ``k`` rows.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


def _as_segments(embeddings: np.ndarray, ids_per_sample: int) -> np.ndarray:
    if embeddings.ndim != 2:
        raise WorkloadError("pooling expects a 2-D embedding matrix")
    rows, dim = embeddings.shape
    if ids_per_sample <= 0 or rows % ids_per_sample:
        raise WorkloadError(
            f"{rows} rows do not split into segments of {ids_per_sample}"
        )
    return embeddings.reshape(rows // ids_per_sample, ids_per_sample, dim)


def sum_pool(embeddings: np.ndarray, ids_per_sample: int = 1) -> np.ndarray:
    """Sum-pool consecutive groups of ``ids_per_sample`` rows."""
    return _as_segments(embeddings, ids_per_sample).sum(axis=1)


def mean_pool(embeddings: np.ndarray, ids_per_sample: int = 1) -> np.ndarray:
    """Average-pool consecutive groups of ``ids_per_sample`` rows."""
    return _as_segments(embeddings, ids_per_sample).mean(axis=1)


def max_pool(embeddings: np.ndarray, ids_per_sample: int = 1) -> np.ndarray:
    """Max-pool consecutive groups of ``ids_per_sample`` rows."""
    return _as_segments(embeddings, ids_per_sample).max(axis=1)
