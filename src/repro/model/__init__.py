"""Dense part of the DLRM: pooling, cross layers, MLP, and metrics.

The paper evaluates on a Deep & Cross Network (6 cross layers + a
(1024, 1024) MLP, §6.1).  The forward pass here is a real numpy
computation; its GPU execution time is modelled from FLOPs via the
roofline in :mod:`repro.gpusim.kernel`, which is all the end-to-end
figures require (the MLP is untouched by Fleche's techniques).
"""

from .pooling import sum_pool, mean_pool, max_pool
from .mlp import MLP
from .cross import CrossNetwork
from .dcn import DeepCrossNetwork, DenseForwardResult
from .deepfm import DeepFM
from .attention import SelfAttentionInteraction
from .auc import auc_score
from .trainer import CollisionAucStudy, SyntheticCtrTask

__all__ = [
    "sum_pool",
    "mean_pool",
    "max_pool",
    "MLP",
    "CrossNetwork",
    "DeepCrossNetwork",
    "DeepFM",
    "SelfAttentionInteraction",
    "DenseForwardResult",
    "auc_score",
    "CollisionAucStudy",
    "SyntheticCtrTask",
]
