"""Synthetic CTR task + trainer for the re-encoding AUC study (Exp #5).

Experiment #5 measures how flat-key collisions degrade model quality: when
two distinct feature IDs collapse onto one flat key, they are forced to
share an embedding, blurring the signal both carried.  To reproduce the
mechanism without the proprietary click logs, we build a synthetic CTR
task:

* every (table, feature ID) pair has a latent ground-truth weight;
* a sample's click probability is the logistic of the sum of its features'
  weights (plus noise);
* a learner with one scalar weight per *flat key* is trained by SGD.

When the coding layer is collision-free the learner can recover every
latent weight exactly (up to sampling noise) — the "Upper Bound" curve.
Collisions force one learned weight to serve several latent ones, and the
measured AUC drops exactly the way Figure 13 shows: fixed-length coding
(Kraken) collapses far earlier than Fleche's size-aware coding as the key
bit budget shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..coding.layout import FlatKeyCodec
from ..errors import WorkloadError
from ..tables.embedding_table import reference_vectors
from ..workloads.zipf import ZipfSampler
from .auc import auc_score


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class SyntheticCtrTask:
    """A synthetic click-through-rate prediction task.

    Args:
        corpus_sizes: per-table distinct ID counts.
        num_train: training samples to generate.
        num_test: held-out samples for AUC measurement.
        alpha: popularity skew of feature occurrence.
        seed: base RNG seed.
    """

    corpus_sizes: Sequence[int]
    num_train: int = 40_000
    num_test: int = 10_000
    alpha: float = -1.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.corpus_sizes:
            raise WorkloadError("CTR task needs at least one table")
        rng = np.random.default_rng(self.seed)
        #: latent per-ID logit contribution, one array per table.
        self.latent_weights: List[np.ndarray] = [
            rng.standard_normal(size).astype(np.float64) * 0.9
            for size in self.corpus_sizes
        ]
        self._samplers = [
            ZipfSampler(size, alpha=self.alpha, seed=self.seed * 31 + t)
            for t, size in enumerate(self.corpus_sizes)
        ]
        self._rng = rng
        self.train_features, self.train_labels = self._draw(self.num_train)
        self.test_features, self.test_labels = self._draw(self.num_test)

    def _draw(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``count`` rows: feature matrix (count x tables) + labels."""
        features = np.stack(
            [s.sample(count, rng=self._rng) for s in self._samplers], axis=1
        )
        logits = np.zeros(count, dtype=np.float64)
        for t in range(len(self.corpus_sizes)):
            logits += self.latent_weights[t][features[:, t].astype(np.int64)]
        labels = (self._rng.random(count) < _sigmoid(logits)).astype(np.int64)
        return features, labels

    @property
    def num_tables(self) -> int:
        return len(self.corpus_sizes)


class _HashedLogisticModel:
    """Logistic model with one weight per flat key (hashed embedding dim 1)."""

    def __init__(self, learning_rate: float = 0.3, epochs: int = 4, seed: int = 0):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.seed = seed
        self._weights: Optional[dict] = None

    def _encode(self, codec: FlatKeyCodec, features: np.ndarray) -> np.ndarray:
        keys = np.zeros(features.shape, dtype=np.uint64)
        for t in range(features.shape[1]):
            keys[:, t] = codec.encode(t, features[:, t])
        return keys

    def fit(
        self, codec: FlatKeyCodec, features: np.ndarray, labels: np.ndarray
    ) -> "._HashedLogisticModel":
        keys = self._encode(codec, features)
        # Densify keys -> weight slots.
        unique, dense = np.unique(keys, return_inverse=True)
        dense = dense.reshape(keys.shape)
        weights = np.zeros(len(unique), dtype=np.float64)
        bias = 0.0
        rng = np.random.default_rng(self.seed)
        n = len(labels)
        batch = 256
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                rows = order[start:start + batch]
                logits = weights[dense[rows]].sum(axis=1) + bias
                grad = _sigmoid(logits) - labels[rows]
                np.add.at(
                    weights,
                    dense[rows].ravel(),
                    -self.learning_rate * np.repeat(grad, keys.shape[1])
                    / len(rows),
                )
                bias -= self.learning_rate * grad.mean()
        self._weights = {int(k): w for k, w in zip(unique, weights)}
        self._bias = bias
        return self

    def predict(self, codec: FlatKeyCodec, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise WorkloadError("model not fitted")
        keys = self._encode(codec, features)
        scores = np.full(keys.shape[0], self._bias, dtype=np.float64)
        lookup = self._weights
        for t in range(keys.shape[1]):
            scores += np.fromiter(
                (lookup.get(int(k), 0.0) for k in keys[:, t]),
                dtype=np.float64,
                count=keys.shape[0],
            )
        return _sigmoid(scores)


class _IdentityCodec:
    """Collision-free reference codec: (table, id) kept distinct exactly."""

    def encode(self, table_id: int, feature_ids: np.ndarray) -> np.ndarray:
        return (np.uint64(table_id + 1) << np.uint64(48)) | feature_ids.astype(
            np.uint64
        )


def delta_vectors(
    table_id: int, feature_ids: np.ndarray, dim: int, version: int
) -> np.ndarray:
    """Deterministic "retrained" embedding of ``(table, id)`` at a model
    version.

    Version 0 is the ground truth served by the parameter server
    (:func:`~repro.tables.embedding_table.reference_vectors`); each later
    version rotates and shifts it by a version-dependent amount, so two
    replicas that applied the same version hold bit-identical rows while
    rows from different versions are guaranteed to differ.  A pure
    function of its arguments — replay from any point reproduces the
    exact same bytes.
    """
    base = reference_vectors(table_id, feature_ids, dim)
    if version == 0:
        return base
    scale = np.float32(1.0 + 0.25 * ((version % 7) + 1) / 7.0)
    shift = np.float32(0.001 * version)
    return (base * scale + shift).astype(np.float32)


class EmbeddingDeltaTrainer:
    """Emits rounds of refreshed embedding rows, one model version each.

    Stands in for the continuous-training side of the system: every call
    to :meth:`next_round` bumps the model version and "retrains" the rows
    of a popularity-skewed sample of keys per table (hot keys churn most,
    exactly the skew the serving cache holds).  Deltas are deterministic
    in ``(seed, version)`` via :func:`delta_vectors`, so an update stream
    can be regenerated or audited offline.
    """

    def __init__(
        self,
        corpus_sizes: Sequence[int],
        dims: Sequence[int],
        keys_per_round: int = 256,
        alpha: float = -1.2,
        seed: int = 0,
    ):
        if not corpus_sizes:
            raise WorkloadError("delta trainer needs at least one table")
        if len(corpus_sizes) != len(dims):
            raise WorkloadError("corpus_sizes and dims length mismatch")
        if keys_per_round < 1:
            raise WorkloadError("keys_per_round must be >= 1")
        self.dims = list(dims)
        self.keys_per_round = int(keys_per_round)
        self.version = 0
        self._samplers = [
            ZipfSampler(size, alpha=alpha, seed=seed * 37 + t)
            for t, size in enumerate(corpus_sizes)
        ]

    def next_round(self):
        """Train one round: returns ``(version, {table: (ids, vectors)})``.

        Sampled IDs are deduplicated within the round (the trainer's own
        output has no torn rows); the sampler draws with replacement, so
        hot IDs reappear across rounds.
        """
        self.version += 1
        updates = {}
        for table_id, sampler in enumerate(self._samplers):
            ids = np.unique(sampler.sample(self.keys_per_round))
            vectors = delta_vectors(
                table_id, ids, self.dims[table_id], self.version
            )
            updates[table_id] = (ids, vectors)
        return self.version, updates


class CollisionAucStudy:
    """Measures AUC under a codec for the synthetic CTR task (Figure 13)."""

    def __init__(self, task: SyntheticCtrTask, epochs: int = 4, seed: int = 0):
        self.task = task
        self.epochs = epochs
        self.seed = seed

    def auc_with_codec(self, codec, weight_transform=None) -> float:
        """Train with flat keys from ``codec``; return held-out AUC.

        ``weight_transform``, if given, maps the trained weight table
        ``(keys, weights) -> new_weights`` before prediction — the hook
        the mixed-precision study uses to quantize a tier's worth of
        weights and measure the AUC movement that quantization alone
        causes (training itself is untouched).
        """
        model = _HashedLogisticModel(epochs=self.epochs, seed=self.seed)
        model.fit(codec, self.task.train_features, self.task.train_labels)
        if weight_transform is not None:
            keys = np.fromiter(
                model._weights.keys(), dtype=np.uint64,
                count=len(model._weights),
            )
            weights = np.fromiter(
                model._weights.values(), dtype=np.float64,
                count=len(model._weights),
            )
            new_weights = weight_transform(keys, weights)
            model._weights = {
                int(k): float(w) for k, w in zip(keys, new_weights)
            }
        scores = model.predict(codec, self.task.test_features)
        return auc_score(self.task.test_labels, scores)

    def upper_bound_auc(self) -> float:
        """AUC of the no-collision ideal case (Figure 13's red line)."""
        return self.auc_with_codec(_IdentityCodec())
