"""Cross layers of the Deep & Cross Network (Wang et al., ADKDD'17).

One cross layer computes ``x_{l+1} = x_0 * (w . x_l) + b + x_l`` — an
explicit bounded-degree feature interaction.  The paper's evaluation model
stacks six of these in front of the MLP (§6.1).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError
from ..gpusim.kernel import KernelSpec


class CrossNetwork:
    """A stack of DCN cross layers over a fixed input dimension."""

    def __init__(self, input_dim: int, num_layers: int, seed: int = 1):
        if input_dim <= 0:
            raise ConfigError("cross input_dim must be positive")
        if num_layers < 0:
            raise ConfigError("num_layers must be >= 0")
        self.input_dim = input_dim
        self.num_layers = num_layers
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(input_dim)
        self.weights = [
            (rng.standard_normal(input_dim) * scale).astype(np.float32)
            for _ in range(num_layers)
        ]
        self.biases = [np.zeros(input_dim, dtype=np.float32) for _ in range(num_layers)]

    def forward(self, x0: np.ndarray) -> np.ndarray:
        """Apply every cross layer to batch ``x0`` (shape B x D)."""
        x = x0.astype(np.float32, copy=False)
        for w, b in zip(self.weights, self.biases):
            interaction = x @ w  # (B,)
            # Same op order as ``x0 * interaction + b + x``, accumulated
            # in place on the fresh product to avoid two temporaries.
            nxt = x0 * interaction[:, None]
            nxt += b
            nxt += x
            x = nxt
        return x

    def flops(self, batch_size: int) -> float:
        """Forward FLOPs: per layer, a dot product plus an axpy per sample."""
        per_layer = 2.0 * batch_size * self.input_dim * 2
        return per_layer * self.num_layers

    def kernels(self, batch_size: int) -> List[KernelSpec]:
        """One fused kernel per cross layer (memory-bound elementwise work)."""
        specs = []
        for i in range(self.num_layers):
            bytes_moved = 4 * batch_size * self.input_dim * 3
            specs.append(
                KernelSpec(
                    name=f"cross_{i}",
                    threads=batch_size * min(self.input_dim, 1024),
                    stream_bytes=bytes_moved,
                    flops=2.0 * batch_size * self.input_dim * 2,
                )
            )
        return specs
