"""The full Deep & Cross Network used by the evaluation (paper §6.1).

Structure: pooled embedding vectors of all tables are concatenated with the
dense features, fed through six cross layers, then a (1024, 1024) MLP and a
sigmoid output.  :meth:`DeepCrossNetwork.forward` is a real numpy forward
pass; :meth:`kernels` lists the dense-part kernels for the timing model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from ..gpusim.kernel import KernelSpec
from .cross import CrossNetwork
from .mlp import MLP


@dataclass(frozen=True)
class DenseForwardResult:
    """Output of the dense part for one batch."""

    probabilities: np.ndarray
    flops: float


class DeepCrossNetwork:
    """DCN: cross layers in front of an MLP tower.

    Args:
        num_tables: embedding tables feeding the concatenation.
        embedding_dim: dimension of each pooled embedding vector.
        dense_dim: number of continuous input features.
        num_cross_layers: cross-layer count (paper default 6).
        hidden_units: MLP tower widths (paper default (1024, 1024)).
    """

    def __init__(
        self,
        num_tables: int,
        embedding_dim: int,
        dense_dim: int = 13,
        num_cross_layers: int = 6,
        hidden_units: Sequence[int] = (1024, 1024),
        seed: int = 3,
    ):
        if num_tables <= 0 or embedding_dim <= 0 or dense_dim < 0:
            raise ConfigError("invalid DCN dimensions")
        self.num_tables = num_tables
        self.embedding_dim = embedding_dim
        self.dense_dim = dense_dim
        self.input_dim = num_tables * embedding_dim + dense_dim
        self.cross = CrossNetwork(self.input_dim, num_cross_layers, seed=seed)
        self.mlp = MLP(self.input_dim, hidden_units, seed=seed + 1)
        #: Forward-pass memo keyed on the input's (shape, content digest).
        #: The dense weights are fixed at construction (online refresh
        #: streams *embedding* deltas; the dense tower never mutates), so
        #: the forward pass is a pure function of ``x`` — benches that
        #: replay the same request stream through several server configs
        #: reuse each batch's result instead of re-running the GEMMs.
        self._forward_memo: dict = {}
        self._kernels_memo: dict = {}
        self._zero_dense = None

    def concat_inputs(
        self, pooled_per_table: List[np.ndarray], dense: np.ndarray = None
    ) -> np.ndarray:
        """Concatenate pooled embeddings (and dense features) per sample."""
        if len(pooled_per_table) != self.num_tables:
            raise ConfigError(
                f"expected {self.num_tables} pooled tables, got "
                f"{len(pooled_per_table)}"
            )
        batch = pooled_per_table[0].shape[0]
        parts = list(pooled_per_table)
        if self.dense_dim:
            if dense is None:
                # Cached all-zero block (concatenate only reads it).
                cached = self._zero_dense
                if cached is None or cached.shape[0] != batch:
                    cached = np.zeros(
                        (batch, self.dense_dim), dtype=np.float32
                    )
                    self._zero_dense = cached
                parts.append(cached)
            else:
                parts.append(dense.astype(np.float32))
        return np.concatenate(parts, axis=1)

    def forward(self, x: np.ndarray) -> DenseForwardResult:
        """Run the dense part on concatenated inputs ``x`` (B x input_dim)."""
        if x.shape[1] != self.input_dim:
            raise ConfigError(
                f"expected input dim {self.input_dim}, got {x.shape[1]}"
            )
        data = x if x.flags.c_contiguous else np.ascontiguousarray(x)
        key = (
            x.shape,
            str(x.dtype),
            hashlib.sha1(data).digest(),
        )
        memo = self._forward_memo
        result = memo.get(key)
        if result is not None:
            return result
        crossed = self.cross.forward(x)
        probabilities = self.mlp.forward(crossed)
        flops = self.cross.flops(x.shape[0]) + self.mlp.flops(x.shape[0])
        result = DenseForwardResult(probabilities=probabilities, flops=flops)
        if len(memo) >= 128:
            memo.clear()
        memo[key] = result
        return result

    def kernels(self, batch_size: int) -> List[KernelSpec]:
        """Every dense-part kernel launch for one batch.

        Memoized per batch size (specs are frozen; callers only read the
        returned list) so steady-state batches build zero new specs.
        """
        cached = self._kernels_memo.get(batch_size)
        if cached is None:
            cached = self.cross.kernels(batch_size) + self.mlp.kernels(
                batch_size
            )
            self._kernels_memo[batch_size] = cached
        return cached

    def flops(self, batch_size: int) -> float:
        return self.cross.flops(batch_size) + self.mlp.flops(batch_size)
