"""Area Under the ROC Curve (Hanley & McNeil, 1982).

AUC is the paper's model-quality metric for the re-encoding study
(Experiment #5).  The implementation uses the rank-statistic formulation
(equivalent to the Mann-Whitney U), with midrank handling for ties.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """AUC of ``scores`` against binary ``labels``.

    Args:
        labels: 0/1 array.
        scores: predicted probabilities or arbitrary monotone scores.
    """
    labels = np.asarray(labels).astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise WorkloadError("labels and scores must have the same shape")
    if labels.size == 0:
        raise WorkloadError("AUC of an empty sample is undefined")
    positives = int(labels.sum())
    negatives = labels.size - positives
    if positives == 0 or negatives == 0:
        raise WorkloadError("AUC needs both positive and negative samples")

    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    ranks = np.empty(labels.size, dtype=np.float64)
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0  # midrank, 1-based
        i = j + 1

    positive_rank_sum = ranks[labels == 1].sum()
    u_statistic = positive_rank_sum - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))
