"""DeepFM (Guo et al., IJCAI'17): FM layer + deep tower.

One of the model families the paper's §6.1 names when arguing that DLRMs
differ mainly in their dense parts.  DeepFM scores a sample as

    sigmoid( FM(first-order + pairwise interactions) + MLP(concat) )

where the pairwise FM term uses the identity
``sum_{i<j} <v_i, v_j> = 0.5 * (||sum v_i||^2 - sum ||v_i||^2)`` computed
per embedding dimension — O(tables x dim), not O(tables^2).

The class implements the same interface the engine drives
(``concat_inputs`` / ``forward`` / ``kernels`` / ``flops``), so any cache
scheme serves it unchanged.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from ..gpusim.kernel import KernelSpec
from .dcn import DenseForwardResult
from .mlp import MLP, _sigmoid


class DeepFM:
    """FM + deep tower over pooled embedding vectors."""

    def __init__(
        self,
        num_tables: int,
        embedding_dim: int,
        dense_dim: int = 0,
        hidden_units: Sequence[int] = (400, 400),
        seed: int = 11,
    ):
        if num_tables <= 1:
            raise ConfigError("DeepFM needs at least two tables (pairwise FM)")
        if embedding_dim <= 0 or dense_dim < 0:
            raise ConfigError("invalid DeepFM dimensions")
        self.num_tables = num_tables
        self.embedding_dim = embedding_dim
        self.dense_dim = dense_dim
        self.input_dim = num_tables * embedding_dim + dense_dim
        rng = np.random.default_rng(seed)
        #: first-order weight per table (applied to the pooled vector mean).
        self.first_order = (
            rng.standard_normal(num_tables) / np.sqrt(num_tables)
        ).astype(np.float32)
        self.mlp = MLP(self.input_dim, hidden_units, seed=seed + 1)

    # ------------------------------------------------------------------ api

    def concat_inputs(
        self, pooled_per_table: List[np.ndarray], dense: np.ndarray = None
    ) -> np.ndarray:
        if len(pooled_per_table) != self.num_tables:
            raise ConfigError(
                f"expected {self.num_tables} pooled tables, got "
                f"{len(pooled_per_table)}"
            )
        batch = pooled_per_table[0].shape[0]
        parts = list(pooled_per_table)
        if self.dense_dim:
            if dense is None:
                dense = np.zeros((batch, self.dense_dim), dtype=np.float32)
            parts.append(dense.astype(np.float32))
        return np.concatenate(parts, axis=1)

    def _fm_terms(self, x: np.ndarray) -> np.ndarray:
        """First-order + pairwise FM logits from the concatenated input."""
        batch = x.shape[0]
        fields = x[:, : self.num_tables * self.embedding_dim].reshape(
            batch, self.num_tables, self.embedding_dim
        )
        first = fields.mean(axis=2) @ self.first_order
        total = fields.sum(axis=1)
        pairwise = 0.5 * (
            (total ** 2).sum(axis=1) - (fields ** 2).sum(axis=(1, 2))
        )
        return first + pairwise / self.embedding_dim

    def forward(self, x: np.ndarray) -> DenseForwardResult:
        if x.shape[1] != self.input_dim:
            raise ConfigError(
                f"expected input dim {self.input_dim}, got {x.shape[1]}"
            )
        fm_logits = self._fm_terms(x)
        deep = self.mlp.forward(x)
        # Combine in logit space: invert the tower's sigmoid first.
        deep_logits = np.log(deep / np.clip(1.0 - deep, 1e-7, None))
        probabilities = _sigmoid(fm_logits + deep_logits)
        return DenseForwardResult(
            probabilities=probabilities.astype(np.float32),
            flops=self.flops(x.shape[0]),
        )

    # ------------------------------------------------------------------ cost

    def fm_flops(self, batch_size: int) -> float:
        per_sample = 4.0 * self.num_tables * self.embedding_dim
        return batch_size * per_sample

    def flops(self, batch_size: int) -> float:
        return self.fm_flops(batch_size) + self.mlp.flops(batch_size)

    def kernels(self, batch_size: int) -> List[KernelSpec]:
        fm = KernelSpec(
            name="fm_interaction",
            threads=batch_size * min(self.embedding_dim, 256),
            stream_bytes=4 * batch_size * self.input_dim,
            flops=self.fm_flops(batch_size),
        )
        return [fm] + self.mlp.kernels(batch_size)
