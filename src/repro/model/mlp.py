"""Multilayer perceptron with a FLOP-accurate cost description.

The MLP's forward pass is real numpy; :meth:`MLP.kernels` describes the
equivalent cuDNN GEMM launches so the engine can charge device time and
per-layer launch overhead through the simulator.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from ..gpusim.kernel import KernelSpec


def _relu(x: np.ndarray) -> np.ndarray:
    # In-place on a freshly produced activation: same op, zero extra
    # allocation (callers only ever pass arrays they own).
    return np.maximum(x, 0.0, out=x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same IEEE op sequence as 1/(1+exp(-clip(x))), applied in place.
    np.clip(x, -30.0, 30.0, out=x)
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.divide(1.0, x, out=x)
    return x


class MLP:
    """Fully-connected tower ending in one sigmoid output unit."""

    def __init__(self, input_dim: int, hidden_units: Sequence[int], seed: int = 0):
        if input_dim <= 0:
            raise ConfigError("MLP input_dim must be positive")
        if any(h <= 0 for h in hidden_units):
            raise ConfigError("hidden unit counts must be positive")
        self.input_dim = input_dim
        self.hidden_units = list(hidden_units)
        rng = np.random.default_rng(seed)
        dims = [input_dim] + self.hidden_units + [1]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(
                (rng.standard_normal((fan_in, fan_out)) * scale).astype(np.float32)
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float32))

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the per-sample click probability."""
        h = x.astype(np.float32, copy=False)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w
            h += b  # in place on the fresh GEMM output
            h = _sigmoid(h) if i == self.num_layers - 1 else _relu(h)
        return h[:, 0]

    def flops(self, batch_size: int) -> float:
        """Forward FLOPs for ``batch_size`` samples (2 x MACs)."""
        total = 0.0
        for w in self.weights:
            total += 2.0 * batch_size * w.shape[0] * w.shape[1]
        return total

    def kernels(self, batch_size: int) -> List[KernelSpec]:
        """One GEMM kernel per layer, for the timing model."""
        specs = []
        for i, w in enumerate(self.weights):
            fan_in, fan_out = w.shape
            bytes_moved = 4 * (batch_size * fan_in + fan_in * fan_out
                               + batch_size * fan_out)
            specs.append(
                KernelSpec(
                    name=f"mlp_gemm_{i}",
                    threads=batch_size * fan_out,
                    stream_bytes=bytes_moved,
                    flops=2.0 * batch_size * fan_in * fan_out,
                )
            )
        return specs
