"""AutoInt-style self-attention interaction model (Song et al., CIKM'19).

The transformer-flavoured DLRM variant the paper's §6.1 mentions.  Each
table's pooled embedding is one token; interacting layers run multi-head
scaled-dot-product self-attention over the tokens, then an MLP head scores
the flattened result.

Also the reason Fleche rejects *reduction* caching (§5): with attention,
the contribution of an embedding depends on every other token of the
sample, so pooled-group memoization is unsound — which
`repro.baselines.reduction_cache` refuses by construction.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from ..gpusim.kernel import KernelSpec
from .dcn import DenseForwardResult
from .mlp import MLP


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class SelfAttentionInteraction:
    """Multi-head self-attention over per-table embedding tokens."""

    def __init__(
        self,
        num_tables: int,
        embedding_dim: int,
        num_heads: int = 2,
        num_layers: int = 2,
        hidden_units: Sequence[int] = (256,),
        seed: int = 13,
    ):
        if num_tables <= 0 or embedding_dim <= 0:
            raise ConfigError("invalid attention-model dimensions")
        if num_heads <= 0 or embedding_dim % num_heads:
            raise ConfigError("embedding_dim must divide by num_heads")
        if num_layers <= 0:
            raise ConfigError("num_layers must be positive")
        self.num_tables = num_tables
        self.embedding_dim = embedding_dim
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.input_dim = num_tables * embedding_dim
        self.dense_dim = 0
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(embedding_dim)
        self.projections = [
            {
                name: (rng.standard_normal(
                    (embedding_dim, embedding_dim)) * scale).astype(np.float32)
                for name in ("q", "k", "v")
            }
            for _ in range(num_layers)
        ]
        self.mlp = MLP(self.input_dim, hidden_units, seed=seed + 1)

    # ------------------------------------------------------------------ api

    def concat_inputs(
        self, pooled_per_table: List[np.ndarray], dense: np.ndarray = None
    ) -> np.ndarray:
        if len(pooled_per_table) != self.num_tables:
            raise ConfigError(
                f"expected {self.num_tables} pooled tables, got "
                f"{len(pooled_per_table)}"
            )
        return np.concatenate(pooled_per_table, axis=1)

    def _attend(self, tokens: np.ndarray, layer: int) -> np.ndarray:
        """One residual multi-head self-attention layer (B, T, D)."""
        proj = self.projections[layer]
        q = tokens @ proj["q"]
        k = tokens @ proj["k"]
        v = tokens @ proj["v"]
        head_dim = self.embedding_dim // self.num_heads
        batch, T, _ = tokens.shape

        def split(x):
            return x.reshape(batch, T, self.num_heads, head_dim).transpose(
                0, 2, 1, 3
            )

        qh, kh, vh = split(q), split(k), split(v)
        scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(head_dim)
        out = _softmax(scores) @ vh
        merged = out.transpose(0, 2, 1, 3).reshape(batch, T, self.embedding_dim)
        return np.maximum(tokens + merged, 0.0)  # residual + ReLU

    def forward(self, x: np.ndarray) -> DenseForwardResult:
        if x.shape[1] != self.input_dim:
            raise ConfigError(
                f"expected input dim {self.input_dim}, got {x.shape[1]}"
            )
        batch = x.shape[0]
        tokens = x.reshape(batch, self.num_tables, self.embedding_dim)
        for layer in range(self.num_layers):
            tokens = self._attend(tokens, layer)
        probabilities = self.mlp.forward(tokens.reshape(batch, -1))
        return DenseForwardResult(
            probabilities=probabilities, flops=self.flops(batch)
        )

    # ------------------------------------------------------------------ cost

    def attention_flops(self, batch_size: int) -> float:
        T, D = self.num_tables, self.embedding_dim
        per_layer = 2.0 * batch_size * (3 * T * D * D + 2 * T * T * D)
        return per_layer * self.num_layers

    def flops(self, batch_size: int) -> float:
        return self.attention_flops(batch_size) + self.mlp.flops(batch_size)

    def kernels(self, batch_size: int) -> List[KernelSpec]:
        specs = []
        T, D = self.num_tables, self.embedding_dim
        for layer in range(self.num_layers):
            specs.append(KernelSpec(
                name=f"attention_{layer}",
                threads=batch_size * T * min(D, 128),
                stream_bytes=4 * batch_size * T * D * 4,
                flops=self.attention_flops(batch_size) / self.num_layers,
            ))
        return specs + self.mlp.kernels(batch_size)
