"""Remote parameter server: the bottom tier for giant models (paper §5).

Holds the authoritative copy of every embedding.  Lookups travel over the
datacenter network: one round trip per batched request plus streaming time
for the payload.  Vectors come from the same deterministic ground-truth
generator as the local store, so correctness stays verifiable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import WorkloadError
from ..tables.embedding_table import reference_vectors
from ..tables.table_spec import TableSpec

US = 1e-6


@dataclass(frozen=True)
class NetworkSpec:
    """Datacenter network between inference node and parameter servers.

    Failure injection: with probability ``slow_probability`` a request
    lands on a degraded path (congestion, a slow replica) and takes
    ``slow_factor`` times longer; with probability ``timeout_probability``
    it times out entirely after ``timeout`` and is retried (one retry is
    always assumed to succeed — persistent failures are a different
    study).  Both default to off, keeping the happy path deterministic.
    """

    #: One request/response round trip (kernel bypass RDMA-ish).
    round_trip: float = 25 * US
    #: Usable per-connection bandwidth.
    bandwidth: float = 5e9
    #: Requests are sharded over this many parameter-server nodes.
    num_shards: int = 4
    #: Probability a request hits a degraded path.
    slow_probability: float = 0.0
    #: Latency multiplier on the degraded path.
    slow_factor: float = 10.0
    #: Probability a request times out and retries once.
    timeout_probability: float = 0.0
    #: Client-side timeout before the retry fires.
    timeout: float = 1000 * US

    def __post_init__(self) -> None:
        if not 0.0 <= self.slow_probability <= 1.0:
            raise WorkloadError("slow_probability must be in [0, 1]")
        if not 0.0 <= self.timeout_probability <= 1.0:
            raise WorkloadError("timeout_probability must be in [0, 1]")
        if self.slow_factor < 1.0:
            raise WorkloadError("slow_factor must be >= 1")
        if self.timeout <= 0:
            raise WorkloadError("timeout must be positive")

    def fetch_cost(
        self, payload_bytes: int, rng: "np.random.Generator" = None
    ) -> float:
        """Time to fetch ``payload_bytes`` with one batched request."""
        if payload_bytes < 0:
            raise WorkloadError("negative payload")
        streaming = payload_bytes / (self.bandwidth * self.num_shards)
        base = self.round_trip + streaming
        if rng is None or (
            self.slow_probability == 0.0 and self.timeout_probability == 0.0
        ):
            return base
        roll = rng.random()
        if roll < self.timeout_probability:
            return self.timeout + base  # wait out the timeout, retry wins
        if roll < self.timeout_probability + self.slow_probability:
            return base * self.slow_factor
        return base


@dataclass(frozen=True)
class RemoteFetchResult:
    """Vectors plus the network time their fetch cost."""

    vectors: np.ndarray
    network_time: float


class RemoteParameterServer:
    """Authoritative remote store for all embedding tables."""

    def __init__(
        self,
        specs: Sequence[TableSpec],
        network: NetworkSpec = None,
        seed: int = 0,
    ):
        if not specs:
            raise WorkloadError("remote PS needs at least one table")
        self.specs = list(specs)
        self.network = network or NetworkSpec()
        self.fetches = 0
        self.keys_served = 0
        self._rng = np.random.default_rng(seed)

    def fetch(self, table_id: int, feature_ids: np.ndarray) -> RemoteFetchResult:
        """Fetch one table's embeddings in a single batched request."""
        spec = self.specs[table_id]
        feature_ids = np.ascontiguousarray(feature_ids, dtype=np.uint64)
        if feature_ids.size and int(feature_ids.max()) >= spec.corpus_size:
            raise WorkloadError(
                f"table {table_id}: feature id beyond corpus size"
            )
        vectors = reference_vectors(table_id, feature_ids, spec.dim)
        payload = vectors.nbytes + 8 * len(feature_ids)
        self.fetches += 1
        self.keys_served += len(feature_ids)
        network_time = (
            self.network.fetch_cost(payload, rng=self._rng)
            if len(feature_ids) else 0.0
        )
        return RemoteFetchResult(vectors=vectors, network_time=network_time)
