"""Remote parameter server: the bottom tier for giant models (paper §5).

Holds the authoritative copy of every embedding.  Lookups travel over the
datacenter network: one round trip per batched request plus streaming time
for the payload.  Vectors come from the same deterministic ground-truth
generator as the local store, so correctness stays verifiable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from ..faults.injector import FaultInjector
from ..faults.retry import BreakerConfig, ResilientFetchClient, RetryPolicy
from ..tables.embedding_table import reference_vectors
from ..tables.table_spec import TableSpec

US = 1e-6


@dataclass(frozen=True)
class NetworkSpec:
    """Datacenter network between inference node and parameter servers.

    Failure injection: with probability ``slow_probability`` a request
    lands on a degraded path (congestion, a slow replica) and takes
    ``slow_factor`` times longer; with probability ``timeout_probability``
    it times out entirely after ``timeout`` and is retried (one retry is
    always assumed to succeed — persistent failures are a different
    study).  Both default to off, keeping the happy path deterministic.
    """

    #: One request/response round trip (kernel bypass RDMA-ish).
    round_trip: float = 25 * US
    #: Usable per-connection bandwidth.
    bandwidth: float = 5e9
    #: Requests are sharded over this many parameter-server nodes.
    num_shards: int = 4
    #: Probability a request hits a degraded path.
    slow_probability: float = 0.0
    #: Latency multiplier on the degraded path.
    slow_factor: float = 10.0
    #: Probability a request times out and retries once.
    timeout_probability: float = 0.0
    #: Client-side timeout before the retry fires.
    timeout: float = 1000 * US

    def __post_init__(self) -> None:
        if not 0.0 <= self.slow_probability <= 1.0:
            raise WorkloadError("slow_probability must be in [0, 1]")
        if not 0.0 <= self.timeout_probability <= 1.0:
            raise WorkloadError("timeout_probability must be in [0, 1]")
        if self.slow_factor < 1.0:
            raise WorkloadError("slow_factor must be >= 1")
        if self.timeout <= 0:
            raise WorkloadError("timeout must be positive")

    def base_cost(self, payload_bytes: int) -> float:
        """Fault-free time to fetch ``payload_bytes`` in one request."""
        if payload_bytes < 0:
            raise WorkloadError("negative payload")
        streaming = payload_bytes / (self.bandwidth * self.num_shards)
        return self.round_trip + streaming

    def fetch_cost(
        self,
        payload_bytes: int,
        rng: Optional["np.random.Generator"] = None,
    ) -> float:
        """Time to fetch ``payload_bytes`` with one batched request."""
        base = self.base_cost(payload_bytes)
        if rng is None or (
            self.slow_probability == 0.0 and self.timeout_probability == 0.0
        ):
            return base
        roll = rng.random()
        if roll < self.timeout_probability:
            return self.timeout + base  # wait out the timeout, retry wins
        if roll < self.timeout_probability + self.slow_probability:
            return base * self.slow_factor
        return base


@dataclass(frozen=True)
class RemoteFetchResult:
    """Vectors plus the network time their fetch cost."""

    vectors: np.ndarray
    network_time: float
    #: False when the resilient client exhausted its retry budget (or the
    #: breaker failed fast); the vectors must then not be trusted.
    success: bool = True
    attempts: int = 1
    hedges_fired: int = 0


class RemoteParameterServer:
    """Authoritative remote store for all embedding tables.

    With ``injector=None`` (the default) fetch timing follows the seed's
    ``NetworkSpec`` model exactly.  Supplying a
    :class:`~repro.faults.injector.FaultInjector` switches the network
    path to the resilient client: schedule-driven faults, per-attempt
    timeouts, backoff, optional hedging, and per-shard circuit breakers
    (``retry_policy`` / ``breaker``).  Each batched per-table request is
    routed to shard ``table_id % num_shards``.
    """

    def __init__(
        self,
        specs: Sequence[TableSpec],
        network: Optional[NetworkSpec] = None,
        seed: int = 0,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
    ):
        if not specs:
            raise WorkloadError("remote PS needs at least one table")
        self.specs = list(specs)
        self.network = network or NetworkSpec()
        self.fetches = 0
        self.keys_served = 0
        self._rng = np.random.default_rng(seed)
        self.injector = injector
        self.client: Optional[ResilientFetchClient] = None
        if injector is not None:
            self.client = ResilientFetchClient(
                injector,
                retry_policy or RetryPolicy(),
                num_shards=self.network.num_shards,
                breaker=breaker,
                seed=seed,
            )

    def shard_for(self, table_id: int) -> int:
        """The PS shard serving ``table_id``'s batched requests."""
        return table_id % self.network.num_shards

    def fetch(
        self, table_id: int, feature_ids: np.ndarray, now: float = 0.0
    ) -> RemoteFetchResult:
        """Fetch one table's embeddings in a single batched request.

        ``now`` is the simulated issue time; it only matters on the
        resilient path, where fault windows are time-driven.
        """
        spec = self.specs[table_id]
        feature_ids = np.ascontiguousarray(feature_ids, dtype=np.uint64)
        if feature_ids.size and int(feature_ids.max()) >= spec.corpus_size:
            raise WorkloadError(
                f"table {table_id}: feature id beyond corpus size"
            )
        vectors = reference_vectors(table_id, feature_ids, spec.dim)
        payload = vectors.nbytes + 8 * len(feature_ids)
        self.fetches += 1
        self.keys_served += len(feature_ids)
        if not len(feature_ids):
            return RemoteFetchResult(vectors=vectors, network_time=0.0)
        if self.client is None:
            network_time = self.network.fetch_cost(payload, rng=self._rng)
            return RemoteFetchResult(
                vectors=vectors, network_time=network_time
            )
        outcome = self.client.fetch(
            self.network.base_cost(payload), self.shard_for(table_id), now
        )
        return RemoteFetchResult(
            vectors=vectors,
            network_time=outcome.elapsed,
            success=outcome.success,
            attempts=outcome.attempts,
            hedges_fired=outcome.hedges_fired,
        )
