"""Giant-model support: a three-tier parameter hierarchy (paper §5).

Industrial recommendation models can exceed a single machine's DRAM.  The
paper's §5 sketches the consequence: the local CPU-DRAM layer is no longer
an immutable copy of all parameters but becomes *another cache layer*, and
the full parameter set lives in a remote parameter server.  All of Fleche's
designs keep working, with one corner case to handle carefully — unified-
index pointers into DRAM may be invalidated when the DRAM layer evicts.

This package builds that deployment:

* :mod:`repro.multitier.remote_ps` — the remote parameter server with a
  network cost model (RTT + bandwidth);
* :mod:`repro.multitier.dram_cache` — the host-DRAM cache layer (LRU over
  host memory, backed by the remote PS), which *notifies invalidation
  listeners* when entries are evicted;
* :mod:`repro.multitier.hierarchy` — the assembled GPU-HBM -> CPU-DRAM ->
  remote-PS hierarchy, wiring DRAM evictions to unified-index pointer
  invalidation exactly as §5 prescribes.
"""

from .remote_ps import RemoteParameterServer, NetworkSpec
from .dram_cache import DramCacheLayer
from .hierarchy import TieredParameterStore, TierStats

__all__ = [
    "RemoteParameterServer",
    "NetworkSpec",
    "DramCacheLayer",
    "TieredParameterStore",
    "TierStats",
]
