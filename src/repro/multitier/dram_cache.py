"""The host-DRAM cache layer for giant models (paper §5).

When parameters exceed local DRAM, the CPU-DRAM layer keeps only a subset
of embeddings, backed by the remote parameter server.  It behaves as an
LRU cache keyed by (table, feature id) and — critically for Fleche —
*announces its evictions*: any GPU-side unified-index pointer referring to
an evicted entry has become dangling and must be invalidated (§5's corner
case).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..core.precision import TIERS, dequantize_rows, quantize_rows
from ..errors import ConfigError, WorkloadError
from ..obs.registry import Observable
from ..tables.table_spec import TableSpec


def pack_global_key(table_id: int, feature_id: int) -> int:
    """One flat namespace over (table, feature) for the DRAM layer."""
    return (table_id << 48) | feature_id


class DramCacheLayer(Observable):
    """LRU host cache of embeddings, backed by a fetch callback.

    Args:
        specs: the model's table specs.
        capacity: embeddings the DRAM layer can hold.
        fetch: callback ``(table_id, feature_ids) -> (vectors, cost)`` used
            on DRAM misses (typically the remote parameter server).  The
            callback may instead return ``(vectors, cost, cacheable)``;
            with ``cacheable=False`` the vectors are served but *not*
            inserted (degraded fallbacks must never pollute the cache).
        storage_tier: precision at which resident rows are held —
            ``"fp32"`` (the default; rows stored verbatim, byte-identical
            to the pre-tiering layer), ``"fp16"`` or ``"int8"``.  Lookups
            always serve fp32; fetch-inserts quantize on the way in and
            refresh re-quantizes at the same tier, so a model refresh
            never silently upgrades a row's precision.
    """

    def __init__(
        self,
        specs: Sequence[TableSpec],
        capacity: int,
        fetch: Callable[[int, np.ndarray], Tuple[np.ndarray, float]],
        storage_tier: str = "fp32",
    ):
        if capacity <= 0:
            raise ConfigError("DRAM cache capacity must be positive")
        if storage_tier not in TIERS:
            raise ConfigError(f"unknown DRAM storage tier {storage_tier!r}")
        self.specs = list(specs)
        self.capacity = int(capacity)
        self.storage_tier = storage_tier
        self._fetch = fetch
        self._entries: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._invalidation_listeners: List[Callable[[np.ndarray], None]] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ---------------------------------------------------------------- storage

    def _store_row(self, row: np.ndarray):
        """Quantize one fp32 row to the layer's storage tier."""
        if self.storage_tier == "fp32":
            return row
        payload, scales = quantize_rows(row[None, :], self.storage_tier)
        if scales is None:
            return payload[0]
        return (payload[0], scales[0])

    def _load_row(self, stored) -> np.ndarray:
        """Reconstruct one fp32 row from its stored representation."""
        if self.storage_tier == "fp32":
            return stored
        if isinstance(stored, tuple):
            payload, scale = stored
            return dequantize_rows(
                payload[None, :], np.asarray([scale]), self.storage_tier
            )[0]
        return dequantize_rows(stored[None, :], None, self.storage_tier)[0]

    # ------------------------------------------------------------------ hooks

    def on_eviction(self, listener: Callable[[np.ndarray], None]) -> None:
        """Register a listener receiving the global keys of evicted rows.

        Fleche's tiered store registers the unified-index invalidator here.
        """
        self._invalidation_listeners.append(listener)

    def _evict_to_capacity(self) -> None:
        evicted = []
        while len(self._entries) > self.capacity:
            key, _ = self._entries.popitem(last=False)
            evicted.append(key)
        if evicted:
            self.evictions += len(evicted)
            self.obs.inc("tier.dram_evictions", len(evicted))
            keys = np.asarray(evicted, dtype=np.uint64)
            for listener in self._invalidation_listeners:
                listener(keys)

    def flush(self) -> int:
        """Drop every resident entry, notifying invalidation listeners.

        Models the DRAM tier losing its contents (process restart, a
        :class:`~repro.faults.schedule.DramTierFailure` window): every
        GPU-side unified-index pointer into the tier is now dangling and
        each key's invalidation fires exactly once.  Returns the number
        of entries dropped.
        """
        if not self._entries:
            return 0
        keys = np.asarray(list(self._entries.keys()), dtype=np.uint64)
        self._entries.clear()
        self.evictions += len(keys)
        self.obs.inc("tier.dram_evictions", len(keys))
        for listener in self._invalidation_listeners:
            listener(keys)
        return len(keys)

    # ------------------------------------------------------------------ query

    def lookup(
        self, table_id: int, feature_ids: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Serve one table's IDs, faulting misses in from the backing store.

        Returns ``(vectors, backing_time)`` where ``backing_time`` is the
        remote fetch cost incurred (zero when everything was resident).
        """
        spec = self.specs[table_id]
        feature_ids = np.ascontiguousarray(feature_ids, dtype=np.uint64)
        vectors = np.zeros((len(feature_ids), spec.dim), dtype=np.float32)
        missing_positions = []
        for i, fid in enumerate(feature_ids):
            key = pack_global_key(table_id, int(fid))
            row = self._entries.get(key)
            if row is not None:
                self._entries.move_to_end(key)
                vectors[i] = self._load_row(row)
                self.hits += 1
            else:
                missing_positions.append(i)
                self.misses += 1

        backing_time = 0.0
        if missing_positions:
            positions = np.asarray(missing_positions)
            missing_ids = feature_ids[positions]
            unique_missing, inverse = np.unique(missing_ids, return_inverse=True)
            result = self._fetch(table_id, unique_missing)
            if len(result) == 3:
                fetched, backing_time, cacheable = result
            else:
                fetched, backing_time = result
                cacheable = True
            if fetched.shape != (len(unique_missing), spec.dim):
                raise WorkloadError("backing fetch returned wrong shape")
            vectors[positions] = fetched[inverse]
            if cacheable:
                for fid, row in zip(unique_missing, fetched):
                    self._entries[pack_global_key(table_id, int(fid))] = (
                        self._store_row(row)
                    )
                self._evict_to_capacity()
        return vectors, backing_time

    def resident(self, table_id: int, feature_id: int) -> bool:
        """Whether one (table, id) is currently cached in DRAM."""
        return pack_global_key(table_id, int(feature_id)) in self._entries

    # ---------------------------------------------------------------- refresh

    def refresh(
        self, table_id: int, feature_ids: np.ndarray, vectors: np.ndarray
    ) -> int:
        """Overwrite *resident* rows with refreshed model values in place.

        The model-refresh write-through: rows the DRAM tier holds are
        updated so a later cache miss faults in the new version, but
        non-resident keys are **not** admitted (an update is not an
        access — admitting it would let refresh traffic evict the
        serving working set) and recency is untouched for the same
        reason.  Returns the number of rows updated.
        """
        spec = self.specs[table_id]
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape != (len(feature_ids), spec.dim):
            raise WorkloadError("refresh: ids/vectors shape mismatch")
        updated = 0
        for fid, row in zip(feature_ids, vectors):
            key = pack_global_key(table_id, int(fid))
            if key in self._entries:
                self._entries[key] = self._store_row(row)
                updated += 1
        if updated:
            self.obs.inc("tier.dram_refreshed", updated)
        return updated
