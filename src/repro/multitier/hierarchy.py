"""The assembled three-tier parameter hierarchy (paper §5).

``GPU-HBM cache -> CPU-DRAM cache -> remote parameter server``

The hierarchy exposes the same batched query interface as the plain
:class:`~repro.tables.store.EmbeddingStore`, so Fleche's workflow runs on
top unchanged — the property §5 claims ("all our designs still work in
this scenario").  The one corner case is handled explicitly: when the
DRAM layer evicts an embedding, any unified-index pointer for it on the
GPU has gone stale; the hierarchy forwards the eviction notice to a
registered invalidator so the flat cache can erase those pointers before
they are trusted again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from ..faults.degrade import DegradeConfig, StaleStore, degraded_vectors
from ..hashindex.host_hash import HostQueryCost, host_query_cost
from ..hardware import HardwareSpec
from ..obs.registry import Observable
from ..tables.store import StoreQueryResult
from ..tables.table_spec import TableSpec
from .dram_cache import DramCacheLayer, pack_global_key
from .remote_ps import RemoteParameterServer


@dataclass
class TierStats:
    """Aggregate traffic counters per tier."""

    dram_hits: int = 0
    dram_misses: int = 0
    remote_fetches: int = 0
    remote_keys: int = 0
    remote_time: float = 0.0
    pointer_invalidations: int = 0
    #: Remote fetches that exhausted their retry budget (or were failed
    #: fast by an open breaker) and fell back to the degrade policy.
    remote_failures: int = 0
    #: Keys served a degraded (stale or default) vector.
    degraded_keys: int = 0
    #: Queries routed straight to the remote tier because the DRAM tier
    #: was inside a failure window.
    dram_bypass_queries: int = 0

    @property
    def dram_hit_rate(self) -> float:
        total = self.dram_hits + self.dram_misses
        return self.dram_hits / total if total else 0.0


class TieredParameterStore(Observable):
    """Drop-in EmbeddingStore replacement backed by a remote tier.

    Args:
        specs: table specs.
        hw: the platform (for DRAM cost modelling).
        dram_capacity: embeddings the local DRAM tier can hold.
        remote: the remote parameter server (default configuration if
            omitted).  Give it a fault injector to exercise the
            resilient fetch path.
        degrade: what to serve when the remote tier cannot answer within
            its retry budget (default: stale values with zero fallback).
        dram_storage_tier: precision at which the DRAM tier holds resident
            rows (``"fp32"`` default / ``"fp16"`` / ``"int8"``) — a
            lower tier multiplies the layer's effective capacity at the
            cost of quantization error on DRAM hits.
    """

    def __init__(
        self,
        specs: Sequence[TableSpec],
        hw: HardwareSpec,
        dram_capacity: int,
        remote: Optional[RemoteParameterServer] = None,
        degrade: Optional[DegradeConfig] = None,
        dram_storage_tier: str = "fp32",
    ):
        if not specs:
            raise WorkloadError("tiered store needs at least one table")
        self.specs = list(specs)
        self.hw = hw
        self.remote = remote or RemoteParameterServer(specs)
        self.degrade = degrade or DegradeConfig()
        self.stats = TierStats()
        self._invalidators: List[Callable[[np.ndarray], None]] = []
        #: Simulated wall-clock of the current query (drives fault windows).
        self._now = 0.0
        self._dram_flushed = False
        self._degraded_log: List[int] = []
        #: breaker-open seconds already folded into the registry counter.
        self._breaker_time_seen = 0.0
        # The stale shadow is only maintained on the fault-aware path;
        # fault-free runs skip the bookkeeping entirely.
        self._stale: Optional[StaleStore] = (
            StaleStore() if self.remote.injector is not None else None
        )

        self.dram = DramCacheLayer(
            specs, dram_capacity, self._backing_fetch,
            storage_tier=dram_storage_tier,
        )
        self.dram.on_eviction(self._forward_invalidation)

    def _backing_fetch(self, table_id: int, feature_ids: np.ndarray):
        """Remote fetch with degradation; feeds the DRAM layer on miss.

        Returns ``(vectors, network_time, cacheable)`` — degraded
        fallbacks are served but never inserted into the DRAM cache.
        """
        result = self.remote.fetch(table_id, feature_ids, now=self._now)
        self.stats.remote_fetches += 1
        self.stats.remote_keys += len(feature_ids)
        self.stats.remote_time += result.network_time
        obs = self.obs
        obs.inc("tier.remote_fetches")
        obs.inc("tier.remote_keys", len(feature_ids))
        obs.inc("tier.remote_time", result.network_time)
        if result.success:
            if self._stale is not None:
                self._stale.update(table_id, feature_ids, result.vectors)
            return result.vectors, result.network_time, True
        self.stats.remote_failures += 1
        self.stats.degraded_keys += len(feature_ids)
        obs.inc("tier.remote_failures")
        obs.inc("tier.degraded_keys", len(feature_ids))
        self._degraded_log.extend(
            pack_global_key(table_id, int(fid)) for fid in feature_ids
        )
        vectors, _ = degraded_vectors(
            self.degrade, self._stale, table_id, feature_ids,
            self.specs[table_id].dim,
        )
        return vectors, result.network_time, False

    # ------------------------------------------------------------------ info

    @property
    def num_tables(self) -> int:
        return len(self.specs)

    def spec_of(self, table_id: int) -> TableSpec:
        return self.specs[table_id]

    # ------------------------------------------------------------------ obs

    def _register_observability(self, registry) -> None:
        self.dram.bind_observability(registry)
        client = self.remote.client
        if client is not None:
            client.bind_observability(registry)
        registry.add_check("tier.breaker-open-time", self._sync_breaker_time)

    def _sync_breaker_time(self):
        """Audit hook: fold newly-accrued breaker-open seconds into the
        monotone ``faults.breaker_open_time`` counter.

        The breaker reports cumulative open time as a function of ``now``;
        the counter advances by the delta since the last audit, so registry
        snapshots diff correctly across serving runs.
        """
        client = self.remote.client
        if client is not None:
            open_time = client.breaker_open_time(self._now)
            delta = open_time - self._breaker_time_seen
            if delta > 0:
                self.obs.inc("faults.breaker_open_time", delta)
                self._breaker_time_seen = open_time
        return True

    # ------------------------------------------------------------------ hooks

    def register_pointer_invalidator(
        self, invalidator: Callable[[np.ndarray], None]
    ) -> None:
        """Register the GPU-side unified-index invalidator (§5).

        The callable receives the *global keys* (``table << 48 | feature``)
        of embeddings evicted from the DRAM tier.
        """
        self._invalidators.append(invalidator)

    def _forward_invalidation(self, global_keys: np.ndarray) -> None:
        self.stats.pointer_invalidations += len(global_keys)
        self.obs.inc("tier.pointer_invalidations", len(global_keys))
        for invalidator in self._invalidators:
            invalidator(global_keys)

    # ------------------------------------------------------------------ faults

    def advance_to(self, now: float) -> None:
        """Set the simulated wall-clock for subsequent queries.

        The serving loop calls this per batch so fault windows (shard
        outages, DRAM-tier failures) line up with request timestamps.
        """
        self._now = float(now)

    def take_degraded_keys(self) -> np.ndarray:
        """Global keys degraded since the last call (clears the log).

        Feed these to the AUC machinery to quantify accuracy impact.
        """
        keys = np.asarray(self._degraded_log, dtype=np.uint64)
        self._degraded_log = []
        return keys

    def fault_stats(self) -> dict:
        """Snapshot of resilience counters (all zero on fault-free runs)."""
        client = self.remote.client
        stats = {
            "retries": 0,
            "hedges_fired": 0,
            "hedge_wins": 0,
            "breaker_fast_fails": 0,
            "breaker_open_time": 0.0,
            "remote_failures": self.stats.remote_failures,
            "degraded_keys": self.stats.degraded_keys,
            "dram_bypass_queries": self.stats.dram_bypass_queries,
        }
        if client is not None:
            stats.update(
                retries=client.stats.retries,
                hedges_fired=client.stats.hedges_fired,
                hedge_wins=client.stats.hedge_wins,
                breaker_fast_fails=client.stats.breaker_fast_fails,
                breaker_open_time=client.breaker_open_time(self._now),
            )
        return stats

    def fault_windows(self) -> List[tuple]:
        """Merged fault windows of the installed schedule (may be empty)."""
        injector = self.remote.injector
        return injector.schedule.fault_windows() if injector else []

    def _dram_unavailable(self) -> bool:
        """Whether the DRAM tier is inside a failure window right now.

        On first sight of a window the tier's contents are flushed —
        firing each key's pointer invalidation exactly once — and
        lookups bypass DRAM until the window closes.
        """
        injector = self.remote.injector
        if injector is None or not injector.dram_down(self._now):
            self._dram_flushed = False
            return False
        if not self._dram_flushed:
            self.dram.flush()
            self._dram_flushed = True
        return True

    def _tier_lookup(self, table_id: int, feature_ids: np.ndarray):
        """DRAM-or-remote lookup for one table; updates tier stats."""
        obs = self.obs
        obs.inc("tier.lookup_keys", len(feature_ids))
        if self._dram_unavailable():
            self.stats.dram_bypass_queries += 1
            self.stats.dram_misses += len(feature_ids)
            obs.inc("tier.dram_bypass_queries")
            obs.inc("tier.dram_misses", len(feature_ids))
            if not len(feature_ids):
                dim = self.specs[table_id].dim
                return np.zeros((0, dim), np.float32), 0.0
            unique, inverse = np.unique(feature_ids, return_inverse=True)
            vectors, fetch_time, _ = self._backing_fetch(table_id, unique)
            return vectors[inverse], fetch_time
        before_h, before_m = self.dram.hits, self.dram.misses
        vectors, fetch_time = self.dram.lookup(table_id, feature_ids)
        self.stats.dram_hits += self.dram.hits - before_h
        self.stats.dram_misses += self.dram.misses - before_m
        obs.inc("tier.dram_hits", self.dram.hits - before_h)
        obs.inc("tier.dram_misses", self.dram.misses - before_m)
        return vectors, fetch_time

    # ---------------------------------------------------------------- refresh

    def apply_update(
        self, table_id: int, feature_ids: np.ndarray, vectors: np.ndarray
    ) -> int:
        """Model-refresh write-through: update resident DRAM rows in place.

        Called by the refresh subscriber so a key that is evicted from
        the GPU cache and later refetched comes back at the new model
        version instead of resurrecting a stale row.  Non-resident keys
        are untouched (see :meth:`DramCacheLayer.refresh`); the remote
        tier is the trainer's own parameter server and needs no write.
        Returns the number of DRAM rows updated.
        """
        return self.dram.refresh(table_id, feature_ids, vectors)

    # ------------------------------------------------------------------ query

    def query(
        self,
        table_id: int,
        feature_ids: np.ndarray,
        indexed_fraction: float = 0.0,
    ) -> StoreQueryResult:
        """Fetch one table's embeddings through the hierarchy."""
        if not 0.0 <= indexed_fraction <= 1.0:
            raise WorkloadError("indexed_fraction must be in [0, 1]")
        vectors, remote_time = self._tier_lookup(table_id, feature_ids)

        spec = self.specs[table_id]
        keys_to_index = int(round(len(feature_ids) * (1.0 - indexed_fraction)))
        local = host_query_cost(
            self.hw,
            num_keys=keys_to_index,
            payload_bytes=len(feature_ids) * spec.value_bytes,
        )
        cost = HostQueryCost(
            index_time=local.index_time,
            copy_time=local.copy_time + remote_time,
        )
        return StoreQueryResult(vectors=vectors, cost=cost)

    def query_many(
        self,
        table_ids: np.ndarray,
        feature_ids: np.ndarray,
        indexed_mask: Optional[np.ndarray] = None,
    ) -> StoreQueryResult:
        """Mixed-table batched query (same contract as EmbeddingStore)."""
        table_ids = np.asarray(table_ids)
        feature_ids = np.asarray(feature_ids, dtype=np.uint64)
        if table_ids.shape != feature_ids.shape:
            raise WorkloadError("query_many: shape mismatch")
        if len(table_ids) == 0:
            return StoreQueryResult(
                np.zeros((0, 0), np.float32), host_query_cost(self.hw, 0, 0)
            )
        dims = {self.specs[int(t)].dim for t in np.unique(table_ids)}
        if len(dims) != 1:
            raise WorkloadError("query_many: tables must share one dimension")
        dim = dims.pop()

        vectors = np.zeros((len(table_ids), dim), dtype=np.float32)
        remote_time = 0.0
        payload = 0
        for table_id in np.unique(table_ids):
            mask = table_ids == table_id
            got, fetch_time = self._tier_lookup(
                int(table_id), feature_ids[mask]
            )
            vectors[mask] = got
            remote_time += fetch_time
            payload += int(mask.sum()) * self.specs[int(table_id)].value_bytes

        if indexed_mask is None:
            keys_to_index = len(table_ids)
        else:
            keys_to_index = int((~np.asarray(indexed_mask, bool)).sum())
        local = host_query_cost(self.hw, keys_to_index, payload)
        cost = HostQueryCost(
            index_time=local.index_time,
            copy_time=local.copy_time + remote_time,
        )
        return StoreQueryResult(vectors=vectors, cost=cost)
