"""The assembled three-tier parameter hierarchy (paper §5).

``GPU-HBM cache -> CPU-DRAM cache -> remote parameter server``

The hierarchy exposes the same batched query interface as the plain
:class:`~repro.tables.store.EmbeddingStore`, so Fleche's workflow runs on
top unchanged — the property §5 claims ("all our designs still work in
this scenario").  The one corner case is handled explicitly: when the
DRAM layer evicts an embedding, any unified-index pointer for it on the
GPU has gone stale; the hierarchy forwards the eviction notice to a
registered invalidator so the flat cache can erase those pointers before
they are trusted again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from ..hashindex.host_hash import HostQueryCost, host_query_cost
from ..hardware import HardwareSpec
from ..tables.store import StoreQueryResult
from ..tables.table_spec import TableSpec
from .dram_cache import DramCacheLayer
from .remote_ps import RemoteParameterServer


@dataclass
class TierStats:
    """Aggregate traffic counters per tier."""

    dram_hits: int = 0
    dram_misses: int = 0
    remote_fetches: int = 0
    remote_keys: int = 0
    remote_time: float = 0.0
    pointer_invalidations: int = 0

    @property
    def dram_hit_rate(self) -> float:
        total = self.dram_hits + self.dram_misses
        return self.dram_hits / total if total else 0.0


class TieredParameterStore:
    """Drop-in EmbeddingStore replacement backed by a remote tier.

    Args:
        specs: table specs.
        hw: the platform (for DRAM cost modelling).
        dram_capacity: embeddings the local DRAM tier can hold.
        remote: the remote parameter server (default configuration if
            omitted).
    """

    def __init__(
        self,
        specs: Sequence[TableSpec],
        hw: HardwareSpec,
        dram_capacity: int,
        remote: Optional[RemoteParameterServer] = None,
    ):
        if not specs:
            raise WorkloadError("tiered store needs at least one table")
        self.specs = list(specs)
        self.hw = hw
        self.remote = remote or RemoteParameterServer(specs)
        self.stats = TierStats()
        self._invalidators: List[Callable[[np.ndarray], None]] = []

        def backing_fetch(table_id: int, feature_ids: np.ndarray):
            result = self.remote.fetch(table_id, feature_ids)
            self.stats.remote_fetches += 1
            self.stats.remote_keys += len(feature_ids)
            self.stats.remote_time += result.network_time
            return result.vectors, result.network_time

        self.dram = DramCacheLayer(specs, dram_capacity, backing_fetch)
        self.dram.on_eviction(self._forward_invalidation)

    # ------------------------------------------------------------------ info

    @property
    def num_tables(self) -> int:
        return len(self.specs)

    def spec_of(self, table_id: int) -> TableSpec:
        return self.specs[table_id]

    # ------------------------------------------------------------------ hooks

    def register_pointer_invalidator(
        self, invalidator: Callable[[np.ndarray], None]
    ) -> None:
        """Register the GPU-side unified-index invalidator (§5).

        The callable receives the *global keys* (``table << 48 | feature``)
        of embeddings evicted from the DRAM tier.
        """
        self._invalidators.append(invalidator)

    def _forward_invalidation(self, global_keys: np.ndarray) -> None:
        self.stats.pointer_invalidations += len(global_keys)
        for invalidator in self._invalidators:
            invalidator(global_keys)

    # ------------------------------------------------------------------ query

    def query(
        self,
        table_id: int,
        feature_ids: np.ndarray,
        indexed_fraction: float = 0.0,
    ) -> StoreQueryResult:
        """Fetch one table's embeddings through the hierarchy."""
        if not 0.0 <= indexed_fraction <= 1.0:
            raise WorkloadError("indexed_fraction must be in [0, 1]")
        before_h, before_m = self.dram.hits, self.dram.misses
        vectors, remote_time = self.dram.lookup(table_id, feature_ids)
        self.stats.dram_hits += self.dram.hits - before_h
        self.stats.dram_misses += self.dram.misses - before_m

        spec = self.specs[table_id]
        keys_to_index = int(round(len(feature_ids) * (1.0 - indexed_fraction)))
        local = host_query_cost(
            self.hw,
            num_keys=keys_to_index,
            payload_bytes=len(feature_ids) * spec.value_bytes,
        )
        cost = HostQueryCost(
            index_time=local.index_time,
            copy_time=local.copy_time + remote_time,
        )
        return StoreQueryResult(vectors=vectors, cost=cost)

    def query_many(
        self,
        table_ids: np.ndarray,
        feature_ids: np.ndarray,
        indexed_mask: np.ndarray = None,
    ) -> StoreQueryResult:
        """Mixed-table batched query (same contract as EmbeddingStore)."""
        table_ids = np.asarray(table_ids)
        feature_ids = np.asarray(feature_ids, dtype=np.uint64)
        if table_ids.shape != feature_ids.shape:
            raise WorkloadError("query_many: shape mismatch")
        if len(table_ids) == 0:
            return StoreQueryResult(
                np.zeros((0, 0), np.float32), host_query_cost(self.hw, 0, 0)
            )
        dims = {self.specs[int(t)].dim for t in np.unique(table_ids)}
        if len(dims) != 1:
            raise WorkloadError("query_many: tables must share one dimension")
        dim = dims.pop()

        vectors = np.zeros((len(table_ids), dim), dtype=np.float32)
        remote_time = 0.0
        payload = 0
        before_h, before_m = self.dram.hits, self.dram.misses
        for table_id in np.unique(table_ids):
            mask = table_ids == table_id
            got, fetch_time = self.dram.lookup(int(table_id), feature_ids[mask])
            vectors[mask] = got
            remote_time += fetch_time
            payload += int(mask.sum()) * self.specs[int(table_id)].value_bytes
        self.stats.dram_hits += self.dram.hits - before_h
        self.stats.dram_misses += self.dram.misses - before_m

        if indexed_mask is None:
            keys_to_index = len(table_ids)
        else:
            keys_to_index = int((~np.asarray(indexed_mask, bool)).sum())
        local = host_query_cost(self.hw, keys_to_index, payload)
        cost = HostQueryCost(
            index_time=local.index_time,
            copy_time=local.copy_time + remote_time,
        )
        return StoreQueryResult(vectors=vectors, cost=cost)
