"""Hash index substrates.

* :mod:`repro.hashindex.slab_hash` — a GPU-resident dynamic slab hash
  (Ashkiani et al., IPDPS'18), the index HugeCTR and Fleche both build on.
  The data structure is fully functional (numpy-backed) and reports the
  memory-transaction counts its probes would generate so the timing model
  can charge them.
* :mod:`repro.hashindex.host_hash` — the CPU-DRAM side open-addressing
  table used by the embedding store, with a DRAM access cost model.
"""

from .slab_hash import SlabHashIndex, ProbeStats, InsertResult, EMPTY_KEY
from .host_hash import HostHashTable

__all__ = [
    "SlabHashIndex",
    "ProbeStats",
    "InsertResult",
    "EMPTY_KEY",
    "HostHashTable",
]
