"""CPU-DRAM side hash table with a DRAM cost model.

The embedding store keeps every table as a host hash table (paper §2.1).
Random lookups miss the CPU caches and are bounded by DRAM's effective
random-access bandwidth — the scarcity that motivates GPU caching in the
first place.  This implementation stores the mapping in a numpy-backed open
addressing table and reports the host time a batched query costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import SimulationError
from ..hardware import HardwareSpec

_EMPTY = np.int64(-1)
_HASH_MULT = np.uint64(0xD6E8FEB86659FD93)


def _slot_of(keys: np.ndarray, table_size: int) -> np.ndarray:
    mixed = keys.astype(np.uint64) * _HASH_MULT
    mixed ^= mixed >> np.uint64(32)
    return (mixed % np.uint64(table_size)).astype(np.int64)


@dataclass(frozen=True)
class HostQueryCost:
    """Host-side cost of one batched DRAM operation."""

    #: CPU time spent chasing hash probes (latency-bound, multi-threaded).
    index_time: float
    #: CPU/DRAM time streaming the embedding payload out of DRAM.
    copy_time: float

    @property
    def total(self) -> float:
        return self.index_time + self.copy_time


class HostHashTable:
    """Open-addressing host hash table mapping keys to row numbers.

    Rows point into a dense payload matrix owned by the caller
    (:class:`repro.tables.embedding_table.EmbeddingTable`), mirroring how a
    production parameter store separates index and payload.
    """

    def __init__(self, capacity: int, load_factor: float = 0.6):
        if capacity <= 0:
            raise SimulationError("host hash capacity must be positive")
        if not 0.0 < load_factor < 1.0:
            raise SimulationError("host hash load factor must be in (0, 1)")
        self.capacity = int(capacity)
        self.table_size = max(8, int(np.ceil(capacity / load_factor)))
        self._keys = np.zeros(self.table_size, dtype=np.uint64)
        self._rows = np.full(self.table_size, _EMPTY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert_many(self, keys: np.ndarray, rows: np.ndarray) -> None:
        """Insert unique ``keys`` mapping to payload ``rows``."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        if keys.shape != rows.shape:
            raise SimulationError("insert_many: keys/rows length mismatch")
        if self._size + len(keys) > self.table_size:
            raise SimulationError("host hash table overflow")
        slots = _slot_of(keys, self.table_size)
        n = len(keys)
        pos = 0
        chunk = 128
        while pos < n:
            stop = min(pos + chunk, n)
            cslots = slots[pos:stop]
            # Bulk fast path: when every key's *initial* slot is currently
            # empty and no two keys in the chunk share one, sequential
            # probing would place each key exactly at its initial slot —
            # so one vectorised scatter reproduces the sequential layout
            # bit-for-bit.  Any contention falls back to the exact loop.
            if (self._rows[cslots] == _EMPTY).all() and (
                np.unique(cslots).size == cslots.size
            ):
                self._keys[cslots] = keys[pos:stop]
                self._rows[cslots] = rows[pos:stop]
                self._size += int(cslots.size)
                pos = stop
                continue
            for i in range(pos, stop):
                slot = int(slots[i])
                while (
                    self._rows[slot] != _EMPTY and self._keys[slot] != keys[i]
                ):
                    slot = (slot + 1) % self.table_size
                if self._rows[slot] == _EMPTY:
                    self._size += 1
                self._keys[slot] = keys[i]
                self._rows[slot] = rows[i]
            pos = stop

    def lookup_many(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised batched probe; returns (found_mask, rows)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        n = len(keys)
        rows = np.full(n, _EMPTY, dtype=np.int64)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return found, rows
        slots = _slot_of(keys, self.table_size)
        pending = np.arange(n)
        # Linear probing, advanced in lock-step rounds across the batch.
        for _ in range(self.table_size):
            slot_keys = self._keys[slots[pending]]
            slot_rows = self._rows[slots[pending]]
            hit = (slot_rows != _EMPTY) & (slot_keys == keys[pending])
            miss_final = slot_rows == _EMPTY
            rows[pending[hit]] = slot_rows[hit]
            found[pending[hit]] = True
            keep = ~(hit | miss_final)
            pending = pending[keep]
            if not pending.size:
                break
            slots[pending] = (slots[pending] + 1) % self.table_size
        return found, rows


def host_query_cost(
    hw: HardwareSpec, num_keys: int, payload_bytes: int, probes_per_key: float = None
) -> HostQueryCost:
    """DRAM cost of indexing ``num_keys`` and streaming ``payload_bytes``.

    Indexing is latency-bound: each probe is a dependent random DRAM access,
    overlapped across the store's lookup threads.  The payload copy runs at
    DRAM's random-gather effective bandwidth.
    """
    cpu = hw.cpu
    if probes_per_key is None:
        probes_per_key = cpu.host_hash_probes
    serial_accesses = num_keys * probes_per_key / cpu.lookup_threads
    index_time = serial_accesses * cpu.dram_access_latency
    copy_time = payload_bytes / (cpu.dram_bandwidth * cpu.dram_random_efficiency)
    return HostQueryCost(index_time=index_time, copy_time=copy_time)
