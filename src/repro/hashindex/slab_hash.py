"""GPU-resident slab hash index (SlabHash).

The structure mirrors the dynamic slab hash of Ashkiani et al.: an array of
buckets, each bucket a fixed-width *slab* of slots scanned warp-cooperatively
in one global-memory transaction.  Fleche and the HugeCTR baseline both use
this index (paper §4); Fleche additionally stores a logical timestamp in
each slot for approximate LRU and read/write conflict detection (§3.1).

The reproduction keeps the structure exact but stores it in flat numpy
arrays and performs batched, vectorised operations:

* ``keys``   — per-slot flat key (uint64), ``EMPTY_KEY`` when vacant;
* ``values`` — per-slot payload (uint64 — a memory-pool location or a
  tagged CPU-DRAM pointer for Fleche's unified index);
* ``stamps`` — per-slot logical timestamp.

Every batched operation returns :class:`ProbeStats` describing how many
random memory transactions and dependent hops the equivalent GPU kernel
would execute; callers feed these into :class:`repro.gpusim.KernelSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import CapacityError, SimulationError

#: Sentinel stored in vacant slots.  Flat keys are re-encoded IDs, so the
#: all-ones pattern is never produced by the coding layer.
EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Slots per slab.  A warp reads one 128 B transaction per probe; with
#: 8-byte keys that covers 16 slots.
SLAB_SLOTS = 16

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _bucket_of(keys: np.ndarray, num_buckets: int) -> np.ndarray:
    """Multiplicative hash of flat keys onto buckets (vectorised)."""
    mixed = keys.astype(np.uint64) * _HASH_MULT
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(num_buckets)).astype(np.int64)


@dataclass(frozen=True)
class InsertResult:
    """Outcome of one batched insert.

    Attributes:
        evicted_values: payloads displaced by bucket-local LRU eviction.
        slots: for each (deduplicated) input key, the slot it landed in.
        keys: the deduplicated keys corresponding to ``slots``.
        stats: device cost stats of the insert kernel.
    """

    evicted_values: np.ndarray
    slots: np.ndarray
    keys: np.ndarray
    stats: "ProbeStats"


@dataclass(frozen=True)
class ProbeStats:
    """Device-side cost summary of one batched index operation.

    Attributes:
        lookups: number of keys processed.
        transactions: random 128 B memory transactions issued.
        dependent_hops: average serial probe hops per key (drives the
            latency term of the kernel cost model).
    """

    lookups: int
    transactions: int
    dependent_hops: float

    def merged_with(self, other: "ProbeStats") -> "ProbeStats":
        total = self.lookups + other.lookups
        if total == 0:
            return ProbeStats(0, 0, 0.0)
        hops = (
            self.dependent_hops * self.lookups + other.dependent_hops * other.lookups
        ) / total
        return ProbeStats(total, self.transactions + other.transactions, hops)


class SlabHashIndex:
    """A bucketed slab hash mapping flat keys to 64-bit payloads.

    Capacity is fixed at construction (GPU memory is pre-allocated); callers
    run eviction before the table overflows, exactly as Fleche's watermark
    eviction does.
    """

    def __init__(self, capacity: int, load_factor: float = 0.75):
        if capacity <= 0:
            raise SimulationError("slab hash capacity must be positive")
        if not 0.0 < load_factor <= 1.0:
            raise SimulationError("load factor must be in (0, 1]")
        self.capacity = int(capacity)
        self.load_factor = load_factor
        total_slots = int(np.ceil(capacity / load_factor))
        self.num_buckets = max(1, -(-total_slots // SLAB_SLOTS))
        self.slots = self.num_buckets * SLAB_SLOTS
        self._keys = np.full(self.slots, EMPTY_KEY, dtype=np.uint64)
        self._values = np.zeros(self.slots, dtype=np.uint64)
        self._stamps = np.zeros(self.slots, dtype=np.int64)
        self._size = 0

    # ------------------------------------------------------------------ basics

    def __len__(self) -> int:
        return self._size

    @property
    def metadata_bytes(self) -> int:
        """HBM consumed by index metadata (keys + values + stamps)."""
        return self._keys.nbytes + self._values.nbytes + self._stamps.nbytes

    def _slabs(self) -> np.ndarray:
        return self._keys.reshape(self.num_buckets, SLAB_SLOTS)

    # ------------------------------------------------------------------ lookup

    # hot-path: vectorized
    def lookup(
        self, keys: np.ndarray, stamp: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, ProbeStats]:
        """Find ``keys`` in the index (fully vectorised).

        Args:
            keys: uint64 flat keys (may be empty, may contain duplicates).
            stamp: if given, hit slots get their timestamp refreshed to
                ``stamp`` (the approximate-LRU touch).

        Returns:
            ``(found_mask, values, stats)``: boolean hit mask, per-key
            payloads (zero where missed), and device cost stats.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        n = len(keys)
        if n == 0:
            return np.zeros(0, bool), np.zeros(0, np.uint64), ProbeStats(0, 0, 0.0)

        buckets = _bucket_of(keys, self.num_buckets)
        slab_keys = self._slabs()[buckets]  # (n, SLAB_SLOTS)
        match = slab_keys == keys[:, None]
        found = match.any(axis=1)
        cols = match.argmax(axis=1)
        slot = buckets * SLAB_SLOTS + cols
        values = np.where(found, self._values[slot], np.uint64(0))
        if stamp is not None:
            self._stamps[slot[found]] = stamp
        stats = ProbeStats(n, n, 1.0)
        return found, values, stats

    # ------------------------------------------------------------------ insert

    # hot-path: vectorized
    def insert(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        stamp: int,
        overwrite: bool = True,
    ) -> InsertResult:
        """Insert or update ``keys`` -> ``values``.

        Duplicate keys in the batch collapse to their first occurrence.  A
        full slab forces eviction of the stalest slot in its bucket
        (approximate LRU at bucket granularity).
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if keys.shape != values.shape:
            raise SimulationError("insert: keys/values length mismatch")
        if len(keys) == 0:
            empty = np.zeros(0, np.uint64)
            return InsertResult(
                empty, np.zeros(0, np.int64), empty, ProbeStats(0, 0, 0.0)
            )

        _, first = np.unique(keys, return_index=True)
        keys, values = keys[np.sort(first)], values[np.sort(first)]
        landed = np.full(len(keys), -1, dtype=np.int64)

        # Round assignment, computed once: key i runs in round r where r
        # is i's rank among same-bucket keys in batch order — exactly the
        # "first key per bucket per round" schedule the old per-round
        # dedup produced, without re-sorting the shrinking pending set.
        all_buckets = _bucket_of(keys, self.num_buckets)
        order = np.argsort(all_buckets, kind="stable")
        sorted_b = all_buckets[order]
        run_starts = np.flatnonzero(
            np.concatenate(([True], sorted_b[1:] != sorted_b[:-1]))
        )
        run_lengths = np.diff(np.concatenate((run_starts, [len(keys)])))
        rank = np.arange(len(keys)) - np.repeat(run_starts, run_lengths)
        round_of = np.empty(len(keys), dtype=np.int64)
        round_of[order] = rank

        evicted_chunks = []
        transactions = 0
        rounds = 0
        for r in range(int(run_lengths.max())):  # lint: allow-loop (per insert round: max keys per bucket, not key count)
            rounds += 1
            active = np.flatnonzero(round_of == r)
            act_buckets = all_buckets[active]
            act_keys = keys[active]
            act_values = values[active]
            transactions += 2 * len(active)  # read slab + write back

            slab_keys = self._slabs()[act_buckets]
            match = slab_keys == act_keys[:, None]
            has_match = match.any(axis=1)
            vacant = slab_keys == EMPTY_KEY
            has_vacant = vacant.any(axis=1)

            cols = np.empty(len(active), dtype=np.int64)
            cols[has_match] = match.argmax(axis=1)[has_match]
            use_vacant = ~has_match & has_vacant
            cols[use_vacant] = vacant.argmax(axis=1)[use_vacant]
            must_evict = ~has_match & ~has_vacant
            if must_evict.any():
                stamp_rows = self._stamps.reshape(
                    self.num_buckets, SLAB_SLOTS
                )[act_buckets[must_evict]]
                cols[must_evict] = stamp_rows.argmin(axis=1)
                evict_slots = (
                    act_buckets[must_evict] * SLAB_SLOTS + cols[must_evict]
                )
                evicted_chunks.append(self._values[evict_slots].copy())

            slots = act_buckets * SLAB_SLOTS + cols
            fresh = ~has_match
            self._keys[slots[fresh]] = act_keys[fresh]
            self._values[slots[fresh]] = act_values[fresh]
            if overwrite and has_match.any():
                self._values[slots[has_match]] = act_values[has_match]
            self._stamps[slots] = stamp
            self._size += int(use_vacant.sum())
            landed[active] = slots

        stats = ProbeStats(len(keys), transactions, float(rounds))
        evicted = (
            np.concatenate(evicted_chunks)
            if evicted_chunks
            else np.zeros(0, np.uint64)
        )
        return InsertResult(evicted, landed, keys, stats)

    # ------------------------------------------------------------------ erase

    # hot-path: vectorized
    def erase(self, keys: np.ndarray) -> Tuple[np.ndarray, ProbeStats]:
        """Remove ``keys``; returns (mask of keys actually removed, stats)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.zeros(0, bool), ProbeStats(0, 0, 0.0)
        buckets = _bucket_of(keys, self.num_buckets)
        slab_keys = self._slabs()[buckets]
        match = slab_keys == keys[:, None]
        found = match.any(axis=1)
        slots = buckets * SLAB_SLOTS + match.argmax(axis=1)
        target = np.unique(slots[found])
        self._keys[target] = EMPTY_KEY
        self._values[target] = 0
        self._stamps[target] = 0
        self._size -= len(target)
        return found, ProbeStats(len(keys), 2 * len(keys), 1.0)

    # ------------------------------------------------------------------ scans

    def scan(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full-table scan: (keys, values, stamps) of occupied slots.

        The eviction pass (§3.1) uses this: one streaming read of the table.
        """
        occupied = self._keys != EMPTY_KEY
        return (
            self._keys[occupied].copy(),
            self._values[occupied].copy(),
            self._stamps[occupied].copy(),
        )

    def stamp_of(self, key: int) -> Optional[int]:
        """Timestamp currently recorded for ``key`` (None when absent)."""
        arr = np.array([key], dtype=np.uint64)
        found, _, _ = self.lookup(arr)
        if not found[0]:
            return None
        bucket = int(_bucket_of(arr, self.num_buckets)[0])
        row = self._slabs()[bucket]
        col = int(np.nonzero(row == arr[0])[0][0])
        return int(self._stamps[bucket * SLAB_SLOTS + col])

    def check_capacity(self, additional: int) -> None:
        """Raise :class:`CapacityError` if ``additional`` inserts cannot fit."""
        if self._size + additional > self.slots:
            raise CapacityError(
                f"slab hash overflow: {self._size}+{additional} > {self.slots} slots"
            )
