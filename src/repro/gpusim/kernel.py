"""Kernel execution cost model.

A kernel's device time is modelled as a roofline over three resources:

* **streaming memory traffic** — coalesced reads/writes at HBM stream
  bandwidth;
* **random memory traffic** — hash-probe style 128 B transactions at the
  (much lower) random-access HBM bandwidth;
* **compute** — FLOPs at the achieved FP32 rate.

plus a fixed per-kernel startup cost and a latency term for dependent probe
chains when too few warps are resident to hide global-memory latency.

Coalescing is modelled explicitly: per-embedding traffic is rounded up to
whole 128 B transactions, which is why copying 16-dim and 32-dim embeddings
costs the same (both fit one transaction per warp) — the effect the paper
observes in Experiment #10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError
from ..hardware import HardwareSpec


def coalesced_bytes(logical_bytes: int, transaction_bytes: int) -> int:
    """Round one object's traffic up to whole memory transactions."""
    if logical_bytes <= 0:
        return 0
    transactions = -(-logical_bytes // transaction_bytes)  # ceil division
    return transactions * transaction_bytes


@dataclass(frozen=True)
class KernelSpec:
    """Work description of one kernel launch.

    Attributes:
        name: human-readable kernel identity (used in counters).
        threads: total launched threads (rounded up to warps internally).
        stream_bytes: coalesced streaming traffic (bulk copies), in bytes.
        random_transactions: count of independent random 128 B transactions
            (hash probes, pointer chases).
        dependent_hops: average *serial* global-memory hops each thread must
            make (e.g. walking a slab list); adds a latency term when
            occupancy cannot hide it.
        flops: floating-point operations executed.
    """

    name: str
    threads: int
    stream_bytes: int = 0
    random_transactions: int = 0
    dependent_hops: float = 0.0
    flops: float = 0.0

    def __post_init__(self) -> None:
        if self.threads < 0:
            raise SimulationError(f"kernel {self.name!r}: negative thread count")
        if self.stream_bytes < 0 or self.random_transactions < 0 or self.flops < 0:
            raise SimulationError(f"kernel {self.name!r}: negative work amount")

    @property
    def warps(self) -> int:
        """Number of 32-thread warps this launch occupies (at least one)."""
        return max(1, -(-self.threads // 32))

    def fused_with(self, other: "KernelSpec", name: str = "") -> "KernelSpec":
        """Combine two kernels' work into one launch (self-identified fusion)."""
        return KernelSpec(
            name=name or f"{self.name}+{other.name}",
            threads=self.threads + other.threads,
            stream_bytes=self.stream_bytes + other.stream_bytes,
            random_transactions=self.random_transactions + other.random_transactions,
            dependent_hops=max(self.dependent_hops, other.dependent_hops),
            flops=self.flops + other.flops,
        )


def kernel_execution_time(spec: KernelSpec, hw: HardwareSpec) -> float:
    """Device time of one kernel under the roofline model.

    The returned time excludes launch overhead (that is CPU-side maintenance,
    accounted by the executor).
    """
    gpu = hw.gpu
    if spec.threads == 0:
        return 0.0

    stream_time = spec.stream_bytes / (gpu.hbm_bandwidth * gpu.hbm_stream_efficiency)
    random_bytes = spec.random_transactions * gpu.transaction_bytes
    random_time = random_bytes / (gpu.hbm_bandwidth * gpu.hbm_random_efficiency)
    compute_time = spec.flops / (gpu.peak_flops * gpu.flops_efficiency)

    # Latency term: dependent probe chains serialise unless enough warps are
    # resident to overlap them.  ``waves`` counts how many rounds of resident
    # thread groups the launch needs.
    latency_time = 0.0
    if spec.dependent_hops > 0:
        waves = math.ceil(spec.threads / gpu.max_resident_threads)
        latency_time = waves * spec.dependent_hops * gpu.global_latency

    busy = max(stream_time + random_time, compute_time, latency_time)
    return hw.kernel.kernel_fixed_cost + busy
