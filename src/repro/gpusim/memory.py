"""Device memory allocator model.

Raw ``cudaMalloc`` costs up to a dozen microseconds per call (paper §3.1),
which is why Fleche pre-allocates one bulk region at boot and sub-allocates
inside it.  :class:`DeviceAllocator` tracks HBM usage, charges the
``cudaMalloc`` latency for every *driver* allocation, and enforces the
device capacity so cache configurations that cannot fit are rejected early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import CapacityError, SimulationError
from ..hardware import HardwareSpec


@dataclass
class Allocation:
    """One live driver-level device allocation."""

    handle: int
    nbytes: int
    label: str


@dataclass
class DeviceAllocator:
    """Tracks driver-level HBM allocations and their latency cost.

    The allocator is deliberately simple: driver allocations are bump-
    allocated and freed by handle.  Fine-grained reuse happens one level up
    in :mod:`repro.mempool`, exactly as in the paper.
    """

    hw: HardwareSpec
    _allocations: Dict[int, Allocation] = field(default_factory=dict)
    _next_handle: int = 1
    _used: int = 0
    #: Total CPU time spent inside cudaMalloc/cudaFree, for accounting.
    driver_time: float = 0.0
    alloc_calls: int = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated on the device."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes of HBM still available."""
        return self.hw.gpu.hbm_capacity - self._used

    def malloc(self, nbytes: int, label: str = "") -> Allocation:
        """Allocate ``nbytes`` of device memory (charges cudaMalloc latency)."""
        if nbytes <= 0:
            raise SimulationError(f"cudaMalloc of non-positive size {nbytes}")
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"device OOM: requested {nbytes} bytes with only "
                f"{self.free_bytes} free (label={label!r})"
            )
        allocation = Allocation(self._next_handle, nbytes, label)
        self._allocations[allocation.handle] = allocation
        self._next_handle += 1
        self._used += nbytes
        self.driver_time += self.hw.kernel.cudamalloc_overhead
        self.alloc_calls += 1
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release a driver allocation."""
        stored = self._allocations.pop(allocation.handle, None)
        if stored is None:
            raise SimulationError(
                f"double free or foreign allocation (handle={allocation.handle})"
            )
        self._used -= stored.nbytes
