"""Host <-> device copy cost model.

Two copy mechanisms exist on the testbed (paper §4):

* ``cudaMemcpy`` — the vanilla driver path: ~6.5 us of fixed overhead per
  call plus PCIe streaming time.  Fine for bulk embedding transfers, ruinous
  for the many tiny metadata copies a cache query performs.
* ``GDRCopy`` — CPU-driven mapped writes over NVIDIA GPUDirect RDMA: ~0.1 us
  fixed overhead, ideal for small copies (args arrays, prefix-sum arrays,
  missing-key counts).

:class:`CopyEngine` picks the cheaper mechanism automatically unless the
caller forces one; this mirrors both Fleche and the GDRCopy-enhanced
HugeCTR baseline the paper compares against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SimulationError
from ..hardware import HardwareSpec


class CopyMethod(str, enum.Enum):
    """Which host/device copy mechanism to use."""

    CUDAMEMCPY = "cudamemcpy"
    GDRCOPY = "gdrcopy"
    AUTO = "auto"


@dataclass(frozen=True)
class CopyCost:
    """Split cost of one host/device copy."""

    #: Fixed per-call overhead — charged to the CPU thread (maintenance for
    #: metadata copies).
    overhead: float
    #: Streaming time over the interconnect.
    wire_time: float
    method: CopyMethod

    @property
    def total(self) -> float:
        return self.overhead + self.wire_time


class CopyEngine:
    """Computes host/device transfer costs under the platform spec."""

    def __init__(self, hw: HardwareSpec):
        self._hw = hw

    def resolve_method(self, nbytes: int, method: CopyMethod) -> CopyMethod:
        """Pick the concrete mechanism for a copy of ``nbytes``."""
        if method is not CopyMethod.AUTO:
            return method
        if nbytes <= self._hw.interconnect.gdrcopy_crossover_bytes:
            return CopyMethod.GDRCOPY
        return CopyMethod.CUDAMEMCPY

    def cost(self, nbytes: int, method: CopyMethod = CopyMethod.AUTO) -> CopyCost:
        """Cost of copying ``nbytes`` between host and device."""
        if nbytes < 0:
            raise SimulationError(f"cannot copy a negative byte count ({nbytes})")
        ic = self._hw.interconnect
        resolved = self.resolve_method(nbytes, method)
        if resolved is CopyMethod.GDRCOPY:
            overhead = ic.gdrcopy_overhead
        else:
            overhead = ic.cudamemcpy_overhead
        wire_time = nbytes / ic.pcie_bandwidth
        return CopyCost(overhead=overhead, wire_time=wire_time, method=resolved)
