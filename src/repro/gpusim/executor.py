"""The executor: drives CPU and stream timelines through a workload.

The executor models the interaction the paper cares about:

* **Kernel launch** consumes CPU time (maintenance) and enqueues device work
  on a stream.  A kernel starts when both the launch has completed *and* the
  stream's previous work has drained.
* **Stream synchronisation** blocks the CPU until a stream drains, charging
  the sync call itself to maintenance.
* **Host work** (hash lookups in DRAM, dedup, encoding) advances only the
  CPU timeline, so it naturally overlaps with in-flight device work — this
  is exactly the overlap Fleche's decoupled workflow exploits (§3.3).
* **Copies** between host and device consume CPU overhead plus wire time;
  small metadata copies are maintenance, bulk embedding transfers are
  execution time (``DRAM_COPY``).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import SimulationError
from ..hardware import HardwareSpec
from .clock import Timeline
from .kernel import KernelSpec, kernel_execution_time
from .stats import Category, TimeBreakdown
from .transfer import CopyEngine, CopyMethod


class Stream:
    """One CUDA stream: an in-order device work queue."""

    __slots__ = ("name", "ready_time")

    def __init__(self, name: str):
        self.name = name
        #: Instant at which all previously enqueued work has drained.
        self.ready_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stream({self.name!r}, ready={self.ready_time:.9f})"


class Event:
    """A recorded cross-stream timestamp (the ``cudaEvent`` analogue).

    Events express dependencies *between* executors and streams without
    blocking the CPU: record one after some work, and make other work wait
    on it.  The pipelined serving engine uses them to order batch ``i+1``'s
    stages after batch ``i``'s without serialising the whole batches.
    """

    __slots__ = ("name", "timestamp")

    def __init__(self, name: str = "event", timestamp: float = 0.0):
        self.name = name
        #: Simulated instant at which the recorded work completes.
        self.timestamp = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r}, t={self.timestamp:.9f})"


class SharedResource:
    """An exclusive serial resource shared by concurrent execution contexts.

    The platform has exactly one PCIe link and the serving loop exactly one
    host thread; when several in-flight batches want the same one, their
    occupancies must serialise.  A :class:`SharedResource` is the global
    timeline of one such resource: ``occupy`` grants a contiguous interval
    no earlier than both the caller's ready instant and the instant the
    resource frees up.
    """

    __slots__ = ("name", "free_at", "busy_time", "grants")

    def __init__(self, name: str):
        self.name = name
        #: Instant at which the last granted interval ends.
        self.free_at = 0.0
        #: Total granted occupancy (for utilisation reporting).
        self.busy_time = 0.0
        #: Number of granted intervals.
        self.grants = 0

    def next_start(self, earliest: float) -> float:
        """Earliest instant an occupancy could start from ``earliest``."""
        return max(earliest, self.free_at)

    def occupy(self, start: float, end: float) -> float:
        """Occupy the resource for ``[start, end)``.

        ``start`` must not precede ``free_at`` (callers reserve via
        :meth:`next_start` first).  The interval is end-anchored — callers
        pass the exact completion instant they computed, so downstream
        ``next_start`` comparisons against batch finish times stay
        bit-exact.  Returns ``end``.
        """
        if end < start - 1e-15:
            raise SimulationError(
                f"resource {self.name!r}: occupancy ends at {end} before "
                f"its start {start}"
            )
        if start < self.free_at - 1e-15:
            raise SimulationError(
                f"resource {self.name!r}: occupancy at {start} precedes "
                f"free_at {self.free_at}"
            )
        self.free_at = max(self.free_at, end)
        self.busy_time += max(0.0, end - start)
        self.grants += 1
        return end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SharedResource({self.name!r}, free_at={self.free_at:.9f})"


class Executor:
    """Simulated execution context for one inference worker.

    One executor corresponds to the single CPU thread that drives inference
    plus the set of CUDA streams it uses.  All durations it accounts are
    recorded into a :class:`TimeBreakdown`.
    """

    def __init__(self, hw: HardwareSpec, default_stream: str = "stream0"):
        self.hw = hw
        self.cpu = Timeline("cpu")
        self.copy_engine = CopyEngine(hw)
        self.stats = TimeBreakdown()
        self._streams: Dict[str, Stream] = {}
        self.default_stream = self.stream(default_stream)

    # ------------------------------------------------------------------ streams

    def stream(self, name: str) -> Stream:
        """Return the named stream, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        created = Stream(name)
        self._streams[name] = created
        return created

    @property
    def streams(self) -> Dict[str, Stream]:
        return dict(self._streams)

    # ------------------------------------------------------------------ kernels

    def launch(
        self,
        spec: KernelSpec,
        stream: Optional[Stream] = None,
        category: Category = Category.CACHE_INDEX,
        launch_cost: Optional[float] = None,
    ) -> float:
        """Launch a kernel asynchronously; returns its completion instant.

        The CPU pays launch overhead (maintenance) and continues; the device
        work is appended to the stream's queue.  ``launch_cost`` overrides
        the per-kernel CPU cost — CUDA-graph replays use this to model the
        amortised dispatch of captured nodes.
        """
        target = stream or self.default_stream
        if launch_cost is None:
            launch_cost = self.hw.kernel.launch_overhead
            if target is not self.default_stream:
                launch_cost += self.hw.kernel.stream_dispatch_overhead
        self.cpu.advance(launch_cost)
        self.stats.add(Category.MAINTENANCE, launch_cost)
        self.stats.count("kernel_launches")
        self.stats.count(f"kernel:{spec.name}")

        exec_time = kernel_execution_time(spec, self.hw)
        start = max(self.cpu.now, target.ready_time)
        target.ready_time = start + exec_time
        self.stats.add(category, exec_time)
        return target.ready_time

    # ------------------------------------------------------------------ events

    def record_event(
        self, stream: Optional[Stream] = None, name: str = "event"
    ) -> Event:
        """Record an event capturing ``stream``'s current drain instant.

        With no stream, the event captures the executor-wide wall-clock
        (CPU joined with every stream) — the analogue of recording on the
        legacy default stream after a device-wide barrier.
        """
        timestamp = stream.ready_time if stream is not None else self.elapsed()
        return Event(name=name, timestamp=timestamp)

    def wait_event(self, stream: Stream, event: Event) -> None:
        """Make ``stream``'s future work wait for ``event`` (non-blocking).

        Unlike :meth:`synchronize`, the CPU does not stall: only the
        stream's queue is held back, exactly like ``cudaStreamWaitEvent``.
        """
        if event.timestamp > stream.ready_time:
            stream.ready_time = event.timestamp

    def synchronize(self, stream: Optional[Stream] = None) -> None:
        """Block the CPU until ``stream`` (or all streams) drains."""
        self.stats.count("synchronizations")
        if stream is not None:
            self.cpu.advance_to(stream.ready_time)
        else:
            for s in self._streams.values():
                self.cpu.advance_to(s.ready_time)
        self.cpu.advance(self.hw.kernel.sync_overhead)
        self.stats.add(Category.MAINTENANCE, self.hw.kernel.sync_overhead)

    # ------------------------------------------------------------------ host work

    def host_work(self, duration: float, category: Category) -> None:
        """Advance the CPU timeline by ``duration`` of host computation."""
        if duration < 0:
            raise SimulationError(f"negative host work duration {duration}")
        self.cpu.advance(duration)
        self.stats.add(category, duration)

    # ------------------------------------------------------------------ copies

    def copy(
        self,
        nbytes: int,
        category: Category,
        method: CopyMethod = CopyMethod.AUTO,
        async_stream: Optional[Stream] = None,
    ) -> None:
        """Copy ``nbytes`` between host and device.

        Synchronous copies (``async_stream is None``) block the CPU for
        overhead + wire time.  Asynchronous copies charge only the call
        overhead to the CPU and queue the wire time on the stream.
        """
        cost = self.copy_engine.cost(nbytes, method)
        self.stats.count("copies")
        if async_stream is None:
            self.cpu.advance(cost.total)
            self.stats.add(Category.MAINTENANCE, cost.overhead)
            self.stats.add(category, cost.wire_time)
        else:
            self.cpu.advance(cost.overhead)
            self.stats.add(Category.MAINTENANCE, cost.overhead)
            start = max(self.cpu.now, async_stream.ready_time)
            async_stream.ready_time = start + cost.wire_time
            self.stats.add(category, cost.wire_time)

    # ------------------------------------------------------------------ epochs

    def elapsed(self) -> float:
        """Wall-clock so far: the CPU joined with every stream."""
        device_latest = max(
            (s.ready_time for s in self._streams.values()), default=0.0
        )
        return max(self.cpu.now, device_latest)

    def drain(self) -> float:
        """Synchronise every stream and return the final wall-clock."""
        self.synchronize(None)
        return self.cpu.now

    def reset(self) -> None:
        """Rewind all clocks and statistics (between measurement windows)."""
        self.cpu.reset()
        for s in self._streams.values():
            s.ready_time = 0.0
        self.stats.reset()
