"""Timeline tracing for the simulator.

A :class:`TraceRecorder` attached to an :class:`~repro.gpusim.Executor`
captures every accounted interval — kernel launches and executions, host
work, copies, synchronisations — as spans on named tracks (the CPU thread
and each CUDA stream).  Traces export to the Chrome trace-event JSON
format, so a batch's choreography (launch storms, overlap between the
DRAM query and the copy kernel, sync stalls) can be inspected in
``chrome://tracing`` / Perfetto.

Usage::

    executor = Executor(hw)
    recorder = TraceRecorder.attach(executor)
    layer.query(batch, executor)
    recorder.export_json("batch.trace.json")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from .executor import Executor, Stream
from .kernel import KernelSpec, kernel_execution_time
from .stats import Category
from .transfer import CopyMethod


@dataclass(frozen=True)
class Span:
    """One traced interval on a track.

    ``args`` optionally carries trace-event arguments (e.g. the
    ``request_id``/``dispatch`` stamps the request tracer uses to group
    one request's copies across replica tracks); arg-less spans
    serialise exactly as before, so existing traces stay byte-identical.
    """

    track: str
    name: str
    start: float
    duration: float
    category: str
    args: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"span {self.name!r} has negative duration")


def span_tracks(spans: List[Span]) -> List[str]:
    """Track names appearing in ``spans``, CPU first, then sorted."""
    seen = []
    for span in spans:
        if span.track not in seen:
            seen.append(span.track)
    seen.sort(key=lambda t: (t != "cpu", t))
    return seen


def chrome_trace(spans: List[Span]) -> dict:
    """Render spans as Chrome trace-event JSON (complete 'X' events).

    Shared by :class:`TraceRecorder` (executor-level spans) and
    :class:`~repro.obs.spans.SpanTracer` (serving-level stage spans), so
    both export the same format and open in ``chrome://tracing``/Perfetto.
    """
    track_ids = {name: i for i, name in enumerate(span_tracks(spans))}
    events = []
    for name, tid in track_ids.items():
        events.append({
            "ph": "M", "pid": 0, "tid": tid,
            "name": "thread_name", "args": {"name": name},
        })
    for span in spans:
        event = {
            "ph": "X",
            "pid": 0,
            "tid": track_ids[span.track],
            "name": span.name,
            "cat": span.category,
            # Trace format is microseconds.  ``+ 0.0`` collapses IEEE
            # negative zero (a zero-duration span ending at t=0 can carry
            # ``-0.0``) so equal values always serialise to equal bytes.
            "ts": span.start * 1e6 + 0.0,
            "dur": span.duration * 1e6 + 0.0,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(spans: List[Span], path: str) -> str:
    """Write spans as Chrome trace JSON; returns the path.

    The output is byte-deterministic for a given span list — sorted keys,
    fixed indentation, trailing newline — including the edge cases of an
    empty span list (a valid trace with no events) and zero-duration
    spans (normalised to positive zero).
    """
    with open(path, "w") as f:
        json.dump(chrome_trace(spans), f, indent=1, sort_keys=True)
        f.write("\n")
    return path


@dataclass
class TraceRecorder:
    """Records executor activity as spans; see module docstring."""

    spans: List[Span] = field(default_factory=list)
    _executor: Optional[Executor] = None

    # ------------------------------------------------------------------ attach

    @classmethod
    def attach(cls, executor: Executor) -> "TraceRecorder":
        """Wrap the executor's accounting entry points with span capture.

        The wrapping is purely additive: timing behaviour is unchanged, the
        recorder only observes clock values around each call.
        """
        recorder = cls(_executor=executor)
        original_launch = executor.launch
        original_host_work = executor.host_work
        original_copy = executor.copy
        original_synchronize = executor.synchronize

        def launch(spec: KernelSpec, stream: Optional[Stream] = None,
                   category: Category = Category.CACHE_INDEX,
                   launch_cost: Optional[float] = None) -> float:
            cpu_before = executor.cpu.now
            end = original_launch(spec, stream, category, launch_cost)
            target = stream or executor.default_stream
            exec_time = kernel_execution_time(spec, executor.hw)
            recorder.spans.append(Span(
                track="cpu", name=f"launch:{spec.name}",
                start=cpu_before, duration=executor.cpu.now - cpu_before,
                category="maintenance",
            ))
            recorder.spans.append(Span(
                track=f"stream:{target.name}", name=spec.name,
                start=end - exec_time, duration=exec_time,
                category=category.value,
            ))
            return end

        def host_work(duration: float, category: Category) -> None:
            start = executor.cpu.now
            original_host_work(duration, category)
            recorder.spans.append(Span(
                track="cpu", name=f"host:{category.value}",
                start=start, duration=duration, category=category.value,
            ))

        def copy(nbytes: int, category: Category,
                 method: CopyMethod = CopyMethod.AUTO,
                 async_stream: Optional[Stream] = None) -> None:
            start = executor.cpu.now
            original_copy(nbytes, category, method, async_stream)
            recorder.spans.append(Span(
                track="cpu", name=f"copy:{nbytes}B",
                start=start, duration=executor.cpu.now - start,
                category=category.value,
            ))

        def synchronize(stream: Optional[Stream] = None) -> None:
            start = executor.cpu.now
            original_synchronize(stream)
            recorder.spans.append(Span(
                track="cpu",
                name=f"sync:{stream.name if stream else 'all'}",
                start=start, duration=executor.cpu.now - start,
                category="maintenance",
            ))

        executor.launch = launch  # type: ignore[method-assign]
        executor.host_work = host_work  # type: ignore[method-assign]
        executor.copy = copy  # type: ignore[method-assign]
        executor.synchronize = synchronize  # type: ignore[method-assign]
        return recorder

    # ------------------------------------------------------------------ query

    def tracks(self) -> List[str]:
        """Track names seen so far, CPU first."""
        return span_tracks(self.spans)

    def busy_time(self, track: str) -> float:
        """Total span duration on one track."""
        return sum(s.duration for s in self.spans if s.track == track)

    def clear(self) -> None:
        self.spans.clear()

    # ------------------------------------------------------------------ export

    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event representation (complete 'X' events)."""
        return chrome_trace(self.spans)

    def export_json(self, path: str) -> str:
        """Write the Chrome trace JSON; returns the path."""
        return export_chrome_trace(self.spans, path)
