"""Time accounting for the simulator.

Every interval the executor spends is tagged with a :class:`Category`.  The
paper's analysis splits cache-query time into *kernel maintenance* (CPU
launching, context initialisation, synchronisation, metadata copies — see
Figure 4) and *execution* (time actually spent in GPU kernels); the
evaluation breakdowns (Figure 16) further distinguish cache indexing, cache
copying, DRAM indexing, DRAM copying, and "other" host work.  The categories
below are the union of those views.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable


class Category(str, enum.Enum):
    """What an accounted interval was spent on."""

    #: CPU-side kernel launch, stream dispatch, synchronisation, and the
    #: small metadata host/device copies around kernels.
    MAINTENANCE = "maintenance"
    #: Device time inside cache *indexing* kernels.
    CACHE_INDEX = "cache_index"
    #: Device time inside cache *copying* (gather/scatter) kernels.
    CACHE_COPY = "cache_copy"
    #: Host time indexing the CPU-DRAM embedding store.
    DRAM_INDEX = "dram_index"
    #: Host/DMA time copying missing embeddings (DRAM read + PCIe).
    DRAM_COPY = "dram_copy"
    #: Device time inside MLP / dense-compute kernels.
    MLP = "mlp"
    #: Host-side work not tied to querying (dedup, restore, encoding, ...).
    OTHER = "other"


#: Categories whose time is device-kernel execution (for Figure 4's
#: maintenance-vs-execution split).
EXECUTION_CATEGORIES = frozenset(
    {Category.CACHE_INDEX, Category.CACHE_COPY, Category.MLP}
)


@dataclass
class TimeBreakdown:
    """Accumulated per-category durations plus event counters."""

    seconds: Dict[Category, float] = field(default_factory=dict)
    counters: Counter = field(default_factory=Counter)

    def add(self, category: Category, duration: float) -> None:
        """Accumulate ``duration`` seconds under ``category``."""
        self.seconds[category] = self.seconds.get(category, 0.0) + duration

    def count(self, event: str, n: int = 1) -> None:
        """Increment the ``event`` counter by ``n``."""
        self.counters[event] += n

    def total(self, categories: Iterable[Category] = tuple(Category)) -> float:
        """Sum of the durations accumulated under ``categories``."""
        return sum(self.seconds.get(c, 0.0) for c in categories)

    @property
    def maintenance_time(self) -> float:
        """Time spent on kernel maintenance (Figure 4's upper band)."""
        return self.seconds.get(Category.MAINTENANCE, 0.0)

    @property
    def execution_time(self) -> float:
        """Device kernel execution time (Figure 4's lower band)."""
        return self.total(EXECUTION_CATEGORIES)

    @property
    def cache_query_time(self) -> float:
        """Cache index + cache copy time (Figure 16's "Cache Query")."""
        return self.total((Category.CACHE_INDEX, Category.CACHE_COPY))

    @property
    def dram_query_time(self) -> float:
        """DRAM index + DRAM copy time (Figure 16's "DRAM Query")."""
        return self.total((Category.DRAM_INDEX, Category.DRAM_COPY))

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Return a new breakdown combining ``self`` and ``other``."""
        merged = TimeBreakdown(dict(self.seconds), Counter(self.counters))
        for category, duration in other.seconds.items():
            merged.add(category, duration)
        merged.counters.update(other.counters)
        return merged

    def reset(self) -> None:
        """Clear all accumulated durations and counters."""
        self.seconds.clear()
        self.counters.clear()
