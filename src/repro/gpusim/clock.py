"""Monotonic timelines used by the executor.

A :class:`Timeline` is a single monotonically advancing clock.  The executor
owns one timeline for the CPU thread and one per CUDA stream; overlap between
host and device work is expressed by advancing the clocks independently and
joining them at synchronisation points.
"""

from __future__ import annotations

from ..errors import SimulationError


class Timeline:
    """A monotonic clock measured in seconds.

    Besides the instant itself, the timeline distinguishes *active* time
    (explicit :meth:`advance` calls — the thread doing work) from waiting
    (:meth:`advance_to` — the thread blocked on another timeline).  The
    pipelined serving scheduler uses the active share to decide how long a
    stage really occupies the single host thread.
    """

    __slots__ = ("name", "_now", "_active")

    def __init__(self, name: str, start: float = 0.0):
        self.name = name
        self._now = float(start)
        self._active = 0.0

    @property
    def now(self) -> float:
        """Current time on this timeline."""
        return self._now

    @property
    def active(self) -> float:
        """Cumulative time spent actively working (vs. waiting)."""
        return self._active

    def advance(self, duration: float) -> float:
        """Move the clock forward by ``duration`` seconds and return the new time."""
        if duration < 0:
            raise SimulationError(
                f"timeline {self.name!r}: cannot advance by negative duration {duration}"
            )
        self._now += duration
        self._active += duration
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move the clock forward to ``instant`` if it is in the future."""
        if instant > self._now:
            self._now = instant
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only meaningful between independent experiments)."""
        self._now = float(start)
        self._active = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeline({self.name!r}, now={self._now:.9f})"
