"""Monotonic timelines used by the executor.

A :class:`Timeline` is a single monotonically advancing clock.  The executor
owns one timeline for the CPU thread and one per CUDA stream; overlap between
host and device work is expressed by advancing the clocks independently and
joining them at synchronisation points.
"""

from __future__ import annotations

from ..errors import SimulationError


class Timeline:
    """A monotonic clock measured in seconds."""

    __slots__ = ("name", "_now")

    def __init__(self, name: str, start: float = 0.0):
        self.name = name
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current time on this timeline."""
        return self._now

    def advance(self, duration: float) -> float:
        """Move the clock forward by ``duration`` seconds and return the new time."""
        if duration < 0:
            raise SimulationError(
                f"timeline {self.name!r}: cannot advance by negative duration {duration}"
            )
        self._now += duration
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move the clock forward to ``instant`` if it is in the future."""
        if instant > self._now:
            self._now = instant
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only meaningful between independent experiments)."""
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeline({self.name!r}, now={self._now:.9f})"
