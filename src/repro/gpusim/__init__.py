"""Deterministic timing simulator for a CPU + GPU inference platform.

The simulator keeps two kinds of clocks: one CPU-thread timeline and one
timeline per CUDA stream.  Library code *actually executes* its data path in
numpy, and threads the corresponding hardware costs through an
:class:`~repro.gpusim.executor.Executor`, which advances the clocks according
to the cost model in :mod:`repro.hardware`.

The executor tags every accounted interval as either *maintenance* (kernel
launching, synchronisation, small metadata copies — the overhead class the
paper measures in Figure 4) or *execution* (in-kernel device time, bulk
transfers, host DRAM work), so the paper's breakdown figures fall directly
out of :class:`~repro.gpusim.stats.TimeBreakdown`.
"""

from .clock import Timeline
from .kernel import KernelSpec, kernel_execution_time
from .memory import DeviceAllocator
from .executor import Executor, Stream
from .stats import TimeBreakdown, Category
from .transfer import CopyEngine, CopyMethod

__all__ = [
    "Timeline",
    "KernelSpec",
    "kernel_execution_time",
    "DeviceAllocator",
    "Executor",
    "Stream",
    "TimeBreakdown",
    "Category",
    "CopyEngine",
    "CopyMethod",
]
