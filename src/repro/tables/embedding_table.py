"""One host-resident embedding table.

Vectors are generated deterministically from (table_id, feature_id) the
first time they are touched, so the whole library can verify cached results
bit-exactly against the ground truth without materialising giant parameter
matrices up front.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, WorkloadError
from .table_spec import TableSpec

_MIX1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX2 = np.uint64(0xC4CEB9FE1A85EC53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64-style finalizer (vectorised)."""
    x = x.astype(np.uint64)
    x ^= x >> np.uint64(33)
    x *= _MIX1
    x ^= x >> np.uint64(33)
    x *= _MIX2
    x ^= x >> np.uint64(33)
    return x


def reference_vectors(table_id: int, feature_ids: np.ndarray, dim: int) -> np.ndarray:
    """Ground-truth embeddings for (table, ids): deterministic, vectorised.

    Component ``j`` of the vector for feature ``f`` is a hash of
    ``(table_id, f, j)`` mapped to a uniform value in ``[-0.5, 0.5)``; the
    mapping is a pure function, so any two code paths that claim to return
    the embedding of the same ID can be compared bit-exactly.
    """
    feature_ids = np.asarray(feature_ids, dtype=np.uint64)
    base = (np.uint64(table_id + 1) << np.uint64(48)) ^ feature_ids
    cols = np.arange(dim, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    mixed = _mix64(base[:, None] ^ cols[None, :])
    return (mixed.astype(np.float64) / 2.0**64 - 0.5).astype(np.float32)


def reference_vector(table_id: int, feature_id: int, dim: int) -> np.ndarray:
    """Scalar convenience wrapper around :func:`reference_vectors`."""
    return reference_vectors(table_id, np.array([feature_id], np.uint64), dim)[0]


class EmbeddingTable:
    """Host hash table of embedding vectors for one feature field.

    Rows are materialised lazily: a feature ID's vector is generated on its
    first access and then pinned, so repeated lookups are stable (training
    would update rows in place; inference only reads).

    ``storage_tier`` holds the table's values at a reduced precision
    (``"fp16"``/``"int8"``): every row is passed through the tier's
    quantize→dequantize round trip when materialised or updated, so
    lookups see exactly what a payload stored at that tier reconstructs
    to.  The default ``"fp32"`` stores rows verbatim (bit-exact against
    :func:`reference_vectors`).
    """

    def __init__(self, spec: TableSpec, storage_tier: str = "fp32"):
        from ..core.precision import TIERS

        if storage_tier not in TIERS:
            raise ConfigError(f"unknown table storage tier {storage_tier!r}")
        self.spec = spec
        self.storage_tier = storage_tier
        # Feature ids are dense in [0, corpus_size): a direct id -> row
        # array replaces hash probing on the hot path (-1 = not yet
        # materialised).  Device-side probing costs are modelled by
        # :func:`~repro.hashindex.host_hash.host_query_cost`, not here.
        self._row_of = np.full(spec.corpus_size, -1, dtype=np.int64)
        self._rows = np.zeros((0, spec.dim), dtype=np.float32)
        self._row_count = 0

    def _at_tier(self, rows: np.ndarray) -> np.ndarray:
        """Round-trip ``rows`` through the storage tier's quantization."""
        if self.storage_tier == "fp32":
            return rows
        from ..core.precision import dequantize_rows, quantize_rows

        payload, scales = quantize_rows(rows, self.storage_tier)
        return dequantize_rows(payload, scales, self.storage_tier)

    def __len__(self) -> int:
        return self._row_count

    def _materialise(self, missing: np.ndarray) -> int:
        """Generate + index rows for sorted-unique ``missing`` ids.

        Returns the first new row number (``missing[i]`` lands in row
        ``start + i``).
        """
        if (missing >= self.spec.corpus_size).any():
            raise WorkloadError(
                f"table {self.spec.table_id}: feature id beyond corpus size "
                f"{self.spec.corpus_size}"
            )
        new_rows = self._at_tier(
            reference_vectors(self.spec.table_id, missing, self.spec.dim)
        )
        start = self._row_count
        if self._rows.shape[0] < start + len(missing):
            grow_to = max(start + len(missing), max(64, self._rows.shape[0] * 2))
            grown = np.zeros((grow_to, self.spec.dim), dtype=np.float32)
            grown[:start] = self._rows[:start]
            self._rows = grown
        self._rows[start:start + len(missing)] = new_rows
        self._row_of[missing] = np.arange(
            start, start + len(missing), dtype=np.int64
        )
        self._row_count += len(missing)
        return start

    def _ensure_rows(self, feature_ids: np.ndarray) -> None:
        """Materialise rows for any IDs not yet present."""
        feature_ids = self._bounded(feature_ids)
        rows = self._row_of[feature_ids]
        missing = np.unique(feature_ids[rows < 0])
        if missing.size:
            self._materialise(missing)

    def _bounded(self, feature_ids: np.ndarray) -> np.ndarray:
        feature_ids = np.ascontiguousarray(feature_ids, dtype=np.uint64)
        if feature_ids.size and int(feature_ids.max()) >= self.spec.corpus_size:
            raise WorkloadError(
                f"table {self.spec.table_id}: feature id beyond corpus size "
                f"{self.spec.corpus_size}"
            )
        return feature_ids

    # hot-path: vectorized
    def lookup(self, feature_ids: np.ndarray) -> np.ndarray:
        """Return the embedding matrix for ``feature_ids`` (always hits).

        Hot path: one direct-address gather.  IDs not yet materialised
        get rows derived from their position in the sorted-unique
        missing set — no second gather.
        """
        feature_ids = self._bounded(feature_ids)
        if feature_ids.size == 0:
            return np.zeros((0, self.spec.dim), dtype=np.float32)
        rows = self._row_of[feature_ids]
        absent = rows < 0
        if absent.any():
            missing = np.unique(feature_ids[absent])
            start = self._materialise(missing)
            rows[absent] = start + np.searchsorted(
                missing, feature_ids[absent]
            )
        return self._rows[rows]

    def update_rows(
        self, feature_ids: np.ndarray, vectors: np.ndarray
    ) -> int:
        """Write-through: overwrite rows with refreshed model values.

        Each row is re-quantized at the table's storage tier before it
        lands, so a refresh cannot silently upgrade a reduced-precision
        table to fp32 values.  IDs not yet materialised are created
        (an authoritative update, unlike a cache admission).  Returns
        the number of rows written.
        """
        feature_ids = self._bounded(feature_ids)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape != (len(feature_ids), self.spec.dim):
            raise WorkloadError(
                f"table {self.spec.table_id}: update_rows shape mismatch"
            )
        if feature_ids.size == 0:
            return 0
        self._ensure_rows(feature_ids)
        self._rows[self._row_of[feature_ids]] = self._at_tier(vectors)
        return len(feature_ids)
