"""Host (CPU-DRAM) embedding store.

The full set of embedding tables lives in host DRAM (paper §2.2).  Each
table is a host hash table mapping feature IDs to dense float32 vectors;
the store exposes batched queries with a DRAM cost model that captures the
bandwidth scarcity motivating the GPU cache.
"""

from .table_spec import TableSpec, make_table_specs
from .embedding_table import EmbeddingTable
from .store import EmbeddingStore, StoreQueryResult

__all__ = [
    "TableSpec",
    "make_table_specs",
    "EmbeddingTable",
    "EmbeddingStore",
    "StoreQueryResult",
]
