"""The CPU-DRAM embedding store: all tables of a model, plus its cost model.

This is the lower layer of the two-layer architecture (paper §2.2): the GPU
cache answers hits; misses are indexed and copied out of this store at DRAM
speed, and the resulting embeddings travel over PCIe into the output matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..errors import WorkloadError
from ..hashindex.host_hash import HostQueryCost, host_query_cost
from ..hardware import HardwareSpec
from .embedding_table import EmbeddingTable
from .table_spec import TableSpec, total_param_bytes


@dataclass(frozen=True)
class StoreQueryResult:
    """Result of one batched host-store query."""

    vectors: np.ndarray
    cost: HostQueryCost


class EmbeddingStore:
    """All embedding tables of one model, resident in host DRAM.

    ``value_tier`` stores every table's rows at a reduced precision
    (``"fp16"``/``"int8"`` — see
    :class:`~repro.tables.embedding_table.EmbeddingTable`); the default
    ``"fp32"`` is bit-exact against the reference vectors.
    """

    def __init__(
        self,
        specs: Sequence[TableSpec],
        hw: HardwareSpec,
        value_tier: str = "fp32",
    ):
        if not specs:
            raise WorkloadError("embedding store needs at least one table")
        ids = [spec.table_id for spec in specs]
        if ids != list(range(len(specs))):
            raise WorkloadError("table specs must be densely numbered from 0")
        self.specs = list(specs)
        self.hw = hw
        self.value_tier = value_tier
        self._tables: Dict[int, EmbeddingTable] = {
            spec.table_id: EmbeddingTable(spec, storage_tier=value_tier)
            for spec in specs
        }

    # ------------------------------------------------------------------ info

    @property
    def num_tables(self) -> int:
        return len(self.specs)

    @property
    def param_bytes(self) -> int:
        """Aggregate parameter size (Table 2's "Param Size" column)."""
        return total_param_bytes(self.specs)

    def spec_of(self, table_id: int) -> TableSpec:
        return self.specs[table_id]

    def table(self, table_id: int) -> EmbeddingTable:
        return self._tables[table_id]

    # ------------------------------------------------------------------ query

    def query(
        self,
        table_id: int,
        feature_ids: np.ndarray,
        indexed_fraction: float = 0.0,
    ) -> StoreQueryResult:
        """Fetch embeddings of one table's ``feature_ids`` from DRAM.

        Args:
            table_id: table to query.
            feature_ids: IDs to fetch (the cache's misses).
            indexed_fraction: fraction of the keys whose DRAM location was
                already resolved by the GPU-side unified index (§3.3) —
                those skip the host hash probing and only pay the copy.
        """
        if not 0.0 <= indexed_fraction <= 1.0:
            raise WorkloadError("indexed_fraction must be in [0, 1]")
        table = self._tables[table_id]
        vectors = table.lookup(feature_ids)
        spec = self.specs[table_id]
        keys_to_index = int(round(len(feature_ids) * (1.0 - indexed_fraction)))
        cost = host_query_cost(
            self.hw,
            num_keys=keys_to_index,
            payload_bytes=len(feature_ids) * spec.value_bytes,
        )
        return StoreQueryResult(vectors=vectors, cost=cost)

    def query_many(
        self,
        table_ids: np.ndarray,
        feature_ids: np.ndarray,
        indexed_mask: np.ndarray = None,
    ) -> StoreQueryResult:
        """Fetch embeddings for a mixed batch of (table, id) pairs.

        All tables in the batch must share one dimension (callers group by
        dimension); the cost is accounted jointly, since the store's lookup
        threads drain the whole miss batch together.
        """
        table_ids = np.asarray(table_ids)
        feature_ids = np.asarray(feature_ids, dtype=np.uint64)
        if table_ids.shape != feature_ids.shape:
            raise WorkloadError("query_many: shape mismatch")
        if len(table_ids) == 0:
            zero = host_query_cost(self.hw, 0, 0)
            return StoreQueryResult(np.zeros((0, 0), np.float32), zero)

        # Group by table over one stable sort (each table's ids keep
        # their original relative order, so per-table lookups see exactly
        # the sequence the per-table mask loop fed them).
        order = np.argsort(table_ids, kind="stable")
        sorted_tables = table_ids[order]
        bounds = np.flatnonzero(np.concatenate(
            ([True], sorted_tables[1:] != sorted_tables[:-1])
        ))
        run_tables = [int(sorted_tables[b]) for b in bounds]

        dims = {self.specs[t].dim for t in run_tables}
        if len(dims) != 1:
            raise WorkloadError("query_many: tables must share one dimension")
        dim = dims.pop()

        vectors = np.zeros((len(table_ids), dim), dtype=np.float32)
        payload = 0
        stops = list(bounds[1:]) + [len(order)]
        for t, start, stop in zip(run_tables, bounds, stops):
            run = order[start:stop]
            vectors[run] = self._tables[t].lookup(feature_ids[run])
            payload += (int(stop) - int(start)) * self.specs[t].value_bytes

        if indexed_mask is None:
            keys_to_index = len(table_ids)
        else:
            keys_to_index = int((~np.asarray(indexed_mask, bool)).sum())
        cost = host_query_cost(self.hw, keys_to_index, payload)
        return StoreQueryResult(vectors=vectors, cost=cost)

    # ---------------------------------------------------------------- refresh

    def update_rows(
        self, table_id: int, feature_ids: np.ndarray, vectors: np.ndarray
    ) -> int:
        """Write refreshed rows through to one table (tier-preserving).

        Rows land re-quantized at the store's ``value_tier``.  Returns
        the number of rows written.  (Deliberately *not* named
        ``apply_update`` — that name is the refresh-subscriber
        write-through protocol and would change how host stores are
        duck-typed by :mod:`repro.refresh`.)
        """
        return self._tables[table_id].update_rows(feature_ids, vectors)


def make_store(specs: Sequence[TableSpec], hw: HardwareSpec) -> EmbeddingStore:
    """Convenience constructor mirroring the other substrate factories."""
    return EmbeddingStore(specs, hw)
