"""Embedding table specifications.

A DLRM's sparse part is a set of embedding tables ``{E_0, ..., E_{n-1}}``
where table ``E_i`` has corpus size (hash-table capacity) ``c_i`` and value
dimension ``d_i`` (paper §2.2).  :class:`TableSpec` carries exactly those
parameters plus bookkeeping helpers used throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigError


@dataclass(frozen=True)
class TableSpec:
    """Static description of one embedding table."""

    table_id: int
    corpus_size: int
    dim: int

    def __post_init__(self) -> None:
        if self.corpus_size <= 0:
            raise ConfigError(f"table {self.table_id}: corpus_size must be > 0")
        if self.dim <= 0:
            raise ConfigError(f"table {self.table_id}: dim must be > 0")

    def __deepcopy__(self, memo):
        return self  # frozen, all-scalar: safe to share across clones

    @property
    def value_bytes(self) -> int:
        """Bytes of one float32 embedding vector."""
        return self.dim * 4

    @property
    def param_bytes(self) -> int:
        """Total parameter bytes of the table."""
        return self.corpus_size * self.value_bytes


def make_table_specs(corpus_sizes: Sequence[int], dims: Sequence[int]) -> List[TableSpec]:
    """Build specs from parallel corpus-size / dimension sequences."""
    if len(corpus_sizes) != len(dims):
        raise ConfigError("corpus_sizes and dims must have the same length")
    return [
        TableSpec(table_id=i, corpus_size=int(c), dim=int(d))
        for i, (c, d) in enumerate(zip(corpus_sizes, dims))
    ]


def total_param_bytes(specs: Sequence[TableSpec]) -> int:
    """Aggregate parameter size of all tables (Table 2's "Param Size")."""
    return sum(spec.param_bytes for spec in specs)
