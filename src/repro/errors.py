"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CapacityError(ReproError):
    """A structure ran out of capacity (memory pool, hash index, ...)."""


class CodingError(ReproError):
    """A flat-key coding layout could not be built or applied."""


class SimulationError(ReproError):
    """The hardware timeline was driven into an inconsistent state."""


class WorkloadError(ReproError):
    """A workload / dataset specification is invalid."""


class DegradedServiceError(ReproError):
    """The remote tier was unavailable and the degradation policy is
    ``fail``: the affected keys cannot be served."""


class AuditError(ReproError):
    """A declared metrics invariant (conservation law or registered audit
    check) does not hold at an audit barrier."""


class RefreshError(ReproError):
    """The model-refresh stream could not be read or applied: an offset
    fell out of the update log's retention window, the log is inside an
    outage window, or an update batch is malformed."""
