"""GNN feature-lookup workloads (paper §5, applicability discussion).

The paper argues Fleche transfers to graph neural networks: categorical
features of nodes and edges form many large embedding tables whose access
patterns resemble recommendation workloads.  This module synthesises such
traces from a graph sampled neighbourhood process:

* node popularity follows the graph's degree distribution (power law);
* one "sample" is a mini-batch of seed nodes plus their sampled
  neighbours, so the same hub nodes recur across batches — exactly the
  locality a GPU-resident cache exploits;
* node/edge attribute tables of different sizes ride along, mirroring the
  heterogeneous table mix of DLRMs.

It also encodes the paper's NLP counter-point: a word-embedding table is
small enough to cache entirely, making Fleche unnecessary —
:func:`nlp_word_table_fits_hbm` checks that directly.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import WorkloadError
from ..hardware import HardwareSpec
from .spec import DatasetSpec, FieldSpec
from .trace import Trace, TraceBatch
from .zipf import ZipfSampler


def gnn_feature_dataset(
    num_nodes: int = 500_000,
    num_node_attr_tables: int = 6,
    num_edge_attr_tables: int = 4,
    degree_alpha: float = -1.6,
    dim: int = 32,
    seed: int = 0,
) -> DatasetSpec:
    """Dataset spec for a GNN feature store.

    Table 0 is the node-ID embedding table (degree-skewed access); the
    remaining tables are node/edge attribute vocabularies of decreasing
    size.
    """
    if num_nodes <= 0:
        raise WorkloadError("num_nodes must be positive")
    rng = np.random.default_rng(seed)
    fields = [FieldSpec(corpus_size=num_nodes, alpha=degree_alpha)]
    for i in range(num_node_attr_tables + num_edge_attr_tables):
        corpus = max(8, int(num_nodes / (4 ** (i + 1))))
        fields.append(
            FieldSpec(
                corpus_size=corpus,
                alpha=float(rng.uniform(-1.8, -1.0)),
            )
        )
    return DatasetSpec(
        name="gnn-features",
        fields=tuple(fields),
        num_samples=10_000_000,
        dim=dim,
        seed=seed,
    )


def gnn_neighbourhood_trace(
    spec: DatasetSpec,
    num_batches: int,
    seeds_per_batch: int,
    fanout: int = 8,
) -> Trace:
    """Mini-batches of seed nodes plus sampled neighbours.

    Neighbour IDs are drawn from the degree distribution (hubs recur), so
    each batch touches ``seeds * (1 + fanout)`` node IDs; attribute tables
    receive one ID per touched node.
    """
    if num_batches <= 0 or seeds_per_batch <= 0 or fanout < 0:
        raise WorkloadError("invalid trace parameters")
    node_field = spec.fields[0]
    node_sampler = ZipfSampler(node_field.corpus_size, node_field.alpha,
                               seed=spec.seed)
    attr_samplers = [
        ZipfSampler(f.corpus_size, f.alpha, seed=spec.seed * 13 + i + 1)
        for i, f in enumerate(spec.fields[1:])
    ]
    batches: List[TraceBatch] = []
    ids_per_batch = seeds_per_batch * (1 + fanout)
    for _ in range(num_batches):
        seeds = node_sampler.sample(seeds_per_batch)
        neighbours = node_sampler.sample(seeds_per_batch * fanout)
        nodes = np.concatenate([seeds, neighbours])
        ids_per_table = [nodes]
        for sampler in attr_samplers:
            ids_per_table.append(sampler.sample(ids_per_batch))
        batches.append(
            TraceBatch(ids_per_table=ids_per_table, batch_size=seeds_per_batch)
        )
    return Trace(batches, name=spec.name)


def nlp_word_table_fits_hbm(
    hw: HardwareSpec, vocabulary: int = 30_522, dim: int = 768
) -> bool:
    """The paper's NLP counter-example: BERT-scale word embeddings
    (~100 MB) fit entirely in HBM, so no cache hierarchy is needed."""
    table_bytes = vocabulary * dim * 4
    return table_bytes < 0.05 * hw.gpu.hbm_capacity
