"""Workload generation: datasets, traces, and sampling distributions.

The paper evaluates on three real-world CTR datasets (Avazu, Criteo-Kaggle,
Criteo-TB; Table 2) plus synthetic power-law workloads for sensitivity
studies (§6.1).  Since the raw datasets cannot ship with this repository,
:mod:`repro.workloads.datasets` builds scaled-down *replicas* that preserve
the statistics the cache behaviour depends on: per-table corpus sizes with
the published table counts, heterogeneous per-table skew, and temporal
hotspot drift.
"""

from .zipf import ZipfSampler, zipf_head_ids
from .spec import DatasetSpec, FieldSpec
from .synthetic import synthetic_dataset, uniform_tables_spec
from .datasets import avazu_replica, criteo_kaggle_replica, criteo_tb_replica, DATASET_REPLICAS
from .trace import Trace, TraceBatch
from .preprocess import filter_low_frequency
from .persistence import save_trace, load_trace
from .gnn import gnn_feature_dataset, gnn_neighbourhood_trace

__all__ = [
    "ZipfSampler",
    "zipf_head_ids",
    "DatasetSpec",
    "FieldSpec",
    "synthetic_dataset",
    "uniform_tables_spec",
    "avazu_replica",
    "criteo_kaggle_replica",
    "criteo_tb_replica",
    "DATASET_REPLICAS",
    "Trace",
    "TraceBatch",
    "filter_low_frequency",
    "save_trace",
    "load_trace",
    "gnn_feature_dataset",
    "gnn_neighbourhood_trace",
]
