"""Trace preprocessing.

HugeCTR's preprocessing scripts remove low-frequency features before
deployment (paper §6.1); :func:`filter_low_frequency` reproduces that step
on a trace, remapping the surviving IDs of each table onto a dense range so
downstream corpus sizes shrink accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import WorkloadError
from .trace import Trace, TraceBatch


def frequency_tables(trace: Trace) -> List[Dict[int, int]]:
    """Per-table occurrence counts over the whole trace."""
    counts: List[Dict[int, int]] = []
    for table in range(trace.num_tables):
        ids = np.concatenate([batch.ids_per_table[table] for batch in trace])
        values, occurrences = np.unique(ids, return_counts=True)
        counts.append({int(v): int(c) for v, c in zip(values, occurrences)})
    return counts


def filter_low_frequency(
    trace: Trace, min_count: int = 2
) -> Tuple[Trace, List[Dict[int, int]]]:
    """Drop IDs occurring fewer than ``min_count`` times; densify the rest.

    Low-frequency IDs are mapped to a per-table out-of-vocabulary bucket
    (ID 0 of the densified range), matching the common production practice
    the HugeCTR scripts implement.

    Returns:
        ``(filtered_trace, remaps)`` where ``remaps[t]`` maps original IDs
        of table ``t`` to their densified replacement.
    """
    if min_count < 1:
        raise WorkloadError("min_count must be >= 1")
    counts = frequency_tables(trace)
    remaps: List[Dict[int, int]] = []
    for table_counts in counts:
        keep = sorted(
            fid for fid, count in table_counts.items() if count >= min_count
        )
        remap = {fid: new_id + 1 for new_id, fid in enumerate(keep)}
        remaps.append(remap)

    new_batches = []
    for batch in trace:
        new_ids = []
        for table, ids in enumerate(batch.ids_per_table):
            remap = remaps[table]
            mapped = np.fromiter(
                (remap.get(int(fid), 0) for fid in ids),
                dtype=np.uint64,
                count=len(ids),
            )
            new_ids.append(mapped)
        new_batches.append(
            TraceBatch(ids_per_table=new_ids, batch_size=batch.batch_size)
        )
    return Trace(new_batches, name=f"{trace.name}:minc{min_count}"), remaps
