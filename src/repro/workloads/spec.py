"""Dataset specifications.

A :class:`DatasetSpec` describes a sparse workload the way Table 2 of the
paper does — number of embedding tables, sample count, distinct sparse IDs,
parameter size — plus the per-field sampling statistics (corpus size, skew,
drift) that the generators need to synthesise traces with the right cache
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import WorkloadError
from ..tables.table_spec import TableSpec


@dataclass(frozen=True)
class FieldSpec:
    """Sampling description of one categorical field (one embedding table).

    Attributes:
        corpus_size: distinct IDs of this field after preprocessing.
        alpha: power-law exponent of the field's popularity distribution
            (more negative = more skewed).
        hotspot_share: fraction of accesses concentrated on the field's hot
            set; used only for documentation/analysis.
        drift: fraction of the popularity permutation re-drawn per epoch of
            trace time — models hotspots moving over time, which is what
            defeats a static per-table partition.
    """

    corpus_size: int
    alpha: float = -1.2
    hotspot_share: float = 0.8
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.corpus_size <= 0:
            raise WorkloadError("field corpus_size must be positive")
        if self.alpha >= 0:
            raise WorkloadError("field alpha must be negative")
        if not 0.0 <= self.drift <= 1.0:
            raise WorkloadError("field drift must be in [0, 1]")


@dataclass(frozen=True)
class DatasetSpec:
    """A full sparse dataset description (one row of Table 2)."""

    name: str
    fields: Sequence[FieldSpec]
    num_samples: int
    dim: int
    #: IDs per sample per field (1 = one-hot; >1 models multi-hot fields).
    ids_per_field: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.fields:
            raise WorkloadError(f"dataset {self.name}: needs at least one field")
        if self.num_samples <= 0:
            raise WorkloadError(f"dataset {self.name}: num_samples must be > 0")
        if self.dim <= 0:
            raise WorkloadError(f"dataset {self.name}: dim must be > 0")

    @property
    def num_tables(self) -> int:
        return len(self.fields)

    @property
    def total_sparse_ids(self) -> int:
        """Distinct sparse IDs across all fields (Table 2's "# Sparse IDs")."""
        return sum(f.corpus_size for f in self.fields)

    @property
    def param_bytes(self) -> int:
        """Total embedding parameter bytes (Table 2's "Param Size")."""
        return sum(f.corpus_size * self.dim * 4 for f in self.fields)

    def table_specs(self) -> List[TableSpec]:
        """The embedding-table specs this dataset induces."""
        return [
            TableSpec(table_id=i, corpus_size=f.corpus_size, dim=self.dim)
            for i, f in enumerate(self.fields)
        ]

    def cache_slots_for_ratio(self, ratio: float) -> int:
        """Number of cache slots equal to ``ratio`` of all parameters.

        The paper sizes caches as a fraction of the total embedding-table
        size ("5% means that the cache size is 5% of the size of all
        embedding tables").
        """
        if not 0.0 < ratio <= 1.0:
            raise WorkloadError("cache ratio must be in (0, 1]")
        return max(1, int(self.total_sparse_ids * ratio))
